//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API this repository uses: the
//! [`strategy::Strategy`] trait with `prop_map`/`boxed`, range and tuple
//! strategies,
//! [`arbitrary::any`], `prop::collection::vec`, the `proptest!` /
//! `prop_assert*` / `prop_assume!` / `prop_oneof!` macros and
//! [`test_runner::ProptestConfig`].
//!
//! Semantics: each test runs `cases` deterministic random cases (seeded
//! from the test name, so failures reproduce across runs). There is **no
//! shrinking** — a failing case reports its inputs via the panic message
//! of the `prop_assert*` macro that fired.

#![forbid(unsafe_code)]

use rand::{Rng as _, SeedableRng as _};

/// The per-case random source handed to strategies.
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Deterministic per-(test, case) generator.
    pub fn deterministic(name: &str, case: u64) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(
                seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n.max(1))
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (for heterogeneous collections such as
        /// `prop_oneof!` arms).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(std::rc::Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng as _;
                    rng.inner_mut().gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng as _;
                    rng.inner_mut().gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

impl TestRng {
    pub(crate) fn inner_mut(&mut self) -> &mut rand::rngs::StdRng {
        &mut self.inner
    }
}

pub mod arbitrary {
    //! `any::<T>()` — whole-domain strategies per type.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng as _;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_rand {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.inner_mut().gen()
                }
            }
        )*};
    }
    impl_arbitrary_via_rand!(
        u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f64, f32
    );

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.inner_mut().gen()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng as _;

    /// Vec strategy with a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates `Vec`s of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.inner_mut().gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// Subset of proptest's config: the number of cases per test.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real proptest defaults to 256; 64 keeps the software-AES
            // test suite fast while still exploring the space.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Drives one property: runs `cfg.cases` deterministic cases, panicking on
/// the first failure with the case index (re-running reproduces it).
pub fn run_cases<F>(name: &str, cfg: &test_runner::ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    for case in 0..u64::from(cfg.cases) {
        let mut rng = TestRng::deterministic(name, case);
        if let Err(msg) = body(&mut rng) {
            panic!("proptest '{name}' failed at case {case}/{}: {msg}", cfg.cases);
        }
    }
}

/// Everything a test module needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module path used by `prop::collection::vec`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::core::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), lhs, rhs
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Discards the current case (counts as a pass; no replacement draw).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// The property-test declaration macro. Supports the forms this repository
/// uses: an optional `#![proptest_config(..)]` header and test functions
/// whose parameters are either `name in strategy` or `name: Type`
/// (shorthand for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr)) => {};
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_cases(stringify!($name), &config, |__proptest_rng| {
                $crate::proptest!(@bind __proptest_rng $($params)*);
                { $body };
                ::core::result::Result::Ok(())
            });
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    // Parameter binding: `name in strategy` form.
    (@bind $rng:ident $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), $rng);
    };
    (@bind $rng:ident $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::proptest!(@bind $rng $($rest)*);
    };
    // Parameter binding: `name: Type` shorthand for `any::<Type>()`.
    (@bind $rng:ident $name:ident: $ty:ty) => {
        let $name: $ty = $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
    };
    (@bind $rng:ident $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
        $crate::proptest!(@bind $rng $($rest)*);
    };
    (@bind $rng:ident) => {};
    // Entry without a config header.
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 10u64..20, b in 0u8..=3, c: u16) {
            prop_assert!((10..20).contains(&a));
            prop_assert!(b <= 3);
            let _ = c;
        }

        #[test]
        fn maps_and_tuples_compose(
            pair in (0u32..10, 0u32..10).prop_map(|(x, y)| x + y),
            v in prop::collection::vec(any::<u8>(), 1..5),
        ) {
            prop_assert!(pair < 20);
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn oneof_selects_arms(x in prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v)]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }

        #[test]
        fn assume_skips(n in 0u8..10) {
            prop_assume!(n < 5);
            prop_assert!(n < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_header_is_honored(x: bool) {
            let _ = x;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::deterministic("t", 3);
        let mut b = crate::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
