//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — benchmark
//! groups, `bench_function`, `iter`/`iter_batched`, throughput annotation,
//! and the `criterion_group!`/`criterion_main!` macros — with a simple
//! median-of-samples timer instead of criterion's full statistics. Bench
//! sources compile and run unchanged; numbers are indicative rather than
//! statistically rigorous.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Batch sizing hints for [`Bencher::iter_batched`] (ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The per-benchmark timing driver.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled by `iter*`.
    result_ns: f64,
}

const WARMUP_ITERS: u64 = 32;
const ITERS_PER_SAMPLE: u64 = 256;
/// Hard wall-clock cap per benchmark so accidental bench runs (e.g. via
/// `cargo test --all-targets`) stay fast.
const MAX_BENCH_TIME: Duration = Duration::from_millis(500);

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher { samples, result_ns: f64::NAN }
    }

    /// Times `routine`, recording the median sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            start.elapsed()
        });
    }

    /// Times `routine` over inputs produced by `setup` (setup excluded
    /// from timing).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.run(|iters| {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            start.elapsed()
        });
    }

    fn run<F: FnMut(u64) -> Duration>(&mut self, mut timed: F) {
        let deadline = Instant::now() + MAX_BENCH_TIME;
        timed(WARMUP_ITERS); // warmup
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let d = timed(ITERS_PER_SAMPLE);
            per_iter.push(d.as_nanos() as f64 / ITERS_PER_SAMPLE as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.result_ns = per_iter[per_iter.len() / 2];
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    /// Group-scoped override of the criterion-wide sample count.
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size.unwrap_or(self.criterion.sample_size));
        f(&mut b);
        let mut line = format!("{}/{:<40} {:>12.1} ns/iter", self.name, id, b.result_ns);
        if let Some(tp) = self.throughput {
            match tp {
                Throughput::Bytes(n) => {
                    let gbps = n as f64 * 8.0 / b.result_ns;
                    line.push_str(&format!("  ({gbps:.2} Gbps)"));
                }
                Throughput::Elements(n) => {
                    let meps = n as f64 * 1e3 / b.result_ns;
                    line.push_str(&format!("  ({meps:.2} Melem/s)"));
                }
            }
        }
        println!("{line}");
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 16 }
    }
}

impl Criterion {
    /// Sets the default sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size: None }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(&mut self, id: N, f: F) {
        self.benchmark_group("bench").bench_function(id, f);
    }
}

/// Declares a bench entry function over a list of target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` over bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(64));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(4);
        targets = targets
    );

    #[test]
    fn group_runs_quickly() {
        let start = std::time::Instant::now();
        benches();
        assert!(start.elapsed() < Duration::from_secs(10));
    }
}
