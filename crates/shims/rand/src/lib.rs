//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this workspace-local shim provides exactly the API surface the
//! repository uses: `Rng` (`gen`, `gen_range`, `fill`), `SeedableRng`
//! (`seed_from_u64`) and `rngs::StdRng`. The generator is a deterministic
//! xoshiro256** seeded through SplitMix64 — statistically solid for tests
//! and benchmarks, explicitly **not** cryptographically secure (nothing in
//! this repo draws key material from `rand`; the crypto crate's secrets
//! are constructed from explicit byte arrays).

#![forbid(unsafe_code)]

/// Types drawable uniformly over their whole domain via [`Rng::gen`].
pub trait Random: Sized {
    /// Draws a uniformly random value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[inline]
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for i128 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Random for f32 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl<const N: usize> Random for [u8; N] {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill(&mut out);
        out
    }
}

/// Types with a uniform range sampler, for [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)` (`high` exclusive) or
    /// `[low, high]` when `inclusive`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                let span = if inclusive {
                    (high as u128).wrapping_sub(low as u128).wrapping_add(1)
                } else {
                    assert!(low < high, "gen_range: empty range");
                    (high as u128) - (low as u128)
                };
                if span == 0 {
                    // Inclusive range covering the whole domain.
                    return <Self as Random>::random(rng);
                }
                // Multiply-shift rejection-free mapping is fine for tests;
                // modulo bias is negligible at these span sizes.
                let draw = u128::random(rng) % span;
                (low as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                // Shift into the unsigned domain to reuse the uint path.
                let off = <$t>::MIN as i128;
                let lo = ((low as i128) - off) as $u;
                let hi = ((high as i128) - off) as $u;
                let drawn = <$u as SampleUniform>::sample_range(rng, lo, hi, inclusive);
                ((drawn as i128) + off) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, _inclusive: bool) -> Self {
        let u = f64::random(rng);
        low + u * (high - low)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// The subset of `rand::Rng` this repository uses.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly random value of type `T`.
    #[inline]
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The subset of `rand::SeedableRng` this repository uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's ChaCha12
    /// `StdRng`; same trait surface, not the same stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: u32 = rng.gen_range(0u32..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn fill_covers_all_lengths() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in 0..33 {
            let mut buf = vec![0u8; n];
            rng.fill(&mut buf);
            if n >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }

    #[test]
    fn gen_u128_uses_both_words() {
        let mut rng = StdRng::seed_from_u64(3);
        let v: u128 = rng.gen();
        assert!(v >> 64 != 0 || v as u64 != 0);
        assert_ne!(v >> 64, v & u128::from(u64::MAX));
    }
}
