//! # hummingbird-ledger
//!
//! A Sui-like object ledger, built from scratch as the substrate for the
//! Hummingbird control plane (paper §4.2 and §6).
//!
//! The paper's control plane is a set of Move smart contracts on Sui. This
//! crate reproduces the properties those contracts depend on:
//!
//! * **object model** — versioned objects with address / shared / immutable
//!   / object owners ([`object`]);
//! * **atomic transactions** — closure-based programmable transactions with
//!   all-or-nothing commit ([`exec`]), giving atomic path reservations;
//! * **gas model** — Sui's computation buckets, per-byte storage fees and
//!   99 % storage rebates ([`gas`]), reproducing Tables 1 and 2;
//! * **execution paths** — owned-only transactions take the fast path,
//!   shared-object transactions take consensus, with a latency model
//!   calibrated to Fig. 4 ([`latency`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod exec;
pub mod gas;
pub mod latency;
pub mod object;

pub use exec::{ExecError, ExecPath, TxContext, TxReceipt};
pub use gas::{GasSchedule, GasSummary, MIST_PER_SUI};
pub use latency::LatencyModel;
pub use object::{Address, ObjectEntry, ObjectId, ObjectMeta, Owner};

use hummingbird_crypto::sha256::Sha256;
use std::collections::{BTreeSet, HashMap};

/// Secondary-index key: every committed object is findable by
/// (owner, type tag) without scanning the whole store.
type IndexKey = (Owner, &'static str);

/// The in-process ledger: object store, account balances, gas schedule.
#[derive(Debug, Default)]
pub struct Ledger {
    objects: HashMap<ObjectId, ObjectEntry>,
    /// (owner, type tag) → committed object IDs, kept in sync by
    /// [`Ledger::execute`]'s commit loop. `BTreeSet` so queries iterate
    /// in ObjectId order (the order the old whole-store scans sorted
    /// into) without a per-query sort.
    index: HashMap<IndexKey, BTreeSet<ObjectId>>,
    balances: HashMap<Address, u64>,
    tx_counter: u64,
    /// Cumulative minted MIST (faucet) and net burned gas (fees − rebates),
    /// for exact supply-conservation checks: at any point
    /// `minted == total_supply + burned`.
    minted: u128,
    burned: i128,
    /// Gas schedule used to price every transaction.
    pub gas: GasSchedule,
}

impl Ledger {
    /// Creates an empty ledger with the paper's reference gas prices.
    pub fn new() -> Self {
        Self::default()
    }

    /// Credits `amount` MIST to `addr` (test/faucet functionality).
    pub fn mint(&mut self, addr: Address, amount: u64) {
        *self.balances.entry(addr).or_insert(0) += amount;
        self.minted += u128::from(amount);
    }

    /// Total MIST ever minted via [`Self::mint`].
    pub fn total_minted(&self) -> u128 {
        self.minted
    }

    /// Net gas burned so far (fees − storage rebates) across every
    /// committed transaction. Supply conservation holds exactly:
    /// `total_minted() == total_supply() + gas_burned()`.
    pub fn gas_burned(&self) -> i128 {
        self.burned
    }

    /// Current balance of `addr` in MIST.
    pub fn balance(&self, addr: Address) -> u64 {
        self.balances.get(&addr).copied().unwrap_or(0)
    }

    /// Sum of all balances (conservation checks in tests).
    pub fn total_supply(&self) -> u128 {
        self.balances.values().map(|&b| u128::from(b)).sum()
    }

    /// Reads a committed object (out-of-band inspection; no gas, no
    /// ownership checks — this models reading the public chain state).
    pub fn object(&self, id: ObjectId) -> Option<&ObjectEntry> {
        self.objects.get(&id)
    }

    /// Iterates over all committed objects (market scans, tests).
    pub fn objects(&self) -> impl Iterator<Item = &ObjectEntry> {
        self.objects.values()
    }

    /// Iterates, in ObjectId order, over the committed objects with the
    /// given owner and type tag. Served from the secondary index, so the
    /// cost is O(result size), not O(store size).
    pub fn objects_owned_by(
        &self,
        owner: Owner,
        type_tag: &'static str,
    ) -> impl Iterator<Item = &ObjectEntry> {
        self.index
            .get(&(owner, type_tag))
            .into_iter()
            .flat_map(|ids| ids.iter())
            .filter_map(move |id| self.objects.get(id))
    }

    /// Number of committed objects with the given owner and type tag
    /// (index lookup; no iteration).
    pub fn count_owned_by(&self, owner: Owner, type_tag: &'static str) -> usize {
        self.index.get(&(owner, type_tag)).map_or(0, |ids| ids.len())
    }

    /// Total serialized payload bytes across all committed objects
    /// (bytes-per-reservation reporting; O(store size), call sparingly).
    pub fn total_object_bytes(&self) -> u64 {
        self.objects.values().map(|e| e.data.len() as u64).sum()
    }

    /// Number of committed objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of executed (committed) transactions.
    pub fn tx_count(&self) -> u64 {
        self.tx_counter
    }

    /// Executes `f` as an atomic transaction from `sender`.
    ///
    /// On `Ok`, all staged object changes and balance movements are applied
    /// and gas is charged (gas fees are burned; rebates are minted back to
    /// the sender, mirroring Sui's storage-fund flow). On `Err`, no state
    /// changes at all.
    pub fn execute<T, F>(&mut self, sender: Address, f: F) -> Result<TxReceipt<T>, ExecError>
    where
        F: FnOnce(&mut TxContext) -> Result<T, ExecError>,
    {
        let digest = self.next_digest(sender);
        let mut ctx = TxContext {
            committed: &self.objects,
            sender,
            digest,
            staged: HashMap::new(),
            balance_deltas: HashMap::new(),
            raw_units: 0,
            touched_shared: false,
            accessed_parents: Default::default(),
            created_count: 0,
        };
        let value = f(&mut ctx)?;
        let effects = ctx.into_effects(&self.gas);

        // Apply gas to the sender's balance delta: fees debit, rebate
        // credits.
        let mut deltas = effects.balance_deltas;
        let fee = i128::from(effects.gas.computation_cost) + i128::from(effects.gas.storage_cost);
        let rebate = i128::from(effects.gas.storage_rebate);
        *deltas.entry(sender).or_insert(0) -= fee - rebate;

        // Validate all balances stay non-negative before touching state.
        for (addr, delta) in &deltas {
            let current = i128::from(self.balance(*addr));
            if current + delta < 0 {
                return Err(ExecError::InsufficientFunds(*addr));
            }
        }

        // Commit.
        self.burned += fee - rebate;
        for (addr, delta) in deltas {
            let entry = self.balances.entry(addr).or_insert(0);
            *entry = (i128::from(*entry) + delta) as u64;
        }
        for (id, slot) in effects.staged {
            match slot {
                Some(entry) => {
                    let new_key = (entry.meta.owner, entry.meta.type_tag);
                    match self.objects.insert(id, entry) {
                        Some(old) => {
                            // Re-key only if the owner or tag changed
                            // (transfers, escrow moves); plain writes
                            // leave the index untouched.
                            let old_key = (old.meta.owner, old.meta.type_tag);
                            if old_key != new_key {
                                Self::index_remove(&mut self.index, old_key, id);
                                self.index.entry(new_key).or_default().insert(id);
                            }
                        }
                        None => {
                            self.index.entry(new_key).or_default().insert(id);
                        }
                    }
                }
                None => {
                    if let Some(old) = self.objects.remove(&id) {
                        let key = (old.meta.owner, old.meta.type_tag);
                        Self::index_remove(&mut self.index, key, id);
                    }
                }
            }
        }
        self.tx_counter += 1;
        Ok(TxReceipt { value, gas: effects.gas, path: effects.path, digest: effects.digest })
    }

    fn index_remove(
        index: &mut HashMap<IndexKey, BTreeSet<ObjectId>>,
        key: IndexKey,
        id: ObjectId,
    ) {
        if let Some(ids) = index.get_mut(&key) {
            ids.remove(&id);
            if ids.is_empty() {
                index.remove(&key);
            }
        }
    }

    fn next_digest(&self, sender: Address) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"hummingbird-tx");
        h.update(&sender.0);
        h.update(&self.tx_counter.to_be_bytes());
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecPath;

    fn alice() -> Address {
        Address::from_label("alice")
    }
    fn bob() -> Address {
        Address::from_label("bob")
    }

    fn funded_ledger() -> Ledger {
        let mut l = Ledger::new();
        l.mint(alice(), 100 * MIST_PER_SUI);
        l.mint(bob(), 100 * MIST_PER_SUI);
        l
    }

    #[test]
    fn create_read_owned_object() {
        let mut l = funded_ledger();
        let rx = l
            .execute(alice(), |ctx| {
                Ok(ctx.create(Owner::Address(ctx.sender()), "test::T", vec![1, 2, 3]))
            })
            .unwrap();
        assert_eq!(rx.path, ExecPath::FastPath);
        let id = rx.value;
        let rx2 = l.execute(alice(), |ctx| ctx.read(id, "test::T")).unwrap();
        assert_eq!(rx2.value, vec![1, 2, 3]);
    }

    #[test]
    fn non_owner_cannot_use_object() {
        let mut l = funded_ledger();
        let id = l
            .execute(alice(), |ctx| Ok(ctx.create(Owner::Address(ctx.sender()), "test::T", vec![])))
            .unwrap()
            .value;
        let err = l.execute(bob(), |ctx| ctx.read(id, "test::T")).unwrap_err();
        assert_eq!(err, ExecError::NotOwner(id));
        // Transfer to Bob, then Bob can.
        l.execute(alice(), |ctx| ctx.transfer(id, Owner::Address(bob()))).unwrap();
        assert!(l.execute(bob(), |ctx| ctx.read(id, "test::T")).is_ok());
    }

    #[test]
    fn shared_objects_force_consensus() {
        let mut l = funded_ledger();
        let id = l
            .execute(alice(), |ctx| Ok(ctx.create(Owner::Shared, "test::Mkt", vec![0])))
            .unwrap()
            .value;
        let rx = l.execute(bob(), |ctx| ctx.read(id, "test::Mkt")).unwrap();
        assert_eq!(rx.path, ExecPath::Consensus);
    }

    #[test]
    fn child_objects_require_parent_access() {
        let mut l = funded_ledger();
        let (market, child) = l
            .execute(alice(), |ctx| {
                let market = ctx.create(Owner::Shared, "test::Mkt", vec![]);
                let child = ctx.create(Owner::Object(market), "test::Asset", vec![9]);
                Ok((market, child))
            })
            .unwrap()
            .value;
        // Direct child access fails.
        let err = l.execute(bob(), |ctx| ctx.read(child, "test::Asset")).unwrap_err();
        assert_eq!(err, ExecError::ParentNotAccessed(child));
        // Access via parent works.
        let rx = l
            .execute(bob(), |ctx| {
                ctx.read(market, "test::Mkt")?;
                ctx.read(child, "test::Asset")
            })
            .unwrap();
        assert_eq!(rx.value, vec![9]);
        assert_eq!(rx.path, ExecPath::Consensus);
    }

    #[test]
    fn supply_conservation_tracks_mint_and_burn() {
        let mut l = funded_ledger();
        assert_eq!(l.total_minted(), l.total_supply());
        assert_eq!(l.gas_burned(), 0);
        // Creates (storage fees), a payment, and a delete (rebate).
        let id = l
            .execute(alice(), |ctx| {
                ctx.pay(bob(), 1234);
                Ok(ctx.create(Owner::Address(ctx.sender()), "test::T", vec![7; 64]))
            })
            .unwrap()
            .value;
        l.execute(alice(), |ctx| ctx.delete(id)).unwrap();
        l.mint(bob(), 999);
        // Exact identity: everything minted is either a balance or burned
        // gas — payments and rebates cancel out.
        assert!(l.gas_burned() > 0);
        assert_eq!(l.total_minted(), l.total_supply() + l.gas_burned() as u128);
        // A failed transaction burns and mints nothing.
        let minted = l.total_minted();
        let burned = l.gas_burned();
        let r: Result<TxReceipt<()>, _> =
            l.execute(alice(), |_| Err(ExecError::Contract("abort".into())));
        assert!(r.is_err());
        assert_eq!((l.total_minted(), l.gas_burned()), (minted, burned));
    }

    #[test]
    fn failed_tx_changes_nothing() {
        let mut l = funded_ledger();
        let before_balance = l.balance(alice());
        let before_objects = l.object_count();
        let result: Result<TxReceipt<()>, _> = l.execute(alice(), |ctx| {
            ctx.create(Owner::Address(ctx.sender()), "test::T", vec![1; 100]);
            ctx.pay(bob(), 5);
            Err(ExecError::Contract("abort".into()))
        });
        assert!(result.is_err());
        assert_eq!(l.balance(alice()), before_balance);
        assert_eq!(l.object_count(), before_objects);
        assert_eq!(l.tx_count(), 0);
    }

    #[test]
    fn gas_is_charged_and_rebated() {
        let mut l = funded_ledger();
        let before = l.balance(alice());
        let rx = l
            .execute(alice(), |ctx| {
                Ok(ctx.create(Owner::Address(ctx.sender()), "test::T", vec![0; 400]))
            })
            .unwrap();
        let id = rx.value;
        let fee = rx.gas.computation_cost + rx.gas.storage_cost;
        assert_eq!(l.balance(alice()), before - fee);
        assert_eq!(rx.gas.storage_cost, l.gas.storage_fee(400));

        // Deleting rebates 99 % of the storage fee.
        let rx2 = l.execute(alice(), |ctx| ctx.delete(id)).unwrap();
        assert_eq!(rx2.gas.storage_rebate, l.gas.rebate(rx.gas.storage_cost));
        assert!(rx2.gas.total_mist() < 0, "deletion nets a credit");
    }

    #[test]
    fn payments_move_balances_atomically() {
        let mut l = funded_ledger();
        let rx = l
            .execute(alice(), |ctx| {
                ctx.pay(bob(), 3 * MIST_PER_SUI);
                Ok(())
            })
            .unwrap();
        assert!(rx.gas.computation_cost > 0);
        assert_eq!(l.balance(bob()), 103 * MIST_PER_SUI);
    }

    #[test]
    fn insufficient_funds_rejected() {
        let mut l = Ledger::new();
        l.mint(alice(), 100); // far less than gas
        let err = l
            .execute(alice(), |ctx| {
                ctx.pay(bob(), 50);
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, ExecError::InsufficientFunds(_)));
        assert_eq!(l.balance(alice()), 100);
    }

    #[test]
    fn version_bumps_on_mutation() {
        let mut l = funded_ledger();
        let id = l
            .execute(alice(), |ctx| {
                Ok(ctx.create(Owner::Address(ctx.sender()), "test::T", vec![1]))
            })
            .unwrap()
            .value;
        assert_eq!(l.object(id).unwrap().meta.version, 1);
        l.execute(alice(), |ctx| ctx.write(id, "test::T", vec![2])).unwrap();
        assert_eq!(l.object(id).unwrap().meta.version, 2);
        assert_eq!(l.object(id).unwrap().data, vec![2]);
    }

    #[test]
    fn wrong_type_rejected() {
        let mut l = funded_ledger();
        let id = l
            .execute(alice(), |ctx| Ok(ctx.create(Owner::Address(ctx.sender()), "test::A", vec![])))
            .unwrap()
            .value;
        let err = l.execute(alice(), |ctx| ctx.read(id, "test::B")).unwrap_err();
        assert!(matches!(err, ExecError::WrongType { .. }));
    }

    #[test]
    fn owner_tag_index_tracks_create_transfer_delete() {
        let mut l = funded_ledger();
        let owned = |who: Address| Owner::Address(who);
        let mut ids = Vec::new();
        for i in 0..3u8 {
            let id = l
                .execute(alice(), |ctx| {
                    Ok(ctx.create(Owner::Address(ctx.sender()), "test::T", vec![i]))
                })
                .unwrap()
                .value;
            ids.push(id);
        }
        // Query returns exactly Alice's objects, in ObjectId order.
        let got: Vec<_> =
            l.objects_owned_by(owned(alice()), "test::T").map(|e| e.meta.id).collect();
        let mut want = ids.clone();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(l.count_owned_by(owned(alice()), "test::T"), 3);
        assert_eq!(l.count_owned_by(owned(bob()), "test::T"), 0);
        assert_eq!(l.count_owned_by(owned(alice()), "test::Other"), 0);

        // Transfer re-keys the entry; plain writes leave it in place.
        l.execute(alice(), |ctx| ctx.transfer(ids[0], Owner::Address(bob()))).unwrap();
        l.execute(alice(), |ctx| ctx.write(ids[1], "test::T", vec![9])).unwrap();
        assert_eq!(l.count_owned_by(owned(alice()), "test::T"), 2);
        assert_eq!(l.count_owned_by(owned(bob()), "test::T"), 1);

        // Deletion removes the entry from the index.
        l.execute(alice(), |ctx| ctx.delete(ids[1])).unwrap();
        assert_eq!(l.count_owned_by(owned(alice()), "test::T"), 1);
        let got: Vec<_> =
            l.objects_owned_by(owned(alice()), "test::T").map(|e| e.meta.id).collect();
        assert_eq!(got, vec![ids[2]]);
    }

    #[test]
    fn touch_bumps_version_and_keeps_data() {
        let mut l = funded_ledger();
        let id = l
            .execute(alice(), |ctx| {
                Ok(ctx.create(Owner::Address(ctx.sender()), "test::T", vec![7; 64]))
            })
            .unwrap()
            .value;
        // touch charges like the read+write round trip it replaces.
        let rw = {
            let mut probe = funded_ledger();
            let pid = probe
                .execute(alice(), |ctx| {
                    Ok(ctx.create(Owner::Address(ctx.sender()), "test::T", vec![7; 64]))
                })
                .unwrap()
                .value;
            probe
                .execute(alice(), |ctx| {
                    let data = ctx.read(pid, "test::T")?;
                    ctx.write(pid, "test::T", data)
                })
                .unwrap()
                .gas
        };
        let rx = l.execute(alice(), |ctx| ctx.touch(id, "test::T")).unwrap();
        assert_eq!(rx.gas, rw);
        assert_eq!(l.object(id).unwrap().meta.version, 2);
        assert_eq!(l.object(id).unwrap().data, vec![7; 64]);
        // Wrong tag and wrong owner are still rejected.
        assert!(l.execute(alice(), |ctx| ctx.touch(id, "test::B")).is_err());
        assert!(l.execute(bob(), |ctx| ctx.touch(id, "test::T")).is_err());
    }

    #[test]
    fn mutation_rebates_old_storage() {
        let mut l = funded_ledger();
        let id = l
            .execute(alice(), |ctx| {
                Ok(ctx.create(Owner::Address(ctx.sender()), "test::T", vec![0; 1000]))
            })
            .unwrap()
            .value;
        let first_fee = l.object(id).unwrap().storage_paid;
        let rx = l.execute(alice(), |ctx| ctx.write(id, "test::T", vec![0; 10])).unwrap();
        assert_eq!(rx.gas.storage_rebate, l.gas.rebate(first_fee));
        assert_eq!(rx.gas.storage_cost, l.gas.storage_fee(10));
    }
}
