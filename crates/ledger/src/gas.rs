//! The gas model (paper §6.2 / Appendix B.1).
//!
//! Sui splits transaction cost into three parts, all reproduced here:
//!
//! * **computation cost** — raw units bucketed upward, then priced at the
//!   reference gas price (paper: 7.5 × 10⁻⁷ SUI/unit);
//! * **storage cost** — bytes written priced at the storage gas price
//!   (paper: 7.6 × 10⁻⁶ SUI/byte);
//! * **storage rebate** — 99 % of the storage fee originally paid for an
//!   object, credited when it is deleted.
//!
//! All accounting is integer, in MIST (1 SUI = 10⁹ MIST).

/// MIST per SUI.
pub const MIST_PER_SUI: u64 = 1_000_000_000;

/// Gas schedule: unit prices and bucketing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GasSchedule {
    /// Price per computation unit, MIST (paper: 7.5e-7 SUI = 750 MIST).
    pub computation_price: u64,
    /// Price per stored byte, MIST (paper: 7.6e-6 SUI = 7600 MIST).
    pub storage_price: u64,
    /// Rebate numerator out of 100 (paper: 99 %).
    pub rebate_percent: u64,
    /// Fixed per-object storage overhead in bytes (object metadata on
    /// chain: ID, version, owner, type; Sui charges ~100 B of envelope).
    pub object_overhead: u64,
    /// SUI price in USD micro-units for reporting (paper: 1.221 USD as of
    /// 2024-04-18).
    pub usd_per_sui_micros: u64,
}

impl Default for GasSchedule {
    fn default() -> Self {
        GasSchedule {
            computation_price: 750,
            storage_price: 7_600,
            rebate_percent: 99,
            // Sui charges for the full stored object: BCS payload plus the
            // object envelope (ID, version, owner, type string) and — for
            // marketplace children — the dynamic-field wrapper. ~250 B
            // total overhead reproduces the per-object storage fees of
            // Table 2.
            object_overhead: 250,
            usd_per_sui_micros: 1_221_000,
        }
    }
}

impl GasSchedule {
    /// Buckets raw computation units upward, as Sui charges by bucket.
    ///
    /// Buckets double from 1000: {1000, 2000, 4000, ...} — this reproduces
    /// Table 1 where 1-4 hops cost 1000 units, 8 hops 2000, 16 hops 4000.
    pub fn bucket_computation(&self, raw_units: u64) -> u64 {
        let mut bucket = 1_000u64;
        while bucket < raw_units {
            bucket *= 2;
        }
        bucket
    }

    /// Storage fee for an object with `payload_bytes` of contents, MIST.
    pub fn storage_fee(&self, payload_bytes: u64) -> u64 {
        (payload_bytes + self.object_overhead) * self.storage_price
    }

    /// Rebate for deleting an object whose storage fee was `paid`, MIST.
    pub fn rebate(&self, paid: u64) -> u64 {
        paid * self.rebate_percent / 100
    }
}

/// Per-transaction gas accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GasSummary {
    /// Bucketed computation units.
    pub computation_units: u64,
    /// Computation cost, MIST.
    pub computation_cost: u64,
    /// Storage cost, MIST.
    pub storage_cost: u64,
    /// Storage rebate, MIST.
    pub storage_rebate: u64,
}

impl GasSummary {
    /// Net cost (computation + storage − rebate), MIST. Negative values
    /// mean the sender *earned* MIST (rebate exceeded cost), which the
    /// paper shows for `fuse_*` and `deliver_reservation` (Table 2).
    pub fn total_mist(&self) -> i128 {
        i128::from(self.computation_cost) + i128::from(self.storage_cost)
            - i128::from(self.storage_rebate)
    }

    /// Net cost in SUI (floating point, for reporting only).
    pub fn total_sui(&self) -> f64 {
        self.total_mist() as f64 / MIST_PER_SUI as f64
    }

    /// Net cost in USD at the schedule's exchange rate.
    pub fn total_usd(&self, schedule: &GasSchedule) -> f64 {
        self.total_sui() * schedule.usd_per_sui_micros as f64 / 1e6
    }

    /// Accumulates another summary (for multi-tx flows).
    pub fn accumulate(&mut self, other: &GasSummary) {
        self.computation_units += other.computation_units;
        self.computation_cost += other.computation_cost;
        self.storage_cost += other.storage_cost;
        self.storage_rebate += other.storage_rebate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_prices_match_paper() {
        let g = GasSchedule::default();
        // 7.5e-7 SUI/unit = 750 MIST/unit.
        assert_eq!(g.computation_price, 750);
        // 7.6e-6 SUI/byte = 7600 MIST/byte.
        assert_eq!(g.storage_price, 7600);
    }

    #[test]
    fn bucketing_doubles_from_1000() {
        let g = GasSchedule::default();
        assert_eq!(g.bucket_computation(0), 1000);
        assert_eq!(g.bucket_computation(1000), 1000);
        assert_eq!(g.bucket_computation(1001), 2000);
        assert_eq!(g.bucket_computation(2500), 4000);
    }

    #[test]
    fn paper_computation_costs() {
        // Table 1: 1000 units → 0.00075 SUI; 2000 → 0.0015; 4000 → 0.0030.
        let g = GasSchedule::default();
        assert_eq!(1000 * g.computation_price, 750_000); // 0.00075 SUI
        assert_eq!(2000 * g.computation_price, 1_500_000); // 0.0015 SUI
        assert_eq!(4000 * g.computation_price, 3_000_000); // 0.0030 SUI
    }

    #[test]
    fn rebate_is_99_percent() {
        let g = GasSchedule::default();
        assert_eq!(g.rebate(1_000_000), 990_000);
    }

    #[test]
    fn summary_can_go_negative() {
        let s = GasSummary {
            computation_units: 1000,
            computation_cost: 750_000,
            storage_cost: 1_000_000,
            storage_rebate: 5_000_000,
        };
        assert!(s.total_mist() < 0);
        assert!(s.total_sui() < 0.0);
    }

    #[test]
    fn usd_conversion() {
        let g = GasSchedule::default();
        let s = GasSummary {
            computation_units: 0,
            computation_cost: 0,
            storage_cost: MIST_PER_SUI, // exactly 1 SUI
            storage_rebate: 0,
        };
        assert!((s.total_usd(&g) - 1.221).abs() < 1e-9);
    }
}
