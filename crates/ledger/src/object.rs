//! Objects, owners and addresses — the Sui-like data model.
//!
//! Sui organizes all on-chain state as versioned *objects* with an explicit
//! owner. Transactions touching only objects owned by the sender take the
//! low-latency *fast path* (Byzantine consistent broadcast); transactions
//! touching *shared* objects (like the marketplace) go through consensus
//! (paper §6.1, "Blockchain Platform & Atomic Transactions").

use hummingbird_crypto::sha256::Sha256;
use hummingbird_crypto::sig::PublicKey;

/// A 32-byte account address (hash of the account's public key).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Address(pub [u8; 32]);

impl Address {
    /// Derives an address from a public key.
    pub fn from_pubkey(pk: &PublicKey) -> Self {
        let mut h = Sha256::new();
        h.update(b"hummingbird-address");
        h.update(&pk.to_bytes());
        Address(h.finalize())
    }

    /// Deterministic test address from a label.
    pub fn from_label(label: &str) -> Self {
        let mut h = Sha256::new();
        h.update(b"hummingbird-label-address");
        h.update(label.as_bytes());
        Address(h.finalize())
    }
}

impl std::fmt::Debug for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:02x}{:02x}{:02x}{:02x}…", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl std::fmt::Display for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self, f)
    }
}

/// A 32-byte object identifier (hash of creating tx digest + index).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub [u8; 32]);

impl ObjectId {
    /// Derives the ID of the `index`-th object created by a transaction.
    pub fn derive(tx_digest: &[u8; 32], index: u32) -> Self {
        let mut h = Sha256::new();
        h.update(b"hummingbird-object-id");
        h.update(tx_digest);
        h.update(&index.to_be_bytes());
        ObjectId(h.finalize())
    }
}

impl std::fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj:{:02x}{:02x}{:02x}{:02x}…", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// Who may use an object in a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Owner {
    /// Exclusively owned: only this address can use the object; such
    /// transactions ride the fast path.
    Address(Address),
    /// Shared: anyone may use it, but every use goes through consensus.
    Shared,
    /// Immutable: anyone may read it; reads never force consensus.
    Immutable,
    /// Owned by another object (Sui dynamic fields): accessible only in a
    /// transaction that has already accessed the parent — how the
    /// marketplace escrows listed assets.
    Object(ObjectId),
}

/// Object metadata maintained by the ledger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Identifier, stable across versions.
    pub id: ObjectId,
    /// Version, bumped on every mutation or transfer.
    pub version: u64,
    /// Current owner.
    pub owner: Owner,
    /// Type tag (e.g. `"asset::BandwidthAsset"`), checked on access.
    pub type_tag: &'static str,
}

/// A stored object: metadata plus serialized contents, plus the storage fee
/// paid for it (needed to compute the 99 % rebate on deletion).
#[derive(Clone, Debug)]
pub struct ObjectEntry {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Serialized contents.
    pub data: Vec<u8>,
    /// Storage fee paid, in MIST (for rebates).
    pub storage_paid: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummingbird_crypto::sig::SecretKey;

    #[test]
    fn address_is_stable_and_distinct() {
        let a = Address::from_label("alice");
        assert_eq!(a, Address::from_label("alice"));
        assert_ne!(a, Address::from_label("bob"));
        let pk = SecretKey::from_seed(b"k").public();
        assert_eq!(Address::from_pubkey(&pk), Address::from_pubkey(&pk));
    }

    #[test]
    fn object_ids_differ_by_index_and_tx() {
        let d1 = [1u8; 32];
        let d2 = [2u8; 32];
        assert_ne!(ObjectId::derive(&d1, 0), ObjectId::derive(&d1, 1));
        assert_ne!(ObjectId::derive(&d1, 0), ObjectId::derive(&d2, 0));
    }

    #[test]
    fn debug_formats_are_short() {
        let a = Address::from_label("x");
        assert!(format!("{a:?}").starts_with("0x"));
        let o = ObjectId::derive(&[0u8; 32], 0);
        assert!(format!("{o:?}").starts_with("obj:"));
    }
}
