//! A tiny deterministic binary codec for object contents.
//!
//! Gas accounting charges per stored byte, so object serialization must be
//! deterministic and compact. No general-purpose binary serializer is in
//! the approved offline dependency set, so contracts encode their state
//! with this writer/reader pair.

/// Serializer writing into an owned buffer.
#[derive(Default, Debug)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16` big-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a `u32` big-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a `u64` big-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a `u128` big-endian.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes fixed-size bytes verbatim.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed (u32) byte string.
    pub fn var_bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.bytes(v);
    }
}

/// Deserializer reading from a slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Decoding error: out of bounds or trailing bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError;

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("object decode error")
    }
}
impl std::error::Error for DecodeError {}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u128`.
    pub fn u128(&mut self) -> Result<u128, DecodeError> {
        Ok(u128::from_be_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a bool.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        Ok(self.u8()? != 0)
    }

    /// Reads `N` fixed bytes.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        Ok(self.take(N)?.try_into().unwrap())
    }

    /// Reads a length-prefixed byte string.
    pub fn var_bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Asserts the buffer is fully consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0x1234);
        w.u32(0xdeadbeef);
        w.u64(u64::MAX);
        w.u128(u128::MAX - 1);
        w.bool(true);
        w.bytes(&[1, 2, 3]);
        w.var_bytes(b"hello");
        let bytes = w.finish();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdeadbeef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u128().unwrap(), u128::MAX - 1);
        assert!(r.bool().unwrap());
        assert_eq!(r.array::<3>().unwrap(), [1, 2, 3]);
        assert_eq!(r.var_bytes().unwrap(), b"hello");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_read_fails() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(DecodeError));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.finish(), Err(DecodeError));
    }
}
