//! Atomic transaction execution against the object store.
//!
//! A transaction is a Rust closure over a [`TxContext`] — the analogue of a
//! Sui programmable transaction block. All object reads/writes are staged;
//! the ledger commits them only if the closure returns `Ok`, giving the
//! all-or-nothing semantics the paper's atomic path reservations rely on
//! (§4.2, "Atomic End-to-End Guarantees").
//!
//! Ownership rules mirror Sui:
//! * objects owned by an address can only be used by that address;
//! * shared objects are usable by anyone but route the transaction through
//!   consensus instead of the fast path;
//! * objects owned by another object (dynamic fields, e.g. assets held in
//!   escrow by the marketplace) are accessible only after the parent shared
//!   object has been accessed in the same transaction.

use crate::gas::{GasSchedule, GasSummary};
use crate::object::{Address, ObjectEntry, ObjectId, ObjectMeta, Owner};
use std::collections::{HashMap, HashSet};

/// Errors surfaced by transaction execution. Any error aborts the whole
/// transaction with no state change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Referenced object does not exist (or was consumed in this tx).
    ObjectNotFound(ObjectId),
    /// Sender does not own the object it tried to use.
    NotOwner(ObjectId),
    /// Object type tag did not match the expected tag.
    WrongType {
        /// The object in question.
        id: ObjectId,
        /// Tag the caller expected.
        expected: &'static str,
        /// Tag actually stored.
        actual: &'static str,
    },
    /// Child object accessed without first accessing its parent.
    ParentNotAccessed(ObjectId),
    /// Object contents failed to decode.
    Decode,
    /// A balance went negative (payment or gas).
    InsufficientFunds(Address),
    /// Contract-level assertion failure.
    Contract(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::ObjectNotFound(id) => write!(f, "object not found: {id:?}"),
            ExecError::NotOwner(id) => write!(f, "sender does not own {id:?}"),
            ExecError::WrongType { id, expected, actual } => {
                write!(f, "{id:?}: expected type {expected}, found {actual}")
            }
            ExecError::ParentNotAccessed(id) => {
                write!(f, "child object {id:?} accessed without its parent")
            }
            ExecError::Decode => f.write_str("object decode error"),
            ExecError::InsufficientFunds(a) => write!(f, "insufficient funds for {a}"),
            ExecError::Contract(msg) => write!(f, "contract error: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<crate::codec::DecodeError> for ExecError {
    fn from(_: crate::codec::DecodeError) -> Self {
        ExecError::Decode
    }
}

/// Which execution path the transaction took (paper §6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecPath {
    /// Owned-objects-only: Byzantine consistent broadcast, low latency.
    FastPath,
    /// Touched a shared object: full consensus.
    Consensus,
}

/// Result of a committed transaction.
#[derive(Clone, Debug)]
pub struct TxReceipt<T> {
    /// Closure return value.
    pub value: T,
    /// Gas accounting.
    pub gas: GasSummary,
    /// Fast path or consensus.
    pub path: ExecPath,
    /// Transaction digest.
    pub digest: [u8; 32],
}

/// Staged object state: `None` = deleted, `Some` = created/updated.
type Staged = HashMap<ObjectId, Option<ObjectEntry>>;

/// The mutable view a transaction closure operates on.
pub struct TxContext<'l> {
    pub(crate) committed: &'l HashMap<ObjectId, ObjectEntry>,
    pub(crate) sender: Address,
    pub(crate) digest: [u8; 32],
    pub(crate) staged: Staged,
    pub(crate) balance_deltas: HashMap<Address, i128>,
    pub(crate) raw_units: u64,
    pub(crate) touched_shared: bool,
    pub(crate) accessed_parents: HashSet<ObjectId>,
    pub(crate) created_count: u32,
}

/// Computation units charged per object operation (in addition to explicit
/// [`TxContext::charge`] calls by contract code). Calibrated so the paper's
/// atomic buy-and-redeem lands in the computation buckets of Table 1
/// (1-4 hops → 1000 units, 8 hops → 2000, 16 hops → 4000).
const UNITS_PER_OP: u64 = 6;

impl<'l> TxContext<'l> {
    /// The transaction sender.
    pub fn sender(&self) -> Address {
        self.sender
    }

    /// The transaction digest (object IDs are derived from it).
    pub fn digest(&self) -> [u8; 32] {
        self.digest
    }

    /// Charges extra computation units.
    pub fn charge(&mut self, units: u64) {
        self.raw_units += units;
    }

    fn lookup(&self, id: ObjectId) -> Result<&ObjectEntry, ExecError> {
        if let Some(staged) = self.staged.get(&id) {
            return staged.as_ref().ok_or(ExecError::ObjectNotFound(id));
        }
        self.committed.get(&id).ok_or(ExecError::ObjectNotFound(id))
    }

    fn check_type(meta: &ObjectMeta, type_tag: &'static str) -> Result<(), ExecError> {
        if meta.type_tag != type_tag {
            return Err(ExecError::WrongType {
                id: meta.id,
                expected: type_tag,
                actual: meta.type_tag,
            });
        }
        Ok(())
    }

    /// Checks the sender (or an accessed parent) is allowed to use the
    /// object mutably, updating the fast-path/consensus flag. Takes only
    /// the metadata so callers never have to clone object payloads to
    /// run the checks.
    fn check_usable(&mut self, meta: &ObjectMeta) -> Result<(), ExecError> {
        let ok = match meta.owner {
            Owner::Address(a) if a == self.sender => true,
            Owner::Address(_) => return Err(ExecError::NotOwner(meta.id)),
            Owner::Shared => {
                self.touched_shared = true;
                true
            }
            Owner::Immutable => return Err(ExecError::NotOwner(meta.id)),
            Owner::Object(parent) => {
                if !self.accessed_parents.contains(&parent) {
                    return Err(ExecError::ParentNotAccessed(meta.id));
                }
                true
            }
        };
        debug_assert!(ok);
        // Any successfully used object can act as parent for its children
        // later in the same transaction (wrapped assets, dynamic fields).
        self.accessed_parents.insert(meta.id);
        Ok(())
    }

    /// Returns the metadata of an object without using it.
    pub fn object_meta(&self, id: ObjectId) -> Result<ObjectMeta, ExecError> {
        Ok(self.lookup(id)?.meta.clone())
    }

    /// Whether the object currently exists.
    pub fn exists(&self, id: ObjectId) -> bool {
        self.lookup(id).is_ok()
    }

    /// Reads an object's contents, enforcing ownership/consensus rules.
    pub fn read(&mut self, id: ObjectId, type_tag: &'static str) -> Result<Vec<u8>, ExecError> {
        self.read_ref(id, type_tag).map(|data| data.to_vec())
    }

    /// Borrowed read: like [`TxContext::read`], but returns a reference
    /// into the staged/committed store instead of copying the payload
    /// out. Hot query paths (asset decodes, bid loads) use this so a
    /// read costs one small metadata clone, not a payload allocation.
    pub fn read_ref(&mut self, id: ObjectId, type_tag: &'static str) -> Result<&[u8], ExecError> {
        self.charge(UNITS_PER_OP);
        // Clone only the (small, fixed-size) metadata so the ownership
        // checks can take `&mut self` without holding a store borrow.
        let meta = self.lookup(id)?.meta.clone();
        Self::check_type(&meta, type_tag)?;
        if !matches!(meta.owner, Owner::Immutable) {
            self.check_usable(&meta)?;
        }
        Ok(&self.lookup(id)?.data)
    }

    /// Overwrites an object's contents, bumping its version.
    pub fn write(
        &mut self,
        id: ObjectId,
        type_tag: &'static str,
        data: Vec<u8>,
    ) -> Result<(), ExecError> {
        self.charge(UNITS_PER_OP);
        let mut entry = self.lookup(id)?.clone();
        Self::check_type(&entry.meta, type_tag)?;
        self.check_usable(&entry.meta)?;
        entry.data = data;
        entry.meta.version += 1;
        self.staged.insert(id, Some(entry));
        Ok(())
    }

    /// Uses an object without reading or replacing its contents: runs the
    /// full ownership/type checks and bumps the version, staging the
    /// existing payload unchanged. This is the gas-coin mutation every
    /// control-plane call makes; it charges the same units as the
    /// read-then-write round trip it replaces (so Table 1/2 gas totals
    /// are unchanged) while cloning the payload once instead of twice.
    pub fn touch(&mut self, id: ObjectId, type_tag: &'static str) -> Result<(), ExecError> {
        self.charge(2 * UNITS_PER_OP);
        let mut entry = self.lookup(id)?.clone();
        Self::check_type(&entry.meta, type_tag)?;
        self.check_usable(&entry.meta)?;
        entry.meta.version += 1;
        self.staged.insert(id, Some(entry));
        Ok(())
    }

    /// Transfers an object to a new owner.
    pub fn transfer(&mut self, id: ObjectId, new_owner: Owner) -> Result<(), ExecError> {
        self.charge(UNITS_PER_OP);
        let mut entry = self.lookup(id)?.clone();
        self.check_usable(&entry.meta)?;
        entry.meta.owner = new_owner;
        entry.meta.version += 1;
        self.staged.insert(id, Some(entry));
        Ok(())
    }

    /// Creates a fresh object, returning its ID.
    pub fn create(&mut self, owner: Owner, type_tag: &'static str, data: Vec<u8>) -> ObjectId {
        self.charge(UNITS_PER_OP);
        let id = ObjectId::derive(&self.digest, self.created_count);
        self.created_count += 1;
        let entry = ObjectEntry {
            meta: ObjectMeta { id, version: 1, owner, type_tag },
            data,
            storage_paid: 0, // set at commit
        };
        self.staged.insert(id, Some(entry));
        // Objects created in this transaction are usable by it regardless
        // of their owner (e.g. wrapping assets under a fresh redeem
        // request), matching Sui semantics.
        self.accessed_parents.insert(id);
        id
    }

    /// Deletes an object, crediting the storage rebate at commit.
    pub fn delete(&mut self, id: ObjectId) -> Result<(), ExecError> {
        self.charge(UNITS_PER_OP);
        let meta = self.lookup(id)?.meta.clone();
        self.check_usable(&meta)?;
        self.staged.insert(id, None);
        Ok(())
    }

    /// Moves `amount` MIST from the sender to `to`.
    pub fn pay(&mut self, to: Address, amount: u64) {
        self.charge(UNITS_PER_OP);
        *self.balance_deltas.entry(self.sender).or_insert(0) -= i128::from(amount);
        *self.balance_deltas.entry(to).or_insert(0) += i128::from(amount);
    }

    /// Moves `amount` MIST between two arbitrary parties — used by contract
    /// code forwarding an escrowed payment (the escrow was debited from the
    /// sender earlier in the same or an earlier call).
    pub fn pay_from(&mut self, from: Address, to: Address, amount: u64) {
        self.charge(UNITS_PER_OP);
        *self.balance_deltas.entry(from).or_insert(0) -= i128::from(amount);
        *self.balance_deltas.entry(to).or_insert(0) += i128::from(amount);
    }

    /// Finalizes staging into effects + gas numbers (called by the ledger).
    pub(crate) fn into_effects(self, schedule: &GasSchedule) -> TxEffects {
        let mut storage_cost = 0u64;
        let mut storage_rebate = 0u64;
        let mut staged = self.staged;
        for (id, slot) in staged.iter_mut() {
            let old_paid = self.committed.get(id).map(|e| e.storage_paid);
            match slot {
                Some(entry) => {
                    let fee = schedule.storage_fee(entry.data.len() as u64);
                    storage_cost += fee;
                    if let Some(paid) = old_paid {
                        storage_rebate += schedule.rebate(paid);
                    }
                    entry.storage_paid = fee;
                }
                None => {
                    if let Some(paid) = old_paid {
                        storage_rebate += schedule.rebate(paid);
                    }
                }
            }
        }
        let computation_units = schedule.bucket_computation(self.raw_units);
        let gas = GasSummary {
            computation_units,
            computation_cost: computation_units * schedule.computation_price,
            storage_cost,
            storage_rebate,
        };
        TxEffects {
            staged,
            balance_deltas: self.balance_deltas,
            gas,
            path: if self.touched_shared { ExecPath::Consensus } else { ExecPath::FastPath },
            digest: self.digest,
        }
    }
}

/// The committed outcome of a closure run, before the ledger applies it.
pub(crate) struct TxEffects {
    pub staged: Staged,
    pub balance_deltas: HashMap<Address, i128>,
    pub gas: GasSummary,
    pub path: ExecPath,
    pub digest: [u8; 32],
}
