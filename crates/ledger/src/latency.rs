//! End-to-end latency model for control-plane operations (paper Fig. 4).
//!
//! The paper measures atomic buy-and-redeem on the globally-replicated Sui
//! testnet: the *request* (purchase) transaction interacts with the shared
//! marketplace object and goes through consensus, while the *responses*
//! (per-AS reservation deliveries) use owned objects only and ride the fast
//! path. Total latency is below 3 s in 83 % of runs and largely independent
//! of path length.
//!
//! This model reproduces those distributions: each path draws
//! `base + Exp(jitter)` milliseconds. The defaults are calibrated so the
//! simulated boxplots match Fig. 4's shape (median ≈ 2.3-2.6 s, 83rd
//! percentile ≈ 2.7-3.0 s, weak growth in hop count because the response
//! is the *max* over per-AS parallel deliveries).

use crate::exec::ExecPath;
use rand::Rng;

/// Latency distribution parameters (milliseconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Minimum consensus-path latency.
    pub consensus_base_ms: f64,
    /// Mean of the exponential consensus jitter.
    pub consensus_jitter_ms: f64,
    /// Minimum fast-path latency.
    pub fast_base_ms: f64,
    /// Mean of the exponential fast-path jitter.
    pub fast_jitter_ms: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            consensus_base_ms: 1500.0,
            consensus_jitter_ms: 350.0,
            fast_base_ms: 450.0,
            fast_jitter_ms: 120.0,
        }
    }
}

impl LatencyModel {
    /// Samples one transaction latency in milliseconds.
    pub fn sample<R: Rng + ?Sized>(&self, path: ExecPath, rng: &mut R) -> f64 {
        let (base, jitter) = match path {
            ExecPath::Consensus => (self.consensus_base_ms, self.consensus_jitter_ms),
            ExecPath::FastPath => (self.fast_base_ms, self.fast_jitter_ms),
        };
        base + exp_sample(jitter, rng)
    }

    /// Samples the latency until *all* of `n` parallel fast-path
    /// transactions complete (the response phase of Fig. 4: one delivery
    /// per on-path AS, measured until the last arrives).
    pub fn sample_parallel_fast<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> f64 {
        (0..n.max(1)).map(|_| self.sample(ExecPath::FastPath, rng)).fold(0.0, f64::max)
    }
}

/// Exponential sample with the given mean.
fn exp_sample<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Nearest-rank percentile — the `(len - 1) * p` form
    /// `hummingbird_bench::percentile` uses, in bounds for any
    /// `p` in `[0, 1]` (the naive `p * len` form indexes one past the
    /// end at `p = 1.0`).
    fn percentile(mut xs: Vec<f64>, p: f64) -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs[((xs.len() - 1) as f64 * p).round() as usize]
    }

    #[test]
    fn percentile_boundary_p1_is_max_sample() {
        // p = 1.0 must answer the maximum, not index one past the end.
        assert_eq!(percentile(vec![3.0, 1.0, 2.0], 1.0), 3.0);
        assert_eq!(percentile(vec![5.0], 1.0), 5.0);
        assert_eq!(percentile(vec![3.0, 1.0, 2.0], 0.0), 1.0);
    }

    #[test]
    fn consensus_slower_than_fast_path() {
        let model = LatencyModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let cons: Vec<f64> =
            (0..500).map(|_| model.sample(ExecPath::Consensus, &mut rng)).collect();
        let fast: Vec<f64> = (0..500).map(|_| model.sample(ExecPath::FastPath, &mut rng)).collect();
        let cons_med = percentile(cons, 0.5);
        let fast_med = percentile(fast, 0.5);
        assert!(cons_med > 2.0 * fast_med, "{cons_med} vs {fast_med}");
    }

    #[test]
    fn fig4_shape_83pct_below_3s() {
        // Total = one consensus request + parallel fast-path responses.
        let model = LatencyModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        for hops in [1usize, 2, 4, 8, 16] {
            let totals: Vec<f64> = (0..2000)
                .map(|_| {
                    model.sample(ExecPath::Consensus, &mut rng)
                        + model.sample_parallel_fast(hops, &mut rng)
                })
                .collect();
            let p83 = percentile(totals.clone(), 0.83);
            assert!((2300.0..3400.0).contains(&p83), "p83 at {hops} hops = {p83}");
            let med = percentile(totals, 0.5);
            assert!((2000.0..2900.0).contains(&med), "median at {hops} hops = {med}");
        }
    }

    #[test]
    fn latency_grows_weakly_with_hops() {
        let model = LatencyModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let avg = |hops: usize, rng: &mut StdRng| -> f64 {
            (0..1000).map(|_| model.sample_parallel_fast(hops, rng)).sum::<f64>() / 1000.0
        };
        let a1 = avg(1, &mut rng);
        let a16 = avg(16, &mut rng);
        assert!(a16 > a1);
        // Max of 16 exponentials adds ~ln(16)·jitter, well under 2× base.
        assert!(a16 < 2.0 * a1, "a1={a1} a16={a16}");
    }

    #[test]
    fn parallel_of_zero_behaves() {
        let model = LatencyModel::default();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(model.sample_parallel_fast(0, &mut rng) >= model.fast_base_ms);
    }
}
