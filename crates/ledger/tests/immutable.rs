//! Immutable-object semantics: readable by anyone without forcing
//! consensus, never writable, transferable or deletable — the Sui rules
//! the asset contract's published metadata relies on.

use hummingbird_ledger::{Address, ExecError, ExecPath, Ledger, Owner, MIST_PER_SUI};

fn setup() -> (Ledger, Address, Address) {
    let mut l = Ledger::new();
    let a = Address::from_label("a");
    let b = Address::from_label("b");
    l.mint(a, 100 * MIST_PER_SUI);
    l.mint(b, 100 * MIST_PER_SUI);
    (l, a, b)
}

#[test]
fn immutable_objects_are_readable_by_anyone_on_the_fast_path() {
    let (mut l, a, b) = setup();
    let id = l
        .execute(a, |ctx| Ok(ctx.create(Owner::Immutable, "test::Frozen", vec![1, 2, 3])))
        .unwrap()
        .value;
    // A different account reads it without consensus.
    let rx = l.execute(b, |ctx| ctx.read(id, "test::Frozen")).unwrap();
    assert_eq!(rx.value, vec![1, 2, 3]);
    assert_eq!(rx.path, ExecPath::FastPath, "immutable reads never need consensus");
}

#[test]
fn immutable_objects_cannot_be_mutated() {
    let (mut l, a, _) = setup();
    let id = l
        .execute(a, |ctx| Ok(ctx.create(Owner::Immutable, "test::Frozen", vec![0])))
        .unwrap()
        .value;
    // Not even the creator can write, transfer, or delete it.
    assert_eq!(
        l.execute(a, |ctx| ctx.write(id, "test::Frozen", vec![1])).unwrap_err(),
        ExecError::NotOwner(id)
    );
    assert_eq!(
        l.execute(a, |ctx| ctx.transfer(id, Owner::Address(a))).unwrap_err(),
        ExecError::NotOwner(id)
    );
    assert_eq!(l.execute(a, |ctx| ctx.delete(id)).unwrap_err(), ExecError::NotOwner(id));
    assert_eq!(l.object(id).unwrap().data, vec![0]);
}

#[test]
fn freezing_an_object_is_one_way() {
    let (mut l, a, b) = setup();
    // Create owned, then freeze by transferring to Immutable.
    let id = l
        .execute(a, |ctx| {
            let id = ctx.create(Owner::Address(ctx.sender()), "test::T", vec![7]);
            ctx.transfer(id, Owner::Immutable)?;
            Ok(id)
        })
        .unwrap()
        .value;
    assert_eq!(l.object(id).unwrap().meta.owner, Owner::Immutable);
    // Nobody can thaw it.
    for who in [a, b] {
        assert!(l.execute(who, |ctx| ctx.transfer(id, Owner::Address(who))).is_err());
    }
}

#[test]
fn mixed_reads_take_the_strictest_path() {
    let (mut l, a, b) = setup();
    let (frozen, shared) = l
        .execute(a, |ctx| {
            Ok((
                ctx.create(Owner::Immutable, "test::Frozen", vec![]),
                ctx.create(Owner::Shared, "test::Shared", vec![]),
            ))
        })
        .unwrap()
        .value;
    // Touching an immutable object keeps fast path; adding a shared one
    // forces consensus for the whole transaction.
    let rx = l
        .execute(b, |ctx| {
            ctx.read(frozen, "test::Frozen")?;
            ctx.read(shared, "test::Shared")
        })
        .unwrap();
    assert_eq!(rx.path, ExecPath::Consensus);
}
