//! Shared fixtures and table formatting for the benchmark harness.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's experiment index); this library
//! provides the common packet/router/market fixtures so the workloads are
//! identical across experiments.
//!
//! Besides the human-readable tables, the forwarding binaries emit
//! `BENCH_hotpath.json` and the `netsim_scale` binary emits
//! `BENCH_netsim.json` ([`json`] documents both schemas) so ns/pkt,
//! Mpps and simulator events/s are tracked machine-readably across PRs.

pub mod json;

pub use json::{
    control_json, hotpath_json, netsim_json, overload_json, testbed_json, write_control_json,
    write_hotpath_json, write_netsim_json, write_overload_json, write_testbed_json, BenchRecord,
    ControlInvariants, ControlMeta, ControlPhase, ControlState, HotpathMeta, NetsimRecord,
    OverloadRecord, OverloadSaturation, ScalingCurve, ScalingPoint, TestbedClass, TestbedMeta,
    TestbedRecord,
};

use hummingbird_baselines::drkey::epoch_of;
use hummingbird_baselines::{
    epic_auth_key, slot_of, DrKeyDatapath, DrKeySecret, DrKeySender, EpicDatapath, EpicSender,
    HeliaDatapath, HeliaSender,
};
use hummingbird_crypto::{ResInfo, SecretValue};
use hummingbird_dataplane::{
    forge_path, BeaconHop, BorderRouter, Datapath, Gateway, HostShare, NullEngine, RouterConfig,
    RxMode, ShardedRouter, SourceGenerator, SourceReservation, Steering, WaitStrategy,
};
use hummingbird_wire::scion_mac::HopMacKey;
use hummingbird_wire::IsdAs;

/// Fixed evaluation epoch (Unix seconds).
pub const EPOCH_S: u64 = 1_700_000_000;
/// Evaluation epoch in milliseconds.
pub const EPOCH_MS: u64 = EPOCH_S * 1000;
/// Evaluation epoch in nanoseconds.
pub const EPOCH_NS: u64 = EPOCH_S * 1_000_000_000;

/// The DRKey master every benchmark baseline AS uses (hop 0).
const DRKEY_MASTER: [u8; 16] = [0xB5; 16];

/// Which [`Datapath`] engine a figure/table binary should drive.
///
/// Every packet-processing binary accepts `--engine
/// hummingbird|scion|helia|drkey|epic|gateway|null|all` (default: the
/// binary's traditional engine set) and constructs engines exclusively
/// through [`DataplaneFixture::engine`] +
/// [`DataplaneFixture::engine_packet`] — the single place that knows
/// concrete engine types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Hummingbird border router over flyover-tagged packets.
    Hummingbird,
    /// The same router over plain SCION best-effort packets.
    Scion,
    /// Helia-style fixed-slot baseline engine.
    Helia,
    /// DRKey-only source-authentication baseline engine.
    Drkey,
    /// EPIC L1-style per-packet path-validation baseline engine.
    Epic,
    /// The host-aggregating gateway (admission half).
    Gateway,
    /// Best-effort pass-through: measures the harness's own overhead.
    Null,
}

impl EngineKind {
    /// All sweepable engines.
    pub const ALL: [EngineKind; 7] = [
        EngineKind::Hummingbird,
        EngineKind::Scion,
        EngineKind::Helia,
        EngineKind::Drkey,
        EngineKind::Epic,
        EngineKind::Gateway,
        EngineKind::Null,
    ];

    /// Stable display name (matches `Datapath::engine_name` plus the
    /// workload-only `scion` variant).
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Hummingbird => "hummingbird",
            EngineKind::Scion => "scion",
            EngineKind::Helia => "helia",
            EngineKind::Drkey => "drkey",
            EngineKind::Epic => "epic",
            EngineKind::Gateway => "gateway",
            EngineKind::Null => "null",
        }
    }

    /// Parses one engine selector or a comma-separated list of them
    /// (`null,hummingbird`); `all` expands to every engine.
    fn parse(s: &str) -> Option<Vec<EngineKind>> {
        let mut kinds = Vec::new();
        for part in s.split(',') {
            match part.trim() {
                "hummingbird" => kinds.push(EngineKind::Hummingbird),
                "scion" => kinds.push(EngineKind::Scion),
                "helia" => kinds.push(EngineKind::Helia),
                "drkey" => kinds.push(EngineKind::Drkey),
                "epic" => kinds.push(EngineKind::Epic),
                "gateway" => kinds.push(EngineKind::Gateway),
                "null" => kinds.push(EngineKind::Null),
                "all" => kinds.extend(EngineKind::ALL),
                _ => return None,
            }
        }
        if kinds.is_empty() {
            None
        } else {
            Some(kinds)
        }
    }
}

/// Parses `--engine <kind>` (repeatable, or `all`) from the process
/// arguments; `default` applies when the flag is absent. Exits with a
/// usage message on an unknown engine.
pub fn engines_from_args(default: &[EngineKind]) -> Vec<EngineKind> {
    let args: Vec<String> = std::env::args().collect();
    let mut selected = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let value = if args[i] == "--engine" && i + 1 < args.len() {
            i += 1;
            Some(args[i].clone())
        } else {
            args[i].strip_prefix("--engine=").map(str::to_owned)
        };
        if let Some(v) = value {
            match EngineKind::parse(&v) {
                Some(kinds) => selected.extend(kinds),
                None => {
                    eprintln!(
                        "unknown engine '{v}'; expected \
                         hummingbird|scion|helia|drkey|epic|gateway|null|all"
                    );
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    if selected.is_empty() {
        default.to_vec()
    } else {
        selected
    }
}

/// The value of `--<name> <v>` / `--<name>=<v>` in `args`: `Ok(None)`
/// when the flag is absent (the caller's default applies), `Err` when
/// the flag appears as the last token with no value — a malformed
/// command line that must fail loudly, never silently fall back to the
/// default.
fn flag_value_in(args: &[String], name: &str) -> Result<Option<String>, String> {
    let long = format!("--{name}");
    let prefixed = format!("--{name}=");
    let mut i = 0;
    while i < args.len() {
        if args[i] == long {
            return match args.get(i + 1) {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("--{name} requires a value (--{name} <v> or --{name}=<v>)")),
            };
        }
        if let Some(v) = args[i].strip_prefix(&prefixed) {
            return Ok(Some(v.to_owned()));
        }
        i += 1;
    }
    Ok(None)
}

/// The value of `--<name> <v>` / `--<name>=<v>` in the process
/// arguments, if present. Exits with a usage message when the flag
/// dangles with no value.
pub fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    match flag_value_in(&args, name) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// Parses `--<name> <v>` as a `u64` from the process arguments;
/// `default` applies when the flag is absent. Exits with a usage
/// message on malformed input.
pub fn u64_from_args(name: &str, default: u64) -> u64 {
    let Some(v) = flag_value(name) else { return default };
    match v.parse::<u64>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("bad --{name} '{v}'; expected an unsigned integer");
            std::process::exit(2);
        }
    }
}

/// Whether the bare flag `--<name>` appears in the process arguments.
pub fn flag_present(name: &str) -> bool {
    let long = format!("--{name}");
    std::env::args().any(|a| a == long)
}

/// Parses `--cores 1,2,4` (comma-separated list) from the process
/// arguments; `default` applies when the flag is absent. Exits with a
/// usage message on malformed input.
pub fn cores_from_args(default: &[usize]) -> Vec<usize> {
    let Some(v) = flag_value("cores") else { return default.to_vec() };
    let parsed: Option<Vec<usize>> =
        v.split(',').map(|p| p.trim().parse::<usize>().ok().filter(|&c| c > 0)).collect();
    match parsed {
        Some(cores) if !cores.is_empty() => cores,
        _ => {
            eprintln!("bad --cores '{v}'; expected a comma-separated list like 1,2,4");
            std::process::exit(2);
        }
    }
}

/// Parses `--pkts <n>` (total per-core packet budget override, letting CI
/// smoke-run the figures with tiny counts); `default` applies when the
/// flag is absent.
pub fn pkts_from_args(default: u64) -> u64 {
    let Some(v) = flag_value("pkts") else { return default };
    match v.parse::<u64>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("bad --pkts '{v}'; expected an unsigned packet count");
            std::process::exit(2);
        }
    }
}

/// Whether `--sharded` was passed (figure binaries add a sharded-runtime
/// sweep next to the per-core-clone one).
pub fn sharded_from_args() -> bool {
    flag_present("sharded")
}

/// Parses `--wait busy|yield[:n]|backoff` into a runtime
/// [`WaitStrategy`]; the runtime default (backoff) applies when the flag
/// is absent. `yield` without a count spins 64 times before yielding.
/// Exits with a usage message on malformed input.
pub fn wait_from_args() -> WaitStrategy {
    let Some(v) = flag_value("wait") else { return WaitStrategy::default() };
    match v.as_str() {
        "busy" => WaitStrategy::BusyPoll,
        "yield" => WaitStrategy::YieldAfter(64),
        "backoff" => WaitStrategy::Backoff,
        other => match other.strip_prefix("yield:").map(str::parse::<u32>) {
            Some(Ok(n)) => WaitStrategy::YieldAfter(n),
            _ => {
                eprintln!("bad --wait '{v}'; expected busy|yield[:n]|backoff");
                std::process::exit(2);
            }
        },
    }
}

/// The `--wait` spelling of a [`WaitStrategy`] (for JSON metadata and
/// log lines).
pub fn wait_label(wait: WaitStrategy) -> String {
    match wait {
        WaitStrategy::BusyPoll => "busy".to_string(),
        WaitStrategy::YieldAfter(n) => format!("yield:{n}"),
        WaitStrategy::Backoff => "backoff".to_string(),
    }
}

/// The `--rx-queues` spelling of an [`RxMode`] (for JSON metadata and
/// log lines).
pub fn rx_label(rx: RxMode) -> &'static str {
    match rx {
        RxMode::MultiQueue => "multi",
        RxMode::SingleDispatcher => "single",
    }
}

/// Parses `--rx-queues multi|single` into a runtime [`RxMode`]; the
/// runtime default (multi-queue) applies when the flag is absent. Exits
/// with a usage message on malformed input.
pub fn rx_from_args() -> RxMode {
    let Some(v) = flag_value("rx-queues") else { return RxMode::default() };
    match v.as_str() {
        "multi" => RxMode::MultiQueue,
        "single" => RxMode::SingleDispatcher,
        _ => {
            eprintln!("bad --rx-queues '{v}'; expected multi|single");
            std::process::exit(2);
        }
    }
}

/// Parses `--batch <n>` (packets per burst in the runtime hot loop, the
/// knob the batch-size ablation sweeps); `default` applies when the flag
/// is absent. Exits with a usage message on malformed or zero input.
pub fn batch_from_args(default: usize) -> usize {
    let Some(v) = flag_value("batch") else { return default };
    match v.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("bad --batch '{v}'; expected a positive packet count");
            std::process::exit(2);
        }
    }
}

/// A self-contained data-plane fixture: one source path of `h` hops plus
/// the matching per-AS secrets.
pub struct DataplaneFixture {
    hop_keys: Vec<HopMacKey>,
    svs: Vec<SecretValue>,
    h: usize,
}

impl DataplaneFixture {
    /// Builds a fixture for an `h`-hop path.
    pub fn new(h: usize) -> Self {
        DataplaneFixture {
            hop_keys: (0..h).map(|i| HopMacKey::new([0x31 + i as u8; 16])).collect(),
            svs: (0..h).map(|i| SecretValue::new([0x61 + i as u8; 16])).collect(),
            h,
        }
    }

    fn interfaces(&self, i: usize) -> (u16, u16) {
        let ingress = if i == 0 { 0 } else { 2 * i as u16 };
        let egress = if i == self.h - 1 { 0 } else { 2 * i as u16 + 1 };
        (ingress, egress)
    }

    /// A source generator; `with_reservations` attaches a flyover on every
    /// hop (the paper always measures the worst case: a reservation at
    /// every on-path AS).
    pub fn generator(&self, with_reservations: bool) -> SourceGenerator {
        let hops: Vec<BeaconHop> = (0..self.h)
            .map(|i| {
                let (cons_ingress, cons_egress) = self.interfaces(i);
                BeaconHop { key: self.hop_keys[i].clone(), cons_ingress, cons_egress }
            })
            .collect();
        let path = forge_path(&hops, EPOCH_S as u32 - 100, 0x7777);
        let mut generator = SourceGenerator::new(IsdAs::new(1, 0x10), IsdAs::new(2, 0x20), path);
        if with_reservations {
            for i in 0..self.h {
                let (ingress, egress) = self.interfaces(i);
                let res_info = ResInfo {
                    ingress,
                    egress,
                    res_id: i as u32 + 1,
                    bw_encoded: 1000, // huge class so policing never bites
                    res_start: EPOCH_S as u32 - 50,
                    duration: 36_000,
                };
                let key = self.svs[i].derive_key(&res_info);
                generator
                    .attach_reservation(i, SourceReservation { res_info, key })
                    .expect("interfaces match");
            }
        }
        generator
    }

    /// A border router for hop 0 of this fixture (the hop every generated
    /// packet is validated at).
    pub fn router(&self) -> BorderRouter {
        BorderRouter::new(self.svs[0].clone(), self.hop_keys[0].clone(), RouterConfig::default())
    }

    /// A serialized packet with `payload_len` bytes, ready for the router.
    pub fn packet(&self, payload_len: usize, with_reservations: bool) -> Vec<u8> {
        let mut generator = self.generator(with_reservations);
        generator.generate(&vec![0u8; payload_len], EPOCH_MS).expect("generation")
    }

    /// The source / destination every fixture packet carries.
    fn endpoints() -> (IsdAs, IsdAs) {
        (IsdAs::new(1, 0x10), IsdAs::new(2, 0x20))
    }

    /// A hop-0 engine of the requested kind, type-erased behind
    /// [`Datapath`] — the only constructor the figure binaries use.
    pub fn engine(&self, kind: EngineKind) -> Box<dyn Datapath + Send> {
        match kind {
            EngineKind::Hummingbird | EngineKind::Scion => Box::new(self.router()),
            EngineKind::Helia => Box::new(HeliaDatapath::new(
                DRKEY_MASTER,
                self.hop_keys[0].clone(),
                RouterConfig::default(),
            )),
            EngineKind::Drkey => {
                Box::new(DrKeyDatapath::new(DRKEY_MASTER, self.hop_keys[0].clone()))
            }
            EngineKind::Epic => Box::new(EpicDatapath::new(
                DRKEY_MASTER,
                self.hop_keys[0].clone(),
                RouterConfig::default(),
            )),
            EngineKind::Gateway => {
                let reserved = self.generator(true);
                let best_effort = self.generator(false);
                let mut gw = Gateway::new(reserved, best_effort, 10_000_000);
                // Host 1 = the 0.0.0.1 source host address every
                // SourceGenerator-built packet carries.
                gw.admit_host(1, HostShare { rate_kbps: 10_000_000 });
                Box::new(gw)
            }
            EngineKind::Null => Box::new(NullEngine::new()),
        }
    }

    /// One logical hop-0 router of `kind` sharded across `shards`
    /// engines, with steering matched to how the engine keys its state
    /// (by reservation for routers, by source for the gateway's per-host
    /// buckets and EPIC's per-source keys and replay filters).
    pub fn sharded_engine(&self, kind: EngineKind, shards: usize) -> ShardedRouter {
        let steering = if matches!(kind, EngineKind::Gateway | EngineKind::Epic) {
            Steering::BySource
        } else {
            Steering::ByReservation
        };
        ShardedRouter::new(
            (0..shards.max(1)).map(|_| self.engine(kind)).collect(),
            RouterConfig::default().policer_slots,
            steering,
        )
    }

    /// A serialized `payload_len`-byte packet the matching
    /// [`DataplaneFixture::engine`] accepts (stamped by that engine's own
    /// sender model).
    pub fn engine_packet(&self, kind: EngineKind, payload_len: usize) -> Vec<u8> {
        let (src, dst) = Self::endpoints();
        let payload = vec![0u8; payload_len];
        match kind {
            EngineKind::Hummingbird => self.packet(payload_len, true),
            EngineKind::Scion | EngineKind::Gateway | EngineKind::Null => {
                self.packet(payload_len, false)
            }
            EngineKind::Helia => {
                let path = self.beacon_path();
                let mut sender = HeliaSender::new(src, dst, path);
                let issuer = HeliaDatapath::new(
                    DRKEY_MASTER,
                    self.hop_keys[0].clone(),
                    RouterConfig::default(),
                );
                let (ingress, egress) = self.interfaces(0);
                let grant = issuer
                    .issue_grant(src, slot_of(EPOCH_S), 1, 10_000_000, ingress, egress)
                    .expect("encodable share");
                sender.attach_grant(0, &grant).expect("matching interfaces");
                sender.generate(&payload, EPOCH_MS).expect("generation")
            }
            EngineKind::Drkey => {
                let path = self.beacon_path();
                let mut engine = DrKeyDatapath::new(DRKEY_MASTER, self.hop_keys[0].clone());
                let key = engine.host_key(src, [0, 0, 0, 1], EPOCH_S);
                let mut sender = DrKeySender::new(src, dst, path);
                let (ingress, egress) = self.interfaces(0);
                sender
                    .attach_host_key(0, ingress, egress, key, EPOCH_S)
                    .expect("matching interfaces");
                sender.generate(&payload, EPOCH_MS).expect("generation")
            }
            EngineKind::Epic => self.epic_packet(src, &payload, EPOCH_MS),
        }
    }

    /// A serialized EPIC-stamped packet from `src`, authenticated at
    /// hop 0 under this fixture's DRKey master.
    fn epic_packet(&self, src: IsdAs, payload: &[u8], at_ms: u64) -> Vec<u8> {
        let (_, dst) = Self::endpoints();
        let secret = DrKeySecret::derive(&DRKEY_MASTER, epoch_of(EPOCH_S));
        let key = epic_auth_key(&secret, src, [0, 0, 0, 1]);
        let mut sender = EpicSender::new(src, dst, self.beacon_path());
        let (ingress, egress) = self.interfaces(0);
        sender.attach_auth_key(0, ingress, egress, key, EPOCH_S).expect("matching interfaces");
        sender.generate(payload, at_ms).expect("generation")
    }

    /// A reserved generator whose hop-0 reservation uses `res_id` — the
    /// knob flow-diverse workloads turn so different flows land in
    /// different policing slots (and, sharded, on different shards).
    fn reserved_generator_with_res0(&self, res_id: u32) -> SourceGenerator {
        let mut generator = self.generator(true);
        let (ingress, egress) = self.interfaces(0);
        let res_info = ResInfo {
            ingress,
            egress,
            res_id,
            bw_encoded: 1000, // huge class so policing never bites
            res_start: EPOCH_S as u32 - 50,
            duration: 36_000,
        };
        let key = self.svs[0].derive_key(&res_info);
        generator
            .attach_reservation(0, SourceReservation { res_info, key })
            .expect("interfaces match");
        generator
    }

    /// `flows` distinct packet templates the hop-0 engine of `kind`
    /// accepts, with flow identities spread so RSS steering can balance
    /// them: reservation-bearing kinds get ResIDs spread evenly across
    /// the policing array ([0, `policer_slots`)), plain kinds get
    /// distinct per-packet timestamps (the duplicate-filter key the
    /// plain flow hash covers). EPIC is keyed by source, so its flows
    /// come from distinct source ASes and spread under the
    /// [`Steering::BySource`] map [`DataplaneFixture::sharded_engine`]
    /// gives it. DRKey carries no reservation axis, so
    /// its flows intentionally share one shard under reservation
    /// steering — the engine-model skew the sharded sweep makes visible.
    pub fn flow_packets(&self, kind: EngineKind, payload_len: usize, flows: usize) -> Vec<Vec<u8>> {
        let flows = flows.max(1);
        let slots = RouterConfig::default().policer_slots;
        let payload = vec![0u8; payload_len];
        (0..flows)
            .map(|f| {
                // 1 + f·step stays strictly inside [1, slots).
                let step = slots.saturating_sub(2) / flows as u32;
                let res_id = 1 + f as u32 * step;
                match kind {
                    EngineKind::Hummingbird => self
                        .reserved_generator_with_res0(res_id)
                        .generate(&payload, EPOCH_MS + f as u64)
                        .expect("generation"),
                    EngineKind::Scion | EngineKind::Gateway | EngineKind::Null => self
                        .generator(false)
                        .generate(&payload, EPOCH_MS + f as u64)
                        .expect("generation"),
                    EngineKind::Helia => {
                        let (src, dst) = Self::endpoints();
                        let (ingress, egress) = self.interfaces(0);
                        let issuer = HeliaDatapath::new(
                            DRKEY_MASTER,
                            self.hop_keys[0].clone(),
                            RouterConfig::default(),
                        );
                        let grant = issuer
                            .issue_grant(src, slot_of(EPOCH_S), res_id, 10_000_000, ingress, egress)
                            .expect("encodable share");
                        let mut sender = HeliaSender::new(src, dst, self.beacon_path());
                        sender.attach_grant(0, &grant).expect("matching interfaces");
                        sender.generate(&payload, EPOCH_MS + f as u64).expect("generation")
                    }
                    EngineKind::Drkey => self.engine_packet(kind, payload_len),
                    EngineKind::Epic => {
                        // One source AS per flow: the BySource hash is the
                        // axis EPIC shards on.
                        let src = IsdAs::new(1, 0x10 + f as u64);
                        self.epic_packet(src, &payload, EPOCH_MS + f as u64)
                    }
                }
            })
            .collect()
    }

    fn beacon_path(&self) -> hummingbird_wire::HummingbirdPath {
        let hops: Vec<BeaconHop> = (0..self.h)
            .map(|i| {
                let (cons_ingress, cons_egress) = self.interfaces(i);
                BeaconHop { key: self.hop_keys[i].clone(), cons_ingress, cons_egress }
            })
            .collect();
        forge_path(&hops, EPOCH_S as u32 - 100, 0x7777)
    }
}

/// Formats a right-aligned table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths.iter())
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Percentile of a sorted slice. Empty populations answer `0` — the
/// same convention as `FlowStats` and the egress `LatencyHistogram`,
/// and finite by construction so the hand-rolled JSON writers never see
/// a `NaN` from this path.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Distribution summary of a sample set.
pub struct Summary {
    /// 5th percentile.
    pub p5: f64,
    /// Median.
    pub p50: f64,
    /// 83rd percentile (the paper's headline "<3 s in 83%").
    pub p83: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Mean.
    pub mean: f64,
}

impl Summary {
    /// Builds a summary from raw samples.
    pub fn of(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        Summary {
            p5: percentile(&samples, 0.05),
            p50: percentile(&samples, 0.50),
            p83: percentile(&samples, 0.83),
            p95: percentile(&samples, 0.95),
            mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn trailing_valued_flag_errors_instead_of_defaulting() {
        // `--pkts` as the last token is a malformed command line: it must
        // surface as an error, not silently fall through to the default.
        assert!(
            flag_value_in(&argv(&["bench", "--pkts"]), "pkts").is_err(),
            "a dangling --pkts must not fall back to the default"
        );
        // The well-formed spellings still parse.
        assert_eq!(
            flag_value_in(&argv(&["bench", "--pkts", "500"]), "pkts").unwrap().as_deref(),
            Some("500")
        );
        assert_eq!(
            flag_value_in(&argv(&["bench", "--pkts=500"]), "pkts").unwrap().as_deref(),
            Some("500")
        );
        // Absent flag: the default applies.
        assert_eq!(flag_value_in(&argv(&["bench", "--cores", "2"]), "pkts").unwrap(), None);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        // The empty-population convention everywhere else (FlowStats,
        // LatencyHistogram) is 0 — NaN here would leak invalid JSON
        // through the hand-rolled writers.
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[], 1.0), 0.0);
        // Non-empty percentiles are unchanged.
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 1.0), 3.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 0.0), 1.0);
    }

    #[test]
    fn fixture_packets_verify_at_the_router() {
        for h in [1usize, 4, 16] {
            let fx = DataplaneFixture::new(h);
            let mut pkt = fx.packet(500, true);
            let mut router = fx.router();
            let v = router.process(&mut pkt, EPOCH_NS);
            assert!(v.is_flyover(), "h={h}: {v:?}");
            // SCION baseline packets also pass (as best effort).
            let mut pkt = fx.packet(500, false);
            let v = router.process(&mut pkt, EPOCH_NS);
            assert!(v.egress().is_some(), "h={h}: {v:?}");
        }
    }

    #[test]
    fn flow_packets_verify_and_spread_across_shards() {
        use hummingbird_dataplane::Verdict;
        let fx = DataplaneFixture::new(2);
        for kind in
            [EngineKind::Hummingbird, EngineKind::Helia, EngineKind::Epic, EngineKind::Scion]
        {
            let flows = fx.flow_packets(kind, 300, 8);
            assert_eq!(flows.len(), 8);
            let mut sharded = fx.sharded_engine(kind, 4);
            let mut single = fx.engine(kind);
            for pkt in &flows {
                let a = single.process(&mut pkt.clone(), EPOCH_NS);
                let b = sharded.process(&mut pkt.clone(), EPOCH_NS);
                assert_eq!(a, b, "{kind:?}");
                assert!(a.egress().is_some(), "{kind:?}: {a:?}");
            }
            assert_eq!(single.stats(), sharded.stats(), "{kind:?}");
            if kind != EngineKind::Scion {
                // Flow-keyed kinds (by ResID, or by source for EPIC) must
                // actually spread across shards.
                let active = sharded.shard_stats().iter().filter(|s| s.processed > 0).count();
                assert!(active > 1, "{kind:?} flows all landed on one shard");
            }
        }
        // The null engine forwards anything, including flow templates.
        let mut null = fx.engine(EngineKind::Null);
        let pkt = fx.flow_packets(EngineKind::Null, 100, 2).remove(0);
        assert_eq!(null.process(&mut pkt.clone(), EPOCH_NS), Verdict::BestEffort { egress: 0 });
    }

    #[test]
    fn engine_parse_accepts_lists() {
        assert_eq!(EngineKind::parse("null"), Some(vec![EngineKind::Null]));
        assert_eq!(
            EngineKind::parse("null,hummingbird"),
            Some(vec![EngineKind::Null, EngineKind::Hummingbird])
        );
        assert_eq!(EngineKind::parse("all"), Some(EngineKind::ALL.to_vec()));
        assert_eq!(EngineKind::parse("null,bogus"), None);
        assert_eq!(EngineKind::parse(""), None);
    }

    #[test]
    fn summary_percentiles() {
        // Nearest-rank on indices 0..=99: p50 -> idx round(49.5) = 50.
        let s = Summary::of((1..=100).map(|i| i as f64).collect());
        assert_eq!(s.p50, 51.0);
        assert_eq!(s.p95, 95.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }
}
