//! Figure 14: multi-core traffic-generation throughput at the source for
//! 500 B payloads, as a function of core count and number of AS hops,
//! Hummingbird vs SCION best-effort.
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin fig14_generation
//! [-- --cores 1,2,4] [--pkts <count>]`

use hummingbird_bench::{cores_from_args, pkts_from_args, row, DataplaneFixture, EPOCH_MS};
use hummingbird_dataplane::{generation_throughput, LINE_RATE_GBPS};

fn main() {
    let cores_list = cores_from_args(&[1usize, 2, 4, 8, 16, 32]);
    let hop_counts = [1usize, 2, 4, 8, 16];
    let payload = 500usize;
    let pkts: u64 = pkts_from_args(100_000);
    let physical = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("Figure 14: source packet generation throughput [Gbps], payload {payload} B");
    println!("(line rate {LINE_RATE_GBPS} Gbps; {physical} hardware threads available)\n");

    for flyover in [true, false] {
        let label =
            if flyover { "Hummingbird (flyovers on all hops)" } else { "SCION best effort" };
        println!("--- {label} ---");
        let mut widths = vec![6usize];
        widths.extend(std::iter::repeat_n(10, hop_counts.len()));
        let mut header = vec!["cores".to_string()];
        header.extend(hop_counts.iter().map(|h| format!("h={h}")));
        println!("{}", row(&header, &widths));
        for &cores in &cores_list {
            let mut cells = vec![format!("{cores}")];
            for &h in &hop_counts {
                let fx = DataplaneFixture::new(h);
                let t = generation_throughput(
                    || fx.generator(flyover),
                    payload,
                    cores,
                    pkts / cores.max(1) as u64 * 2,
                    EPOCH_MS,
                );
                cells.push(format!("{:.2}", t.gbps_line_capped()));
            }
            println!("{}", row(&cells, &widths));
        }
        println!();
    }
    println!("paper (Fig. 14): 32 cores reach the 160 Gbps line rate for 500 B payloads");
    println!("for both Hummingbird and SCION, even at 8 on-path ASes; throughput falls");
    println!("with hop count (more MACs per packet) and Hummingbird < SCION per core.");
}
