//! Table 3: fine-grained packet validation and forwarding timings at the
//! border router.
//!
//! Measures each pipeline step in isolation (same decomposition as the
//! paper's Table 3) plus the end-to-end `process` call. Absolute numbers
//! are software-AES; the shape to check is which steps dominate (the
//! crypto: hop-field MAC, A_i derivation + AES extension, flyover MAC).
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin table3_steps`

use hummingbird_bench::{engines_from_args, row, DataplaneFixture, EngineKind, EPOCH_NS, EPOCH_S};
use hummingbird_crypto::{aggregate_mac, AuthKey, FlyoverMacInput, ResInfo, SecretValue};
use hummingbird_dataplane::policing::Policer;
use hummingbird_dataplane::{Datapath, FwdClass, PacketBuf};
use hummingbird_wire::common::{AddressHeader, CommonHeader, COMMON_HDR_LEN};
use hummingbird_wire::meta::PathMetaHdr;
use hummingbird_wire::scion_mac::{update_seg_id, HopMacInput, HopMacKey};
use std::hint::black_box;
use std::time::Instant;

const ITERS: u64 = 300_000;

fn time_ns<F: FnMut()>(mut f: F) -> f64 {
    // Warmup.
    for _ in 0..ITERS / 10 {
        f();
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    start.elapsed().as_nanos() as f64 / ITERS as f64
}

fn main() {
    println!("Table 3: per-step border-router timings (software AES; {ITERS} iters/step)\n");
    let widths = [46usize, 10];
    println!("{}", row(&["Task".into(), "Time [ns]".into()], &widths));

    let fx = DataplaneFixture::new(4);
    let pkt = fx.packet(500, true);
    let sv = SecretValue::new([0x61; 16]);
    let hop_key = HopMacKey::new([0x31; 16]);
    let res_info = ResInfo {
        ingress: 0,
        egress: 1,
        res_id: 1,
        bw_encoded: 1000,
        res_start: EPOCH_S as u32 - 50,
        duration: 36_000,
    };
    let auth_key = sv.derive_key(&res_info);
    let mac_input = FlyoverMacInput {
        dst_isd: 2,
        dst_as: 0x20,
        pkt_len: 600,
        res_start_offset: 50,
        millis_ts: 0,
        counter: 0,
    };
    let hop_input = HopMacInput {
        seg_id: 0x7777,
        timestamp: EPOCH_S as u32 - 100,
        exp_time: 63,
        cons_ingress: 0,
        cons_egress: 1,
    };
    let mut results: Vec<(&str, f64)> = Vec::new();

    results.push((
        "Check packet size",
        time_ns(|| {
            black_box(black_box(&pkt).len() >= 48);
        }),
    ));
    results.push((
        "Parse packet headers (common+addr+meta)",
        time_ns(|| {
            let c = CommonHeader::parse(black_box(&pkt)).unwrap();
            let a = AddressHeader::parse(&pkt[COMMON_HDR_LEN..]).unwrap();
            let m = PathMetaHdr::parse(&pkt[36..]).unwrap();
            black_box((c, a, m));
        }),
    ));
    results.push((
        "Check whether hop field is expired",
        time_ns(|| {
            black_box(
                hummingbird_dataplane::beacon::hop_field_expiry(
                    black_box(EPOCH_S as u32 - 100),
                    63,
                ) > EPOCH_S,
            );
        }),
    ));
    results.push((
        "Recompute SCION hop field MAC",
        time_ns(|| {
            black_box(hop_key.hop_mac(black_box(&hop_input)));
        }),
    ));
    results.push((
        "Update segment identifier (SegID)",
        time_ns(|| {
            black_box(update_seg_id(black_box(0x7777), black_box(&[1, 2, 3, 4, 5, 6])));
        }),
    ));
    results.push((
        "Compute authentication key (A_i)",
        time_ns(|| {
            black_box(sv.derive_key_bytes(black_box(&res_info)));
        }),
    ));
    results.push((
        "AES-extend authentication key (A_i)",
        time_ns(|| {
            black_box(AuthKey::new(black_box([7u8; 16])));
        }),
    ));
    results.push((
        "Recompute flyover MAC",
        time_ns(|| {
            black_box(auth_key.flyover_mac(black_box(&mac_input)));
        }),
    ));
    results.push((
        "Compute aggregate MAC (XOR)",
        time_ns(|| {
            black_box(aggregate_mac(
                black_box(&[1, 2, 3, 4, 5, 6]),
                black_box(&[9, 9, 9, 9, 9, 9]),
            ));
        }),
    ));
    let mut policer = Policer::paper_default();
    let mut t = EPOCH_NS;
    results.push((
        "Check for overuse (Algorithm 1)",
        time_ns(|| {
            t += 1000;
            let _ = black_box(policer.check(black_box(1), 1_000_000, 600, t)) == FwdClass::Flyover;
        }),
    ));

    for (name, ns) in &results {
        println!("{}", row(&[name.to_string(), format!("{ns:.0}")], &widths));
    }

    // End-to-end pipeline cost per engine (the Table 3 totals), measured
    // exclusively through the Datapath trait.
    let engines = engines_from_args(&[EngineKind::Scion, EngineKind::Hummingbird]);
    let mut totals = Vec::new();
    for kind in engines {
        let mut engine = fx.engine(kind);
        let mut hot = PacketBuf::new(fx.engine_packet(kind, 500));
        let total = time_ns(|| {
            black_box(engine.process(hot.bytes_mut(), EPOCH_NS));
            hot.reset();
        });
        println!(
            "{}",
            row(&[format!("— total: {} pipeline", kind.name()), format!("{total:.0}")], &widths)
        );
        totals.push((kind, total));
    }
    let find = |k: EngineKind| totals.iter().find(|(kind, _)| *kind == k).map(|(_, t)| *t);
    if let (Some(hb), Some(scion)) = (find(EngineKind::Hummingbird), find(EngineKind::Scion)) {
        println!(
            "\nHummingbird/SCION per-packet cost ratio: {:.2}x (paper: 308/123 = 2.5x)",
            hb / scion
        );
    }
    println!("paper totals: 123 ns SCION, +185 ns Hummingbird overhead (AES-NI hardware).");
}
