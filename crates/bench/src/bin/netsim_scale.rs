//! Internet-scale netsim benchmark: the churned QoS/DoS experiment on a
//! generated ring-of-PoPs backbone (`netsim::topo` + `netsim::churn`),
//! swept across all four engine families.
//!
//! Each family run builds a seeded `--routers`-router backbone, starts a
//! credentialed victim, a 20 Mbps best-effort flood on the same route and
//! a `--flows`-flow credentialed background mesh, injects 3 mid-epoch
//! link failures on the victim's path at one third of the run, reroutes
//! after 50 ms and cold-reboots a transit router on the failover path.
//! Two numbers matter:
//!
//! 1. **Simulator throughput** — events/s of the discrete-event core on
//!    a 100+-router topology with thousands of queued packets (the perf
//!    trajectory `BENCH_netsim.json` tracks).
//! 2. **Recovery contrast** — after the reroute, the reservation
//!    families (hummingbird, helia) restore the victim's delivery and
//!    latency at the clean level while the authentication-only families
//!    (drkey, epic) leave it queueing behind the rerouted flood.
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin netsim_scale
//! [-- --routers <n>] [--flows <n>] [--seed <s>] [--pkts <n>]
//! [--json <path>]`
//!
//! `--routers` rounds down to whole 4-router PoPs (min 3 PoPs);
//! `--pkts` bounds the victim packet budget (250 pkts per simulated
//! second), letting CI smoke-run the sweep in seconds. Every run writes
//! `BENCH_netsim.json` (schema in `hummingbird_bench::json`);
//! `--json <path>` overrides the output location.

use std::time::Instant;

use hummingbird::netsim::{run_churn_scenario, ChurnSpec, EngineFamily, EngineScenario};
use hummingbird_bench::{pkts_from_args, row, u64_from_args, write_netsim_json, NetsimRecord};
use hummingbird_dataplane::RouterConfig;

const START_S: u64 = 1_700_000_000;
const START_NS: u64 = START_S * 1_000_000_000;

/// Routers per PoP — the lane width failover paths route around.
const RPP: usize = 4;

fn main() {
    let cfg = RouterConfig::default();
    let routers = u64_from_args("routers", 100) as usize;
    let flows = u64_from_args("flows", 256) as usize;
    let seed = u64_from_args("seed", 0xC0FFEE);
    // Victim interval is 4 ms (1000 B at 2 Mbps): 250 pkts per simulated
    // second, capped at one 16 s Helia slot so the single issued grant
    // stays fresh for the whole run.
    let pkts = pkts_from_args(750);
    let run_s = (pkts / 250).clamp(1, 16);
    let json_path = std::env::args()
        .skip_while(|a| a != "--json")
        .nth(1)
        .unwrap_or_else(|| "BENCH_netsim.json".to_string());
    let pops = (routers / RPP).max(3);
    println!("== netsim scale: churned four-family sweep on a generated backbone ==");
    println!(
        "{} PoPs x {RPP} routers (requested {routers}), seed {seed:#x}, {flows} background \
         flows,\n3 link failures + reroute + on-path reboot at t/3, {run_s} s simulated per \
         family\n",
        pops
    );
    let widths = [12usize, 9, 6, 9, 11, 9, 8, 9, 7];
    println!(
        "{}",
        row(
            &[
                "family".into(),
                "routers".into(),
                "adjs".into(),
                "events".into(),
                "wall [ms]".into(),
                "Mev/s".into(),
                "D2 [%]".into(),
                "rec [ms]".into(),
                "strand".into(),
            ],
            &widths
        )
    );
    let mut records: Vec<NetsimRecord> = Vec::new();
    for family in EngineFamily::ALL {
        let scenario = EngineScenario { family, shards: 1 };
        let mut spec = ChurnSpec::new(scenario).with_flood(20_000);
        spec.pops = pops;
        spec.routers_per_pop = RPP;
        spec.seed = seed;
        spec.background_flows = flows;
        // Credentialed background: thousands of live reservations on the
        // backbone, so engine state is exercised at scale, not just the
        // victim's path.
        spec.background_credential_kbps = Some(128);
        spec.run_s = run_s;
        let t0 = Instant::now();
        let out = run_churn_scenario(cfg, &spec, START_NS);
        let wall = t0.elapsed().as_secs_f64();
        let events_per_sec = out.events as f64 / wall.max(1e-9);
        let record = NetsimRecord {
            family: family.name(),
            shards: scenario.shards,
            routers: out.routers,
            adjacencies: out.adjacencies,
            flows: flows + 2, // victim + flood + background mesh
            events: out.events,
            wall_ms: wall * 1e3,
            events_per_sec,
            recovery_delivery: out.victim_recovery.delivery_ratio(),
            recovery_ms: out.victim_recovery.mean_latency_ms(),
            link_failures: out.report.link_failures(),
            rerouted: out.report.total_rerouted(),
            stranded: out.report.total_stranded(),
        };
        println!(
            "{}",
            row(
                &[
                    family.name().into(),
                    format!("{}", record.routers),
                    format!("{}", record.adjacencies),
                    format!("{}", record.events),
                    format!("{:.1}", record.wall_ms),
                    format!("{:.2}", events_per_sec / 1e6),
                    format!("{:.0}", record.recovery_delivery * 100.0),
                    format!("{:.2}", record.recovery_ms),
                    format!("{}", record.stranded),
                ],
                &widths
            )
        );
        assert!(record.link_failures >= 3, "{family:?}: too few injected failures");
        records.push(record);
    }
    match write_netsim_json(&json_path, seed, run_s, &records) {
        Ok(()) => println!("\nwrote {} records to {json_path}", records.len()),
        Err(e) => eprintln!("\ncould not write {json_path}: {e}"),
    }
    println!(
        "\nreservation families (hummingbird, helia) recover the victim's delivery and\n\
         latency after the reroute; authentication-only families (drkey, epic) leave it\n\
         queueing behind the rerouted flood. wall/events-per-sec are host-dependent."
    );
}
