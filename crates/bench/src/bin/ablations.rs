//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. Policing-array size vs per-check cost (§4.4 cache-sizing examples).
//! 2. First-Fit vs Kierstead-Trotter vs offline-optimal ResID allocation
//!    (competitive ratio in practice).
//! 3. Duplicate suppression: router cost with the stage on vs off.
//! 4. Aggregate MAC vs a separate tag field: header bytes saved.
//! 5. Worker-ring runtime: per-core-clone vs RSS-sharded scaling, with
//!    the null engine isolating the harness's own ring/dispatch cost.
//! 6. Burst size: the runtime's `batch_size` knob swept over the sharded
//!    null + Hummingbird workload (amortization vs cache footprint).
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin ablations
//! [-- --cores 1,2,4] [--pkts <count>] [--wait busy|yield[:n]|backoff]
//! [--rx-queues multi|single] [--batch <n>]`
//!
//! `--batch` pins the burst-size sweep to a single value (handy for
//! profiling one point); without it the sweep covers 4..128.

use hummingbird_bench::{
    batch_from_args, cores_from_args, flag_present, pkts_from_args, row, rx_from_args, rx_label,
    wait_from_args, wait_label, DataplaneFixture, EngineKind, EPOCH_NS,
};
use hummingbird_coloring::{color_optimal, max_overlap, FirstFit, Interval, KiersteadTrotter};
use hummingbird_dataplane::policing::Policer;
use hummingbird_dataplane::{
    run_to_completion, Datapath, DatapathBuilder, ExecMode, PacketBuf, RuntimeConfig, RuntimeMode,
};
use hummingbird_wire::hopfield::{FLYOVER_FIELD_LEN, HOP_FIELD_LEN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    ablation_policing_array();
    ablation_coloring();
    ablation_dup_suppression();
    ablation_agg_mac();
    ablation_runtime_sharding();
    ablation_batch_size();
}

fn ablation_policing_array() {
    println!("== Ablation 1: policing-array size vs per-check cost ==");
    println!("(§4.4: 75k IDs = 600 kB fits L2; 3M IDs = 24 MB fits L3)\n");
    let widths = [12usize, 12, 12];
    println!("{}", row(&["ResIDmax".into(), "array".into(), "ns/check".into()], &widths));
    let mut rng = StdRng::seed_from_u64(1);
    for slots in [1_000u32, 75_000, 1_000_000, 3_000_000] {
        let mut p = Policer::new(slots, 50_000_000);
        // Random ResIDs to defeat the cache (the worst case for big arrays).
        let ids: Vec<u32> = (0..4096).map(|_| rng.gen_range(0..slots)).collect();
        let iters = 2_000_000u64;
        let mut t = EPOCH_NS;
        let start = Instant::now();
        for i in 0..iters {
            t += 100;
            black_box(p.check(ids[(i % 4096) as usize], 1_000_000, 500, t));
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        let mb = p.array_bytes() as f64 / 1e6;
        println!(
            "{}",
            row(&[format!("{slots}"), format!("{mb:.1} MB"), format!("{ns:.1}")], &widths)
        );
    }
    println!();
}

fn ablation_coloring() {
    println!("== Ablation 2: ResID allocation — First-Fit vs Kierstead-Trotter ==\n");
    let widths = [10usize, 8, 8, 8, 10, 10];
    println!(
        "{}",
        row(
            &[
                "intervals".into(),
                "omega".into(),
                "FF".into(),
                "KT".into(),
                "FF ratio".into(),
                "KT ratio".into()
            ],
            &widths
        )
    );
    let mut rng = StdRng::seed_from_u64(2);
    for n in [50usize, 200, 500] {
        let intervals: Vec<Interval> = (0..n)
            .map(|_| {
                let s = rng.gen_range(0u64..10_000);
                Interval::new(s, s + rng.gen_range(60..3600))
            })
            .collect();
        let omega = max_overlap(&intervals);
        let mut ff = FirstFit::new(u32::MAX);
        let mut kt = KiersteadTrotter::new();
        for iv in &intervals {
            ff.assign(*iv).unwrap();
            kt.assign(*iv);
        }
        let (_, opt) = color_optimal(&intervals);
        assert_eq!(opt as usize, omega);
        let ff_used = ff.high_water() + 1;
        let kt_used = kt.high_water() + 1;
        println!(
            "{}",
            row(
                &[
                    format!("{n}"),
                    format!("{omega}"),
                    format!("{ff_used}"),
                    format!("{kt_used}"),
                    format!("{:.2}", ff_used as f64 / omega as f64),
                    format!("{:.2}", kt_used as f64 / omega as f64),
                ],
                &widths
            )
        );
    }
    println!("\n(First-Fit is near-optimal on random workloads — why the client app uses it;");
    println!(" KT guarantees <= 3x worst-case, backing the paper's ResIDmax bound.)\n");
}

fn ablation_dup_suppression() {
    println!("== Ablation 3: duplicate suppression cost at the router ==\n");
    let fx = DataplaneFixture::new(4);
    let iters = 200_000u64;
    let mut results = Vec::new();
    for dup in [false, true] {
        let mut router =
            DatapathBuilder::new(fx_sv(&fx), fx_hop_key(&fx)).duplicate_suppression(dup).build();
        // Unique packets (the realistic stream) — regenerate timestamps.
        let mut generator = fx.generator(true);
        let mut pkts: Vec<PacketBuf> = (0..64)
            .map(|i| {
                PacketBuf::new(
                    generator.generate(&[0u8; 500], hummingbird_bench::EPOCH_MS + i).unwrap(),
                )
            })
            .collect();
        let start = Instant::now();
        for i in 0..iters {
            let p = &mut pkts[(i % 64) as usize];
            black_box(router.process(p.bytes_mut(), EPOCH_NS));
            p.reset();
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        results.push((dup, ns));
        println!("dup suppression {:>5}: {ns:.0} ns/pkt", dup);
    }
    println!(
        "overhead: {:.0} ns ({:.1}%)\n",
        results[1].1 - results[0].1,
        (results[1].1 / results[0].1 - 1.0) * 100.0
    );
}

// The fixture keeps its secrets private; recreate the hop-0 values the
// same way the fixture does (kept in sync with hummingbird_bench).
fn fx_sv(_fx: &DataplaneFixture) -> hummingbird_crypto::SecretValue {
    hummingbird_crypto::SecretValue::new([0x61; 16])
}
fn fx_hop_key(_fx: &DataplaneFixture) -> hummingbird_wire::scion_mac::HopMacKey {
    hummingbird_wire::scion_mac::HopMacKey::new([0x31; 16])
}

fn ablation_runtime_sharding() {
    println!("== Ablation 5: worker-ring runtime — clone vs sharded vs harness floor ==\n");
    let fx = DataplaneFixture::new(4);
    let cores_list = cores_from_args(&[1usize, 2, 4]);
    let per_core = pkts_from_args(100_000);
    let wait = wait_from_args();
    let rx = rx_from_args();
    println!("(wait: {}, rx: {})", wait_label(wait), rx_label(rx));
    let widths = [12usize, 8, 12, 12];
    println!(
        "{}",
        row(
            &["engine".into(), "cores".into(), "clone mpps".into(), "sharded mpps".into()],
            &widths
        )
    );
    // The null engine's rows are the harness floor: ring hops, burst
    // bookkeeping and (sharded) rx steering with zero per-packet work.
    for kind in [EngineKind::Null, EngineKind::Hummingbird] {
        let templates = fx.flow_packets(kind, 500, 64);
        for &cores in &cores_list {
            let total = per_core * cores as u64;
            let mut cfg = RuntimeConfig::new(cores);
            cfg.wait = wait;
            cfg.rx_mode = rx;
            cfg.exec = ExecMode::Auto;
            let clone = run_to_completion(
                &cfg,
                RuntimeMode::PerCoreClone,
                |_| fx.engine(kind),
                &templates,
                total,
                EPOCH_NS,
            )
            .throughput();
            let rss = run_to_completion(
                &cfg,
                RuntimeMode::Sharded,
                |_| fx.engine(kind),
                &templates,
                total,
                EPOCH_NS,
            )
            .throughput();
            println!(
                "{}",
                row(
                    &[
                        kind.name().into(),
                        format!("{cores}"),
                        format!("{:.2}", clone.mpps()),
                        format!("{:.2}", rss.mpps()),
                    ],
                    &widths
                )
            );
        }
    }
    println!("\n(clone scales embarrassingly but polices nothing across cores; sharded");
    println!(" steers at the producer into per-shard rx queues, so one correctly-policed");
    println!(" logical router runs with no dispatcher thread on the hot path.)\n");
}

fn ablation_batch_size() {
    println!("== Ablation 6: burst size — amortization vs cache footprint ==\n");
    let fx = DataplaneFixture::new(4);
    let per_core = pkts_from_args(100_000);
    let wait = wait_from_args();
    let rx = rx_from_args();
    let cores = 2usize;
    // One --batch value pins the sweep (profiling a single point);
    // otherwise sweep the interesting range around the default of 32.
    let batches: Vec<usize> =
        if flag_present("batch") { vec![batch_from_args(32)] } else { vec![4, 8, 16, 32, 64, 128] };
    let widths = [8usize, 14, 14];
    println!("{}", row(&["batch".into(), "null mpps".into(), "hbird mpps".into()], &widths));
    for &batch in &batches {
        let mut cells = vec![format!("{batch}")];
        for kind in [EngineKind::Null, EngineKind::Hummingbird] {
            let templates = fx.flow_packets(kind, 500, 64);
            let total = per_core * cores as u64;
            let mut cfg = RuntimeConfig::new(cores);
            cfg.batch_size = batch;
            cfg.ring_capacity = cfg.ring_capacity.max(batch);
            cfg.wait = wait;
            cfg.rx_mode = rx;
            cfg.exec = ExecMode::Auto;
            let rss = run_to_completion(
                &cfg,
                RuntimeMode::Sharded,
                |_| fx.engine(kind),
                &templates,
                total,
                EPOCH_NS,
            )
            .throughput();
            cells.push(format!("{:.2}", rss.mpps()));
        }
        println!("{}", row(&cells, &widths));
    }
    println!("\n(small bursts pay ring/cursor overhead per packet; huge bursts spill the");
    println!(" per-burst working set out of L1 — the default of 32 sits in the plateau.)\n");
}

fn ablation_agg_mac() {
    println!("== Ablation 4: aggregate MAC (XOR with hop-field MAC) vs separate tag ==\n");
    // With aggregation, the flyover hop field reuses the 6 MAC bytes; a
    // separate-tag design would add 6 bytes (padded to 8 for alignment).
    let with_agg = FLYOVER_FIELD_LEN;
    let separate = FLYOVER_FIELD_LEN + 8;
    println!(
        "flyover hop field with aggregate MAC:  {with_agg} B ({} B over plain hop)",
        with_agg - HOP_FIELD_LEN
    );
    println!(
        "flyover hop field with separate tag:   {separate} B ({} B over plain hop)",
        separate - HOP_FIELD_LEN
    );
    for h in [4usize, 16] {
        let per_pkt = (separate - with_agg) * h;
        let at_100g = per_pkt as f64 * 8.0 * (100e9 / (8.0 * 600.0)) / 1e9;
        println!(
            "{h} reserved hops: {per_pkt} B/packet saved = {at_100g:.2} Gbps of header overhead avoided at 100 Gbps of 600 B packets"
        );
    }
    println!("(matches the paper's 8 B/hop total overhead claim in §4.)");
}
