//! Table 2: gas cost of every individual asset- and market-contract call.
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin table2_gas`

use hummingbird::control::{BandwidthAsset, Direction};
use hummingbird::testbed::{Testbed, TestbedConfig};
use hummingbird::PurchaseSpec;
use hummingbird_bench::row;
use hummingbird_ledger::GasSummary;
use rand::rngs::StdRng;
use rand::SeedableRng;

const HOUR: u64 = 3600;

fn print_row(name: &str, g: &GasSummary, usd_per_sui: f64, widths: &[usize]) {
    println!(
        "{}",
        row(
            &[
                name.to_string(),
                format!("{:.5}", g.computation_cost as f64 / 1e9),
                format!("{:.4}", g.storage_cost as f64 / 1e9),
                format!("{:.4}", g.storage_rebate as f64 / 1e9),
                format!("{:+.4}", g.total_sui()),
                format!("{:+.4}", g.total_sui() * usd_per_sui),
            ],
            widths
        )
    );
}

fn main() {
    let widths = [22usize, 12, 9, 9, 9, 9];
    println!("Table 2: per-call gas cost (negative totals = net credit from rebates)\n");
    println!(
        "{}",
        row(
            &[
                "Contract call".into(),
                "Computation".into(),
                "Storage".into(),
                "Rebate".into(),
                "SUI".into(),
                "USD".into(),
            ],
            &widths
        )
    );

    let mut tb =
        Testbed::build(TestbedConfig { n_ases: 1, ..Default::default() }).expect("testbed");
    let usd = tb.control.ledger.gas.usd_per_sui_micros as f64 / 1e6;
    let t0 = tb.cfg.start_unix_s;
    let account = tb.services[0].account;
    let as_id = Testbed::as_id(0);
    let mut rng = StdRng::seed_from_u64(2);

    println!("-- asset functions --");
    let template = |interface: u16, dir: Direction| BandwidthAsset {
        as_id,
        bandwidth_kbps: 100_000,
        start_time: t0,
        expiry_time: t0 + 10 * HOUR,
        interface,
        direction: dir,
        time_granularity: 60,
        min_bandwidth_kbps: 100,
    };
    let rx = tb.services[0].issue_asset(&mut tb.control, template(0, Direction::Ingress)).unwrap();
    print_row("issue", &rx.gas, usd, &widths);
    let asset = rx.value;

    let rx = tb.control.split_time(account, asset, t0 + 2 * HOUR).unwrap();
    print_row("split_time", &rx.gas, usd, &widths);
    let (head, tail) = rx.value;

    let rx = tb.control.split_bandwidth(account, head, 40_000).unwrap();
    print_row("split_bandwidth", &rx.gas, usd, &widths);
    let (left, right) = rx.value;

    let rx = tb.control.fuse_bandwidth(account, left, right).unwrap();
    print_row("fuse_bandwidth", &rx.gas, usd, &widths);
    let fused = rx.value;

    let rx = tb.control.fuse_time(account, fused, tail).unwrap();
    print_row("fuse_time", &rx.gas, usd, &widths);
    let ingress_asset = rx.value;

    // Redeem needs a matching egress asset.
    let egress_asset =
        tb.services[0].issue_asset(&mut tb.control, template(0, Direction::Egress)).unwrap().value;
    let eph = hummingbird_crypto::sig::SecretKey::generate(&mut rng);
    let rx = tb.control.redeem(account, ingress_asset, egress_asset, eph.public()).unwrap();
    print_row("redeem", &rx.gas, usd, &widths);
    let request = rx.value;

    let pending = tb.control.pending_requests(account);
    let delivery = hummingbird_control::EncryptedReservation {
        as_id,
        request,
        sealed: hummingbird_crypto::sealed::seal(&pending[0].1.ephemeral_pk, &[0u8; 48], &mut rng),
    };
    let rx = tb.control.deliver_reservation(account, request, delivery).unwrap();
    print_row("deliver_reservation", &rx.gas, usd, &widths);

    println!("-- market functions --");
    let rx = tb.control.create_marketplace(account).unwrap();
    print_row("create_marketplace", &rx.gas, usd, &widths);
    let market = rx.value;

    let rx = tb.control.register_seller(account, market).unwrap();
    print_row("register_seller", &rx.gas, usd, &widths);

    // Four buy variants against four fresh listings.
    let variants: [(&str, PurchaseSpec); 4] = [
        ("buy (full)", PurchaseSpec { start: t0, end: t0 + 10 * HOUR, bandwidth_kbps: 100_000 }),
        ("buy (split bw)", PurchaseSpec { start: t0, end: t0 + 10 * HOUR, bandwidth_kbps: 40_000 }),
        (
            "buy (split time)",
            PurchaseSpec { start: t0 + HOUR, end: t0 + 2 * HOUR, bandwidth_kbps: 100_000 },
        ),
        (
            "buy (split both)",
            PurchaseSpec { start: t0 + HOUR, end: t0 + 2 * HOUR, bandwidth_kbps: 40_000 },
        ),
    ];
    let mut listing_gas_printed = false;
    for (name, spec) in variants {
        let asset = tb.services[0]
            .issue_asset(&mut tb.control, template(1, Direction::Ingress))
            .unwrap()
            .value;
        let rx = tb.control.create_listing(account, market, asset, 1).unwrap();
        if !listing_gas_printed {
            print_row("create_listing", &rx.gas, usd, &widths);
            listing_gas_printed = true;
        }
        let listing = rx.value;
        let mut buyer = tb.new_client(&format!("buyer-{name}"), 100_000);
        let rx = buyer.buy(&mut tb.control, market, listing, spec).unwrap();
        print_row(name, &rx.gas, usd, &widths);
    }

    println!("\npaper (Table 2): issue 0.0029 SUI, splits 0.0029, fuses -0.0013,");
    println!("redeem 0.00012, deliver -0.0027, create_listing 0.0050,");
    println!("buy full/-0.0023, split bw 0.0039, split time 0.010, split both 0.016.");
}
