//! The Fig. 3/4-style latency comparison, made executable: end-to-end
//! delay, delivery and authentication outcomes (D1/D2) for every engine
//! family × {single, 4-shard} deployment, on the same 3-AS bottleneck
//! topology with the worker-ring service model installed.
//!
//! Three measurements per configuration:
//!
//! 1. **D1** — forged-credential rejection: a sender keyed under a
//!    sibling topology's secrets must have every packet dropped at the
//!    first router.
//! 2. **D2** — victim delivery ratio and goodput under a 3× best-effort
//!    flood of the 10 Mbps bottleneck.
//! 3. **Latency** — the victim's mean/max end-to-end delay uncontended
//!    vs under the flood: the reservation families hold it flat (their
//!    traffic rides the priority class past the flood), the
//!    authentication-only families watch it blow up with the queue.
//!
//! A final section drives the threaded worker-ring runtime with the tx
//! path enabled and prints per-class egress residence times — the same
//! two-class scheduler, measured on real threads instead of simulated
//! time.
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin
//! latency_comparison` (`--pkts <n>` bounds both the per-run victim
//! packet count and the runtime leg, for CI smoke runs). The simulated
//! router service cost is calibrated from the checked-in
//! `BENCH_hotpath.json` clone/1-core measurements when the file is
//! readable; otherwise the hand-set default is kept (and logged).

use hummingbird::netsim::{
    run_latency_scenario, EngineFamily, EngineScenario, LatencySpec, LinearTopology, LinkSpec,
};
use hummingbird_baselines::SLOT_SECS;
use hummingbird_bench::{pkts_from_args, row, DataplaneFixture, EngineKind, EPOCH_NS};
use hummingbird_dataplane::{
    run_to_completion, EgressConfig, RouterConfig, RuntimeConfig, RuntimeMode,
};
use hummingbird_wire::IsdAs;

const START_S: u64 = 1_700_000_000;
const START_NS: u64 = START_S * 1_000_000_000;
const SEC: u64 = 1_000_000_000;

fn atk() -> IsdAs {
    IsdAs::new(3, 0xc)
}
fn dst() -> IsdAs {
    IsdAs::new(2, 0xb)
}

/// D1: the share of forged-credential packets dropped at the first
/// router — credentials derived under a seeded sibling topology's
/// secrets, injected uncontended so what's measured is authentication.
fn forged_drop_ratio(scenario: EngineScenario, cfg: RouterConfig) -> f64 {
    let link = LinkSpec { bandwidth_bps: 100_000_000, ..Default::default() };
    let mut topo = LinearTopology::build(2, link, START_NS, cfg);
    topo.install_engines(scenario, cfg);
    let mut other = LinearTopology::build_seeded(2, link, START_NS, cfg, 0xEE);
    let mut forged_gen = other.make_generator(atk(), dst());
    for hop in 0..2 {
        let credential = other.make_family_credential(scenario.family, hop, atk(), 3_000, START_S);
        forged_gen.attach_reservation(hop, credential).expect("matching interfaces");
    }
    let entry = topo.as_nodes[0];
    let forged = topo.sim.add_flow(hummingbird::netsim::Flow {
        generator: forged_gen,
        entry,
        payload_len: 500,
        interval_ns: 1_000_000,
        start_ns: START_NS,
        stop_ns: START_NS + SEC,
    });
    topo.sim.run_until(START_NS + 2 * SEC);
    let f = topo.sim.stats(forged);
    f.router_drops as f64 / f.sent_pkts.max(1) as f64
}

fn main() {
    let cfg = RouterConfig::default();
    let pkts = pkts_from_args(500);
    println!("== Fig. 3/4-style latency comparison: engine family x shards ==");
    println!(
        "3-AS chain, 10 Mbps bottlenecks, 1 ms links, per-family router service cost\n\
         calibrated from BENCH_hotpath.json (hand-set fallback when unreadable);\n\
         victim 2 Mbps credentialed, flood 30 Mbps best effort, ~{pkts} victim pkts/run\n"
    );
    let widths = [12usize, 7, 8, 8, 10, 11, 11, 10];
    println!(
        "{}",
        row(
            &[
                "family".into(),
                "shards".into(),
                "D1 [%]".into(),
                "D2 [%]".into(),
                "base [ms]".into(),
                "flood [ms]".into(),
                "max [ms]".into(),
                "atk [kbps]".into(),
            ],
            &widths
        )
    );
    // Victim packet interval is 4 ms at 2 Mbps / 1000 B. The run is
    // capped at one Helia slot: a longer run would cross the 16 s slot
    // boundary, the single issued grant would go stale mid-flow, and
    // the helia rows would show grant rotation instead of queueing.
    let run_s = (pkts * 4 / 1000).clamp(1, SLOT_SECS);
    if pkts * 4 / 1000 > SLOT_SECS {
        println!(
            "(--pkts capped to one {SLOT_SECS} s Helia slot: ~{} pkts/run)\n",
            SLOT_SECS * 250
        );
    }
    for family in EngineFamily::ALL {
        for shards in [1usize, 4] {
            let scenario = EngineScenario { family, shards };
            let mut spec = LatencySpec::new(scenario).calibrated();
            spec.run_s = run_s;
            let base = run_latency_scenario(cfg, &spec, START_NS);
            let loaded = run_latency_scenario(cfg, &spec.with_flood(30_000), START_NS);
            assert_eq!(base.victim.router_drops, 0, "credentialed victim must authenticate");
            let d1 = forged_drop_ratio(scenario, cfg);
            let flood_stats = loaded.flood.expect("flood ran");
            println!(
                "{}",
                row(
                    &[
                        family.name().into(),
                        format!("{shards}"),
                        format!("{:.0}", d1 * 100.0),
                        format!("{:.0}", loaded.victim.delivery_ratio() * 100.0),
                        format!("{:.2}", base.victim.mean_latency_ms()),
                        format!("{:.2}", loaded.victim.mean_latency_ms()),
                        format!("{:.2}", loaded.victim.latency_max_ns as f64 / 1e6),
                        format!("{:.0}", flood_stats.goodput_kbps(run_s as f64)),
                    ],
                    &widths
                )
            );
        }
    }
    println!(
        "\npaper: reservation families (hummingbird, helia) hold the victim's latency at the\n\
         uncontended level under flood (priority class past the queue); authentication-only\n\
         families (drkey, epic) validate every packet yet leave it queueing behind the flood."
    );

    // ------------------------------------------------------------------
    println!("\n== threaded worker-ring runtime, tx path enabled ==");
    println!(
        "4 shards, 40 Gbps egress model; per-class residence = enqueue -> modeled departure\n"
    );
    let widths = [12usize, 10, 10, 14, 14];
    println!(
        "{}",
        row(
            &[
                "engine".into(),
                "prio".into(),
                "beffort".into(),
                "mean res [us]".into(),
                "max res [us]".into(),
            ],
            &widths
        )
    );
    let fx = DataplaneFixture::new(4);
    for kind in [EngineKind::Hummingbird, EngineKind::Scion, EngineKind::Epic] {
        let templates = fx.flow_packets(kind, 500, 8);
        let mut rcfg = RuntimeConfig::new(4);
        rcfg.egress = Some(EgressConfig::default());
        if matches!(kind, EngineKind::Epic) {
            rcfg.steering = hummingbird_dataplane::Steering::BySource;
        }
        let report = run_to_completion(
            &rcfg,
            RuntimeMode::Sharded,
            |_| fx.engine(kind),
            &templates,
            pkts.max(1),
            EPOCH_NS,
        );
        let e = report.egress.expect("tx path enabled");
        assert_eq!(e.forwarded() + e.dropped, report.packets, "tx path conserves packets");
        let (sum, max, n) = (
            e.priority.residence_ns_sum + e.best_effort.residence_ns_sum,
            e.priority.residence_ns_max.max(e.best_effort.residence_ns_max),
            e.forwarded().max(1),
        );
        println!(
            "{}",
            row(
                &[
                    kind.name().to_string(),
                    format!("{}", e.priority.pkts),
                    format!("{}", e.best_effort.pkts),
                    format!("{:.1}", sum as f64 / n as f64 / 1e3),
                    format!("{:.1}", max as f64 / 1e3),
                ],
                &widths
            )
        );
    }
}
