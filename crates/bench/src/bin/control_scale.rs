//! Control-plane scale bench: admits, renews and auction-clears
//! reservations by the million, then verifies the run's conservation
//! invariants before writing `BENCH_control.json`.
//!
//! Three timed phases against one in-process [`ControlPlane`] ledger:
//!
//! 1. **admit** — every reservation goes through the full paper flow:
//!    the AS issues an ingress/egress asset pair, lists both on the
//!    marketplace, a client buys and redeems the path atomically, the AS
//!    batch-processes the redeem requests (steering-aware ResID
//!    assignment from the least-loaded shard of a data-plane
//!    [`ShardMap`]), and the client collects the sealed deliveries.
//!    Every 8th purchase carves a half-window slice out of a wider
//!    asset, so time-splits (and their remainders) are part of the run.
//!    Consumed delivery objects are swept for their storage rebate at
//!    the end of each wave, keeping the committed object store compact.
//! 2. **renew** — every reservation is renewed once through the O(1)
//!    fast path: each wave client posts its whole renewal portfolio in
//!    one batched request transaction, then the AS serves the wave in
//!    one batched `process_renewals` transaction. No market round-trip,
//!    no re-coloring, no public-key crypto. The timed section is the
//!    on-chain serving path; collection, key verification and delivery
//!    sweeping run off the clock (and cover *every* delivery).
//! 3. **clear** — a round of sealed-bid Vickrey auctions (commit →
//!    close → reveal) settled by the [`ClearingEngine`] in a single
//!    epoch-clearing transaction.
//!
//! Before writing the document the binary *verifies* (and exits nonzero
//! on any violation — this is the CI smoke leg's contract):
//!
//! * **bandwidth × time conservation** — Σ issued bandwidth×time equals
//!   the bandwidth×time still live in on-chain assets plus what redeem
//!   consumed, recomputed by scanning every committed object.
//! * **coin supply conservation** — minted MIST equals remaining supply
//!   plus net burned gas, to the MIST, and no MIST is stranded outside
//!   the known participant accounts (auction escrows must drain).
//! * **steering** — ResIDs land across data-plane shards with max/min
//!   skew ≤ 1.1, and the admitted count matches the shard loads.
//! * **renewal keys** — every renewal delivery unwraps with the
//!   client-side ratchet and matches the border router's independent
//!   `A_K` derivation; renewals never change ResID or hop set.
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin
//! control_scale [-- --reservations <n>] [--shards <n>] [--auctions <n>]
//! [--wave <n>] [--seed <n>] [--json <path>]`

use hummingbird_bench::{
    row, u64_from_args, write_control_json, ControlInvariants, ControlMeta, ControlPhase,
    ControlState,
};
use hummingbird_control::auction::{TAG_AUCTION, TAG_BID};
use hummingbird_control::pki::TrustAnchors;
use hummingbird_control::types::TAG_ASSET;
use hummingbird_control::{
    bid_commitment, AsService, BandwidthAsset, ClearingEngine, Client, ControlPlane, Direction,
    PurchaseSpec,
};
use hummingbird_crypto::sig::SecretKey;
use hummingbird_dataplane::runtime::{ShardMap, Steering};
use hummingbird_ledger::Address;
use hummingbird_wire::IsdAs;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const HOUR: u64 = 3600;
/// Purchased bandwidth per reservation, kbps.
const BW_KBPS: u64 = 1000;
/// Renewal fee the client attaches, MIST.
const RENEW_FEE: u64 = 100;
/// Auction reserve price, MIST.
const RESERVE_PRICE: u64 = 500;
/// Bidders per auction.
const BIDDERS: usize = 4;

struct Phase {
    name: &'static str,
    ops: u64,
    txs: u64,
    wall_ms: f64,
}

impl Phase {
    fn record(&self) -> ControlPhase {
        ControlPhase {
            phase: self.name,
            ops: self.ops,
            txs: self.txs,
            wall_ms: self.wall_ms,
            ops_per_sec: self.ops as f64 / (self.wall_ms / 1000.0),
        }
    }
}

fn asset(dir: Direction, interface: u16, bw: u64, start: u64, end: u64) -> BandwidthAsset {
    BandwidthAsset {
        as_id: IsdAs::new(1, 0x1_0001),
        bandwidth_kbps: bw,
        start_time: start,
        expiry_time: end,
        interface,
        direction: dir,
        time_granularity: 60,
        min_bandwidth_kbps: 100,
    }
}

fn bwt(a: &BandwidthAsset) -> u128 {
    u128::from(a.bandwidth_kbps) * u128::from(a.expiry_time - a.start_time)
}

fn main() {
    let reservations = u64_from_args("reservations", 20_000);
    let shards = u64_from_args("shards", 8) as usize;
    let auctions = u64_from_args("auctions", 256);
    let wave = u64_from_args("wave", 10_000).max(1);
    let seed = u64_from_args("seed", 7);
    let json_path = std::env::args()
        .skip_while(|a| a != "--json")
        .nth(1)
        .unwrap_or_else(|| "BENCH_control.json".to_string());

    let mut failures: Vec<String> = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed);

    // World: one registered AS aligned with a data-plane shard map, one
    // marketplace, one wave client per admission wave.
    let as_id = IsdAs::new(1, 0x1_0001);
    let cert_key = SecretKey::from_seed(&seed.to_be_bytes());
    let mut anchors = TrustAnchors::new();
    anchors.install(as_id, cert_key.public());
    let mut cp = ControlPlane::new(anchors);
    let res_id_cap = (reservations.max(1024).next_power_of_two() * 2) as u32;
    let mut service = AsService::new(as_id, cert_key, [7u8; 16], res_id_cap);
    let map = ShardMap::new(shards, res_id_cap, Steering::ByReservation);
    service.align_with_shard_map(&map);
    cp.faucet(service.account, 10_000_000);
    service.register(&mut cp, &mut rng).expect("AS registration");
    let market = cp.create_marketplace(service.account).expect("marketplace").value;
    cp.register_seller(service.account, market).expect("seller registration");

    let ingress_if = 1u16;
    let egress_if = 2u16;
    let mut issued_bwt: u128 = 0;
    let mut redeemed_bwt: u128 = 0;

    println!(
        "control_scale: {reservations} reservations, {shards} shards, \
         {auctions} auctions, wave {wave}, seed {seed}"
    );

    // ---- Phase 1: admit -------------------------------------------------
    let t0 = Instant::now();
    let txs_before = cp.ledger.tx_count();
    let mut clients: Vec<Client> = Vec::new();
    let mut admitted = 0u64;
    while admitted < reservations {
        let n = wave.min(reservations - admitted);
        let label = format!("client-{}", clients.len());
        let mut client = Client::new(Address::from_label(&label));
        cp.faucet(client.account, 100_000);
        for i in 0..n {
            // Every 8th purchase slices half a 2-hour asset (time split
            // + live remainder); the rest consume their listing exactly.
            let wide = (admitted + i).is_multiple_of(8);
            let end = if wide { 2 * HOUR } else { HOUR };
            let a_in = asset(Direction::Ingress, ingress_if, BW_KBPS, 0, end);
            let a_eg = asset(Direction::Egress, egress_if, BW_KBPS, 0, end);
            issued_bwt += bwt(&a_in) + bwt(&a_eg);
            let ing = service.issue_asset(&mut cp, a_in).expect("issue ingress").value;
            let eg = service.issue_asset(&mut cp, a_eg).expect("issue egress").value;
            let l_in = cp.create_listing(service.account, market, ing, 1).expect("list").value;
            let l_eg = cp.create_listing(service.account, market, eg, 1).expect("list").value;
            let spec = PurchaseSpec { start: 0, end: HOUR, bandwidth_kbps: BW_KBPS };
            client
                .buy_and_redeem_path(&mut cp, market, &[(l_in, l_eg, spec)], &mut rng)
                .expect("buy and redeem");
            redeemed_bwt += 2 * u128::from(BW_KBPS) * u128::from(HOUR);
        }
        service.process_requests(&mut cp, &mut rng).expect("process requests");
        let got = client.collect_deliveries(&cp).expect("collect deliveries");
        if got as u64 != n {
            failures.push(format!("admit: wave {} delivered {got}/{n}", clients.len()));
        }
        // Consumed deliveries are dead weight: sweep them for the rebate.
        client.sweep_collected(&mut cp).expect("sweep deliveries");
        clients.push(client);
        admitted += n;
    }
    let admit = Phase {
        name: "admit",
        ops: reservations,
        txs: cp.ledger.tx_count() - txs_before,
        wall_ms: t0.elapsed().as_secs_f64() * 1000.0,
    };
    println!(
        "  admit: {} reservations in {:.1}s ({:.0}/s)",
        admit.ops,
        admit.wall_ms / 1000.0,
        admit.record().ops_per_sec
    );

    // Steering: every admission drew from the least-loaded shard range.
    let loads = service.shard_loads(ingress_if);
    let shard_skew = service.shard_skew(ingress_if).unwrap_or(f64::INFINITY);
    if loads.iter().sum::<usize>() as u64 != reservations {
        failures.push(format!("steering: shard loads {:?} do not sum to {reservations}", loads));
    }
    if shard_skew > 1.1 {
        failures.push(format!("steering: shard skew {shard_skew:.4} > 1.1 ({loads:?})"));
    }

    // ---- Phase 2: renew -------------------------------------------------
    // The timed section is the on-chain serving path: one batched request
    // transaction per wave client plus one batched `process_renewals`
    // transaction per wave. Collection, key verification and delivery
    // sweeping run between waves off the clock — covering every delivery.
    let as_acct = service.account;
    let mut renewed = 0u64;
    let mut rejected = 0u64;
    let mut renew_txs = 0u64;
    let mut request_s = 0.0f64;
    let mut process_s = 0.0f64;
    let mut renewal_keys_ok = true;
    let mut checked = 0u64;
    for client in clients.iter_mut() {
        let targets: Vec<(u16, u32, u32)> = client
            .reservations()
            .iter()
            .map(|g| (g.res_info.ingress, g.res_info.res_id, 0))
            .collect();
        let txs_before = cp.ledger.tx_count();
        let t = Instant::now();
        client.request_renewals(&mut cp, as_acct, &targets, RENEW_FEE).expect("renewal requests");
        request_s += t.elapsed().as_secs_f64();
        let t = Instant::now();
        let report = service.process_renewals(&mut cp, &mut rng).expect("process renewals");
        process_s += t.elapsed().as_secs_f64();
        renew_txs += cp.ledger.tx_count() - txs_before;
        renewed += report.delivered.len() as u64;
        rejected += report.rejected as u64;

        // Off-clock verification: every renewal delivery must unwrap with
        // the client-side ratchet, match the border router's independent
        // `A_K` derivation, and extend an unchanged (ResID, hop) pair one
        // window later. Swept afterwards like any consumed delivery.
        let before = client.reservations().len();
        let original_hops: std::collections::HashSet<(u32, u16, u16)> = client
            .reservations()
            .iter()
            .map(|o| (o.res_info.res_id, o.res_info.ingress, o.res_info.egress))
            .collect();
        let got = client.collect_renewals(&cp).expect("collect renewals");
        if got != before {
            renewal_keys_ok = false;
            failures.push(format!("renew: collected {got}/{before} renewal deliveries"));
        }
        for g in client.reservations().iter().skip(before) {
            let expect = service.secret_value().derive_key(&g.res_info);
            if g.key != expect {
                renewal_keys_ok = false;
                failures.push(format!("renew: ResID {} key mismatch", g.res_info.res_id));
            }
            if g.res_info.res_start as u64 != HOUR {
                renewal_keys_ok = false;
                failures.push(format!("renew: ResID {} wrong window start", g.res_info.res_id));
            }
            if !original_hops.contains(&(g.res_info.res_id, g.res_info.ingress, g.res_info.egress))
            {
                renewal_keys_ok = false;
                failures.push(format!("renew: ResID {} changed hops", g.res_info.res_id));
            }
            checked += 1;
        }
        client.sweep_collected(&mut cp).expect("sweep renewals");
    }
    let renew = Phase {
        name: "renew",
        ops: renewed,
        txs: renew_txs,
        wall_ms: (request_s + process_s) * 1000.0,
    };
    println!(
        "  renew: {} renewals in {:.1}s ({:.0}/s; batched requests {:.1}s, batched service {:.1}s)",
        renew.ops,
        renew.wall_ms / 1000.0,
        renew.record().ops_per_sec,
        request_s,
        process_s
    );
    if renewed != reservations || rejected != 0 {
        failures.push(format!("renew: {renewed}/{reservations} renewed, {rejected} rejected"));
    }
    println!("  renew: {checked} deliveries key-checked");

    // ---- Phase 3: clear -------------------------------------------------
    let bidders: Vec<Address> =
        (0..BIDDERS).map(|i| Address::from_label(&format!("bidder-{i}"))).collect();
    for b in &bidders {
        cp.faucet(*b, 100_000);
    }
    let t0 = Instant::now();
    let txs_before = cp.ledger.tx_count();
    let mut engine = ClearingEngine::new();
    let epoch = 1u64;
    let mut reveals = Vec::new();
    for a in 0..auctions {
        let tmpl = asset(Direction::Ingress, ingress_if, BW_KBPS, 3 * HOUR, 4 * HOUR);
        issued_bwt += bwt(&tmpl);
        let asset_id = service.issue_asset(&mut cp, tmpl).expect("auction asset").value;
        let auction_id = engine
            .create_auction(&mut cp, as_acct, asset_id, RESERVE_PRICE, epoch)
            .expect("create auction")
            .value;
        for (bi, bidder) in bidders.iter().enumerate() {
            // Deterministic spread of amounts above the reserve.
            let amount = RESERVE_PRICE + (a * 31 + bi as u64 * 17) % 1000;
            let mut salt = [0u8; 32];
            salt[..8].copy_from_slice(&(a * BIDDERS as u64 + bi as u64).to_be_bytes());
            let commitment = bid_commitment(amount, &salt, *bidder);
            let bid_id = cp
                .commit_bid(*bidder, auction_id, commitment, amount + 50)
                .expect("commit bid")
                .value;
            reveals.push((auction_id, bid_id, *bidder, amount, salt));
        }
        cp.close_bidding(as_acct, auction_id).expect("close bidding");
    }
    for &(auction_id, bid_id, bidder, amount, salt) in &reveals {
        cp.reveal_bid(bidder, auction_id, bid_id, amount, salt).expect("reveal bid");
    }
    let outcomes = engine.clear_epoch(&mut cp, as_acct, epoch).expect("clear epoch").value;
    let clear = Phase {
        name: "clear",
        ops: outcomes.len() as u64,
        txs: cp.ledger.tx_count() - txs_before,
        wall_ms: t0.elapsed().as_secs_f64() * 1000.0,
    };
    println!(
        "  clear: {} auctions in {:.2}s ({:.0}/s, one settlement tx)",
        clear.ops,
        clear.wall_ms / 1000.0,
        clear.record().ops_per_sec
    );
    if outcomes.len() as u64 != auctions {
        failures.push(format!("clear: {}/{auctions} auctions settled", outcomes.len()));
    }
    for (id, o) in &outcomes {
        match o.winner {
            Some(_) if o.price >= RESERVE_PRICE => {}
            _ => failures.push(format!("clear: auction {id:?} settled wrong: {o:?}")),
        }
    }

    // ---- Conservation audit (full-chain scan) ---------------------------
    let mut live_bwt: u128 = 0;
    let mut auction_objects = 0u64;
    for e in cp.ledger.objects() {
        if e.meta.type_tag == TAG_ASSET {
            let a = BandwidthAsset::decode(&e.data).expect("asset decode");
            live_bwt += bwt(&a);
        } else if e.meta.type_tag == TAG_AUCTION || e.meta.type_tag == TAG_BID {
            auction_objects += 1;
        }
    }
    let bandwidth_time_conserved = issued_bwt == live_bwt + redeemed_bwt;
    if !bandwidth_time_conserved {
        failures.push(format!(
            "conservation: issued {issued_bwt} != live {live_bwt} + redeemed {redeemed_bwt} \
             (bandwidth x time)"
        ));
    }

    let minted = cp.ledger.total_minted() as i128;
    let supply = cp.ledger.total_supply() as i128;
    let burned = cp.ledger.gas_burned();
    let coin_supply_conserved = minted == supply + burned;
    if !coin_supply_conserved {
        failures.push(format!(
            "conservation: minted {minted} != supply {supply} + burned gas {burned}"
        ));
    }
    // No MIST stranded outside the participant accounts (escrows drained).
    let mut known: u128 = u128::from(cp.ledger.balance(service.account));
    for c in &clients {
        known += u128::from(cp.ledger.balance(c.account));
    }
    for b in &bidders {
        known += u128::from(cp.ledger.balance(*b));
    }
    let auction_escrows_drained = auction_objects == 0 && known == cp.ledger.total_supply();
    if !auction_escrows_drained {
        failures.push(format!(
            "clear: {auction_objects} auction/bid objects remain, known balances {known} \
             vs supply {}",
            cp.ledger.total_supply()
        ));
    }

    let shard_skew_ok = shard_skew <= 1.1;
    let state = ControlState {
        ledger_objects: cp.ledger.object_count() as u64,
        ledger_bytes: cp.ledger.total_object_bytes(),
        bytes_per_reservation: cp.ledger.total_object_bytes() as f64 / reservations as f64,
        ledger_txs: cp.ledger.tx_count(),
        res_id_high_water: u64::from(service.res_id_high_water(ingress_if).unwrap_or(0)),
        shard_skew,
    };
    let invariants = ControlInvariants {
        bandwidth_time_conserved,
        coin_supply_conserved,
        shard_skew_ok,
        renewal_keys_ok,
        auction_escrows_drained,
    };

    // ---- Report ---------------------------------------------------------
    let phases = [admit, renew, clear];
    let widths = [8, 12, 12, 12, 12];
    println!();
    println!("{}", row(&["phase", "ops", "txs", "wall_ms", "ops/s"].map(String::from), &widths));
    for p in &phases {
        let r = p.record();
        println!(
            "{}",
            row(
                &[
                    r.phase.to_string(),
                    r.ops.to_string(),
                    r.txs.to_string(),
                    format!("{:.1}", r.wall_ms),
                    format!("{:.0}", r.ops_per_sec),
                ],
                &widths
            )
        );
    }
    println!(
        "\nstate: {} objects, {} bytes ({:.0} B/reservation), {} txs, \
         ResID high water {}, shard skew {:.4}",
        state.ledger_objects,
        state.ledger_bytes,
        state.bytes_per_reservation,
        state.ledger_txs,
        state.res_id_high_water,
        state.shard_skew
    );

    let meta = ControlMeta { seed, reservations, shards, auctions };
    let records: Vec<ControlPhase> = phases.iter().map(Phase::record).collect();
    write_control_json(&json_path, &meta, &records, &state, &invariants)
        .expect("write BENCH_control.json");
    println!("wrote {json_path}");

    if !failures.is_empty() {
        eprintln!("\n{} invariant violation(s):", failures.len());
        for f in &failures {
            eprintln!("  FAIL {f}");
        }
        std::process::exit(1);
    }
    println!("all invariants held");
}
