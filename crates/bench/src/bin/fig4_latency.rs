//! Figure 4: end-to-end latency of an atomic buy-and-redeem for different
//! path lengths, 100 runs each.
//!
//! The purchase transaction goes through consensus (shared marketplace);
//! the per-AS reservation deliveries ride the fast path in parallel. Each
//! run executes the real transactions against the ledger and samples the
//! calibrated Sui-testnet latency model for the network component.
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin fig4_latency`

use hummingbird::testbed::{Testbed, TestbedConfig};
use hummingbird::{ExecPath, PurchaseSpec};
use hummingbird_bench::{row, Summary};
use hummingbird_ledger::LatencyModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

const RUNS: usize = 100;

fn main() {
    println!("Figure 4: atomic buy-and-redeem latency (request=consensus, responses=fast path)");
    println!("{RUNS} runs per path length; milliseconds\n");
    let widths = [5usize, 8, 8, 8, 8, 8];
    println!(
        "{}",
        row(
            &[
                "Hops".into(),
                "p5".into(),
                "median".into(),
                "p83".into(),
                "p95".into(),
                "mean".into()
            ],
            &widths
        )
    );

    let model = LatencyModel::default();
    let mut lat_rng = StdRng::seed_from_u64(4);
    let mut pooled: Vec<f64> = Vec::new();

    for hops in [1usize, 2, 4, 8, 16] {
        let mut samples = Vec::with_capacity(RUNS);
        for run in 0..RUNS {
            let mut tb = Testbed::build(TestbedConfig {
                n_ases: hops,
                seed: run as u64,
                ..Default::default()
            })
            .expect("testbed");
            let t0 = tb.cfg.start_unix_s;
            tb.stock_market(100_000, t0 - 3600, t0 + 36_000, 60, 100).expect("stock");
            let mut client = tb.new_client("bench", 100_000);
            let listings = tb.control.listings(tb.market);
            let spec = PurchaseSpec { start: t0, end: t0 + 600, bandwidth_kbps: 4_000 };
            let hop_list: Vec<_> = (0..hops)
                .map(|i| {
                    let (ing_if, eg_if) = hummingbird::LinearTopology::interfaces(hops, i);
                    let find = |interface: u16, dir: hummingbird::Direction| {
                        listings
                            .iter()
                            .find(|(_, _, a)| {
                                a.as_id == Testbed::as_id(i)
                                    && a.interface == interface
                                    && a.direction == dir
                            })
                            .expect("listing")
                            .0
                    };
                    (
                        find(ing_if, hummingbird::Direction::Ingress),
                        find(eg_if, hummingbird::Direction::Egress),
                        spec,
                    )
                })
                .collect();
            let mut rng = StdRng::seed_from_u64(run as u64);
            // Request: the real purchase transaction (consensus).
            let rx = client
                .buy_and_redeem_path(&mut tb.control, tb.market, &hop_list, &mut rng)
                .expect("purchase");
            assert_eq!(rx.path, ExecPath::Consensus);
            let request_ms = model.sample(ExecPath::Consensus, &mut lat_rng);
            // Responses: the real per-AS deliveries (fast path), measured
            // until the last one lands.
            for service in tb.services.iter_mut() {
                let rxs = service.process_requests(&mut tb.control, &mut rng).expect("deliver");
                assert_eq!(rxs.len(), 1);
            }
            client.collect_deliveries(&tb.control).expect("collect");
            let response_ms = model.sample_parallel_fast(hops, &mut lat_rng);
            samples.push(request_ms + response_ms);
        }
        pooled.extend(samples.iter().copied());
        let s = Summary::of(samples);
        println!(
            "{}",
            row(
                &[
                    format!("{hops}"),
                    format!("{:.0}", s.p5),
                    format!("{:.0}", s.p50),
                    format!("{:.0}", s.p83),
                    format!("{:.0}", s.p95),
                    format!("{:.0}", s.mean),
                ],
                &widths
            )
        );
    }
    let below_3s = pooled.iter().filter(|&&p| p < 3000.0).count() as f64 / pooled.len() as f64;
    println!("\npaper (Fig. 4): total < 3 s in 83% of measurements, largely independent of hops.");
    println!("measured: total < 3 s in {:.0}% of all measurements.", below_3s * 100.0);
}
