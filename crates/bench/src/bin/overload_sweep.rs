//! Closed-loop overload sweep: bounded queues, end-to-end backpressure,
//! graceful degradation (`netsim::run_overload_scenario`), swept across
//! all four engine families × {single, 4-shard}.
//!
//! Per (family, shards) deployment: a 2 Mbps credentialed reserved flow
//! and a best-effort flow swept 4 → 20 Mbps across a 3-AS chain of
//! 10 Mbps links with shallow (16 KiB) per-class link queues and a
//! bounded (128-packet) router service queue. Both senders are
//! closed-loop (windowed, ack-clocked, RTO with exponential backoff and
//! a bounded retransmit budget), so past saturation the sweep shows the
//! robustness story instead of a loss cliff:
//!
//! 1. **Reservation hold** — hummingbird/helia keep the reserved flow's
//!    goodput and p99 latency at the uncontended level at every step.
//! 2. **Graceful collapse** — the best-effort flow's completion-time
//!    goodput saturates at the leftover capacity while its p99 stays
//!    bounded by the queue caps; it keeps terminating.
//! 3. **Exact accounting** — every wire copy is delivered or attributed
//!    to a named drop counter, and every flow terminates. The binary
//!    *verifies* both for every point and exits nonzero on any
//!    violation — this is the CI smoke leg's contract.
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin
//! overload_sweep [-- --pkts <n>] [--engines <list>] [--json <path>]
//! [--no-calibrate]`
//!
//! `--pkts` caps each flow's packet budget (the CI smoke knob; 0 =
//! uncapped). The router service cost is calibrated from
//! `BENCH_hotpath.json` clone/1-core records when present
//! (`--no-calibrate` keeps the hand-set default). Every run writes
//! `BENCH_overload.json` (schema in `hummingbird_bench::json`);
//! `--json <path>` overrides the output location.

use hummingbird::netsim::{
    run_overload_scenario, EngineFamily, EngineScenario, FlowStats, OverloadPoint, OverloadSpec,
};
use hummingbird_bench::{
    flag_present, row, u64_from_args, write_overload_json, OverloadRecord, OverloadSaturation,
};
use hummingbird_dataplane::RouterConfig;

const START_S: u64 = 1_700_000_000;
const START_NS: u64 = START_S * 1_000_000_000;

/// Every wire copy either delivered or in a named drop counter.
fn conserved(s: &FlowStats) -> bool {
    s.sent_pkts
        == s.delivered_pkts
            + s.router_drops
            + s.queue_drops
            + s.link_down_drops
            + s.service_queue_drops
}

/// Checks one sweep point's hard invariants; returns the violations.
fn violations(label: &str, p: &OverloadPoint) -> Vec<String> {
    let mut v = Vec::new();
    if !p.reserved_done {
        v.push(format!("{label}: reserved flow did not terminate (livelock)"));
    }
    if !p.best_effort_done {
        v.push(format!("{label}: best-effort flow did not terminate (livelock)"));
    }
    if !conserved(&p.reserved) {
        v.push(format!("{label}: reserved flow leaks packets (conservation)"));
    }
    if !conserved(&p.best_effort) {
        v.push(format!("{label}: best-effort flow leaks packets (conservation)"));
    }
    v
}

fn main() {
    let cfg = RouterConfig::default();
    let pkts_cap = u64_from_args("pkts", 0);
    let calibrate = !flag_present("no-calibrate");
    let json_path = std::env::args()
        .skip_while(|a| a != "--json")
        .nth(1)
        .unwrap_or_else(|| "BENCH_overload.json".to_string());

    println!("== closed-loop overload sweep: bounded queues + backpressure ==");
    println!(
        "2 Mbps reserved vs swept best effort on 10 Mbps links (16 KiB class queues,\n\
         128-pkt router queues), closed-loop senders (window 32, RTO 100 ms, budget 4);\n\
         per-flow cap {} pkts\n",
        if pkts_cap == 0 { "unlimited".to_string() } else { pkts_cap.to_string() }
    );

    let widths = [12usize, 6, 9, 7, 9, 9, 7, 9, 9, 6, 6];
    println!(
        "{}",
        row(
            &[
                "family".into(),
                "shards".into(),
                "offered".into(),
                "rsv D%".into(),
                "rsv kbps".into(),
                "rsv p99".into(),
                "be D%".into(),
                "be kbps".into(),
                "be p99".into(),
                "rtx".into(),
                "drops".into(),
            ],
            &widths
        )
    );

    let mut records: Vec<OverloadRecord> = Vec::new();
    let mut saturation: Vec<OverloadSaturation> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut calibrated_any = false;

    for family in EngineFamily::ALL {
        for shards in [1usize, 4] {
            let scenario = EngineScenario { family, shards };
            let mut spec = OverloadSpec::new(scenario);
            spec.max_pkts_per_flow = pkts_cap;
            if calibrate {
                let before = spec.service_per_pkt_ns;
                spec = spec.calibrated();
                calibrated_any |= spec.service_per_pkt_ns != before
                    || hummingbird::netsim::calibrated_per_pkt_ns(family).is_some();
            }
            let out = run_overload_scenario(cfg, &spec, START_NS);

            let mut reserved_held = true;
            let mut sat_kbps = 0u64;
            for p in &out.points {
                let label = format!("{}x{shards}@{}kbps", family.name(), p.offered_kbps);
                failures.extend(violations(&label, p));
                if p.reserved.delivery_ratio() <= 0.95 {
                    reserved_held = false;
                }
                if p.best_effort_goodput_kbps() >= p.offered_kbps as f64 * 0.9 {
                    sat_kbps = sat_kbps.max(p.offered_kbps);
                }
                let drops = p.reserved.queue_drops
                    + p.reserved.service_queue_drops
                    + p.best_effort.queue_drops
                    + p.best_effort.service_queue_drops;
                println!(
                    "{}",
                    row(
                        &[
                            family.name().into(),
                            format!("{shards}"),
                            format!("{}", p.offered_kbps),
                            format!("{:.1}", p.reserved.delivery_ratio() * 100.0),
                            format!("{:.0}", p.reserved_goodput_kbps()),
                            format!("{:.2}", p.reserved.p99_latency_ms()),
                            format!("{:.1}", p.best_effort.delivery_ratio() * 100.0),
                            format!("{:.0}", p.best_effort_goodput_kbps()),
                            format!("{:.2}", p.best_effort.p99_latency_ms()),
                            format!("{}", p.reserved.retransmits + p.best_effort.retransmits),
                            format!("{drops}"),
                        ],
                        &widths
                    )
                );
                records.push(OverloadRecord {
                    family: family.name(),
                    shards,
                    offered_kbps: p.offered_kbps,
                    reserved_delivery: p.reserved.delivery_ratio(),
                    reserved_goodput_kbps: p.reserved_goodput_kbps(),
                    reserved_p99_ms: p.reserved.p99_latency_ms(),
                    be_delivery: p.best_effort.delivery_ratio(),
                    be_goodput_kbps: p.best_effort_goodput_kbps(),
                    be_p99_ms: p.best_effort.p99_latency_ms(),
                    retransmits: p.reserved.retransmits + p.best_effort.retransmits,
                    timeouts: p.reserved.timeouts + p.best_effort.timeouts,
                    stalls: p.reserved.backpressure_stalls + p.best_effort.backpressure_stalls,
                    queue_drops: p.reserved.queue_drops + p.best_effort.queue_drops,
                    service_queue_drops: p.reserved.service_queue_drops
                        + p.best_effort.service_queue_drops,
                    completed: p.reserved_done && p.best_effort_done,
                });
            }
            let last = out.points.last().expect("non-empty sweep");
            saturation.push(OverloadSaturation {
                family: family.name(),
                shards,
                saturation_kbps: sat_kbps,
                post_goodput_kbps: last.best_effort_goodput_kbps(),
                reserved_held,
            });
        }
    }

    match write_overload_json(&json_path, pkts_cap, calibrated_any, &records, &saturation) {
        Ok(()) => println!("\nwrote {} records to {json_path}", records.len()),
        Err(e) => eprintln!("\ncould not write {json_path}: {e}"),
    }

    if !failures.is_empty() {
        eprintln!("\noverload invariants VIOLATED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!(
        "\nreservation families hold the reserved flow's goodput and p99 through 2.5x\n\
         saturation; best effort saturates at the leftover capacity with bounded tails.\n\
         every point above passed termination + conservation (the CI contract)."
    );
}
