//! Figure 5: border-router packet validation and forwarding throughput
//! for different payload sizes and core counts, Hummingbird vs SCION
//! best-effort.
//!
//! The paper reaches the 160 Gbps line rate with 4 cores at 1500 B and
//! 32 cores at 100 B (AES-NI hardware). This software-AES reproduction is
//! slower in absolute terms; the *shape* to check is (i) near-linear core
//! scaling up to the line-rate cap, (ii) throughput proportional to
//! payload size, (iii) SCION ≈ 2.5x cheaper per packet than Hummingbird.
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin fig5_forwarding`

use hummingbird_bench::{row, DataplaneFixture, EPOCH_NS};
use hummingbird_dataplane::{forwarding_throughput, LINE_RATE_GBPS};

fn main() {
    let cores_list = [1usize, 2, 4, 8, 16, 32];
    let payloads = [100usize, 500, 1000, 1500];
    let pkts_per_core: u64 = 200_000;
    let physical = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("Figure 5: border-router forwarding throughput [Gbps], line rate {LINE_RATE_GBPS}");
    println!("(machine has {physical} hardware threads; rows beyond that oversubscribe)\n");

    for flyover in [true, false] {
        let label = if flyover { "Hummingbird (flyover on every hop)" } else { "SCION best effort" };
        println!("--- {label} ---");
        let mut widths = vec![6usize];
        widths.extend(std::iter::repeat(10).take(payloads.len()));
        let mut header = vec!["cores".to_string()];
        header.extend(payloads.iter().map(|p| format!("p={p}B")));
        println!("{}", row(&header, &widths));
        let fx = DataplaneFixture::new(4);
        for &cores in &cores_list {
            let mut cells = vec![format!("{cores}")];
            for &payload in &payloads {
                let pkt = fx.packet(payload, flyover);
                let t = forwarding_throughput(
                    || fx.router(),
                    &pkt,
                    cores,
                    pkts_per_core / cores.max(1) as u64 * 4,
                    EPOCH_NS,
                );
                cells.push(format!("{:.2}", t.gbps_line_capped()));
            }
            println!("{}", row(&cells, &widths));
        }
        // Per-packet cost at one core (comparable to Table 3's totals).
        let pkt = fx.packet(500, flyover);
        let t = forwarding_throughput(|| fx.router(), &pkt, 1, pkts_per_core, EPOCH_NS);
        println!("single-core per-packet cost: {:.0} ns\n", t.ns_per_pkt(1));
    }
    println!("paper (Fig. 5): line rate at 4 cores/1500 B and 32 cores/100 B;");
    println!("123 ns per SCION packet, 308 ns per Hummingbird packet (AES-NI).");
}
