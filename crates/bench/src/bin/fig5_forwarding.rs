//! Figure 5: border-router packet validation and forwarding throughput
//! for different payload sizes and core counts, across every `Datapath`
//! engine (Hummingbird vs SCION best-effort by default; add the Helia,
//! DRKey and EPIC baselines, the gateway or the null calibration engine
//! with `--engine`).
//!
//! The paper reaches the 160 Gbps line rate with 4 cores at 1500 B and
//! 32 cores at 100 B (AES-NI hardware). This software-AES reproduction is
//! slower in absolute terms; the *shape* to check is (i) near-linear core
//! scaling up to the line-rate cap, (ii) throughput proportional to
//! payload size, (iii) SCION ≈ 2.5x cheaper per packet than Hummingbird.
//!
//! With `--sharded`, each engine additionally runs as **one logical
//! router** on the worker-ring runtime: a dispatcher thread RSS-steers a
//! 64-flow workload into per-core rings so every reservation is policed
//! by exactly one shard — cross-core-correct policing, measured side by
//! side with the per-core-clone mode on the same input.
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin fig5_forwarding
//! [-- --engine hummingbird|scion|helia|drkey|epic|gateway|null|all]
//! [--sharded] [--cores 1,2,4] [--pkts <per-core count>]
//! [--json <path>]`
//!
//! Every run also writes the measured ns/pkt + Mpps points to
//! `BENCH_hotpath.json` (schema in `hummingbird_bench::json`) so the
//! hot-path perf trajectory is tracked machine-readably across PRs;
//! `--json <path>` overrides the output location.

use hummingbird_bench::{
    cores_from_args, engines_from_args, pkts_from_args, row, sharded_from_args, write_hotpath_json,
    BenchRecord, DataplaneFixture, EngineKind, EPOCH_NS,
};
use hummingbird_dataplane::{
    forwarding_throughput, run_to_completion, RuntimeConfig, RuntimeMode, LINE_RATE_GBPS,
};

fn main() {
    let engines = engines_from_args(&[EngineKind::Hummingbird, EngineKind::Scion]);
    let cores_list = cores_from_args(&[1usize, 2, 4, 8, 16, 32]);
    let payloads = [100usize, 500, 1000, 1500];
    let pkts_per_core: u64 = pkts_from_args(200_000);
    let sharded = sharded_from_args();
    let json_path = std::env::args()
        .skip_while(|a| a != "--json")
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let physical = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let backend = hummingbird_crypto::active_backend().name();
    println!(
        "Figure 5: forwarding throughput [Gbps] by Datapath engine, line rate {LINE_RATE_GBPS}"
    );
    println!("(machine has {physical} hardware threads; rows beyond that oversubscribe)");
    println!("(AES backend: {backend})\n");

    let mut records: Vec<BenchRecord> = Vec::new();
    for kind in engines {
        println!("--- engine: {} ---", kind.name());
        let mut widths = vec![6usize];
        widths.extend(std::iter::repeat_n(10, payloads.len()));
        let mut header = vec!["cores".to_string()];
        header.extend(payloads.iter().map(|p| format!("p={p}B")));
        println!("{}", row(&header, &widths));
        let fx = DataplaneFixture::new(4);
        for &cores in &cores_list {
            let mut cells = vec![format!("{cores}")];
            for &payload in &payloads {
                let pkt = fx.engine_packet(kind, payload);
                let t = forwarding_throughput(
                    || fx.engine(kind),
                    &pkt,
                    cores,
                    pkts_per_core / cores.max(1) as u64 * 4,
                    EPOCH_NS,
                );
                cells.push(format!("{:.2}", t.gbps_line_capped()));
                records.push(BenchRecord {
                    engine: kind.name(),
                    mode: "clone",
                    cores,
                    payload_b: payload,
                    ns_per_pkt: t.ns_per_pkt(cores),
                    mpps: t.mpps(),
                });
            }
            println!("{}", row(&cells, &widths));
        }
        // Per-packet cost at one core (comparable to Table 3's totals).
        let pkt = fx.engine_packet(kind, 500);
        let t = forwarding_throughput(|| fx.engine(kind), &pkt, 1, pkts_per_core, EPOCH_NS);
        println!("single-core per-packet cost: {:.0} ns\n", t.ns_per_pkt(1));

        if sharded {
            sharded_comparison(&fx, kind, &cores_list, pkts_per_core, &mut records);
        }
    }
    match write_hotpath_json(&json_path, backend, physical, &records) {
        Ok(()) => println!("wrote {} records to {json_path}\n", records.len()),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
    if sharded {
        println!("(sharded = one logical router: RSS dispatcher + per-core rings, every");
        println!(" ResID policed by exactly one shard; clone = independent engine per core.");
        println!(" The dispatcher needs a hardware thread of its own: with fewer than");
        println!(" cores+1 hardware threads it timeshares and the ratio underestimates");
        println!(" real hardware, where sharded matches or beats clone at 4+ cores.)\n");
    }
    println!("paper (Fig. 5): line rate at 4 cores/1500 B and 32 cores/100 B;");
    println!("123 ns per SCION packet, 308 ns per Hummingbird packet (AES-NI).");
}

/// Clone vs sharded runtime on the same 64-flow, 500 B workload.
fn sharded_comparison(
    fx: &DataplaneFixture,
    kind: EngineKind,
    cores_list: &[usize],
    pkts_per_core: u64,
    records: &mut Vec<BenchRecord>,
) {
    let templates = fx.flow_packets(kind, 500, 64);
    let widths = [6usize, 12, 12, 10];
    println!(
        "{}",
        row(&["cores".into(), "clone".into(), "sharded".into(), "ratio".into()], &widths)
    );
    for &cores in cores_list {
        let total = pkts_per_core / cores.max(1) as u64 * 4 * cores as u64;
        let mut cfg = RuntimeConfig::new(cores);
        // Source-keyed engines (gateway host buckets, EPIC per-source
        // keys/replay filters) shard on the source hash.
        if matches!(kind, EngineKind::Gateway | EngineKind::Epic) {
            cfg.steering = hummingbird_dataplane::Steering::BySource;
        }
        let clone = run_to_completion(
            &cfg,
            RuntimeMode::PerCoreClone,
            |_| fx.engine(kind),
            &templates,
            total,
            EPOCH_NS,
        )
        .throughput();
        let rss = run_to_completion(
            &cfg,
            RuntimeMode::Sharded,
            |_| fx.engine(kind),
            &templates,
            total,
            EPOCH_NS,
        )
        .throughput();
        let ratio = if clone.gbps() > 0.0 { rss.gbps() / clone.gbps() } else { 0.0 };
        records.push(BenchRecord {
            engine: kind.name(),
            mode: "sharded",
            cores,
            payload_b: 500,
            ns_per_pkt: rss.ns_per_pkt(cores),
            mpps: rss.mpps(),
        });
        println!(
            "{}",
            row(
                &[
                    format!("{cores}"),
                    format!("{:.2}", clone.gbps_line_capped()),
                    format!("{:.2}", rss.gbps_line_capped()),
                    format!("{ratio:.2}x"),
                ],
                &widths
            )
        );
    }
    println!();
}
