//! Figure 5: border-router packet validation and forwarding throughput
//! for different payload sizes and core counts, across every `Datapath`
//! engine (Hummingbird vs SCION best-effort by default; add the Helia,
//! DRKey and EPIC baselines, the gateway or the null calibration engine
//! with `--engine`, including comma lists like `--engine null,hummingbird`).
//!
//! The paper reaches the 160 Gbps line rate with 4 cores at 1500 B and
//! 32 cores at 100 B (AES-NI hardware). This software-AES reproduction is
//! slower in absolute terms; the *shape* to check is (i) near-linear core
//! scaling up to the line-rate cap, (ii) throughput proportional to
//! payload size, (iii) SCION ≈ 2.5x cheaper per packet than Hummingbird.
//!
//! With `--sharded`, each engine additionally runs as **one logical
//! router** on the multi-queue worker runtime: producer-side RSS splits a
//! 64-flow workload into per-shard rx queues so every reservation is
//! policed by exactly one shard — cross-core-correct policing, measured
//! side by side with the per-core-clone mode on the same input, plus a
//! core-scaling curve (clone and sharded at every `--cores` point).
//! `--rx-queues single` swaps back the legacy dispatcher-thread layout,
//! `--wait busy|yield[:n]|backoff` picks the worker wait strategy, and
//! `--batch <n>` sets the hot-loop burst size. Every sharded/clone
//! runtime run is checked for packet conservation (processed == offered);
//! a mismatch aborts the process with a nonzero exit, which is what the
//! CI smoke leg asserts.
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin fig5_forwarding
//! [-- --engine hummingbird|scion|helia|drkey|epic|gateway|null|all]
//! [--sharded] [--cores 1,2,4] [--pkts <per-core count>]
//! [--wait busy|yield[:n]|backoff] [--rx-queues multi|single]
//! [--batch <n>] [--json <path>]`
//!
//! Every run also writes the measured ns/pkt + Mpps points — and, when
//! `--sharded` is set, the per-engine core-scaling curves — to
//! `BENCH_hotpath.json` (schema 2 in `hummingbird_bench::json`) so the
//! hot-path perf trajectory is tracked machine-readably across PRs;
//! `--json <path>` overrides the output location.

use hummingbird_bench::{
    batch_from_args, cores_from_args, engines_from_args, pkts_from_args, row, rx_from_args,
    rx_label, sharded_from_args, wait_from_args, wait_label, write_hotpath_json, BenchRecord,
    DataplaneFixture, EngineKind, HotpathMeta, ScalingCurve, ScalingPoint, EPOCH_NS,
};
use hummingbird_dataplane::{
    forwarding_throughput, run_to_completion, ExecMode, RuntimeConfig, RuntimeMode, RuntimeReport,
    BATCH_SIZE, LINE_RATE_GBPS,
};

fn main() {
    let engines = engines_from_args(&[EngineKind::Hummingbird, EngineKind::Scion]);
    let cores_list = cores_from_args(&[1usize, 2, 4, 8, 16, 32]);
    let payloads = [100usize, 500, 1000, 1500];
    let pkts_per_core: u64 = pkts_from_args(200_000);
    let sharded = sharded_from_args();
    let wait = wait_from_args();
    let rx = rx_from_args();
    let batch = batch_from_args(BATCH_SIZE);
    let json_path = std::env::args()
        .skip_while(|a| a != "--json")
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let physical = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let backend = hummingbird_crypto::active_backend().name();
    println!(
        "Figure 5: forwarding throughput [Gbps] by Datapath engine, line rate {LINE_RATE_GBPS}"
    );
    println!("(machine has {physical} hardware threads; rows beyond that oversubscribe)");
    println!(
        "(AES backend: {backend}; wait: {}, rx: {}, batch: {batch})\n",
        wait_label(wait),
        rx_label(rx)
    );

    let mut records: Vec<BenchRecord> = Vec::new();
    let mut scaling: Vec<ScalingCurve> = Vec::new();
    for kind in engines {
        println!("--- engine: {} ---", kind.name());
        let mut widths = vec![6usize];
        widths.extend(std::iter::repeat_n(10, payloads.len()));
        let mut header = vec!["cores".to_string()];
        header.extend(payloads.iter().map(|p| format!("p={p}B")));
        println!("{}", row(&header, &widths));
        let fx = DataplaneFixture::new(4);
        for &cores in &cores_list {
            let mut cells = vec![format!("{cores}")];
            for &payload in &payloads {
                let pkt = fx.engine_packet(kind, payload);
                let t = forwarding_throughput(
                    || fx.engine(kind),
                    &pkt,
                    cores,
                    pkts_per_core / cores.max(1) as u64 * 4,
                    EPOCH_NS,
                );
                cells.push(format!("{:.2}", t.gbps_line_capped()));
                records.push(BenchRecord {
                    engine: kind.name(),
                    mode: "clone",
                    cores,
                    payload_b: payload,
                    ns_per_pkt: t.ns_per_pkt(cores),
                    mpps: t.mpps(),
                });
            }
            println!("{}", row(&cells, &widths));
        }
        // Per-packet cost at one core (comparable to Table 3's totals).
        let pkt = fx.engine_packet(kind, 500);
        let t = forwarding_throughput(|| fx.engine(kind), &pkt, 1, pkts_per_core, EPOCH_NS);
        println!("single-core per-packet cost: {:.0} ns\n", t.ns_per_pkt(1));

        if sharded {
            sharded_comparison(
                &fx,
                kind,
                &cores_list,
                pkts_per_core,
                wait,
                rx,
                batch,
                &mut records,
                &mut scaling,
            );
        }
    }
    let meta = HotpathMeta {
        aes_backend: backend,
        hardware_threads: physical,
        wait: wait_label(wait),
        rx_queues: rx_label(rx),
        batch,
    };
    match write_hotpath_json(&json_path, &meta, &records, &scaling) {
        Ok(()) => println!(
            "wrote {} records and {} scaling curves to {json_path}\n",
            records.len(),
            scaling.len()
        ),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
    if sharded {
        println!("(sharded = one logical router: producer-side RSS into per-shard rx queues,");
        println!(" every ResID policed by exactly one shard; clone = independent engine per");
        println!(" core. With fewer hardware threads than cores the runtime falls back to a");
        println!(" dedicated-core critical-path estimate — the speedup column then reports");
        println!(" what dedicated cores would sustain, not concurrent wall clock.)\n");
    }
    println!("paper (Fig. 5): line rate at 4 cores/1500 B and 32 cores/100 B;");
    println!("123 ns per SCION packet, 308 ns per Hummingbird packet (AES-NI).");
}

/// Aborts on a packet-conservation failure: every offered packet must be
/// accounted for by exactly one shard. This is the invariant the CI
/// smoke leg asserts (exit status, not log scraping).
fn assert_conserved(kind: EngineKind, mode: &str, cores: usize, offered: u64, r: &RuntimeReport) {
    let processed: u64 = r.per_shard.iter().map(|s| s.processed).sum();
    if processed != offered || r.packets != offered {
        eprintln!(
            "CONSERVATION FAILURE: engine {} mode {mode} cores {cores}: offered {offered}, \
             processed {processed}, reported {}",
            kind.name(),
            r.packets
        );
        std::process::exit(1);
    }
}

/// Clone vs sharded runtime on the same 64-flow, 500 B workload, plus
/// the core-scaling curves (speedup vs the 1-core point of each mode).
#[allow(clippy::too_many_arguments)]
fn sharded_comparison(
    fx: &DataplaneFixture,
    kind: EngineKind,
    cores_list: &[usize],
    pkts_per_core: u64,
    wait: hummingbird_dataplane::WaitStrategy,
    rx: hummingbird_dataplane::RxMode,
    batch: usize,
    records: &mut Vec<BenchRecord>,
    scaling: &mut Vec<ScalingCurve>,
) {
    let templates = fx.flow_packets(kind, 500, 64);
    let widths = [6usize, 12, 12, 10, 10];
    println!(
        "{}",
        row(
            &["cores".into(), "clone".into(), "sharded".into(), "ratio".into(), "scale".into()],
            &widths
        )
    );
    let mut clone_points: Vec<ScalingPoint> = Vec::new();
    let mut rss_points: Vec<ScalingPoint> = Vec::new();
    for &cores in cores_list {
        let total = pkts_per_core / cores.max(1) as u64 * 4 * cores as u64;
        let mut cfg = RuntimeConfig::new(cores);
        cfg.wait = wait;
        cfg.rx_mode = rx;
        cfg.batch_size = batch;
        // Real threads when the host has the cores, dedicated-core
        // critical-path estimate when it doesn't.
        cfg.exec = ExecMode::Auto;
        // Source-keyed engines (gateway host buckets, EPIC per-source
        // keys/replay filters) shard on the source hash.
        if matches!(kind, EngineKind::Gateway | EngineKind::Epic) {
            cfg.steering = hummingbird_dataplane::Steering::BySource;
        }
        let clone_report = run_to_completion(
            &cfg,
            RuntimeMode::PerCoreClone,
            |_| fx.engine(kind),
            &templates,
            total,
            EPOCH_NS,
        );
        assert_conserved(kind, "clone", cores, total, &clone_report);
        let clone = clone_report.throughput();
        let rss_report = run_to_completion(
            &cfg,
            RuntimeMode::Sharded,
            |_| fx.engine(kind),
            &templates,
            total,
            EPOCH_NS,
        );
        assert_conserved(kind, "sharded", cores, total, &rss_report);
        let rss = rss_report.throughput();
        let ratio = if clone.gbps() > 0.0 { rss.gbps() / clone.gbps() } else { 0.0 };
        let speedup = |points: &[ScalingPoint], mpps: f64| {
            points.first().map_or(1.0, |p0| if p0.mpps > 0.0 { mpps / p0.mpps } else { 0.0 })
        };
        let rss_speedup = speedup(&rss_points, rss.mpps());
        clone_points.push(ScalingPoint {
            cores,
            mpps: clone.mpps(),
            speedup: speedup(&clone_points, clone.mpps()),
        });
        rss_points.push(ScalingPoint { cores, mpps: rss.mpps(), speedup: rss_speedup });
        records.push(BenchRecord {
            engine: kind.name(),
            mode: "sharded",
            cores,
            payload_b: 500,
            ns_per_pkt: rss.ns_per_pkt(cores),
            mpps: rss.mpps(),
        });
        println!(
            "{}",
            row(
                &[
                    format!("{cores}"),
                    format!("{:.2}", clone.gbps_line_capped()),
                    format!("{:.2}", rss.gbps_line_capped()),
                    format!("{ratio:.2}x"),
                    format!("{rss_speedup:.2}x"),
                ],
                &widths
            )
        );
    }
    scaling.push(ScalingCurve { engine: kind.name(), mode: "clone", points: clone_points });
    scaling.push(ScalingCurve { engine: kind.name(), mode: "sharded", points: rss_points });
    println!();
}
