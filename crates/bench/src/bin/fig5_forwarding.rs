//! Figure 5: border-router packet validation and forwarding throughput
//! for different payload sizes and core counts, across every `Datapath`
//! engine (Hummingbird vs SCION best-effort by default; add the Helia and
//! DRKey baselines or the gateway with `--engine`).
//!
//! The paper reaches the 160 Gbps line rate with 4 cores at 1500 B and
//! 32 cores at 100 B (AES-NI hardware). This software-AES reproduction is
//! slower in absolute terms; the *shape* to check is (i) near-linear core
//! scaling up to the line-rate cap, (ii) throughput proportional to
//! payload size, (iii) SCION ≈ 2.5x cheaper per packet than Hummingbird.
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin fig5_forwarding
//! [-- --engine hummingbird|scion|helia|drkey|gateway|all]`

use hummingbird_bench::{engines_from_args, row, DataplaneFixture, EngineKind, EPOCH_NS};
use hummingbird_dataplane::{forwarding_throughput, LINE_RATE_GBPS};

fn main() {
    let engines = engines_from_args(&[EngineKind::Hummingbird, EngineKind::Scion]);
    let cores_list = [1usize, 2, 4, 8, 16, 32];
    let payloads = [100usize, 500, 1000, 1500];
    let pkts_per_core: u64 = 200_000;
    let physical = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "Figure 5: forwarding throughput [Gbps] by Datapath engine, line rate {LINE_RATE_GBPS}"
    );
    println!("(machine has {physical} hardware threads; rows beyond that oversubscribe)\n");

    for kind in engines {
        println!("--- engine: {} ---", kind.name());
        let mut widths = vec![6usize];
        widths.extend(std::iter::repeat_n(10, payloads.len()));
        let mut header = vec!["cores".to_string()];
        header.extend(payloads.iter().map(|p| format!("p={p}B")));
        println!("{}", row(&header, &widths));
        let fx = DataplaneFixture::new(4);
        for &cores in &cores_list {
            let mut cells = vec![format!("{cores}")];
            for &payload in &payloads {
                let pkt = fx.engine_packet(kind, payload);
                let t = forwarding_throughput(
                    || fx.engine(kind),
                    &pkt,
                    cores,
                    pkts_per_core / cores.max(1) as u64 * 4,
                    EPOCH_NS,
                );
                cells.push(format!("{:.2}", t.gbps_line_capped()));
            }
            println!("{}", row(&cells, &widths));
        }
        // Per-packet cost at one core (comparable to Table 3's totals).
        let pkt = fx.engine_packet(kind, 500);
        let t = forwarding_throughput(|| fx.engine(kind), &pkt, 1, pkts_per_core, EPOCH_NS);
        println!("single-core per-packet cost: {:.0} ns\n", t.ns_per_pkt(1));
    }
    println!("paper (Fig. 5): line rate at 4 cores/1500 B and 32 cores/100 B;");
    println!("123 ns per SCION packet, 308 ns per Hummingbird packet (AES-NI).");
}
