//! Real-socket end-to-end testbed: a gateway, a chain of border routers
//! and a sink exchanging *real UDP datagrams* over loopback
//! (`hummingbird_testbed`), swept across all four engine families × the
//! standard traffic mixes (CBR, bursty on/off, elephant/mice, flash
//! crowd).
//!
//! Each run sends `--pkts` datagrams through the chain; every router
//! validates each datagram with `PacketView::new_checked`, drives it
//! through a `ShardedRouter` over the family's engines (`--cores`
//! shards, `--wait` credit-wait strategy), and forwards the bytes to the
//! next hop's socket. The links are credit-windowed, so the binary can —
//! and does — verify **exact packet conservation** for every run:
//! `sent = delivered + engine drops + parse drops`, globally, per flow
//! and per class, with zero parse failures. Any violation prints loudly
//! and the process exits nonzero — this is the CI smoke leg's contract.
//!
//! Per (family, mix) the table reports delivery, goodput and the
//! reserved/best-effort end-to-end tail (p50/p95/p99/p99.9 from the
//! dataplane's log2-bucketed `LatencyHistogram`, so values are bucket
//! upper bounds).
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin testbed_e2e
//! [-- --pkts <n>] [--cores <n>] [--routers <n>] [--mix <name>]
//! [--wait busy|yield:<n>|backoff] [--json <path>]`
//!
//! Every run writes `BENCH_testbed.json` (schema in
//! `hummingbird_bench::json`); `--json <path>` overrides the location.

use hummingbird::netsim::EngineFamily;
use hummingbird_bench::{
    flag_value, row, u64_from_args, wait_from_args, wait_label, write_testbed_json, TestbedClass,
    TestbedMeta, TestbedRecord,
};
use hummingbird_testbed::{run_chain, ChainSpec, RunReport, TrafficMix, BEST_EFFORT, RESERVED};

/// Microseconds for a histogram percentile (bucket upper bound).
fn pct_us(h: &hummingbird_dataplane::LatencyHistogram, p: f64) -> f64 {
    h.percentile_ns(p) as f64 / 1_000.0
}

fn class_record(report: &RunReport, class: usize) -> TestbedClass {
    let c = &report.classes[class];
    TestbedClass {
        class: if class == RESERVED { "reserved" } else { "best_effort" },
        sent: c.sent,
        delivered: c.delivered,
        engine_drops: c.engine_dropped,
        goodput_mbps: c.goodput_mbps(report.wall_ns),
        p50_us: pct_us(&c.latency, 0.50),
        p95_us: pct_us(&c.latency, 0.95),
        p99_us: pct_us(&c.latency, 0.99),
        p999_us: pct_us(&c.latency, 0.999),
    }
}

fn main() {
    let pkts = u64_from_args("pkts", 1_000_000);
    let shards = u64_from_args("cores", 1) as usize;
    let routers = u64_from_args("routers", 3) as usize;
    let wait = wait_from_args();
    let json_path = flag_value("json").unwrap_or_else(|| "BENCH_testbed.json".to_string());
    let mixes: Vec<TrafficMix> = match flag_value("mix") {
        None => TrafficMix::ALL.to_vec(),
        Some(name) => match TrafficMix::from_name(&name) {
            Some(m) => vec![m],
            None => {
                eprintln!("unknown mix '{name}'; expected cbr|bursty|elephant_mice|flash_crowd");
                std::process::exit(2);
            }
        },
    };

    println!("== real-socket UDP testbed: gateway -> {routers} routers -> sink ==");
    println!(
        "{pkts} datagrams per run over loopback, {shards} shard(s) per router, wait {}\n",
        wait_label(wait)
    );

    let widths = [12usize, 14, 9, 9, 7, 9, 9, 9, 9, 10];
    println!(
        "{}",
        row(
            &[
                "family".into(),
                "mix".into(),
                "sent".into(),
                "delivered".into(),
                "drops".into(),
                "rsv p50us".into(),
                "rsv p99us".into(),
                "be p99us".into(),
                "be p999us".into(),
                "mbps".into(),
            ],
            &widths
        )
    );

    let mut records: Vec<TestbedRecord> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for family in EngineFamily::ALL {
        for &mix in &mixes {
            let mut spec = ChainSpec::new(family, mix);
            spec.pkts = pkts;
            spec.shards = shards;
            spec.routers = routers;
            spec.wait = wait;
            let label = format!("{}/{}", family.name(), mix.name());
            let report = match run_chain(&spec) {
                Ok(r) => r,
                Err(e) => {
                    failures.push(format!("{label}: chain failed: {e}"));
                    continue;
                }
            };
            for v in &report.violations {
                failures.push(format!("{label}: {v}"));
            }
            if report.parse_drops > 0 {
                failures.push(format!("{label}: {} datagrams failed to parse", report.parse_drops));
            }
            let reserved = class_record(&report, RESERVED);
            let best_effort = class_record(&report, BEST_EFFORT);
            println!(
                "{}",
                row(
                    &[
                        family.name().into(),
                        mix.name().into(),
                        format!("{}", report.sent),
                        format!("{}", report.delivered()),
                        format!("{}", report.engine_dropped()),
                        format!("{:.0}", reserved.p50_us),
                        format!("{:.0}", reserved.p99_us),
                        format!("{:.0}", best_effort.p99_us),
                        format!("{:.0}", best_effort.p999_us),
                        format!("{:.1}", reserved.goodput_mbps + best_effort.goodput_mbps),
                    ],
                    &widths
                )
            );
            if !report.drop_reasons.is_empty() {
                println!("    drop reasons: {:?}", report.drop_reasons);
            }
            records.push(TestbedRecord {
                family: family.name(),
                mix: mix.name(),
                sent: report.sent,
                delivered: report.delivered(),
                engine_drops: report.engine_dropped(),
                parse_drops: report.parse_drops,
                wall_ms: report.wall_ns as f64 / 1e6,
                conserved: report.violations.is_empty(),
                classes: vec![reserved, best_effort],
            });
        }
    }

    let meta = TestbedMeta {
        routers,
        shards,
        pkts_per_run: pkts,
        payload_b: 200,
        window: 64,
        wait: wait_label(wait),
    };
    match write_testbed_json(&json_path, &meta, &records) {
        Ok(()) => println!("\nwrote {} records to {json_path}", records.len()),
        Err(e) => {
            failures.push(format!("could not write {json_path}: {e}"));
        }
    }

    if !failures.is_empty() {
        eprintln!("\ntestbed invariants VIOLATED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!(
        "\nevery run above moved real UDP datagrams through {routers} socket routers with\n\
         exact conservation (sent = delivered + engine drops + parse drops, per class\n\
         and per flow) and zero parse failures — the CI smoke contract."
    );
}
