//! Table 4: fine-grained packet-generation timings at the source for a
//! four-hop path (the additional Hummingbird operations highlighted).
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin table4_gen_steps`

use hummingbird_bench::{row, DataplaneFixture, EPOCH_MS};
use hummingbird_crypto::{AuthKey, FlyoverMacInput};
use std::hint::black_box;
use std::time::Instant;

const ITERS: u64 = 200_000;

fn time_ns<F: FnMut()>(mut f: F) -> f64 {
    for _ in 0..ITERS / 10 {
        f();
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    start.elapsed().as_nanos() as f64 / ITERS as f64
}

fn main() {
    println!("Table 4: per-step source-generation timings, 4 AS-level hops\n");
    let widths = [46usize, 12];
    println!("{}", row(&["Task".into(), "Time [ns]".into()], &widths));

    let fx = DataplaneFixture::new(4);

    // Header assembly without any reservation work (SCION baseline).
    let mut scion_gen = fx.generator(false);
    let payload_500 = vec![0u8; 500];
    let payload_1500 = vec![0u8; 1500];
    let mut i = 0u64;
    let scion_500 = time_ns(|| {
        i += 1;
        black_box(scion_gen.generate(&payload_500, EPOCH_MS + i / 1000).unwrap());
    });
    println!(
        "{}",
        row(
            &["Add SCION headers + hop fields + 500 B payload".into(), format!("{scion_500:.0}")],
            &widths
        )
    );

    // The four flyover MACs in isolation.
    let key = AuthKey::new([9u8; 16]);
    let input = FlyoverMacInput {
        dst_isd: 2,
        dst_as: 0x20,
        pkt_len: 600,
        res_start_offset: 50,
        millis_ts: 1,
        counter: 2,
    };
    let one_mac = time_ns(|| {
        black_box(key.flyover_mac(black_box(&input)));
    });
    println!(
        "{}",
        row(
            &["Compute flyover MACs (4 on-path ASes)".into(), format!("{:.0}", 4.0 * one_mac)],
            &widths
        )
    );

    // Full Hummingbird generation at two payload sizes.
    let mut hb_gen = fx.generator(true);
    let mut i = 0u64;
    let hb_500 = time_ns(|| {
        i += 1;
        black_box(hb_gen.generate(&payload_500, EPOCH_MS + i / 1000).unwrap());
    });
    let mut i = 0u64;
    let hb_1500 = time_ns(|| {
        i += 1;
        black_box(hb_gen.generate(&payload_1500, EPOCH_MS + i / 1000).unwrap());
    });
    println!("{}", row(&["Total SCION, 500 B payload".into(), format!("{scion_500:.0}")], &widths));
    println!(
        "{}",
        row(&["Total Hummingbird, 500 B payload".into(), format!("{hb_500:.0}")], &widths)
    );
    println!(
        "{}",
        row(&["Total Hummingbird, 1500 B payload".into(), format!("{hb_1500:.0}")], &widths)
    );
    println!(
        "\nHummingbird/SCION generation cost ratio: {:.2}x (paper: 494/293 = 1.69x)",
        hb_500 / scion_500
    );
    println!("paper totals (4 hops): SCION 293 ns, Hummingbird 494 ns (500 B), 519 ns (1500 B);");
    println!("flyover MACs 201 ns of the difference.");
}
