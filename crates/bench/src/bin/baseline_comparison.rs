//! The paper's §2 comparison, made executable: Hummingbird vs a
//! Helia-style fixed-slot baseline on the dimensions the paper claims.
//!
//! 1. Reservation flexibility: bandwidth-time paid vs actually wanted.
//! 2. Ahead-of-time reservations: possible at all?
//! 3. Bandwidth choice: can the source pick its rate?
//! 4. Atomic path acquisition: partial-failure cost.
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin baseline_comparison`

use hummingbird::testbed::{Testbed, TestbedConfig};
use hummingbird::PurchaseSpec;
use hummingbird_baselines::helia::flexibility::{helia_slot_coverage, hummingbird_coverage};
use hummingbird_baselines::{slot_of, HeliaService, SLOT_SECS};
use hummingbird_bench::{DataplaneFixture, EngineKind, EPOCH_NS};
use hummingbird_dataplane::forwarding_throughput;
use hummingbird_wire::IsdAs;

fn main() {
    println!("== Hummingbird vs Helia-style baseline (paper §2) ==\n");
    let now = 1_700_000_000u64;

    // ------------------------------------------------------------------
    println!("-- 1. reservation flexibility: paid vs wanted bandwidth-time --");
    println!("{:<28} {:>12} {:>12} {:>10}", "scenario", "wanted [s]", "paid [s]", "overhead");
    for (label, start, end) in [
        ("10 s trade burst", now + 8, now + 18),
        ("90 s VoIP call", now + 5, now + 95),
        ("47 min video call", now, now + 47 * 60),
    ] {
        let (want, helia_paid) = helia_slot_coverage(start, end);
        let (_, hb_paid) = hummingbird_coverage(start, end, 1);
        println!(
            "{:<28} {:>12} {:>12} {:>9.0}%   (Helia, {SLOT_SECS}s slots)",
            label,
            want,
            helia_paid,
            (helia_paid as f64 / want as f64 - 1.0) * 100.0
        );
        println!(
            "{:<28} {:>12} {:>12} {:>9.0}%   (Hummingbird, 1s granularity)",
            "",
            want,
            hb_paid,
            (hb_paid as f64 / want as f64 - 1.0) * 100.0
        );
    }

    // ------------------------------------------------------------------
    println!("\n-- 2. ahead-of-time reservations --");
    let mut helia = HeliaService::new(IsdAs::new(1, 1), [1u8; 16], 100_000, 100);
    let tomorrow_slot = slot_of(now + 86_400);
    match helia.request(IsdAs::new(2, 2), now, tomorrow_slot) {
        Err(e) => println!("Helia: reserving for tomorrow fails: {e}"),
        Ok(_) => unreachable!(),
    }
    let mut tb = Testbed::build(TestbedConfig { n_ases: 1, ..Default::default() }).unwrap();
    let t0 = tb.cfg.start_unix_s;
    tb.stock_market(100_000, t0 + 86_400, t0 + 86_400 + 3600, 60, 100).unwrap();
    let mut client = tb.new_client("planner", 10_000);
    let spec = PurchaseSpec { start: t0 + 86_400, end: t0 + 86_400 + 600, bandwidth_kbps: 4_000 };
    let grants = tb.acquire_path(&mut client, spec).unwrap();
    println!(
        "Hummingbird: bought + redeemed tomorrow's reservation today (start in {} h), key in hand",
        (grants[0].res_info.res_start as u64 - t0) / 3600
    );

    // ------------------------------------------------------------------
    println!("\n-- 3. who chooses the bandwidth --");
    let mut helia = HeliaService::new(IsdAs::new(1, 1), [1u8; 16], 100_000, 100);
    let g1 = helia.request(IsdAs::new(2, 1), now, slot_of(now)).unwrap();
    let g2 = helia.request(IsdAs::new(2, 2), now, slot_of(now)).unwrap();
    println!(
        "Helia: source 1 was handed {} kbps, then demand halved it to {} kbps for source 2 — \
         neither asked for a rate",
        g1.bandwidth_kbps, g2.bandwidth_kbps
    );
    println!(
        "Hummingbird: the client above requested exactly 4000 kbps and was granted class {}",
        grants[0].res_info.bw_encoded
    );

    // ------------------------------------------------------------------
    println!("\n-- 4. atomic path acquisition --");
    println!("Helia: each hop requested independently; a failure on hop k strands k-1 grants");
    println!("       (and their cost) with no rollback — the paper's partial-failure problem.");
    let mut tb = Testbed::build(TestbedConfig { n_ases: 3, ..Default::default() }).unwrap();
    let t0 = tb.cfg.start_unix_s;
    // Stock only a bandwidth that hop purchases can't satisfy: whole-path
    // failure must move nothing.
    tb.stock_market(1_000, t0 - 60, t0 + 3540, 60, 100).unwrap();
    let mut client = tb.new_client("atomic", 10_000);
    let before = tb.control.ledger.balance(client.account);
    let bad = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 4_000 };
    assert!(tb.acquire_path(&mut client, bad).is_err());
    assert_eq!(tb.control.ledger.balance(client.account), before);
    println!("Hummingbird: 3-hop purchase failed atomically; client balance unchanged.");

    // ------------------------------------------------------------------
    println!("\n-- 5. per-packet datapath cost, one interface through one `Datapath` trait --");
    let fx = DataplaneFixture::new(4);
    println!("{:<14} {:>14} {:>12}", "engine", "ns/pkt (1core)", "verdict class");
    for kind in EngineKind::ALL {
        let pkt = fx.engine_packet(kind, 500);
        let t = forwarding_throughput(|| fx.engine(kind), &pkt, 1, 50_000, EPOCH_NS);
        let class = match kind {
            EngineKind::Hummingbird | EngineKind::Helia | EngineKind::Gateway => "priority",
            EngineKind::Scion | EngineKind::Drkey | EngineKind::Epic => "best effort",
            EngineKind::Null => "pass-through",
        };
        println!("{:<14} {:>14.0} {:>12}", kind.name(), t.ns_per_pkt(1), class);
    }

    println!("\nsummary (paper §2): Hummingbird = Helia's per-hop flyovers");
    println!("+ negotiable size/start/duration + ahead-of-time setup + end-host keys");
    println!("+ tradable assets + atomic paths − DRKey − gateways − fixed slots.");
}
