//! Table 1: gas and dollar cost of atomically buying and redeeming a full
//! path, for 1-16 hops, with the paper's worst-case split on every asset
//! (two time splits + one bandwidth split).
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin table1_gas`

use hummingbird::testbed::{Testbed, TestbedConfig};
use hummingbird::PurchaseSpec;
use hummingbird_bench::row;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("Table 1: atomic buy-and-redeem cost per path length");
    println!("(worst-case split per asset: 2x time, 1x bandwidth; reference prices:");
    println!(" 7.5e-7 SUI/unit computation, 7.6e-6 SUI/byte storage, 1.221 USD/SUI)\n");
    let widths = [5, 13, 11, 11, 9, 9];
    println!(
        "{}",
        row(
            &[
                "Hops".into(),
                "Computation".into(),
                "Storage".into(),
                "Rebate".into(),
                "SUI".into(),
                "USD".into(),
            ],
            &widths
        )
    );

    for hops in [1usize, 2, 4, 8, 16] {
        let mut tb =
            Testbed::build(TestbedConfig { n_ases: hops, ..Default::default() }).expect("testbed");
        let t0 = tb.cfg.start_unix_s;
        // Large parent assets so the purchase needs the full worst-case
        // split: buy an interior window with partial bandwidth.
        tb.stock_market(100_000, t0 - 3600, t0 + 36_000, 60, 100).expect("stock");
        let mut client = tb.new_client("bench", 100_000);
        let listings = tb.control.listings(tb.market);
        let spec = PurchaseSpec { start: t0, end: t0 + 600, bandwidth_kbps: 4_000 };
        let hop_list: Vec<_> = (0..hops)
            .map(|i| {
                let (ing_if, eg_if) = hummingbird::LinearTopology::interfaces(hops, i);
                let find = |interface: u16, dir: hummingbird::Direction| {
                    listings
                        .iter()
                        .find(|(_, _, a)| {
                            a.as_id == Testbed::as_id(i)
                                && a.interface == interface
                                && a.direction == dir
                        })
                        .expect("listing")
                        .0
                };
                (
                    find(ing_if, hummingbird::Direction::Ingress),
                    find(eg_if, hummingbird::Direction::Egress),
                    spec,
                )
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(1);
        let rx = client
            .buy_and_redeem_path(&mut tb.control, tb.market, &hop_list, &mut rng)
            .expect("atomic purchase");
        let g = rx.gas;
        println!(
            "{}",
            row(
                &[
                    format!("{hops}"),
                    format!("{:.5}", g.computation_cost as f64 / 1e9),
                    format!("{:.4}", g.storage_cost as f64 / 1e9),
                    format!("{:.4}", g.storage_rebate as f64 / 1e9),
                    format!("{:.4}", g.total_sui()),
                    format!("{:.4}", g.total_usd(&tb.control.ledger.gas)),
                ],
                &widths
            )
        );
    }
    println!("\npaper (Table 1): 1 hop 0.031 SUI/0.038 USD ... 16 hops 0.49 SUI/0.60 USD,");
    println!(
        "computation buckets 0.00075 SUI (1-4 hops), 0.0015 (8), 0.0030 (16); linear in hops."
    );
}
