//! Figure 15: single-core packet-generation throughput at the source for
//! different payload sizes and hop counts, Hummingbird vs SCION.
//!
//! The paper's reference points (single core): at 1 kB payload and 4 hops,
//! Hummingbird 17.90 Gbps vs SCION 28.64 Gbps; at 100 B, 4.65 vs 7.70.
//! The shape: throughput grows with payload (fixed per-packet cost) and
//! falls with hop count; SCION ≈ 1.6x Hummingbird.
//!
//! Run with: `cargo run --release -p hummingbird-bench --bin fig15_single_core`

use hummingbird_bench::{row, DataplaneFixture, EPOCH_MS};
use hummingbird_dataplane::generation_throughput;

fn main() {
    let payloads = [100usize, 500, 1000, 1500];
    let hop_counts = [1usize, 2, 4, 8, 16];
    let pkts: u64 = 150_000;
    println!("Figure 15: single-core generation throughput [Gbps] by payload and hops\n");

    for flyover in [true, false] {
        let label = if flyover { "Hummingbird" } else { "SCION best effort" };
        println!("--- {label} ---");
        let mut widths = vec![8usize];
        widths.extend(std::iter::repeat_n(9, hop_counts.len()));
        let mut header = vec!["payload".to_string()];
        header.extend(hop_counts.iter().map(|h| format!("h={h}")));
        println!("{}", row(&header, &widths));
        for &payload in &payloads {
            let mut cells = vec![format!("{payload}B")];
            for &h in &hop_counts {
                let fx = DataplaneFixture::new(h);
                let t = generation_throughput(|| fx.generator(flyover), payload, 1, pkts, EPOCH_MS);
                cells.push(format!("{:.2}", t.gbps()));
            }
            println!("{}", row(&cells, &widths));
        }
        println!();
    }
    // The paper's headline comparison point.
    let fx = DataplaneFixture::new(4);
    let hb = generation_throughput(|| fx.generator(true), 1000, 1, pkts, EPOCH_MS);
    let sc = generation_throughput(|| fx.generator(false), 1000, 1, pkts, EPOCH_MS);
    println!(
        "1 kB / 4 hops: Hummingbird {:.2} Gbps vs SCION {:.2} Gbps (ratio {:.2}; paper: 17.90 vs 28.64 = 1.60)",
        hb.gbps(),
        sc.gbps(),
        sc.gbps() / hb.gbps()
    );
}
