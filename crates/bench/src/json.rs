//! Machine-readable benchmark output: `BENCH_hotpath.json`,
//! `BENCH_netsim.json` and `BENCH_overload.json`.
//!
//! The figure binaries print human-readable tables; this module emits the
//! same numbers as small JSON documents so the performance trajectory can
//! be tracked across PRs (one run of each is checked in at the repository
//! root as the trajectory seed).
//!
//! # Hot-path schema (`schema = 2`)
//!
//! ```json
//! {
//!   "schema": 2,
//!   "bench": "hotpath",
//!   "aes_backend": "ni",          // active AES backend: "soft" | "ni"
//!   "hardware_threads": 8,        // available parallelism of the host
//!   "wait": "backoff",            // worker wait strategy:
//!                                 //   "busy" | "yield:<n>" | "backoff"
//!   "rx_queues": "multi",         // rx layout: "multi" (per-shard rx
//!                                 //   queues) | "single" (legacy
//!                                 //   dispatcher thread)
//!   "batch": 32,                  // packets per burst in the hot loop
//!   "records": [
//!     {
//!       "engine": "hummingbird",  // EngineKind name
//!       "mode": "clone",          // "clone" | "sharded"
//!       "cores": 1,               // worker cores driving the engine
//!       "payload_b": 500,         // payload bytes per packet
//!       "ns_per_pkt": 308.2,      // per-core-seconds per packet
//!       "mpps": 3.24              // aggregate million packets / second
//!     }
//!   ],
//!   "scaling": [
//!     {
//!       "engine": "null",         // EngineKind name
//!       "mode": "sharded",        // "clone" | "sharded"
//!       "curve": [
//!         {
//!           "cores": 2,           // worker cores at this point
//!           "mpps": 18.1,         // aggregate throughput at this point
//!           "speedup": 1.94      // mpps relative to the 1-core point
//!         }                       //   of the same (engine, mode) curve
//!       ]
//!     }
//!   ]
//! }
//! ```
//!
//! Schema 2 added the `wait` / `rx_queues` / `batch` runtime knobs and
//! the `scaling` section (per-engine core-scaling curves, the Fig. 5
//! "does N shards buy ~N×?" question in machine-readable form). The
//! `records` rows are unchanged from schema 1.
//!
//! `ns_per_pkt` / `mpps` / `speedup` are `null` when a degenerate run
//! (zero duration) produced a non-finite value — consumers should drop
//! such points rather than read them as zeros.
//!
//! # Netsim-scale schema (`schema = 1`)
//!
//! Written by the `netsim_scale` binary: one churned four-family sweep of
//! the generated ring-of-PoPs backbone (`netsim::topo` + `netsim::churn`),
//! tracking how fast the discrete-event simulator chews through an
//! Internet-scale topology and whether the recovery contrast holds.
//!
//! ```json
//! {
//!   "schema": 1,
//!   "bench": "netsim",
//!   "seed": 12648430,             // topology/key/background-mesh seed
//!   "sim_s": 3,                   // simulated seconds per family run
//!   "records": [
//!     {
//!       "family": "hummingbird",  // EngineFamily name
//!       "shards": 1,              // shards per router datapath
//!       "routers": 100,           // generated backbone routers
//!       "adjacencies": 131,       // bidirectional backbone links
//!       "flows": 258,             // victim + flood + background flows
//!       "events": 5922331,        // simulator events processed
//!       "wall_ms": 812.402,       // host wall-clock for the run
//!       "events_per_sec": 7289e3, // events / wall second (the trend)
//!       "recovery_delivery": 0.97,// victim delivery after the reroute
//!       "recovery_ms": 12.31,     // victim mean latency after reroute
//!       "link_failures": 3,       // injected mid-epoch link failures
//!       "rerouted": 2,            // flows moved onto surviving paths
//!       "stranded": 0             // flows left with no surviving path
//!     }
//!   ]
//! }
//! ```
//!
//! `wall_ms` / `events_per_sec` are host-dependent (trend, not truth);
//! everything else in a record is deterministic for a given seed. Floats
//! degrade to `null` when non-finite, as in the hot-path schema.
//!
//! # Overload schema (`schema = 1`)
//!
//! Written by the `overload_sweep` binary: the closed-loop overload
//! sweep (`netsim::run_overload_scenario`) per engine family ×
//! {single, 4-shard} — a credentialed reserved flow against a
//! best-effort flow whose offered load is swept through and past the
//! bottleneck's saturation point, with bounded link and router queues.
//! The binary verifies conservation and termination for every point
//! before writing, so a checked-in document is also a green light.
//!
//! ```json
//! {
//!   "schema": 1,
//!   "bench": "overload",
//!   "pkts_cap": 2000,             // per-flow packet cap (0 = uncapped)
//!   "service_calibrated": true,   // per-pkt cost from BENCH_hotpath.json
//!   "records": [
//!     {
//!       "family": "hummingbird",  // EngineFamily name
//!       "shards": 1,              // shards per router datapath
//!       "offered_kbps": 16000,    // best-effort offered load
//!       "reserved_delivery": 1.0, // reserved delivered / sent copies
//!       "reserved_goodput_kbps": 2230.1,  // over its completion time
//!       "reserved_p99_ms": 8.39,  // reserved p99 end-to-end latency
//!       "be_delivery": 0.945,     // best-effort delivered / sent
//!       "be_goodput_kbps": 6395.2,// over its completion time
//!       "be_p99_ms": 33.55,       // best-effort p99 latency (bounded
//!                                 //   by the queue caps)
//!       "retransmits": 114,       // both flows' retried copies
//!       "timeouts": 116,          // both flows' RTO fires
//!       "stalls": 1950,           // both flows' full-window stalls
//!       "queue_drops": 116,       // link-queue tail drops, both flows
//!       "service_queue_drops": 0, // router-queue drops, both flows
//!       "completed": true         // both flows terminated (no livelock)
//!     }
//!   ],
//!   "saturation": [
//!     {
//!       "family": "hummingbird",  // EngineFamily name
//!       "shards": 1,
//!       "saturation_kbps": 8000,  // largest offered step the best-
//!                                 //   effort flow still finished at
//!                                 //   ≥ 0.9 of (0 = none did)
//!       "post_goodput_kbps": 6953.2, // best-effort goodput at the
//!                                 //   highest (2.5×) step — graceful
//!                                 //   degradation, not collapse
//!       "reserved_held": true     // reserved delivery > 0.95 at every
//!                                 //   step (the reservation promise)
//!     }
//!   ]
//! }
//! ```
//!
//! # Control-plane scale schema (`schema = 1`)
//!
//! Written by the `control_scale` binary: one seeded run that admits
//! `reservations` reservations through the issue → redeem → deliver
//! flow, renews every one through the O(1) renewal fast path, and
//! batch-clears a round of sealed-bid auctions with the
//! [`ClearingEngine`](../hummingbird_control/clearing/index.html). The
//! binary verifies the conservation invariants before writing, so a
//! checked-in document is also a green light.
//!
//! ```json
//! {
//!   "schema": 1,
//!   "bench": "control",
//!   "seed": 7,                    // deterministic run seed
//!   "reservations": 1000000,      // reservations admitted and renewed
//!   "shards": 8,                  // data-plane shards steering ResIDs
//!   "auctions": 256,              // auctions in the cleared epoch
//!   "phases": [
//!     {
//!       "phase": "admit",         // "admit" | "renew" | "clear"
//!       "ops": 1000000,           // logical operations (reservations
//!                                 //   admitted / renewed / auctions
//!                                 //   settled)
//!       "txs": 4000000,           // ledger transactions committed
//!       "wall_ms": 31250.5,       // host wall-clock for the phase
//!       "ops_per_sec": 32000.1    // ops / wall second (the trend)
//!     }
//!   ],
//!   "state": {
//!     "ledger_objects": 2000345,  // committed objects after the run
//!     "ledger_bytes": 312000000,  // committed payload bytes
//!     "bytes_per_reservation": 312.0, // ledger_bytes / reservations
//!     "ledger_txs": 6000123,      // transactions committed in total
//!     "res_id_high_water": 999999,// highest ResID in use on the
//!                                 //   admission interface
//!     "shard_skew": 1.0           // max/min active reservations
//!   },                            //   across shards (1.0 = balanced)
//!   "invariants": {
//!     "bandwidth_time_conserved": true, // Σ granted bw×time == Σ issued
//!     "coin_supply_conserved": true,    // minted == supply + burned gas
//!     "shard_skew_ok": true,            // shard_skew <= 1.1
//!     "renewal_keys_ok": true,          // sampled renewals unwrap to the
//!                                       //   border-router A_K derivation
//!     "auction_escrows_drained": true   // no MIST stranded in escrow
//!   }
//! }
//! ```
//!
//! `wall_ms` / `ops_per_sec` are host-dependent (trend, not truth);
//! counts, state and invariants are deterministic for a given seed.
//! Floats degrade to `null` when non-finite, as everywhere else.
//!
//! # Testbed schema (`schema = 1`)
//!
//! Written by the `testbed_e2e` binary: real UDP datagrams over loopback
//! through a gateway → border-router chain → sink deployment
//! (`hummingbird_testbed`), per engine family × traffic mix. The binary
//! verifies exact packet conservation (globally, per class and per flow)
//! and zero parse failures for every run before writing, so a checked-in
//! document is also a green light.
//!
//! ```json
//! {
//!   "schema": 1,
//!   "bench": "testbed",
//!   "routers": 3,                 // border routers in the chain
//!   "shards": 1,                  // engine shards per router
//!   "pkts_per_run": 1000000,      // datagrams the gateway sends per run
//!   "payload_b": 200,             // L4 payload bytes per packet
//!   "window": 64,                 // credit window per link, frames
//!   "wait": "backoff",            // sender wait strategy (as hotpath)
//!   "records": [
//!     {
//!       "family": "hummingbird",  // EngineFamily name
//!       "mix": "cbr",             // TrafficMix name
//!       "sent": 1000000,          // gateway datagrams
//!       "delivered": 1000000,     // sink datagrams
//!       "engine_drops": 0,        // engine-verdict drops on the chain
//!       "parse_drops": 0,         // structurally invalid datagrams
//!       "wall_ms": 9210.4,        // sink first-delivery → FIN window
//!       "conserved": true,        // sent == delivered + drops, exactly,
//!                                 //   globally and per flow/class
//!       "classes": [
//!         {
//!           "class": "reserved",  // "reserved" | "best_effort"
//!           "sent": 500000,
//!           "delivered": 500000,
//!           "engine_drops": 0,
//!           "goodput_mbps": 78.1, // delivered payload bits / wall time
//!           "p50_us": 127.0,      // end-to-end latency percentiles
//!           "p95_us": 255.0,      //   (log2-bucketed upper bounds,
//!           "p99_us": 511.0,      //   microseconds)
//!           "p999_us": 1023.0
//!         }
//!       ]
//!     }
//!   ]
//! }
//! ```
//!
//! `wall_ms` / `goodput_mbps` / `p*_us` are host-dependent (trend, not
//! truth); the counts and `conserved` are exact. Floats degrade to
//! `null` when non-finite, as everywhere else.
//!
//! No JSON library exists in the offline build environment, so the writers
//! are hand-rolled for exactly these shapes; all strings they emit are
//! engine/family identifiers (lowercase ASCII, no escaping needed).

use std::io::Write as _;

/// One measured (engine, mode, cores, payload) point.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Engine name (`EngineKind::name`).
    pub engine: &'static str,
    /// Runtime layout: `clone` (independent engine per core) or
    /// `sharded` (RSS dispatcher + per-shard workers).
    pub mode: &'static str,
    /// Worker cores driving the engine.
    pub cores: usize,
    /// Payload bytes per packet.
    pub payload_b: usize,
    /// Nanoseconds of core time per packet.
    pub ns_per_pkt: f64,
    /// Aggregate throughput in million packets per second.
    pub mpps: f64,
}

/// Formats a float with enough precision for trend tracking while
/// keeping the file diff-friendly (3 decimal places, no exponent).
/// Non-finite values (a zero-duration degenerate run) serialize as
/// `null` so trend tooling rejects the point instead of reading it as
/// a genuine zero.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Host and runtime configuration stamped into the hot-path document
/// head (everything a reader needs to reproduce the run).
#[derive(Clone, Debug, PartialEq)]
pub struct HotpathMeta {
    /// Active AES backend: `soft` or `ni`.
    pub aes_backend: &'static str,
    /// Available parallelism of the host.
    pub hardware_threads: usize,
    /// Worker wait strategy: `busy`, `yield:<n>`, or `backoff`.
    pub wait: String,
    /// Rx layout: `multi` (per-shard rx queues, producer-side RSS) or
    /// `single` (legacy dispatcher thread).
    pub rx_queues: &'static str,
    /// Packets per burst in the runtime hot loop.
    pub batch: usize,
}

/// One point on a core-scaling curve: throughput at `cores` workers and
/// its ratio to the 1-core point of the same curve.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalingPoint {
    /// Worker cores at this point.
    pub cores: usize,
    /// Aggregate throughput in million packets per second.
    pub mpps: f64,
    /// `mpps` relative to the curve's 1-core point (1.0 at 1 core).
    pub speedup: f64,
}

/// A per-(engine, mode) core-scaling curve for the `scaling` section.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalingCurve {
    /// Engine name (`EngineKind::name`).
    pub engine: &'static str,
    /// Runtime layout: `clone` or `sharded`.
    pub mode: &'static str,
    /// The measured points, in ascending core order.
    pub points: Vec<ScalingPoint>,
}

/// Serializes `records` and `scaling` to the `BENCH_hotpath.json`
/// schema (version 2; shape in the module docs).
pub fn hotpath_json(
    meta: &HotpathMeta,
    records: &[BenchRecord],
    scaling: &[ScalingCurve],
) -> String {
    let mut out = String::with_capacity(512 + records.len() * 128 + scaling.len() * 256);
    out.push_str("{\n");
    out.push_str("  \"schema\": 2,\n");
    out.push_str("  \"bench\": \"hotpath\",\n");
    out.push_str(&format!("  \"aes_backend\": \"{}\",\n", meta.aes_backend));
    out.push_str(&format!("  \"hardware_threads\": {},\n", meta.hardware_threads));
    out.push_str(&format!("  \"wait\": \"{}\",\n", meta.wait));
    out.push_str(&format!("  \"rx_queues\": \"{}\",\n", meta.rx_queues));
    out.push_str(&format!("  \"batch\": {},\n", meta.batch));
    out.push_str("  \"records\": [");
    for (i, r) in records.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"engine\": \"{}\", \"mode\": \"{}\", \"cores\": {}, \"payload_b\": {}, \
             \"ns_per_pkt\": {}, \"mpps\": {}}}",
            r.engine,
            r.mode,
            r.cores,
            r.payload_b,
            num(r.ns_per_pkt),
            num(r.mpps),
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str("  \"scaling\": [");
    for (i, c) in scaling.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"engine\": \"{}\", \"mode\": \"{}\", \"curve\": [",
            c.engine, c.mode
        ));
        for (j, p) in c.points.iter().enumerate() {
            out.push_str(if j == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "      {{\"cores\": {}, \"mpps\": {}, \"speedup\": {}}}",
                p.cores,
                num(p.mpps),
                num(p.speedup),
            ));
        }
        out.push_str("\n    ]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes the document to `path` (atomically enough for a benchmark:
/// truncate + write).
pub fn write_hotpath_json(
    path: &str,
    meta: &HotpathMeta,
    records: &[BenchRecord],
    scaling: &[ScalingCurve],
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(hotpath_json(meta, records, scaling).as_bytes())
}

/// One churned netsim run of a single engine family on the generated
/// backbone (the `BENCH_netsim.json` record; schema in the module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct NetsimRecord {
    /// Engine family name (`EngineFamily::name`).
    pub family: &'static str,
    /// Shards per router datapath.
    pub shards: usize,
    /// Routers in the generated backbone.
    pub routers: usize,
    /// Bidirectional adjacencies in the generated backbone.
    pub adjacencies: usize,
    /// Total flows driven (victim + flood + background mesh).
    pub flows: usize,
    /// Simulator events processed over the run.
    pub events: u64,
    /// Host wall-clock for the run, milliseconds.
    pub wall_ms: f64,
    /// Events per wall-clock second — the throughput trend.
    pub events_per_sec: f64,
    /// Victim delivery ratio over the post-reroute recovery window.
    pub recovery_delivery: f64,
    /// Victim mean latency over the recovery window, milliseconds.
    pub recovery_ms: f64,
    /// Mid-epoch link failures injected.
    pub link_failures: usize,
    /// Flows rerouted onto surviving paths.
    pub rerouted: usize,
    /// Flows stranded with no surviving path.
    pub stranded: usize,
}

/// Serializes `records` to the `BENCH_netsim.json` schema.
pub fn netsim_json(seed: u64, sim_s: u64, records: &[NetsimRecord]) -> String {
    let mut out = String::with_capacity(256 + records.len() * 256);
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"bench\": \"netsim\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"sim_s\": {sim_s},\n"));
    out.push_str("  \"records\": [");
    for (i, r) in records.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"shards\": {}, \"routers\": {}, \"adjacencies\": {}, \
             \"flows\": {}, \"events\": {}, \"wall_ms\": {}, \"events_per_sec\": {}, \
             \"recovery_delivery\": {}, \"recovery_ms\": {}, \"link_failures\": {}, \
             \"rerouted\": {}, \"stranded\": {}}}",
            r.family,
            r.shards,
            r.routers,
            r.adjacencies,
            r.flows,
            r.events,
            num(r.wall_ms),
            num(r.events_per_sec),
            num(r.recovery_delivery),
            num(r.recovery_ms),
            r.link_failures,
            r.rerouted,
            r.stranded,
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes the netsim document to `path` (truncate + write, like
/// [`write_hotpath_json`]).
pub fn write_netsim_json(
    path: &str,
    seed: u64,
    sim_s: u64,
    records: &[NetsimRecord],
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(netsim_json(seed, sim_s, records).as_bytes())
}

/// One swept overload point of one (family, shards) deployment (the
/// `BENCH_overload.json` record; schema in the module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct OverloadRecord {
    /// Engine family name (`EngineFamily::name`).
    pub family: &'static str,
    /// Shards per router datapath.
    pub shards: usize,
    /// Best-effort offered load at this point, kbps.
    pub offered_kbps: u64,
    /// Reserved flow: delivered / sent wire copies.
    pub reserved_delivery: f64,
    /// Reserved flow: goodput over its own completion time, kbps.
    pub reserved_goodput_kbps: f64,
    /// Reserved flow: p99 end-to-end latency, ms.
    pub reserved_p99_ms: f64,
    /// Best-effort flow: delivered / sent wire copies.
    pub be_delivery: f64,
    /// Best-effort flow: goodput over its own completion time, kbps.
    pub be_goodput_kbps: f64,
    /// Best-effort flow: p99 end-to-end latency, ms.
    pub be_p99_ms: f64,
    /// Retransmitted copies, both flows.
    pub retransmits: u64,
    /// RTO fires, both flows.
    pub timeouts: u64,
    /// Full-window send stalls, both flows.
    pub stalls: u64,
    /// Link-queue tail drops, both flows.
    pub queue_drops: u64,
    /// Bounded router-queue drops, both flows.
    pub service_queue_drops: u64,
    /// Both flows terminated (no livelock).
    pub completed: bool,
}

/// The per-(family, shards) saturation summary of an overload sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct OverloadSaturation {
    /// Engine family name (`EngineFamily::name`).
    pub family: &'static str,
    /// Shards per router datapath.
    pub shards: usize,
    /// Largest offered step the best-effort flow still finished at
    /// ≥ 0.9× of (0 when even the first step saturated).
    pub saturation_kbps: u64,
    /// Best-effort goodput at the highest offered step, kbps.
    pub post_goodput_kbps: f64,
    /// Whether reserved delivery stayed above 0.95 at every step.
    pub reserved_held: bool,
}

/// Serializes the overload sweep to the `BENCH_overload.json` schema.
pub fn overload_json(
    pkts_cap: u64,
    service_calibrated: bool,
    records: &[OverloadRecord],
    saturation: &[OverloadSaturation],
) -> String {
    let mut out = String::with_capacity(256 + records.len() * 320 + saturation.len() * 128);
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"bench\": \"overload\",\n");
    out.push_str(&format!("  \"pkts_cap\": {pkts_cap},\n"));
    out.push_str(&format!("  \"service_calibrated\": {service_calibrated},\n"));
    out.push_str("  \"records\": [");
    for (i, r) in records.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"shards\": {}, \"offered_kbps\": {}, \
             \"reserved_delivery\": {}, \"reserved_goodput_kbps\": {}, \"reserved_p99_ms\": {}, \
             \"be_delivery\": {}, \"be_goodput_kbps\": {}, \"be_p99_ms\": {}, \
             \"retransmits\": {}, \"timeouts\": {}, \"stalls\": {}, \"queue_drops\": {}, \
             \"service_queue_drops\": {}, \"completed\": {}}}",
            r.family,
            r.shards,
            r.offered_kbps,
            num(r.reserved_delivery),
            num(r.reserved_goodput_kbps),
            num(r.reserved_p99_ms),
            num(r.be_delivery),
            num(r.be_goodput_kbps),
            num(r.be_p99_ms),
            r.retransmits,
            r.timeouts,
            r.stalls,
            r.queue_drops,
            r.service_queue_drops,
            r.completed,
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str("  \"saturation\": [");
    for (i, s) in saturation.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"shards\": {}, \"saturation_kbps\": {}, \
             \"post_goodput_kbps\": {}, \"reserved_held\": {}}}",
            s.family,
            s.shards,
            s.saturation_kbps,
            num(s.post_goodput_kbps),
            s.reserved_held,
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes the overload document to `path` (truncate + write, like
/// [`write_hotpath_json`]).
pub fn write_overload_json(
    path: &str,
    pkts_cap: u64,
    service_calibrated: bool,
    records: &[OverloadRecord],
    saturation: &[OverloadSaturation],
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(overload_json(pkts_cap, service_calibrated, records, saturation).as_bytes())
}

/// Head fields of a control-plane scale run (the `BENCH_control.json`
/// document; schema in the module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct ControlMeta {
    /// Deterministic run seed.
    pub seed: u64,
    /// Reservations admitted and renewed.
    pub reservations: u64,
    /// Data-plane shards the ResID allocation steers across.
    pub shards: usize,
    /// Auctions batch-cleared in the settlement epoch.
    pub auctions: u64,
}

/// One timed phase of a control-plane scale run.
#[derive(Clone, Debug, PartialEq)]
pub struct ControlPhase {
    /// Phase name: `admit`, `renew` or `clear`.
    pub phase: &'static str,
    /// Logical operations (reservations admitted / renewed, auctions
    /// settled).
    pub ops: u64,
    /// Ledger transactions committed during the phase.
    pub txs: u64,
    /// Host wall-clock for the phase, milliseconds.
    pub wall_ms: f64,
    /// Operations per wall-clock second — the throughput trend.
    pub ops_per_sec: f64,
}

/// End-of-run ledger and allocator state.
#[derive(Clone, Debug, PartialEq)]
pub struct ControlState {
    /// Committed objects after the run.
    pub ledger_objects: u64,
    /// Committed payload bytes after the run.
    pub ledger_bytes: u64,
    /// `ledger_bytes / reservations` — the per-reservation footprint.
    pub bytes_per_reservation: f64,
    /// Transactions committed in total.
    pub ledger_txs: u64,
    /// Highest ResID in use on the admission interface.
    pub res_id_high_water: u64,
    /// Max/min active reservations across shards (1.0 = balanced).
    pub shard_skew: f64,
}

/// The hard invariants a control-plane scale run must uphold; the
/// binary exits nonzero when any is `false`.
#[derive(Clone, Debug, PartialEq)]
pub struct ControlInvariants {
    /// Σ granted bandwidth×time equals Σ issued bandwidth×time.
    pub bandwidth_time_conserved: bool,
    /// Minted MIST equals remaining supply plus burned gas, exactly.
    pub coin_supply_conserved: bool,
    /// `shard_skew` within the 1.1 steering bound.
    pub shard_skew_ok: bool,
    /// Sampled renewal deliveries unwrap to the border-router `A_K`.
    pub renewal_keys_ok: bool,
    /// No MIST left in any auction escrow after clearing.
    pub auction_escrows_drained: bool,
}

impl ControlInvariants {
    /// Whether every invariant held.
    pub fn all_ok(&self) -> bool {
        self.bandwidth_time_conserved
            && self.coin_supply_conserved
            && self.shard_skew_ok
            && self.renewal_keys_ok
            && self.auction_escrows_drained
    }
}

/// Serializes a control-plane scale run to the `BENCH_control.json`
/// schema.
pub fn control_json(
    meta: &ControlMeta,
    phases: &[ControlPhase],
    state: &ControlState,
    invariants: &ControlInvariants,
) -> String {
    let mut out = String::with_capacity(512 + phases.len() * 128);
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"bench\": \"control\",\n");
    out.push_str(&format!("  \"seed\": {},\n", meta.seed));
    out.push_str(&format!("  \"reservations\": {},\n", meta.reservations));
    out.push_str(&format!("  \"shards\": {},\n", meta.shards));
    out.push_str(&format!("  \"auctions\": {},\n", meta.auctions));
    out.push_str("  \"phases\": [");
    for (i, p) in phases.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"phase\": \"{}\", \"ops\": {}, \"txs\": {}, \"wall_ms\": {}, \
             \"ops_per_sec\": {}}}",
            p.phase,
            p.ops,
            p.txs,
            num(p.wall_ms),
            num(p.ops_per_sec),
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"state\": {{\"ledger_objects\": {}, \"ledger_bytes\": {}, \
         \"bytes_per_reservation\": {}, \"ledger_txs\": {}, \"res_id_high_water\": {}, \
         \"shard_skew\": {}}},\n",
        state.ledger_objects,
        state.ledger_bytes,
        num(state.bytes_per_reservation),
        state.ledger_txs,
        state.res_id_high_water,
        num(state.shard_skew),
    ));
    out.push_str(&format!(
        "  \"invariants\": {{\"bandwidth_time_conserved\": {}, \"coin_supply_conserved\": {}, \
         \"shard_skew_ok\": {}, \"renewal_keys_ok\": {}, \"auction_escrows_drained\": {}}}\n",
        invariants.bandwidth_time_conserved,
        invariants.coin_supply_conserved,
        invariants.shard_skew_ok,
        invariants.renewal_keys_ok,
        invariants.auction_escrows_drained,
    ));
    out.push_str("}\n");
    out
}

/// Writes the control-plane document to `path` (truncate + write, like
/// [`write_hotpath_json`]).
pub fn write_control_json(
    path: &str,
    meta: &ControlMeta,
    phases: &[ControlPhase],
    state: &ControlState,
    invariants: &ControlInvariants,
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(control_json(meta, phases, state, invariants).as_bytes())
}

/// Run-wide configuration stamped into the testbed document head.
#[derive(Clone, Debug, PartialEq)]
pub struct TestbedMeta {
    /// Border routers in the chain.
    pub routers: usize,
    /// Engine shards per router.
    pub shards: usize,
    /// Datagrams the gateway sends per run.
    pub pkts_per_run: u64,
    /// L4 payload bytes per packet.
    pub payload_b: usize,
    /// Credit window per link, in data frames.
    pub window: usize,
    /// Sender wait strategy: `busy`, `yield:<n>`, or `backoff`.
    pub wait: String,
}

/// One traffic class of one testbed run.
#[derive(Clone, Debug, PartialEq)]
pub struct TestbedClass {
    /// `reserved` or `best_effort`.
    pub class: &'static str,
    /// Gateway datagrams in this class.
    pub sent: u64,
    /// Sink datagrams in this class.
    pub delivered: u64,
    /// Engine-verdict drops along the chain.
    pub engine_drops: u64,
    /// Delivered payload rate over the sink window, Mbit/s.
    pub goodput_mbps: f64,
    /// End-to-end latency percentiles, microseconds (log2-bucketed
    /// upper bounds from the dataplane `LatencyHistogram`).
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile, microseconds.
    pub p999_us: f64,
}

/// One (family, mix) testbed run (the `BENCH_testbed.json` record;
/// schema in the module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct TestbedRecord {
    /// Engine family name (`EngineFamily::name`).
    pub family: &'static str,
    /// Traffic mix name (`TrafficMix::name`).
    pub mix: &'static str,
    /// Gateway datagrams sent.
    pub sent: u64,
    /// Sink datagrams delivered.
    pub delivered: u64,
    /// Engine-verdict drops along the chain.
    pub engine_drops: u64,
    /// Structurally invalid datagrams (must be 0 on a green run).
    pub parse_drops: u64,
    /// Sink measurement window (first delivery → FIN), milliseconds.
    pub wall_ms: f64,
    /// Exact conservation held globally and per flow/class.
    pub conserved: bool,
    /// Per-class breakdown: reserved, then best_effort.
    pub classes: Vec<TestbedClass>,
}

/// Serializes `records` to the `BENCH_testbed.json` schema.
pub fn testbed_json(meta: &TestbedMeta, records: &[TestbedRecord]) -> String {
    let mut out = String::with_capacity(512 + records.len() * 512);
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"bench\": \"testbed\",\n");
    out.push_str(&format!("  \"routers\": {},\n", meta.routers));
    out.push_str(&format!("  \"shards\": {},\n", meta.shards));
    out.push_str(&format!("  \"pkts_per_run\": {},\n", meta.pkts_per_run));
    out.push_str(&format!("  \"payload_b\": {},\n", meta.payload_b));
    out.push_str(&format!("  \"window\": {},\n", meta.window));
    out.push_str(&format!("  \"wait\": \"{}\",\n", meta.wait));
    out.push_str("  \"records\": [");
    for (i, r) in records.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"mix\": \"{}\", \"sent\": {}, \"delivered\": {}, \
             \"engine_drops\": {}, \"parse_drops\": {}, \"wall_ms\": {}, \"conserved\": {}, \
             \"classes\": [",
            r.family,
            r.mix,
            r.sent,
            r.delivered,
            r.engine_drops,
            r.parse_drops,
            num(r.wall_ms),
            r.conserved,
        ));
        for (j, c) in r.classes.iter().enumerate() {
            out.push_str(if j == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "      {{\"class\": \"{}\", \"sent\": {}, \"delivered\": {}, \
                 \"engine_drops\": {}, \"goodput_mbps\": {}, \"p50_us\": {}, \"p95_us\": {}, \
                 \"p99_us\": {}, \"p999_us\": {}}}",
                c.class,
                c.sent,
                c.delivered,
                c.engine_drops,
                num(c.goodput_mbps),
                num(c.p50_us),
                num(c.p95_us),
                num(c.p99_us),
                num(c.p999_us),
            ));
        }
        out.push_str("\n    ]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes the testbed document to `path` (truncate + write, like
/// [`write_hotpath_json`]).
pub fn write_testbed_json(
    path: &str,
    meta: &TestbedMeta,
    records: &[TestbedRecord],
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(testbed_json(meta, records).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> HotpathMeta {
        HotpathMeta {
            aes_backend: "ni",
            hardware_threads: 8,
            wait: "yield:64".to_string(),
            rx_queues: "multi",
            batch: 32,
        }
    }

    #[test]
    fn float_writer_rejects_non_finite_values() {
        // Every float in every schema funnels through `num`: non-finite
        // values must never reach the document as raw `NaN`/`inf` (which
        // is invalid JSON) — they degrade to `null`, which consumers
        // reject explicitly.
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(f64::NEG_INFINITY), "null");
        // Finite values serialize as plain decimals.
        assert_eq!(num(0.0), "0.000");
        assert_eq!(num(308.25), "308.250");
        assert_eq!(num(-1.5), "-1.500");
    }

    #[test]
    fn schema_shape_is_stable() {
        let records = [
            BenchRecord {
                engine: "hummingbird",
                mode: "clone",
                cores: 1,
                payload_b: 500,
                ns_per_pkt: 308.25,
                mpps: 3.2446,
            },
            BenchRecord {
                engine: "scion",
                mode: "sharded",
                cores: 4,
                payload_b: 100,
                ns_per_pkt: 123.0,
                mpps: f64::NAN,
            },
        ];
        let scaling = [ScalingCurve {
            engine: "null",
            mode: "sharded",
            points: vec![
                ScalingPoint { cores: 1, mpps: 9.31, speedup: 1.0 },
                ScalingPoint { cores: 2, mpps: 18.1004, speedup: f64::INFINITY },
            ],
        }];
        let doc = hotpath_json(&meta(), &records, &scaling);
        assert!(doc.starts_with("{\n  \"schema\": 2,"));
        assert!(doc.contains("\"aes_backend\": \"ni\""));
        assert!(doc.contains("\"hardware_threads\": 8"));
        assert!(doc.contains("\"wait\": \"yield:64\""));
        assert!(doc.contains("\"rx_queues\": \"multi\""));
        assert!(doc.contains("\"batch\": 32"));
        assert!(doc.contains(
            "{\"engine\": \"hummingbird\", \"mode\": \"clone\", \"cores\": 1, \
             \"payload_b\": 500, \"ns_per_pkt\": 308.250, \"mpps\": 3.245}"
        ));
        assert!(doc.contains("{\"engine\": \"null\", \"mode\": \"sharded\", \"curve\": ["));
        assert!(doc.contains("{\"cores\": 2, \"mpps\": 18.100, \"speedup\": null}"));
        // Non-finite values degrade to null (rejectable), never NaN/inf.
        assert!(doc.contains("\"mpps\": null"));
        assert!(!doc.contains("NaN") && !doc.contains("inf"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn empty_record_set_is_valid() {
        let doc = hotpath_json(&meta(), &[], &[]);
        assert!(doc.contains("\"records\": [\n  ],"));
        assert!(doc.contains("\"scaling\": [\n  ]"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn netsim_schema_shape_is_stable() {
        let records = [NetsimRecord {
            family: "hummingbird",
            shards: 1,
            routers: 100,
            adjacencies: 131,
            flows: 258,
            events: 5_922_331,
            wall_ms: 812.4019,
            events_per_sec: 7_289_456.7,
            recovery_delivery: 0.9734,
            recovery_ms: f64::INFINITY,
            link_failures: 3,
            rerouted: 2,
            stranded: 0,
        }];
        let doc = netsim_json(0xC0FFEE, 3, &records);
        assert!(doc.starts_with("{\n  \"schema\": 1,\n  \"bench\": \"netsim\","));
        assert!(doc.contains("\"seed\": 12648430"));
        assert!(doc.contains("\"sim_s\": 3"));
        assert!(doc.contains(
            "{\"family\": \"hummingbird\", \"shards\": 1, \"routers\": 100, \
             \"adjacencies\": 131, \"flows\": 258, \"events\": 5922331, \
             \"wall_ms\": 812.402, \"events_per_sec\": 7289456.700, \
             \"recovery_delivery\": 0.973, \"recovery_ms\": null, \
             \"link_failures\": 3, \"rerouted\": 2, \"stranded\": 0}"
        ));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        // Empty sweeps still serialize.
        assert!(netsim_json(1, 1, &[]).contains("\"records\": [\n  ]"));
    }

    #[test]
    fn overload_schema_shape_is_stable() {
        let records = [OverloadRecord {
            family: "hummingbird",
            shards: 1,
            offered_kbps: 16_000,
            reserved_delivery: 1.0,
            reserved_goodput_kbps: 2230.11,
            reserved_p99_ms: 8.3886,
            be_delivery: 0.9455,
            be_goodput_kbps: 6395.249,
            be_p99_ms: f64::NAN,
            retransmits: 114,
            timeouts: 116,
            stalls: 1950,
            queue_drops: 116,
            service_queue_drops: 0,
            completed: true,
        }];
        let saturation = [OverloadSaturation {
            family: "hummingbird",
            shards: 1,
            saturation_kbps: 8_000,
            post_goodput_kbps: 6953.2,
            reserved_held: true,
        }];
        let doc = overload_json(2000, true, &records, &saturation);
        assert!(doc.starts_with("{\n  \"schema\": 1,\n  \"bench\": \"overload\","));
        assert!(doc.contains("\"pkts_cap\": 2000"));
        assert!(doc.contains("\"service_calibrated\": true"));
        assert!(doc.contains(
            "{\"family\": \"hummingbird\", \"shards\": 1, \"offered_kbps\": 16000, \
             \"reserved_delivery\": 1.000, \"reserved_goodput_kbps\": 2230.110, \
             \"reserved_p99_ms\": 8.389, \"be_delivery\": 0.946, \
             \"be_goodput_kbps\": 6395.249, \"be_p99_ms\": null, \
             \"retransmits\": 114, \"timeouts\": 116, \"stalls\": 1950, \"queue_drops\": 116, \
             \"service_queue_drops\": 0, \"completed\": true}"
        ));
        assert!(doc.contains(
            "{\"family\": \"hummingbird\", \"shards\": 1, \"saturation_kbps\": 8000, \
             \"post_goodput_kbps\": 6953.200, \"reserved_held\": true}"
        ));
        // Non-finite floats degrade to null; booleans are bare.
        assert!(!doc.contains("NaN") && !doc.contains("inf"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        // Empty sweeps still serialize.
        let empty = overload_json(0, false, &[], &[]);
        assert!(empty.contains("\"records\": [\n  ],"));
        assert!(empty.contains("\"saturation\": [\n  ]"));
    }

    #[test]
    fn control_schema_shape_is_stable() {
        let meta = ControlMeta { seed: 7, reservations: 1_000_000, shards: 8, auctions: 256 };
        let phases = vec![
            ControlPhase {
                phase: "admit",
                ops: 1_000_000,
                txs: 4_000_000,
                wall_ms: 31250.5,
                ops_per_sec: 32000.0512,
            },
            ControlPhase {
                phase: "renew",
                ops: 1_000_000,
                txs: 1_000_128,
                wall_ms: f64::NAN,
                ops_per_sec: f64::INFINITY,
            },
        ];
        let state = ControlState {
            ledger_objects: 2_000_345,
            ledger_bytes: 312_000_000,
            bytes_per_reservation: 312.0,
            ledger_txs: 6_000_123,
            res_id_high_water: 999_999,
            shard_skew: 1.0004,
        };
        let invariants = ControlInvariants {
            bandwidth_time_conserved: true,
            coin_supply_conserved: true,
            shard_skew_ok: true,
            renewal_keys_ok: true,
            auction_escrows_drained: false,
        };
        assert!(!invariants.all_ok());
        let doc = control_json(&meta, &phases, &state, &invariants);
        assert!(doc.starts_with("{\n  \"schema\": 1,\n  \"bench\": \"control\","));
        assert!(doc.contains("\"seed\": 7"));
        assert!(doc.contains("\"reservations\": 1000000"));
        assert!(doc.contains("\"shards\": 8"));
        assert!(doc.contains("\"auctions\": 256"));
        assert!(doc.contains(
            "{\"phase\": \"admit\", \"ops\": 1000000, \"txs\": 4000000, \
             \"wall_ms\": 31250.500, \"ops_per_sec\": 32000.051}"
        ));
        // Non-finite floats degrade to null.
        assert!(doc.contains(
            "{\"phase\": \"renew\", \"ops\": 1000000, \"txs\": 1000128, \
             \"wall_ms\": null, \"ops_per_sec\": null}"
        ));
        assert!(doc.contains(
            "\"state\": {\"ledger_objects\": 2000345, \"ledger_bytes\": 312000000, \
             \"bytes_per_reservation\": 312.000, \"ledger_txs\": 6000123, \
             \"res_id_high_water\": 999999, \"shard_skew\": 1.000}"
        ));
        assert!(doc.contains(
            "\"invariants\": {\"bandwidth_time_conserved\": true, \
             \"coin_supply_conserved\": true, \"shard_skew_ok\": true, \
             \"renewal_keys_ok\": true, \"auction_escrows_drained\": false}"
        ));
        assert!(!doc.contains("NaN") && !doc.contains("inf"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        // A run with no phases still serializes.
        let all_ok = ControlInvariants { auction_escrows_drained: true, ..invariants };
        assert!(all_ok.all_ok());
        let empty = control_json(&meta, &[], &state, &all_ok);
        assert!(empty.contains("\"phases\": [\n  ],"));
        assert_eq!(empty.matches('{').count(), empty.matches('}').count());
    }

    #[test]
    fn testbed_schema_shape_is_stable() {
        let meta = TestbedMeta {
            routers: 3,
            shards: 1,
            pkts_per_run: 1_000_000,
            payload_b: 200,
            window: 64,
            wait: "backoff".to_string(),
        };
        let records = [TestbedRecord {
            family: "hummingbird",
            mix: "cbr",
            sent: 1_000_000,
            delivered: 1_000_000,
            engine_drops: 0,
            parse_drops: 0,
            wall_ms: 9210.4189,
            conserved: true,
            classes: vec![
                TestbedClass {
                    class: "reserved",
                    sent: 500_000,
                    delivered: 500_000,
                    engine_drops: 0,
                    goodput_mbps: 78.0912,
                    p50_us: 127.0,
                    p95_us: 255.0,
                    p99_us: 511.0,
                    p999_us: f64::NAN,
                },
                TestbedClass {
                    class: "best_effort",
                    sent: 500_000,
                    delivered: 500_000,
                    engine_drops: 0,
                    goodput_mbps: 77.5,
                    p50_us: 127.0,
                    p95_us: 255.0,
                    p99_us: 511.0,
                    p999_us: 1023.0,
                },
            ],
        }];
        let doc = testbed_json(&meta, &records);
        assert!(doc.starts_with("{\n  \"schema\": 1,\n  \"bench\": \"testbed\","));
        assert!(doc.contains("\"routers\": 3"));
        assert!(doc.contains("\"pkts_per_run\": 1000000"));
        assert!(doc.contains("\"window\": 64"));
        assert!(doc.contains("\"wait\": \"backoff\""));
        assert!(doc.contains(
            "{\"family\": \"hummingbird\", \"mix\": \"cbr\", \"sent\": 1000000, \
             \"delivered\": 1000000, \"engine_drops\": 0, \"parse_drops\": 0, \
             \"wall_ms\": 9210.419, \"conserved\": true, \"classes\": ["
        ));
        assert!(doc.contains(
            "{\"class\": \"reserved\", \"sent\": 500000, \"delivered\": 500000, \
             \"engine_drops\": 0, \"goodput_mbps\": 78.091, \"p50_us\": 127.000, \
             \"p95_us\": 255.000, \"p99_us\": 511.000, \"p999_us\": null}"
        ));
        assert!(doc.contains("\"class\": \"best_effort\""));
        // Non-finite floats degrade to null; booleans are bare.
        assert!(!doc.contains("NaN") && !doc.contains("inf"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        // An empty run set still serializes.
        let empty = testbed_json(&meta, &[]);
        assert!(empty.contains("\"records\": [\n  ]"));
        assert_eq!(empty.matches('{').count(), empty.matches('}').count());
    }
}
