//! Machine-readable benchmark output: `BENCH_hotpath.json`.
//!
//! The figure binaries print human-readable tables; this module emits the
//! same hot-path numbers as a small JSON document so the performance
//! trajectory can be tracked across PRs (one run is checked in at the
//! repository root as the trajectory seed).
//!
//! # Schema (`schema = 1`)
//!
//! ```json
//! {
//!   "schema": 1,
//!   "bench": "hotpath",
//!   "aes_backend": "ni",          // active AES backend: "soft" | "ni"
//!   "hardware_threads": 8,        // available parallelism of the host
//!   "records": [
//!     {
//!       "engine": "hummingbird",  // EngineKind name
//!       "mode": "clone",          // "clone" | "sharded"
//!       "cores": 1,               // worker cores driving the engine
//!       "payload_b": 500,         // payload bytes per packet
//!       "ns_per_pkt": 308.2,      // per-core-seconds per packet
//!       "mpps": 3.24              // aggregate million packets / second
//!     }
//!   ]
//! }
//! ```
//!
//! `ns_per_pkt` / `mpps` are `null` when a degenerate run (zero
//! duration) produced a non-finite value — consumers should drop such
//! points rather than read them as zeros.
//!
//! No JSON library exists in the offline build environment, so the writer
//! is hand-rolled for exactly this shape; all strings it emits are
//! engine/backend identifiers (lowercase ASCII, no escaping needed).

use std::io::Write as _;

/// One measured (engine, mode, cores, payload) point.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Engine name (`EngineKind::name`).
    pub engine: &'static str,
    /// Runtime layout: `clone` (independent engine per core) or
    /// `sharded` (RSS dispatcher + per-shard workers).
    pub mode: &'static str,
    /// Worker cores driving the engine.
    pub cores: usize,
    /// Payload bytes per packet.
    pub payload_b: usize,
    /// Nanoseconds of core time per packet.
    pub ns_per_pkt: f64,
    /// Aggregate throughput in million packets per second.
    pub mpps: f64,
}

/// Formats a float with enough precision for trend tracking while
/// keeping the file diff-friendly (3 decimal places, no exponent).
/// Non-finite values (a zero-duration degenerate run) serialize as
/// `null` so trend tooling rejects the point instead of reading it as
/// a genuine zero.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Serializes `records` to the `BENCH_hotpath.json` schema.
pub fn hotpath_json(aes_backend: &str, hardware_threads: usize, records: &[BenchRecord]) -> String {
    let mut out = String::with_capacity(256 + records.len() * 128);
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"bench\": \"hotpath\",\n");
    out.push_str(&format!("  \"aes_backend\": \"{aes_backend}\",\n"));
    out.push_str(&format!("  \"hardware_threads\": {hardware_threads},\n"));
    out.push_str("  \"records\": [");
    for (i, r) in records.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"engine\": \"{}\", \"mode\": \"{}\", \"cores\": {}, \"payload_b\": {}, \
             \"ns_per_pkt\": {}, \"mpps\": {}}}",
            r.engine,
            r.mode,
            r.cores,
            r.payload_b,
            num(r.ns_per_pkt),
            num(r.mpps),
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes the document to `path` (atomically enough for a benchmark:
/// truncate + write).
pub fn write_hotpath_json(
    path: &str,
    aes_backend: &str,
    hardware_threads: usize,
    records: &[BenchRecord],
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(hotpath_json(aes_backend, hardware_threads, records).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape_is_stable() {
        let records = [
            BenchRecord {
                engine: "hummingbird",
                mode: "clone",
                cores: 1,
                payload_b: 500,
                ns_per_pkt: 308.25,
                mpps: 3.2446,
            },
            BenchRecord {
                engine: "scion",
                mode: "sharded",
                cores: 4,
                payload_b: 100,
                ns_per_pkt: 123.0,
                mpps: f64::NAN,
            },
        ];
        let doc = hotpath_json("ni", 8, &records);
        assert!(doc.starts_with("{\n  \"schema\": 1,"));
        assert!(doc.contains("\"aes_backend\": \"ni\""));
        assert!(doc.contains("\"hardware_threads\": 8"));
        assert!(doc.contains(
            "{\"engine\": \"hummingbird\", \"mode\": \"clone\", \"cores\": 1, \
             \"payload_b\": 500, \"ns_per_pkt\": 308.250, \"mpps\": 3.245}"
        ));
        // Non-finite values degrade to null (rejectable), never NaN.
        assert!(doc.contains("\"mpps\": null"));
        assert!(!doc.contains("NaN"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn empty_record_set_is_valid() {
        let doc = hotpath_json("soft", 1, &[]);
        assert!(doc.contains("\"records\": [\n  ]"));
    }
}
