//! Criterion micro-benchmarks of the data-plane hot path and its
//! cryptographic building blocks. Complements the table/figure binaries
//! with statistically rigorous per-operation numbers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hummingbird_bench::{DataplaneFixture, EngineKind, EPOCH_MS, EPOCH_NS, EPOCH_S};
use hummingbird_crypto::aes::{bytewise::ByteAes128, Aes128, AesBackend};
use hummingbird_crypto::cmac::Cmac;
use hummingbird_crypto::sha256::Sha256;
use hummingbird_crypto::{
    flyover_tags_batch, ni_available, AuthKey, AuthKeyCache, FlyoverMacInput, ResInfo, SecretValue,
};
use hummingbird_dataplane::policing::Policer;
use hummingbird_dataplane::{Datapath, PacketBuf};

/// Single-block AES across the three implementations: the retired
/// byte-oriented core (the "before" reference), the portable T-table
/// backend, and AES-NI where the CPU supports it. The acceptance bar for
/// this PR is soft ≥ 5× the byte-oriented reference, with `ni` faster
/// still.
fn bench_aes_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("aes_backends");
    let key = [7u8; 16];
    let byte = ByteAes128::new(&key);
    g.bench_function("block_bytewise_reference", |b| {
        let mut block = [0u8; 16];
        b.iter(|| {
            byte.encrypt_block(&mut block);
            std::hint::black_box(&block);
        })
    });
    let mut backends = vec![AesBackend::Soft];
    if ni_available() {
        backends.push(AesBackend::Ni);
    }
    for backend in backends {
        let aes = Aes128::with_backend(&key, backend);
        g.bench_function(format!("block_{}", backend.name()), |b| {
            let mut block = [0u8; 16];
            b.iter(|| {
                aes.encrypt_block(&mut block);
                std::hint::black_box(&block);
            })
        });
        // Interleaved multi-block vs a single-block loop: the win of
        // keeping 4-8 independent blocks in flight.
        g.bench_function(format!("blocks32_loop_{}", backend.name()), |b| {
            let mut blocks = [[0u8; 16]; 32];
            b.iter(|| {
                for block in blocks.iter_mut() {
                    aes.encrypt_block(block);
                }
                std::hint::black_box(&blocks);
            })
        });
        g.bench_function(format!("blocks32_interleaved_{}", backend.name()), |b| {
            let mut blocks = [[0u8; 16]; 32];
            b.iter(|| {
                aes.encrypt_blocks(&mut blocks);
                std::hint::black_box(&blocks);
            })
        });
        g.bench_function(format!("key_expansion_{}", backend.name()), |b| {
            b.iter(|| std::hint::black_box(Aes128::with_backend(&[9u8; 16], backend)))
        });
    }
    g.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let aes = Aes128::new(&[7u8; 16]);
    g.bench_function("aes128_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| {
            aes.encrypt_block(&mut block);
            std::hint::black_box(&block);
        })
    });
    g.bench_function("aes128_key_expansion", |b| {
        b.iter(|| std::hint::black_box(Aes128::new(&[9u8; 16])))
    });
    let cmac = Cmac::new(&[7u8; 16]);
    g.bench_function("cmac_one_block", |b| b.iter(|| std::hint::black_box(cmac.mac(&[0u8; 16]))));
    g.bench_function("cmac_two_blocks", |b| b.iter(|| std::hint::black_box(cmac.mac(&[0u8; 32]))));
    g.bench_function("sha256_64B", |b| b.iter(|| std::hint::black_box(Sha256::digest(&[0u8; 64]))));
    g.finish();
}

fn bench_derivations(c: &mut Criterion) {
    let mut g = c.benchmark_group("derivations");
    let sv = SecretValue::new([0x61; 16]);
    let info = ResInfo {
        ingress: 0,
        egress: 1,
        res_id: 1,
        bw_encoded: 1000,
        res_start: EPOCH_S as u32,
        duration: 600,
    };
    g.bench_function("derive_auth_key_Ak", |b| {
        b.iter(|| std::hint::black_box(sv.derive_key(&info)))
    });
    // One burst of 32 derivations: sequential vs the single-sweep batch
    // path the router's process_batch override uses.
    let infos: Vec<ResInfo> = (0..32).map(|i| ResInfo { res_id: 1 + i, ..info }).collect();
    g.bench_function("derive_32_keys_sequential", |b| {
        b.iter(|| {
            for i in &infos {
                std::hint::black_box(sv.derive_key(i));
            }
        })
    });
    g.bench_function("derive_32_keys_batch_sweep", |b| {
        let mut scratch = Vec::new();
        let mut keys = Vec::new();
        b.iter(|| {
            keys.clear();
            sv.derive_keys_batch(&infos, &mut scratch, &mut keys);
            std::hint::black_box(keys.len());
        })
    });
    // Cached vs uncached `A_i` resolution: the per-packet cost once the
    // reservation's expanded schedule is resident.
    g.bench_function("derive_auth_key_cached", |b| {
        let mut cache: AuthKeyCache = AuthKeyCache::new(1024);
        cache.get_or_derive(&info, || sv.derive_key(&info));
        b.iter(|| {
            std::hint::black_box(cache.get_or_derive(&info, || sv.derive_key(&info)).to_bytes())
        })
    });
    let key = AuthKey::new([5u8; 16]);
    let input = FlyoverMacInput {
        dst_isd: 2,
        dst_as: 0x20,
        pkt_len: 600,
        res_start_offset: 10,
        millis_ts: 1,
        counter: 2,
    };
    g.bench_function("flyover_mac", |b| b.iter(|| std::hint::black_box(key.flyover_mac(&input))));
    // One burst of 32 per-packet tags, each under its own key: sequential
    // vs the multi-key sweep fused into the router's batch pass 1.
    let keys: Vec<AuthKey> =
        (0..32).map(|i| sv.derive_key(&ResInfo { res_id: 1 + i, ..info })).collect();
    let key_refs: Vec<&AuthKey> = keys.iter().collect();
    let inputs: Vec<FlyoverMacInput> =
        (0..32).map(|i| FlyoverMacInput { counter: i, ..input }).collect();
    g.bench_function("flyover_tags_32_sequential", |b| {
        b.iter(|| {
            for (k, i) in key_refs.iter().zip(&inputs) {
                std::hint::black_box(k.flyover_mac(i));
            }
        })
    });
    g.bench_function("flyover_tags_32_batch_sweep", |b| {
        let mut scratch = Vec::new();
        let mut tags = Vec::new();
        b.iter(|| {
            tags.clear();
            flyover_tags_batch(&key_refs, &inputs, &mut scratch, &mut tags);
            std::hint::black_box(tags.len());
        })
    });
    g.finish();
}

fn bench_router(c: &mut Criterion) {
    let mut g = c.benchmark_group("router");
    for kind in EngineKind::ALL {
        for payload in [100usize, 1500] {
            let fx = DataplaneFixture::new(4);
            let pkt = fx.engine_packet(kind, payload);
            g.throughput(Throughput::Bytes(pkt.len() as u64));
            g.bench_function(format!("process_{}_{payload}B", kind.name()), |b| {
                let mut engine = fx.engine(kind);
                let mut hot = PacketBuf::new(pkt.clone());
                b.iter(|| {
                    let v = engine.process(hot.bytes_mut(), EPOCH_NS);
                    hot.reset();
                    std::hint::black_box(v)
                })
            });
        }
    }
    g.finish();
}

fn bench_runtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime");
    let fx = DataplaneFixture::new(4);
    // A 32-packet, 8-flow burst through the batch path: one engine vs the
    // sharded facade (steering + run splitting on top of the same work).
    let templates = fx.flow_packets(EngineKind::Hummingbird, 500, 8);
    let make_burst = || -> Vec<PacketBuf> {
        (0..32).map(|i| PacketBuf::new(templates[i % templates.len()].clone())).collect()
    };
    g.throughput(Throughput::Elements(32));
    g.bench_function("process_batch_32_single", |b| {
        let mut engine = fx.engine(EngineKind::Hummingbird);
        let mut burst = make_burst();
        let mut verdicts = Vec::with_capacity(32);
        b.iter(|| {
            verdicts.clear();
            engine.process_batch(&mut burst, EPOCH_NS, &mut verdicts);
            for p in &mut burst {
                p.reset();
            }
            std::hint::black_box(verdicts.len())
        })
    });
    g.bench_function("process_batch_32_sharded4", |b| {
        let mut engine = fx.sharded_engine(EngineKind::Hummingbird, 4);
        let mut burst = make_burst();
        let mut verdicts = Vec::with_capacity(32);
        b.iter(|| {
            verdicts.clear();
            engine.process_batch(&mut burst, EPOCH_NS, &mut verdicts);
            for p in &mut burst {
                p.reset();
            }
            std::hint::black_box(verdicts.len())
        })
    });
    g.finish();
}

fn bench_source(c: &mut Criterion) {
    let mut g = c.benchmark_group("source");
    for h in [1usize, 4, 16] {
        let fx = DataplaneFixture::new(h);
        g.bench_function(format!("generate_hummingbird_h{h}_500B"), |b| {
            let mut generator = fx.generator(true);
            let payload = vec![0u8; 500];
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                std::hint::black_box(generator.generate(&payload, EPOCH_MS + i / 1000).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_policing(c: &mut Criterion) {
    let mut g = c.benchmark_group("policing");
    g.bench_function("token_bucket_check", |b| {
        let mut p = Policer::paper_default();
        let mut t = EPOCH_NS;
        b.iter(|| {
            t += 1000;
            std::hint::black_box(p.check(42, 1_000_000, 600, t))
        })
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let fx = DataplaneFixture::new(4);
    let pkt = fx.packet(500, true);
    g.bench_function("packet_parse_full", |b| {
        b.iter(|| std::hint::black_box(hummingbird_wire::Packet::parse(&pkt).unwrap()))
    });
    let parsed = hummingbird_wire::Packet::parse(&pkt).unwrap();
    g.bench_function("packet_emit_full", |b| {
        b.iter_batched(
            || parsed.clone(),
            |p| std::hint::black_box(p.to_bytes().unwrap()),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = bench_aes_backends, bench_crypto, bench_derivations, bench_router, bench_runtime, bench_source, bench_policing, bench_wire
);
criterion_main!(benches);
