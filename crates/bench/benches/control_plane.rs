//! Criterion benchmarks of the control plane: contract-call throughput on
//! the in-process ledger (transactions per second for each operation the
//! paper's Table 2 prices) and the coloring allocators.

use criterion::{criterion_group, criterion_main, Criterion};
use hummingbird_coloring::{FirstFit, Interval, KiersteadTrotter};
use hummingbird_control::pki::TrustAnchors;
use hummingbird_control::{AsService, BandwidthAsset, ControlPlane, Direction, PurchaseSpec};
use hummingbird_crypto::sig::SecretKey;
use hummingbird_ledger::Address;
use hummingbird_wire::IsdAs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const HOUR: u64 = 3600;

struct World {
    cp: ControlPlane,
    service: AsService,
    market: hummingbird_ledger::ObjectId,
}

fn world() -> World {
    let mut rng = StdRng::seed_from_u64(1);
    let as_id = IsdAs::new(1, 77);
    let cert = SecretKey::from_seed(b"bench-as");
    let mut anchors = TrustAnchors::new();
    anchors.install(as_id, cert.public());
    let mut cp = ControlPlane::new(anchors);
    let mut service = AsService::new(as_id, cert, [5u8; 16], 1 << 20);
    cp.faucet(service.account, 1_000_000);
    service.register(&mut cp, &mut rng).unwrap();
    let market = cp.create_marketplace(service.account).unwrap().value;
    cp.register_seller(service.account, market).unwrap();
    World { cp, service, market }
}

fn template(as_id: IsdAs, interface: u16, dir: Direction) -> BandwidthAsset {
    BandwidthAsset {
        as_id,
        bandwidth_kbps: 100_000,
        start_time: 0,
        expiry_time: 10 * HOUR,
        interface,
        direction: dir,
        time_granularity: 60,
        min_bandwidth_kbps: 100,
    }
}

fn bench_contract_calls(c: &mut Criterion) {
    let mut g = c.benchmark_group("contract_calls");
    g.sample_size(30);

    g.bench_function("issue", |b| {
        let mut w = world();
        let as_id = w.service.as_id;
        b.iter(|| {
            std::hint::black_box(
                w.service
                    .issue_asset(&mut w.cp, template(as_id, 1, Direction::Ingress))
                    .unwrap()
                    .value,
            )
        })
    });

    g.bench_function("issue_and_split_time", |b| {
        let mut w = world();
        let as_id = w.service.as_id;
        let account = w.service.account;
        b.iter(|| {
            let asset = w
                .service
                .issue_asset(&mut w.cp, template(as_id, 1, Direction::Ingress))
                .unwrap()
                .value;
            std::hint::black_box(w.cp.split_time(account, asset, 2 * HOUR).unwrap().value)
        })
    });

    g.bench_function("buy_worst_case_split", |b| {
        let mut w = world();
        let as_id = w.service.as_id;
        let buyer = Address::from_label("bench-buyer");
        w.cp.faucet(buyer, 10_000_000);
        b.iter(|| {
            let asset = w
                .service
                .issue_asset(&mut w.cp, template(as_id, 1, Direction::Ingress))
                .unwrap()
                .value;
            let listing = w.cp.create_listing(w.service.account, w.market, asset, 1).unwrap().value;
            let spec = PurchaseSpec { start: HOUR, end: 2 * HOUR, bandwidth_kbps: 10_000 };
            std::hint::black_box(w.cp.buy(buyer, w.market, listing, spec).unwrap().value)
        })
    });

    g.finish();
}

fn bench_coloring(c: &mut Criterion) {
    let mut g = c.benchmark_group("coloring");
    let mut rng = StdRng::seed_from_u64(2);
    let intervals: Vec<Interval> = (0..500)
        .map(|_| {
            let s = rng.gen_range(0u64..10_000);
            Interval::new(s, s + rng.gen_range(60..3_600))
        })
        .collect();

    g.bench_function("first_fit_500", |b| {
        b.iter(|| {
            let mut ff = FirstFit::new(u32::MAX);
            for iv in &intervals {
                std::hint::black_box(ff.assign(*iv).unwrap());
            }
        })
    });
    g.bench_function("kierstead_trotter_500", |b| {
        b.iter(|| {
            let mut kt = KiersteadTrotter::new();
            for iv in &intervals {
                std::hint::black_box(kt.assign(*iv));
            }
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_contract_calls, bench_coloring
);
criterion_main!(benches);
