//! A Helia-style fixed-slot flyover baseline (Wyss et al., CCS 2022).
//!
//! Helia introduced per-AS flyover reservations — the idea Hummingbird
//! adopts — but with the limitations the paper lists in §2:
//!
//! * reservations live in **fixed time slots**; the start/expiration
//!   cannot be negotiated;
//! * the reserved **bandwidth is computed by the AS** from its capacity
//!   and the number of active sources — the source cannot request a size;
//! * reservations **cannot be obtained ahead of time**: a request is only
//!   valid for the current slot (and primes the next);
//! * authorization is **per source AS** via DRKey, so end hosts need an
//!   AS-level gateway and the granting AS must know the requester's
//!   identity (no control-plane independence, no transferable assets);
//! * there are **no atomic path reservations** — each hop is requested
//!   independently with no coordination.
//!
//! This module implements that model faithfully enough to compare against
//! Hummingbird in the `baseline_comparison` bench: slot-based grants,
//! demand-proportional bandwidth shares, DRKey-based authenticators, and
//! per-slot request/renewal.

use crate::drkey::DrKeySecret;
use hummingbird_crypto::aes::Aes128;
use hummingbird_wire::IsdAs;
use std::collections::HashMap;

/// Helia's fixed reservation-slot length in seconds. (Helia grants
/// per-slot; Colibri's analogue is its fixed 16 s renewal interval.)
pub const SLOT_SECS: u64 = 16;

/// The slot index covering `unix_s`.
pub fn slot_of(unix_s: u64) -> u64 {
    unix_s / SLOT_SECS
}

/// Errors from the Helia-style service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HeliaError {
    /// Request for a slot other than the current one: Helia cannot grant
    /// reservations ahead of time (paper §2).
    NotCurrentSlot {
        /// The slot that was requested.
        requested: u64,
        /// The only slot that can be granted.
        current: u64,
    },
    /// The AS has no capacity left this slot.
    NoCapacity,
}

impl std::fmt::Display for HeliaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeliaError::NotCurrentSlot { requested, current } => {
                write!(f, "Helia grants only the current slot {current}, not {requested}")
            }
            HeliaError::NoCapacity => f.write_str("no flyover capacity this slot"),
        }
    }
}

impl std::error::Error for HeliaError {}

/// A granted Helia reservation: one slot, AS-chosen bandwidth, a DRKey
/// authenticator bound to the requesting *AS* (not host).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeliaGrant {
    /// Slot index the grant is valid for.
    pub slot: u64,
    /// Bandwidth assigned by the AS, kbps. The source has no say.
    pub bandwidth_kbps: u64,
    /// Authentication key, derived from DRKey (the source-AS gateway
    /// holds it; end hosts never see it).
    pub key: [u8; 16],
}

/// One AS's Helia service for a single interface pair.
pub struct HeliaService {
    as_id: IsdAs,
    drkey_master: [u8; 16],
    /// Total flyover capacity per slot, kbps.
    capacity_kbps: u64,
    /// Minimum share an AS must receive, kbps (bounds the number of
    /// concurrent sources, like Hummingbird's MinBW).
    min_share_kbps: u64,
    /// Active source ASes in the current slot (demand drives shares).
    active: HashMap<IsdAs, ()>,
    current_slot: u64,
}

impl HeliaService {
    /// Creates the service.
    pub fn new(
        as_id: IsdAs,
        drkey_master: [u8; 16],
        capacity_kbps: u64,
        min_share_kbps: u64,
    ) -> Self {
        HeliaService {
            as_id,
            drkey_master,
            capacity_kbps,
            min_share_kbps,
            active: HashMap::new(),
            current_slot: 0,
        }
    }

    /// The AS this service belongs to.
    pub fn as_id(&self) -> IsdAs {
        self.as_id
    }

    /// The bandwidth share each active source receives right now.
    ///
    /// Helia sizes reservations so every source can obtain one: the
    /// capacity is divided equally among active sources (a simplification
    /// of Helia's per-neighbor allocation formula that preserves the
    /// property under test: the *source cannot choose*).
    pub fn current_share_kbps(&self) -> u64 {
        let n = self.active.len().max(1) as u64;
        self.capacity_kbps / n
    }

    /// Requests a flyover for `source_as` covering the slot containing
    /// `now_s`. Helia has no negotiation: the slot must be current, the
    /// bandwidth is whatever falls out of the allocation.
    pub fn request(
        &mut self,
        source_as: IsdAs,
        now_s: u64,
        requested_slot: u64,
    ) -> Result<HeliaGrant, HeliaError> {
        let current = slot_of(now_s);
        if requested_slot != current {
            return Err(HeliaError::NotCurrentSlot { requested: requested_slot, current });
        }
        if current != self.current_slot {
            // New slot: demand resets.
            self.current_slot = current;
            self.active.clear();
        }
        // Admission: adding this source must keep shares above the floor.
        let would_be = self.capacity_kbps / (self.active.len() as u64 + 1);
        if would_be < self.min_share_kbps {
            return Err(HeliaError::NoCapacity);
        }
        self.active.insert(source_as, ());
        let share = self.current_share_kbps();
        let key = self.grant_key(source_as, current);
        Ok(HeliaGrant { slot: current, bandwidth_kbps: share, key })
    }

    /// The per-slot DRKey-derived authenticator for `source_as`
    /// (`K_{A→B}` bound to the slot index).
    fn grant_key(&self, source_as: IsdAs, slot: u64) -> [u8; 16] {
        slot_key(&self.drkey_master, source_as, slot)
    }

    /// Router-side check: verifies a grant key (the router re-derives it
    /// from DRKey, like Hummingbird routers re-derive `A_K`).
    pub fn verify_grant(&self, source_as: IsdAs, grant: &HeliaGrant) -> bool {
        self.grant_key(source_as, grant.slot) == grant.key
    }

    /// Number of sources holding a grant this slot.
    pub fn active_sources(&self) -> usize {
        self.active.len()
    }
}

/// The Helia per-slot authenticator key for `source_as` covering `slot`:
/// `PRF_{K_{A→B}}(slot ‖ "helia")` with `K_{A→B}` from the DRKey
/// hierarchy. Shared by [`HeliaService::verify_grant`] and the per-packet
/// [`crate::engine::HeliaDatapath`].
pub fn slot_key(drkey_master: &[u8; 16], source_as: IsdAs, slot: u64) -> [u8; 16] {
    let sv = DrKeySecret::derive(drkey_master, crate::drkey::epoch_of(slot * SLOT_SECS));
    let l1 = Aes128::new(&sv.as_to_as(source_as));
    let mut block = [0u8; 16];
    block[..8].copy_from_slice(&slot.to_be_bytes());
    block[8..13].copy_from_slice(b"helia");
    l1.encrypt(&block)
}

/// Flexibility comparison helpers used by the baseline bench: how much of
/// a desired reservation window a system can actually cover, and how much
/// bandwidth-time is wasted to cover it.
pub mod flexibility {
    use super::SLOT_SECS;

    /// Helia must cover `[start, end)` with whole slots; returns
    /// `(covered_secs, paid_secs)`: the request is padded to slot
    /// boundaries and cannot start before "now" — callers pass
    /// `start >= now`.
    pub fn helia_slot_coverage(start: u64, end: u64) -> (u64, u64) {
        let first = start / SLOT_SECS;
        let last = end.div_ceil(SLOT_SECS);
        let covered = end - start;
        let paid = (last - first) * SLOT_SECS;
        (covered, paid)
    }

    /// Hummingbird covers any window aligned to the AS's advertised
    /// granularity `g` (the AS chooses `g`, often 60 s, but the *market*
    /// lets the buyer choose any multiple).
    pub fn hummingbird_coverage(start: u64, end: u64, granularity: u64) -> (u64, u64) {
        let first = start / granularity;
        let last = end.div_ceil(granularity);
        let covered = end - start;
        let paid = (last - first) * granularity;
        (covered, paid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc() -> HeliaService {
        HeliaService::new(IsdAs::new(1, 10), [9u8; 16], 100_000, 1_000)
    }

    #[test]
    fn grants_only_the_current_slot() {
        let mut s = svc();
        let now = 1_700_000_000;
        let current = slot_of(now);
        assert!(s.request(IsdAs::new(2, 2), now, current).is_ok());
        // Ahead-of-time requests are impossible (unlike Hummingbird).
        let err = s.request(IsdAs::new(2, 2), now, current + 10).unwrap_err();
        assert!(matches!(err, HeliaError::NotCurrentSlot { .. }));
    }

    #[test]
    fn bandwidth_is_assigned_not_negotiated() {
        let mut s = svc();
        let now = 1_700_000_000;
        let slot = slot_of(now);
        let g1 = s.request(IsdAs::new(2, 1), now, slot).unwrap();
        assert_eq!(g1.bandwidth_kbps, 100_000, "single source gets everything");
        let g2 = s.request(IsdAs::new(2, 2), now, slot).unwrap();
        assert_eq!(g2.bandwidth_kbps, 50_000, "share shrinks as demand arrives");
        assert_eq!(s.active_sources(), 2);
    }

    #[test]
    fn admission_respects_the_share_floor() {
        let mut s = HeliaService::new(IsdAs::new(1, 10), [9u8; 16], 10_000, 4_000);
        let now = 1_700_000_000;
        let slot = slot_of(now);
        assert!(s.request(IsdAs::new(2, 1), now, slot).is_ok());
        assert!(s.request(IsdAs::new(2, 2), now, slot).is_ok());
        // A third source would push shares below 4 Mbps.
        assert_eq!(s.request(IsdAs::new(2, 3), now, slot), Err(HeliaError::NoCapacity));
    }

    #[test]
    fn grants_verify_and_are_slot_bound() {
        let mut s = svc();
        let now = 1_700_000_000;
        let slot = slot_of(now);
        let src = IsdAs::new(2, 7);
        let g = s.request(src, now, slot).unwrap();
        assert!(s.verify_grant(src, &g));
        // Wrong source AS or stale slot fails.
        assert!(!s.verify_grant(IsdAs::new(2, 8), &g));
        let stale = HeliaGrant { slot: slot - 1, ..g };
        assert!(!s.verify_grant(src, &stale));
    }

    #[test]
    fn demand_resets_each_slot() {
        let mut s = svc();
        let now = 1_700_000_000;
        s.request(IsdAs::new(2, 1), now, slot_of(now)).unwrap();
        s.request(IsdAs::new(2, 2), now, slot_of(now)).unwrap();
        let later = now + SLOT_SECS;
        let g = s.request(IsdAs::new(2, 1), later, slot_of(later)).unwrap();
        assert_eq!(g.bandwidth_kbps, 100_000, "new slot, demand forgotten");
        assert_eq!(s.active_sources(), 1);
    }

    #[test]
    fn slot_padding_wastes_bandwidth_time() {
        use super::flexibility::*;
        // A 10-second call starting mid-slot: Helia pays 2 slots (32 s).
        let (covered, paid) = helia_slot_coverage(1_700_000_008, 1_700_000_018);
        assert_eq!(covered, 10);
        assert_eq!(paid, 32);
        // Hummingbird at 1 s granularity pays exactly what it covers.
        let (covered, paid) = hummingbird_coverage(1_700_000_008, 1_700_000_018, 1);
        assert_eq!(covered, paid);
    }
}
