//! A DRKey-style key-derivation hierarchy (Kim et al., PISKES/DRKey).
//!
//! Helia and Colibri both require the DRKey infrastructure: every AS
//! derives per-AS and per-host symmetric keys from a periodically rotated
//! secret, so any two parties share a key without interaction. Hummingbird
//! deliberately avoids this dependency (§2: "requires the DRKey
//! infrastructure to be in place"), but the baseline needs it.
//!
//! Hierarchy (all single-AES derivations, matching the DRKey design):
//!
//! ```text
//! SV_A(epoch)                      AS A's epoch secret
//! K_{A→B}   = PRF_{SV_A}(B)        AS-to-AS key (fetched by B's service)
//! K_{A→B:H} = PRF_{K_{A→B}}(H)     AS-to-host key (derived by B for host H)
//! ```

use hummingbird_crypto::aes::Aes128;
use hummingbird_wire::IsdAs;

/// Length of a DRKey epoch in seconds (typical deployments: hours).
pub const EPOCH_SECS: u64 = 6 * 3600;

/// An AS's DRKey secret for one epoch.
pub struct DrKeySecret {
    cipher: Aes128,
    epoch: u64,
}

impl DrKeySecret {
    /// Derives the epoch secret from the AS's long-term master key.
    pub fn derive(master: &[u8; 16], epoch: u64) -> Self {
        let master_cipher = Aes128::new(master);
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(b"drkey-sv");
        block[8..16].copy_from_slice(&epoch.to_be_bytes());
        let sv = master_cipher.encrypt(&block);
        DrKeySecret { cipher: Aes128::new(&sv), epoch }
    }

    /// The epoch this secret belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// First-level key `K_{A→B}`.
    pub fn as_to_as(&self, b: IsdAs) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[0..2].copy_from_slice(&b.isd.to_be_bytes());
        block[2..10].copy_from_slice(&b.asn.to_be_bytes());
        self.cipher.encrypt(&block)
    }

    /// Second-level key `K_{A→B:H}` for host `host` in AS `b`.
    pub fn as_to_host(&self, b: IsdAs, host: [u8; 4]) -> [u8; 16] {
        let l1 = Aes128::new(&self.as_to_as(b));
        let mut block = [0u8; 16];
        block[0..4].copy_from_slice(&host);
        block[4] = 0x01; // level tag
        l1.encrypt(&block)
    }

    /// Derives `K_{A→B:H}` for a whole burst in two AES sweeps.
    ///
    /// Sweep 1 computes every first-level key `K_{A→B}` under the single
    /// epoch cipher ([`Aes128::encrypt_blocks`], round-major over the
    /// batch); sweep 2 encrypts each host block under its own first-level
    /// cipher (the [`Aes128::encrypt_blocks_per_key`] multi-key kernel) —
    /// the shape the EPIC engine's batched key derivation amortizes a
    /// burst of cache misses with. Appends one key per id, in order, to
    /// `out`; element-wise identical to
    /// [`as_to_host`](DrKeySecret::as_to_host).
    ///
    /// `blocks` and `ciphers` are scratch buffers hot loops reuse across
    /// bursts (both are cleared on entry).
    pub fn as_to_host_batch(
        &self,
        ids: &[(IsdAs, [u8; 4])],
        blocks: &mut Vec<[u8; 16]>,
        ciphers: &mut Vec<Aes128>,
        out: &mut Vec<[u8; 16]>,
    ) {
        // Sweep 1: first-level keys, one shared epoch cipher.
        blocks.clear();
        blocks.extend(ids.iter().map(|(b, _)| {
            let mut block = [0u8; 16];
            block[0..2].copy_from_slice(&b.isd.to_be_bytes());
            block[2..10].copy_from_slice(&b.asn.to_be_bytes());
            block
        }));
        self.cipher.encrypt_blocks(blocks);
        // Sweep 2: host keys, one cipher per block.
        ciphers.clear();
        ciphers.extend(blocks.iter().map(Aes128::new));
        let start = out.len();
        out.extend(ids.iter().map(|(_, host)| {
            let mut block = [0u8; 16];
            block[0..4].copy_from_slice(host);
            block[4] = 0x01; // level tag
            block
        }));
        Aes128::encrypt_blocks_with(|i| &ciphers[i], &mut out[start..]);
    }
}

/// The epoch index covering `unix_s`.
pub fn epoch_of(unix_s: u64) -> u64 {
    unix_s / EPOCH_SECS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic_within_an_epoch() {
        let a = DrKeySecret::derive(&[1u8; 16], 7);
        let b = DrKeySecret::derive(&[1u8; 16], 7);
        let target = IsdAs::new(1, 42);
        assert_eq!(a.as_to_as(target), b.as_to_as(target));
        assert_eq!(a.as_to_host(target, [1, 2, 3, 4]), b.as_to_host(target, [1, 2, 3, 4]));
    }

    #[test]
    fn keys_rotate_across_epochs() {
        let e7 = DrKeySecret::derive(&[1u8; 16], 7);
        let e8 = DrKeySecret::derive(&[1u8; 16], 8);
        let target = IsdAs::new(1, 42);
        assert_ne!(e7.as_to_as(target), e8.as_to_as(target));
    }

    #[test]
    fn keys_differ_per_peer_and_host() {
        let sv = DrKeySecret::derive(&[2u8; 16], 1);
        assert_ne!(sv.as_to_as(IsdAs::new(1, 1)), sv.as_to_as(IsdAs::new(1, 2)));
        assert_ne!(
            sv.as_to_host(IsdAs::new(1, 1), [0, 0, 0, 1]),
            sv.as_to_host(IsdAs::new(1, 1), [0, 0, 0, 2])
        );
        // Host keys are not the AS key.
        assert_ne!(sv.as_to_as(IsdAs::new(1, 1)), sv.as_to_host(IsdAs::new(1, 1), [0, 0, 0, 1]));
    }

    #[test]
    fn batched_host_keys_match_sequential() {
        let sv = DrKeySecret::derive(&[3u8; 16], 4);
        let ids: Vec<(IsdAs, [u8; 4])> = (0..11u16)
            .map(|i| (IsdAs::new(1 + (i % 3), 0x10 + u64::from(i)), [0, 0, i as u8, 1]))
            .collect();
        let (mut blocks, mut ciphers, mut out) = (Vec::new(), Vec::new(), Vec::new());
        sv.as_to_host_batch(&ids, &mut blocks, &mut ciphers, &mut out);
        assert_eq!(out.len(), ids.len());
        for ((b, host), key) in ids.iter().zip(&out) {
            assert_eq!(sv.as_to_host(*b, *host), *key);
        }
        // Appends without clearing `out`; empty bursts are a no-op.
        sv.as_to_host_batch(&ids[..1], &mut blocks, &mut ciphers, &mut out);
        assert_eq!(out.len(), ids.len() + 1);
        assert_eq!(out[ids.len()], sv.as_to_host(ids[0].0, ids[0].1));
        sv.as_to_host_batch(&[], &mut blocks, &mut ciphers, &mut out);
        assert_eq!(out.len(), ids.len() + 1);
    }

    #[test]
    fn epoch_arithmetic() {
        assert_eq!(epoch_of(0), 0);
        assert_eq!(epoch_of(EPOCH_SECS - 1), 0);
        assert_eq!(epoch_of(EPOCH_SECS), 1);
    }
}
