//! A DRKey-style key-derivation hierarchy (Kim et al., PISKES/DRKey).
//!
//! Helia and Colibri both require the DRKey infrastructure: every AS
//! derives per-AS and per-host symmetric keys from a periodically rotated
//! secret, so any two parties share a key without interaction. Hummingbird
//! deliberately avoids this dependency (§2: "requires the DRKey
//! infrastructure to be in place"), but the baseline needs it.
//!
//! Hierarchy (all single-AES derivations, matching the DRKey design):
//!
//! ```text
//! SV_A(epoch)                      AS A's epoch secret
//! K_{A→B}   = PRF_{SV_A}(B)        AS-to-AS key (fetched by B's service)
//! K_{A→B:H} = PRF_{K_{A→B}}(H)     AS-to-host key (derived by B for host H)
//! ```

use hummingbird_crypto::aes::Aes128;
use hummingbird_wire::IsdAs;

/// Length of a DRKey epoch in seconds (typical deployments: hours).
pub const EPOCH_SECS: u64 = 6 * 3600;

/// An AS's DRKey secret for one epoch.
pub struct DrKeySecret {
    cipher: Aes128,
    epoch: u64,
}

impl DrKeySecret {
    /// Derives the epoch secret from the AS's long-term master key.
    pub fn derive(master: &[u8; 16], epoch: u64) -> Self {
        let master_cipher = Aes128::new(master);
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(b"drkey-sv");
        block[8..16].copy_from_slice(&epoch.to_be_bytes());
        let sv = master_cipher.encrypt(&block);
        DrKeySecret { cipher: Aes128::new(&sv), epoch }
    }

    /// The epoch this secret belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// First-level key `K_{A→B}`.
    pub fn as_to_as(&self, b: IsdAs) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[0..2].copy_from_slice(&b.isd.to_be_bytes());
        block[2..10].copy_from_slice(&b.asn.to_be_bytes());
        self.cipher.encrypt(&block)
    }

    /// Second-level key `K_{A→B:H}` for host `host` in AS `b`.
    pub fn as_to_host(&self, b: IsdAs, host: [u8; 4]) -> [u8; 16] {
        let l1 = Aes128::new(&self.as_to_as(b));
        let mut block = [0u8; 16];
        block[0..4].copy_from_slice(&host);
        block[4] = 0x01; // level tag
        l1.encrypt(&block)
    }
}

/// The epoch index covering `unix_s`.
pub fn epoch_of(unix_s: u64) -> u64 {
    unix_s / EPOCH_SECS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic_within_an_epoch() {
        let a = DrKeySecret::derive(&[1u8; 16], 7);
        let b = DrKeySecret::derive(&[1u8; 16], 7);
        let target = IsdAs::new(1, 42);
        assert_eq!(a.as_to_as(target), b.as_to_as(target));
        assert_eq!(a.as_to_host(target, [1, 2, 3, 4]), b.as_to_host(target, [1, 2, 3, 4]));
    }

    #[test]
    fn keys_rotate_across_epochs() {
        let e7 = DrKeySecret::derive(&[1u8; 16], 7);
        let e8 = DrKeySecret::derive(&[1u8; 16], 8);
        let target = IsdAs::new(1, 42);
        assert_ne!(e7.as_to_as(target), e8.as_to_as(target));
    }

    #[test]
    fn keys_differ_per_peer_and_host() {
        let sv = DrKeySecret::derive(&[2u8; 16], 1);
        assert_ne!(sv.as_to_as(IsdAs::new(1, 1)), sv.as_to_as(IsdAs::new(1, 2)));
        assert_ne!(
            sv.as_to_host(IsdAs::new(1, 1), [0, 0, 0, 1]),
            sv.as_to_host(IsdAs::new(1, 1), [0, 0, 0, 2])
        );
        // Host keys are not the AS key.
        assert_ne!(sv.as_to_as(IsdAs::new(1, 1)), sv.as_to_host(IsdAs::new(1, 1), [0, 0, 0, 1]));
    }

    #[test]
    fn epoch_arithmetic() {
        assert_eq!(epoch_of(0), 0);
        assert_eq!(epoch_of(EPOCH_SECS - 1), 0);
        assert_eq!(epoch_of(EPOCH_SECS), 1);
    }
}
