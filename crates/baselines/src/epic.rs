//! An EPIC L1-style per-packet path-validation engine (Legner et al.,
//! "EPIC: Every Packet Is Checked in the Data Plane of a Path-Aware
//! Internet", USENIX Security 2020) — the heavyweight end of the baseline
//! family the paper positions Hummingbird against.
//!
//! # The model
//!
//! EPIC L1 replaces SCION's static per-segment hop MACs with **per-packet
//! hop validation fields**: every on-path AS `A_i` holds a DRKey-derived
//! key bound to the packet's source `(AS, host)` and verifies, for every
//! single packet, a MAC over the packet's timestamp, length, destination
//! and per-packet counter — chained through the path because each hop's
//! authenticator aggregates into the SCION hop-field MAC whose SegID
//! chain the previous hops already updated. Mapped onto this repository's
//! shared pipeline ([`hummingbird_dataplane::router::stages`]):
//!
//! * **key hierarchy** — [`epic_auth_key`]: a third derivation level on
//!   the DRKey chain, `K^{epic} = PRF_{K_{A→S:H}}("epic-l1")`, so the
//!   validating AS re-derives the key from nothing but its epoch secret
//!   and the packet's (authenticated) source address;
//! * **per-packet MAC** — the 6-byte flyover tag (Eq. 7a input: DstAddr ∥
//!   PktLen ∥ TS ∥ Counter) aggregated into the hop-field MAC, playing
//!   the role of EPIC's HVF;
//! * **strict freshness** — a packet outside the `now − absTS ∈
//!   [−δ, Δ+δ]` window is **dropped**
//!   ([`DropReason::Untimely`]), not demoted: EPIC's replay suppression
//!   only covers the validation window, so anything outside it must be
//!   rejected;
//! * **replay suppression** — the shared duplicate filter, sized to the
//!   freshness window (`RouterConfig::duplicate_suppression`);
//! * **no reservations** — EPIC authenticates sources and paths but
//!   carries no bandwidth class: every validated packet rides best
//!   effort, which is exactly the contrast the QoS sweeps surface.
//!
//! Per-source state is cached in the shared
//! [`AuthKeyCache`] keyed by `(src AS, host, epoch)`, and
//! [`EpicDatapath`]'s `process_batch` override amortizes a burst of
//! cache misses into three AES sweeps (two inside
//! [`DrKeySecret::as_to_host_batch`], one multi-key pass here) plus one
//! multi-key tag sweep — the same batching discipline as the Hummingbird
//! router, so the fig5/table3 comparisons measure the *designs*, not the
//! harness.

use crate::drkey::{epoch_of, DrKeySecret, EPOCH_SECS};
use crate::engine::cached_epoch_secret;
use hummingbird_crypto::aes::Aes128;
use hummingbird_crypto::{
    flyover_tags_batch_with, AuthKey, AuthKeyCache, BurstKeyResolver, FlyoverMacInput, ResInfo, Tag,
};
use hummingbird_dataplane::dup::DuplicateSuppressor;
use hummingbird_dataplane::router::{stages, RouterConfig};
use hummingbird_dataplane::{
    Datapath, DatapathBuilder, DatapathStats, DropReason, GenError, PacketBuf, SourceGenerator,
    SourceReservation, Verdict,
};
use hummingbird_wire::path::HummingbirdPath;
use hummingbird_wire::scion_mac::HopMacKey;
use hummingbird_wire::IsdAs;

/// The identity an EPIC authenticator key is derived from (and cached
/// under): the packet's source AS and host plus the DRKey epoch.
pub type EpicKeyId = (IsdAs, [u8; 4], u64);

/// The EPIC L1 per-packet authenticator key for source `(src, host)`:
/// one more PRF level on the DRKey chain, domain-separated from the
/// plain host key so an EPIC deployment and a PISKES deployment of the
/// same AS never share MAC keys.
pub fn epic_auth_key(secret: &DrKeySecret, src: IsdAs, host: [u8; 4]) -> [u8; 16] {
    let host_cipher = Aes128::new(&secret.as_to_host(src, host));
    host_cipher.encrypt(&EPIC_LEVEL_BLOCK)
}

/// The domain-separation block of the third derivation level.
const EPIC_LEVEL_BLOCK: [u8; 16] =
    [b'e', b'p', b'i', b'c', b'-', b'l', b'1', 0, 0, 0, 0, 0, 0, 0, 0, 0];

/// Reusable per-burst scratch of [`EpicDatapath`]'s batched
/// `process_batch` override (allocation-free once vectors reach burst
/// size).
#[derive(Default)]
struct EpicBatchScratch {
    /// Per-packet outcome of the read-only pipeline half; `Err` also
    /// encodes the strict-freshness drop decided in pass 1.
    prepared: Vec<Result<(stages::Parsed, Option<stages::FlyoverInputs>), DropReason>>,
    /// Burst source-identity dedupe + cache resolution (shared helper).
    resolver: BurstKeyResolver<EpicKeyId>,
    /// `(src, host)` pairs that missed the cache, awaiting the sweeps.
    to_derive: Vec<(IsdAs, [u8; 4])>,
    /// Per fresh flyover packet: the MAC input of the tag sweep.
    mac_inputs: Vec<FlyoverMacInput>,
    /// 16-byte block scratch shared by the AES sweeps.
    blocks: Vec<[u8; 16]>,
    /// Intermediate per-identity ciphers of the multi-key sweeps.
    ciphers: Vec<Aes128>,
    /// Host keys out of the DRKey sweep.
    host_keys: Vec<[u8; 16]>,
    /// Flyover tags out of the tag sweep, in fresh-flyover order.
    tags: Vec<Tag>,
}

/// An EPIC L1-style border-router engine: per-packet path validation
/// with strict freshness and (optionally) replay suppression, no
/// priority class.
///
/// Constructed per AS from the DRKey master and SCION hop key;
/// [`RouterConfig`] supplies the freshness window `Δ`/`δ`, the replay
/// filter toggle, and the key-cache capacity (policing fields are
/// ignored — EPIC has nothing to police).
pub struct EpicDatapath {
    drkey_master: [u8; 16],
    hop_key: HopMacKey,
    cfg: RouterConfig,
    dup: Option<DuplicateSuppressor>,
    /// Cached epoch secret (derives lazily; rotates with the clock).
    epoch_secret: Option<(u64, DrKeySecret)>,
    /// `(src AS, host, epoch)` → expanded EPIC key, so the three-level
    /// DRKey chain and the AES key expansion run once per source per
    /// epoch instead of once per packet. `None` when
    /// `cfg.auth_key_cache_slots == 0` (the configuration the
    /// cached-≡-uncached property test compares against).
    key_cache: Option<AuthKeyCache<EpicKeyId>>,
    stats: DatapathStats,
    batch: EpicBatchScratch,
}

impl EpicDatapath {
    /// Creates the engine with the AS's DRKey master and SCION hop key.
    pub fn new(drkey_master: [u8; 16], hop_key: HopMacKey, cfg: RouterConfig) -> Self {
        EpicDatapath {
            drkey_master,
            hop_key,
            dup: DatapathBuilder::make_suppressor(&cfg),
            epoch_secret: None,
            key_cache: (cfg.auth_key_cache_slots > 0)
                .then(|| AuthKeyCache::new(cfg.auth_key_cache_slots as usize)),
            cfg,
            stats: DatapathStats::default(),
            batch: EpicBatchScratch::default(),
        }
    }

    /// The authenticator key this engine accepts for `(src, host)` at
    /// `now_s` — what the AS's key service hands an [`EpicSender`].
    pub fn auth_key(&mut self, src: IsdAs, host: [u8; 4], now_s: u64) -> [u8; 16] {
        let secret =
            cached_epoch_secret(&mut self.epoch_secret, &self.drkey_master, epoch_of(now_s));
        epic_auth_key(secret, src, host)
    }

    /// Stages 1-7 with EPIC's rules: key derivation through the
    /// three-level DRKey chain (via the per-source cache), strict
    /// freshness (stale → [`DropReason::Untimely`]), optional replay
    /// suppression, no policing, no priority class.
    fn process_one(&mut self, pkt: &mut [u8], now_ns: u64) -> Verdict {
        let EpicDatapath {
            drkey_master,
            hop_key,
            cfg,
            dup,
            epoch_secret,
            key_cache,
            stats: _,
            batch: _,
        } = self;
        let now_ms = now_ns / 1_000_000;
        let epoch = epoch_of(now_ms / 1000);
        let (parsed, inputs) = match stages::prepare(pkt) {
            Ok(prep) => prep,
            Err(r) => return Verdict::Drop(r),
        };
        let auth_key = match &inputs {
            Some(inputs) => {
                // EPIC validates the window *before* spending AES cycles
                // on the key chain: a stale packet is rejected outright.
                if !stages::freshness(cfg, &parsed, &inputs.res_info, now_ms) {
                    return Verdict::Drop(DropReason::Untimely);
                }
                let id = (parsed.addr.src, parsed.addr.src_host, epoch);
                let mut derive = || {
                    let secret = cached_epoch_secret(epoch_secret, drkey_master, epoch);
                    AuthKey::new(epic_auth_key(secret, id.0, id.1))
                };
                Some(match key_cache {
                    Some(cache) => cache.get_or_derive(&id, derive).clone(),
                    None => derive(),
                })
            }
            None => None,
        };
        let flyover = inputs.as_ref().zip(auth_key.as_ref());
        // `eligible` is constant `false`: EPIC has no priority class, so
        // every validated packet — tagged or plain — rides best effort.
        let out = stages::complete(
            pkt,
            now_ns,
            hop_key,
            None,
            dup.as_mut(),
            &parsed,
            flyover,
            |_, _, _| false,
        );
        out.verdict
    }
}

impl Datapath for EpicDatapath {
    fn process(&mut self, pkt: &mut [u8], now_ns: u64) -> Verdict {
        let verdict = self.process_one(pkt, now_ns);
        self.stats.record(verdict);
        verdict
    }

    /// The batched EPIC pipeline, mirroring `BorderRouter::process_batch`:
    /// the read-only half (parse + MAC-input reconstruction + the strict
    /// freshness gate) runs over the whole burst first; distinct source
    /// identities are **deduplicated** and resolved against the
    /// [`AuthKeyCache`]; the misses run through **three AES sweeps** (the
    /// two-level [`DrKeySecret::as_to_host_batch`] plus one multi-key
    /// [`Aes128::encrypt_blocks_per_key`]-shaped pass for the EPIC
    /// level); every fresh tag comes out of **one multi-key AES pass**
    /// ([`flyover_tags_batch_with`]). The stateful stages (hop-field
    /// verification, replay suppression, header mutation) then run per
    /// packet in input order — verdicts and stats stay element-wise
    /// identical to sequential [`Datapath::process`] calls (enforced by
    /// `tests/prop_datapath.rs`; the cache-counter caveat of
    /// [`AuthKeyCache::record_burst_hit`] applies here too).
    fn process_batch(&mut self, pkts: &mut [PacketBuf], now_ns: u64, out: &mut Vec<Verdict>) {
        let EpicDatapath { drkey_master, hop_key, cfg, dup, epoch_secret, key_cache, stats, batch } =
            self;
        let EpicBatchScratch {
            prepared,
            resolver,
            to_derive,
            mac_inputs,
            blocks,
            ciphers,
            host_keys,
            tags,
        } = batch;
        prepared.clear();
        resolver.begin();
        to_derive.clear();
        mac_inputs.clear();
        host_keys.clear();
        tags.clear();
        let now_ms = now_ns / 1_000_000;
        let epoch = epoch_of(now_ms / 1000);

        // Pass 1 (read-only): parse, strict-freshness gate, and
        // source-identity dedupe resolved against the key cache.
        for pkt in pkts.iter() {
            let mut prep = stages::prepare(pkt.as_bytes());
            if let Ok((parsed, Some(inputs))) = &prep {
                if !stages::freshness(cfg, parsed, &inputs.res_info, now_ms) {
                    // Decided here, sequenced in pass 2 — exactly what a
                    // sequential run would return for this packet.
                    prep = Err(DropReason::Untimely);
                } else {
                    let id = (parsed.addr.src, parsed.addr.src_host, epoch);
                    resolver.visit(id, key_cache.as_mut());
                    mac_inputs.push(inputs.mac_input);
                }
            }
            prepared.push(prep);
        }

        // The amortized per-burst work: the cache misses run through the
        // two DRKey sweeps, one multi-key EPIC-level sweep, and the key
        // expansion; then every fresh tag comes out of one multi-key
        // pass.
        to_derive.extend(resolver.pending().map(|&(src, host, _)| (src, host)));
        if !to_derive.is_empty() {
            let secret = cached_epoch_secret(epoch_secret, drkey_master, epoch);
            secret.as_to_host_batch(to_derive, blocks, ciphers, host_keys);
            ciphers.clear();
            ciphers.extend(host_keys.iter().map(Aes128::new));
            blocks.clear();
            blocks.extend(std::iter::repeat_n(EPIC_LEVEL_BLOCK, host_keys.len()));
            Aes128::encrypt_blocks_with(|i| &ciphers[i], blocks);
            resolver
                .fill_pending(blocks.iter().map(|bytes| AuthKey::new(*bytes)), key_cache.as_mut());
        }
        flyover_tags_batch_with(|i| resolver.key_of(i), mac_inputs, blocks, tags);

        // Pass 2 (stateful, in input order).
        out.reserve(pkts.len());
        let mut next_tag = tags.iter();
        for (pkt, prep) in pkts.iter_mut().zip(prepared.drain(..)) {
            let verdict = match prep {
                Err(r) => Verdict::Drop(r),
                Ok((parsed, inputs)) => {
                    let flyover = inputs
                        .as_ref()
                        .map(|i| (i, *next_tag.next().expect("one tag per fresh flyover hop")));
                    let outcome = stages::complete_with_tag(
                        pkt.bytes_mut(),
                        now_ns,
                        hop_key,
                        None,
                        dup.as_mut(),
                        &parsed,
                        flyover,
                        |_, _, _| false,
                    );
                    outcome.verdict
                }
            };
            stats.record(verdict);
            out.push(verdict);
        }
    }

    fn engine_name(&self) -> &'static str {
        "epic"
    }

    fn stats(&self) -> DatapathStats {
        let mut stats = self.stats;
        if let Some(cache) = &self.key_cache {
            stats.key_cache_hits = cache.hits();
            stats.key_cache_misses = cache.misses();
        }
        stats
    }

    fn reset_stats(&mut self) {
        self.stats = DatapathStats::default();
        if let Some(cache) = &mut self.key_cache {
            cache.reset_counters();
        }
    }
}

/// A source stamping EPIC-authenticated packets: one per-packet MAC per
/// on-path AS, under that AS's [`epic_auth_key`] for this source.
pub struct EpicSender {
    generator: SourceGenerator,
}

impl EpicSender {
    /// Creates a sender for `(src, dst)` over a beaconed `path`. The
    /// source host is the generator's stamped host address (0.0.0.1),
    /// which the verifying ASes read back out of the address header.
    pub fn new(src: IsdAs, dst: IsdAs, path: HummingbirdPath) -> Self {
        EpicSender { generator: SourceGenerator::new(src, dst, path) }
    }

    /// Attaches AS `index`'s authenticator key (obtained from that AS's
    /// key service, e.g. [`EpicDatapath::auth_key`]) valid at `now_s`.
    ///
    /// EPIC carries no reservation, so the wire fields are the null
    /// grant: ResID 0, bandwidth class 0, and a validity window covering
    /// the DRKey epoch.
    pub fn attach_auth_key(
        &mut self,
        index: usize,
        ingress: u16,
        egress: u16,
        key: [u8; 16],
        now_s: u64,
    ) -> Result<(), GenError> {
        let epoch = epoch_of(now_s);
        let res_info = ResInfo {
            ingress,
            egress,
            res_id: 0,
            bw_encoded: 0,
            res_start: (epoch * EPOCH_SECS) as u32,
            duration: u16::MAX, // covers the 6 h epoch
        };
        self.generator
            .attach_reservation(index, SourceReservation { res_info, key: AuthKey::new(key) })
    }

    /// Generates one stamped packet.
    pub fn generate(&mut self, payload: &[u8], now_ms: u64) -> Result<Vec<u8>, GenError> {
        self.generator.generate(payload, now_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummingbird_dataplane::{forge_path, BeaconHop};

    const NOW_S: u64 = 1_700_000_100;
    const NOW_MS: u64 = NOW_S * 1000;
    const NOW_NS: u64 = NOW_S * 1_000_000_000;

    fn two_hop_fixture() -> (HummingbirdPath, Vec<HopMacKey>) {
        let hop_keys: Vec<HopMacKey> =
            (0..2).map(|i| HopMacKey::new([0x41 + i as u8; 16])).collect();
        let hops: Vec<BeaconHop> = (0..2)
            .map(|i| BeaconHop {
                key: hop_keys[i].clone(),
                cons_ingress: if i == 0 { 0 } else { 2 },
                cons_egress: if i == 1 { 0 } else { 1 },
            })
            .collect();
        (forge_path(&hops, NOW_S as u32 - 100, 0x7777), hop_keys)
    }

    fn stamped(engine: &mut EpicDatapath, src: IsdAs, at_ms: u64) -> Vec<u8> {
        let (path, _) = two_hop_fixture();
        let key = engine.auth_key(src, [0, 0, 0, 1], NOW_S);
        let mut sender = EpicSender::new(src, IsdAs::new(2, 0x20), path);
        sender.attach_auth_key(0, 0, 1, key, NOW_S).unwrap();
        sender.generate(&[0u8; 300], at_ms).unwrap()
    }

    #[test]
    fn epic_validates_sources_without_priority() {
        let (_, hop_keys) = two_hop_fixture();
        let src = IsdAs::new(4, 0x44);
        let mut engine =
            EpicDatapath::new([0x77; 16], hop_keys[0].clone(), RouterConfig::default());
        let mut pkt = stamped(&mut engine, src, NOW_MS);
        let v = engine.process(&mut pkt, NOW_NS);
        assert!(matches!(v, Verdict::BestEffort { .. }), "no priority class: {v:?}");
        assert_eq!(engine.stats().best_effort, 1);

        // A different host's key does not verify (source binding).
        let (path, _) = two_hop_fixture();
        let other_key = engine.auth_key(src, [9, 9, 9, 9], NOW_S);
        let mut sender = EpicSender::new(src, IsdAs::new(2, 0x20), path);
        sender.attach_auth_key(0, 0, 1, other_key, NOW_S).unwrap();
        let mut forged = sender.generate(&[0u8; 300], NOW_MS).unwrap();
        assert_eq!(engine.process(&mut forged, NOW_NS), Verdict::Drop(DropReason::BadMac));
    }

    #[test]
    fn epic_keys_are_domain_separated_from_drkey() {
        let secret = DrKeySecret::derive(&[5u8; 16], 3);
        let src = IsdAs::new(1, 0x10);
        assert_ne!(
            epic_auth_key(&secret, src, [0, 0, 0, 1]),
            secret.as_to_host(src, [0, 0, 0, 1]),
            "EPIC level must not reuse the PISKES host key"
        );
    }

    #[test]
    fn stale_packets_are_dropped_not_demoted() {
        let (_, hop_keys) = two_hop_fixture();
        let mut engine =
            EpicDatapath::new([0x77; 16], hop_keys[0].clone(), RouterConfig::default());
        let mut pkt = stamped(&mut engine, IsdAs::new(4, 0x44), NOW_MS);
        // Validate 10 s late: outside [−δ, Δ+δ] — rejected outright.
        let v = engine.process(&mut pkt, NOW_NS + 10_000_000_000);
        assert_eq!(v, Verdict::Drop(DropReason::Untimely));
    }

    #[test]
    fn replay_suppression_covers_the_window() {
        let (_, hop_keys) = two_hop_fixture();
        let cfg = RouterConfig { duplicate_suppression: true, ..Default::default() };
        let mut engine = EpicDatapath::new([0x77; 16], hop_keys[0].clone(), cfg);
        let pkt = stamped(&mut engine, IsdAs::new(4, 0x44), NOW_MS);
        let mut first = pkt.clone();
        let mut replay = pkt;
        assert!(matches!(engine.process(&mut first, NOW_NS), Verdict::BestEffort { .. }));
        assert_eq!(
            engine.process(&mut replay, NOW_NS + 1000),
            Verdict::Drop(DropReason::Duplicate)
        );
    }

    #[test]
    fn key_cache_expands_once_per_source_epoch() {
        let (_, hop_keys) = two_hop_fixture();
        let mut engine =
            EpicDatapath::new([0x77; 16], hop_keys[0].clone(), RouterConfig::default());
        for i in 0..5u64 {
            let mut pkt = stamped(&mut engine, IsdAs::new(4, 0x44), NOW_MS + i);
            assert!(engine.process(&mut pkt, NOW_NS).egress().is_some());
        }
        let stats = engine.stats();
        assert_eq!(stats.key_cache_misses, 1, "one derivation chain per source per epoch");
        assert_eq!(stats.key_cache_hits, 4);
    }
}
