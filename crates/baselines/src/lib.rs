//! # hummingbird-baselines
//!
//! Implementations of the prior reservation systems the paper positions
//! Hummingbird against (§2), to make the qualitative comparison table
//! executable:
//!
//! * [`helia`] — a Helia-style fixed-slot flyover system (Wyss et al.,
//!   CCS 2022): per-AS flyovers like Hummingbird, but with fixed time
//!   slots, AS-computed bandwidth shares, no ahead-of-time reservations,
//!   per-source-AS (gateway) authorization via DRKey, and no atomic path
//!   guarantees.
//! * [`drkey`] — the DRKey key-derivation hierarchy Helia (and Colibri)
//!   depend on and Hummingbird eliminates.
//!
//! * [`engine`] — per-packet [`hummingbird_dataplane::Datapath`] engines
//!   for both baselines, so routers, simulators and benchmark binaries
//!   can sweep Hummingbird vs Helia vs DRKey through one trait.
//!
//! The `baseline_comparison` binary in `hummingbird-bench` runs both
//! systems side by side on the dimensions the paper's §2 claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drkey;
pub mod engine;
pub mod helia;

pub use drkey::DrKeySecret;
pub use engine::{DrKeyDatapath, DrKeySender, HeliaDatapath, HeliaHopGrant, HeliaSender};
pub use helia::{slot_of, HeliaError, HeliaGrant, HeliaService, SLOT_SECS};
