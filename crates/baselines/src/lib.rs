//! # hummingbird-baselines
//!
//! Implementations of the prior reservation systems the paper positions
//! Hummingbird against (§2), to make the qualitative comparison table
//! executable:
//!
//! * [`helia`] — a Helia-style fixed-slot flyover system (Wyss et al.,
//!   CCS 2022): per-AS flyovers like Hummingbird, but with fixed time
//!   slots, AS-computed bandwidth shares, no ahead-of-time reservations,
//!   per-source-AS (gateway) authorization via DRKey, and no atomic path
//!   guarantees.
//! * [`drkey`] — the DRKey key-derivation hierarchy Helia (and Colibri)
//!   depend on and Hummingbird eliminates.
//!
//! * [`engine`] — per-packet [`hummingbird_dataplane::Datapath`] engines
//!   for the Helia and DRKey baselines, so routers, simulators and
//!   benchmark binaries can sweep the whole family through one trait.
//!
//! * [`epic`] — an EPIC L1-style per-packet path-validation engine
//!   (chained hop authenticators over DRKey-derived per-source keys,
//!   strict freshness, replay suppression, no reservations): the
//!   heavyweight end of the comparison, completing the engine family
//!   Hummingbird vs Helia vs DRKey vs EPIC.
//!
//! The `baseline_comparison` binary in `hummingbird-bench` runs the
//! systems side by side on the dimensions the paper's §2 claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drkey;
pub mod engine;
pub mod epic;
pub mod helia;

pub use drkey::DrKeySecret;
pub use engine::{DrKeyDatapath, DrKeySender, HeliaDatapath, HeliaHopGrant, HeliaSender};
pub use epic::{epic_auth_key, EpicDatapath, EpicKeyId, EpicSender};
pub use helia::{slot_of, HeliaError, HeliaGrant, HeliaService, SLOT_SECS};
