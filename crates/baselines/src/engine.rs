//! Per-packet [`Datapath`] engines for the baseline systems, so the
//! simulator, testbed and every benchmark binary can sweep
//! Hummingbird vs Helia vs DRKey through one interface.
//!
//! Both engines reuse the border-router pipeline stages of
//! [`hummingbird_dataplane::router::stages`] — parse, flyover-MAC
//! aggregation, freshness, SCION hop-field verification, header
//! advancement — and substitute their own key hierarchies for
//! Hummingbird's `A_i = PRF_SV(ResInfo)`:
//!
//! * [`HeliaDatapath`] derives the authenticator from the **DRKey
//!   AS-to-AS hierarchy bound to a fixed 16 s slot** (per-source-AS
//!   authorization, AS-assigned bandwidth) — the Wyss et al. model;
//! * [`DrKeyDatapath`] performs **per-packet source authentication
//!   only** (PISKES-style `K_{A→B:H}` host keys): no reservations, no
//!   priority class, every authenticated packet rides best effort.
//!
//! The matching senders ([`HeliaSender`], [`DrKeySender`]) stamp packets
//! the corresponding engine verifies, mirroring
//! `hummingbird_dataplane::SourceGenerator`.

use crate::drkey::{epoch_of, DrKeySecret, EPOCH_SECS};
use crate::helia::{slot_key, slot_of, SLOT_SECS};
use hummingbird_crypto::aes::Aes128;
use hummingbird_crypto::{AuthKey, AuthKeyCache, ResInfo};
use hummingbird_dataplane::router::{stages, RouterConfig, DEFAULT_AUTH_KEY_CACHE_SLOTS};
use hummingbird_dataplane::{
    Datapath, DatapathStats, GenError, Policer, SourceGenerator, SourceReservation, Verdict,
};
use hummingbird_wire::path::HummingbirdPath;
use hummingbird_wire::scion_mac::HopMacKey;
use hummingbird_wire::{bwcls, IsdAs};

/// The per-packet Helia authenticator key: the per-slot grant key
/// (`slot_key`) further bound to the AS-assigned monitor index and
/// bandwidth, so a source cannot rewrite either field without breaking
/// the MAC (they are AS-chosen in Helia — the property under test).
pub fn helia_packet_key(
    drkey_master: &[u8; 16],
    source_as: IsdAs,
    slot: u64,
    res_id: u32,
    bw_encoded: u16,
) -> [u8; 16] {
    let grant = Aes128::new(&slot_key(drkey_master, source_as, slot));
    let mut block = [0u8; 16];
    block[..4].copy_from_slice(&res_id.to_be_bytes());
    block[4..6].copy_from_slice(&bw_encoded.to_be_bytes());
    block[6..10].copy_from_slice(b"hpkt");
    grant.encrypt(&block)
}

/// A Helia-style border-router engine.
///
/// Verifies flyover-tagged packets against the DRKey-derived per-slot,
/// per-source-AS key, enforces slot freshness (a packet stamped for a
/// past or future slot is demoted, never prioritized — Helia cannot
/// reserve ahead of time), polices per monitor index, and forwards plain
/// SCION packets best-effort after standard hop-field verification.
pub struct HeliaDatapath {
    drkey_master: [u8; 16],
    hop_key: HopMacKey,
    cfg: RouterConfig,
    policer: Policer,
    /// `(source AS, slot, res_id, bw)` → expanded packet key: the same
    /// [`AuthKeyCache`] the Hummingbird router uses, instantiated over
    /// Helia's grant identity, so consecutive packets of one flow skip
    /// the DRKey derivation chain *and* the AES key expansion (a real
    /// Helia router holds per-grant keys for the whole slot). `None`
    /// when `cfg.auth_key_cache_slots == 0`.
    key_cache: Option<AuthKeyCache<(IsdAs, u64, u32, u16)>>,
    stats: DatapathStats,
}

impl HeliaDatapath {
    /// Creates the engine with the AS's DRKey master and SCION hop key.
    pub fn new(drkey_master: [u8; 16], hop_key: HopMacKey, cfg: RouterConfig) -> Self {
        HeliaDatapath {
            drkey_master,
            hop_key,
            policer: Policer::new(cfg.policer_slots, cfg.burst_time_ns),
            key_cache: (cfg.auth_key_cache_slots > 0)
                .then(|| AuthKeyCache::new(cfg.auth_key_cache_slots as usize)),
            cfg,
            stats: DatapathStats::default(),
        }
    }

    /// The per-packet key this engine would accept for `source_as` on
    /// `slot` — what the AS's grant service hands to a source-AS gateway.
    pub fn packet_key(
        &self,
        source_as: IsdAs,
        slot: u64,
        res_id: u32,
        bw_encoded: u16,
    ) -> [u8; 16] {
        helia_packet_key(&self.drkey_master, source_as, slot, res_id, bw_encoded)
    }

    /// Issues a grant a [`HeliaSender`] can attach: the AS picks the
    /// monitor index and the bandwidth (the source has no say) and binds
    /// both into the key. Returns `None` for unencodable bandwidths.
    pub fn issue_grant(
        &self,
        source_as: IsdAs,
        slot: u64,
        res_id: u32,
        bandwidth_kbps: u64,
        ingress: u16,
        egress: u16,
    ) -> Option<HeliaHopGrant> {
        let bw_encoded = bwcls::encode_floor(bandwidth_kbps)?;
        Some(HeliaHopGrant {
            ingress,
            egress,
            res_id,
            bw_encoded,
            slot,
            key: self.packet_key(source_as, slot, res_id, bw_encoded),
        })
    }

    /// Runs the shared [`stages::run_pipeline`] driver with Helia's key
    /// hierarchy: the slot index is recovered from the packet's
    /// reservation start (slots are aligned), the key is bound to the
    /// *source AS* — not to the destination, host, or path — and slot
    /// freshness rides the shared freshness stage (the reservation
    /// window *is* the slot) plus a current-slot check.
    fn process_inner(&mut self, pkt: &mut [u8], now_ns: u64) -> Verdict {
        let HeliaDatapath { drkey_master, hop_key, cfg, policer, key_cache, stats } = self;
        let now_s = now_ns / 1_000_000_000;
        let out = stages::run_pipeline(
            pkt,
            now_ns,
            hop_key,
            Some(policer),
            None,
            |parsed, inputs| {
                let slot = u64::from(inputs.res_info.res_start) / SLOT_SECS;
                let id =
                    (parsed.addr.src, slot, inputs.res_info.res_id, inputs.res_info.bw_encoded);
                let derive = || {
                    AuthKey::new(helia_packet_key(drkey_master, parsed.addr.src, slot, id.2, id.3))
                };
                match key_cache {
                    Some(cache) => cache.get_or_derive(&id, derive).clone(),
                    None => derive(),
                }
            },
            |parsed, inputs, now_ms| {
                let slot = u64::from(inputs.res_info.res_start) / SLOT_SECS;
                stages::freshness(cfg, parsed, &inputs.res_info, now_ms) && slot == slot_of(now_s)
            },
        );
        stats.demoted_overuse += u64::from(out.demoted_overuse);
        stats.demoted_untimely += u64::from(out.demoted_untimely);
        out.verdict
    }
}

impl Datapath for HeliaDatapath {
    fn process(&mut self, pkt: &mut [u8], now_ns: u64) -> Verdict {
        let verdict = self.process_inner(pkt, now_ns);
        self.stats.record(verdict);
        verdict
    }

    fn engine_name(&self) -> &'static str {
        "helia"
    }

    fn stats(&self) -> DatapathStats {
        let mut stats = self.stats;
        if let Some(cache) = &self.key_cache {
            stats.key_cache_hits = cache.hits();
            stats.key_cache_misses = cache.misses();
        }
        stats
    }

    fn reset_stats(&mut self) {
        self.stats = DatapathStats::default();
        if let Some(cache) = &mut self.key_cache {
            cache.reset_counters();
        }
    }
}

/// A Helia grant as attached to one hop of a sender's path — everything
/// in it (index, bandwidth, slot, key) is AS-chosen; the source only
/// carries it.
#[derive(Clone, Copy, Debug)]
pub struct HeliaHopGrant {
    /// Construction-direction ingress of the hop.
    pub ingress: u16,
    /// Construction-direction egress of the hop.
    pub egress: u16,
    /// AS-assigned monitor index (the policing slot).
    pub res_id: u32,
    /// AS-assigned bandwidth class (10-bit codec).
    pub bw_encoded: u16,
    /// The slot the grant covers.
    pub slot: u64,
    /// The per-packet authenticator key the AS's grant service issued
    /// ([`helia_packet_key`]).
    pub key: [u8; 16],
}

/// A source stamping Helia-authenticated packets over a beaconed path.
pub struct HeliaSender {
    generator: SourceGenerator,
}

impl HeliaSender {
    /// Creates a sender; `src` must be the AS the grants were issued to.
    pub fn new(src: IsdAs, dst: IsdAs, path: HummingbirdPath) -> Self {
        HeliaSender { generator: SourceGenerator::new(src, dst, path) }
    }

    /// Attaches a grant on hop `index`.
    pub fn attach_grant(&mut self, index: usize, grant: &HeliaHopGrant) -> Result<(), GenError> {
        let res_info = ResInfo {
            ingress: grant.ingress,
            egress: grant.egress,
            res_id: grant.res_id,
            bw_encoded: grant.bw_encoded,
            res_start: (grant.slot * SLOT_SECS) as u32,
            duration: SLOT_SECS as u16,
        };
        self.generator
            .attach_reservation(index, SourceReservation { res_info, key: AuthKey::new(grant.key) })
    }

    /// Generates one stamped packet.
    pub fn generate(&mut self, payload: &[u8], now_ms: u64) -> Result<Vec<u8>, GenError> {
        self.generator.generate(payload, now_ms)
    }
}

/// Derives (and memoizes) the DRKey epoch secret — shared by the engines'
/// hot paths (DRKey here, EPIC in [`crate::epic`]) and the key-service
/// helpers.
pub(crate) fn cached_epoch_secret<'a>(
    cache: &'a mut Option<(u64, DrKeySecret)>,
    master: &[u8; 16],
    epoch: u64,
) -> &'a DrKeySecret {
    match cache {
        Some((e, _)) if *e == epoch => {}
        _ => *cache = Some((epoch, DrKeySecret::derive(master, epoch))),
    }
    &cache.as_ref().expect("just cached").1
}

/// A DRKey-only engine: per-packet source authentication without
/// reservations (the PISKES model Helia builds on).
///
/// Flyover-tagged packets carry a MAC under the host key
/// `K_{A→B:H} = PRF_{K_{A→B}}(H)`; the engine re-derives the key from the
/// packet's source AS + host address and the current epoch, verifies, and
/// forwards **best effort** (there is no priority class to grant). A bad
/// authenticator is a drop; plain SCION packets pass standard hop-field
/// verification only.
pub struct DrKeyDatapath {
    drkey_master: [u8; 16],
    hop_key: HopMacKey,
    /// Cached epoch secret (derives lazily; rotates with the clock).
    epoch_secret: Option<(u64, DrKeySecret)>,
    /// `(source AS, host, epoch)` → expanded host key, so the AES key
    /// expansion of `K_{A→B:H}` runs once per host per epoch instead of
    /// once per packet (the shared [`AuthKeyCache`] over the PISKES key
    /// identity).
    host_key_cache: AuthKeyCache<(IsdAs, [u8; 4], u64)>,
    stats: DatapathStats,
}

impl DrKeyDatapath {
    /// Creates the engine with the AS's DRKey master and SCION hop key.
    pub fn new(drkey_master: [u8; 16], hop_key: HopMacKey) -> Self {
        DrKeyDatapath {
            drkey_master,
            hop_key,
            epoch_secret: None,
            host_key_cache: AuthKeyCache::new(DEFAULT_AUTH_KEY_CACHE_SLOTS as usize),
            stats: DatapathStats::default(),
        }
    }

    /// The host key this engine accepts for `(src, host)` at `now_s` —
    /// what the AS's key service would hand out.
    pub fn host_key(&mut self, src: IsdAs, host: [u8; 4], now_s: u64) -> [u8; 16] {
        cached_epoch_secret(&mut self.epoch_secret, &self.drkey_master, epoch_of(now_s))
            .as_to_host(src, host)
    }

    /// Runs the shared [`stages::run_pipeline`] driver with the DRKey
    /// host-key hierarchy and no priority class at all: `eligible` is
    /// constant `false` and the policing stage is disabled, so every
    /// authenticated packet — flyover-tagged or plain — rides best
    /// effort.
    fn process_inner(&mut self, pkt: &mut [u8], now_ns: u64) -> Verdict {
        let DrKeyDatapath { drkey_master, hop_key, epoch_secret, host_key_cache, stats: _ } = self;
        let now_s = now_ns / 1_000_000_000;
        let epoch = epoch_of(now_s);
        let out = stages::run_pipeline(
            pkt,
            now_ns,
            hop_key,
            None,
            None,
            |parsed, _| {
                let id = (parsed.addr.src, parsed.addr.src_host, epoch);
                host_key_cache
                    .get_or_derive(&id, || {
                        let sv = cached_epoch_secret(epoch_secret, drkey_master, epoch);
                        AuthKey::new(sv.as_to_host(parsed.addr.src, parsed.addr.src_host))
                    })
                    .clone()
            },
            |_, _, _| false,
        );
        out.verdict
    }
}

impl Datapath for DrKeyDatapath {
    fn process(&mut self, pkt: &mut [u8], now_ns: u64) -> Verdict {
        let verdict = self.process_inner(pkt, now_ns);
        self.stats.record(verdict);
        verdict
    }

    fn engine_name(&self) -> &'static str {
        "drkey"
    }

    fn stats(&self) -> DatapathStats {
        let mut stats = self.stats;
        stats.key_cache_hits = self.host_key_cache.hits();
        stats.key_cache_misses = self.host_key_cache.misses();
        stats
    }

    fn reset_stats(&mut self) {
        self.stats = DatapathStats::default();
        self.host_key_cache.reset_counters();
    }
}

/// A source stamping DRKey host-authenticated packets.
pub struct DrKeySender {
    generator: SourceGenerator,
}

impl DrKeySender {
    /// Creates a sender for `(src, src_host)` — the host address must
    /// match what the sender's packets carry, since the verifying AS
    /// derives the key from the address header.
    pub fn new(src: IsdAs, dst: IsdAs, path: HummingbirdPath) -> Self {
        DrKeySender { generator: SourceGenerator::new(src, dst, path) }
    }

    /// Attaches the host key for hop `index` (obtained from that AS's key
    /// service, e.g. [`DrKeyDatapath::host_key`]) valid at `now_s`.
    pub fn attach_host_key(
        &mut self,
        index: usize,
        ingress: u16,
        egress: u16,
        key: [u8; 16],
        now_s: u64,
    ) -> Result<(), GenError> {
        let epoch = epoch_of(now_s);
        let res_info = ResInfo {
            ingress,
            egress,
            res_id: 0,
            bw_encoded: 0,
            res_start: (epoch * EPOCH_SECS) as u32,
            duration: u16::MAX, // epoch length exceeds the u16 field; unused
        };
        self.generator
            .attach_reservation(index, SourceReservation { res_info, key: AuthKey::new(key) })
    }

    /// Generates one stamped packet.
    pub fn generate(&mut self, payload: &[u8], now_ms: u64) -> Result<Vec<u8>, GenError> {
        self.generator.generate(payload, now_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummingbird_dataplane::{forge_path, BeaconHop, DropReason};

    const NOW_S: u64 = 1_700_000_100;
    const NOW_MS: u64 = NOW_S * 1000;
    const NOW_NS: u64 = NOW_S * 1_000_000_000;

    fn two_hop_fixture() -> (HummingbirdPath, Vec<HopMacKey>) {
        let hop_keys: Vec<HopMacKey> =
            (0..2).map(|i| HopMacKey::new([0x41 + i as u8; 16])).collect();
        let hops: Vec<BeaconHop> = (0..2)
            .map(|i| BeaconHop {
                key: hop_keys[i].clone(),
                cons_ingress: if i == 0 { 0 } else { 2 },
                cons_egress: if i == 1 { 0 } else { 1 },
            })
            .collect();
        (forge_path(&hops, NOW_S as u32 - 100, 0x7777), hop_keys)
    }

    #[test]
    fn helia_roundtrip_verifies_and_prioritizes() {
        let (path, hop_keys) = two_hop_fixture();
        let src = IsdAs::new(3, 0x30);
        let engine_src =
            HeliaDatapath::new([0x99; 16], hop_keys[0].clone(), RouterConfig::default());
        let grant = engine_src.issue_grant(src, slot_of(NOW_S), 7, 100_000, 0, 1).unwrap();
        let mut sender = HeliaSender::new(src, IsdAs::new(2, 0x20), path);
        sender.attach_grant(0, &grant).unwrap();
        let mut pkt = sender.generate(&[0u8; 300], NOW_MS).unwrap();
        let mut engine = engine_src;
        let v = engine.process(&mut pkt, NOW_NS);
        assert!(v.is_flyover(), "{v:?}");
        assert_eq!(engine.stats().flyover, 1);
    }

    #[test]
    fn helia_rejects_wrong_master_and_stale_slots() {
        let (path, hop_keys) = two_hop_fixture();
        let src = IsdAs::new(3, 0x30);
        let slot = slot_of(NOW_S);
        let mut engine =
            HeliaDatapath::new([0x99; 16], hop_keys[0].clone(), RouterConfig::default());

        // Grant issued by a *different* AS (wrong master): drops.
        let rogue = HeliaDatapath::new([0xAB; 16], hop_keys[0].clone(), RouterConfig::default());
        let forged_grant = rogue.issue_grant(src, slot, 7, 100_000, 0, 1).unwrap();
        let mut sender = HeliaSender::new(src, IsdAs::new(2, 0x20), path.clone());
        sender.attach_grant(0, &forged_grant).unwrap();
        let mut forged = sender.generate(&[0u8; 64], NOW_MS).unwrap();
        assert_eq!(engine.process(&mut forged, NOW_NS), Verdict::Drop(DropReason::BadMac));

        // Right master but a past slot: demoted, never prioritized (Helia
        // cannot reserve outside the current slot).
        let stale_grant = engine.issue_grant(src, slot - 2, 7, 100_000, 0, 1).unwrap();
        let mut sender = HeliaSender::new(src, IsdAs::new(2, 0x20), path);
        sender.attach_grant(0, &stale_grant).unwrap();
        let mut stale = sender.generate(&[0u8; 64], NOW_MS).unwrap();
        let v = engine.process(&mut stale, NOW_NS);
        assert!(matches!(v, Verdict::BestEffort { .. }), "{v:?}");
        assert_eq!(engine.stats().demoted_untimely, 1);
    }

    #[test]
    fn helia_polices_the_as_assigned_share() {
        let (path, hop_keys) = two_hop_fixture();
        let src = IsdAs::new(3, 0x30);
        let engine_src =
            HeliaDatapath::new([0x77; 16], hop_keys[0].clone(), RouterConfig::default());
        // 240 kbps: one 1500 B packet fills the 50 ms burst budget.
        let grant = engine_src.issue_grant(src, slot_of(NOW_S), 3, 240, 0, 1).unwrap();
        let mut sender = HeliaSender::new(src, IsdAs::new(2, 0x20), path);
        sender.attach_grant(0, &grant).unwrap();
        let mut engine = engine_src;
        let mut flyover = 0;
        let mut demoted = 0;
        for _ in 0..20 {
            let mut pkt = sender.generate(&[0u8; 1400], NOW_MS).unwrap();
            match engine.process(&mut pkt, NOW_NS) {
                v if v.is_flyover() => flyover += 1,
                Verdict::BestEffort { .. } => demoted += 1,
                v => panic!("unexpected {v:?}"),
            }
        }
        assert!(flyover >= 1);
        assert!(demoted > 10, "sustained overuse of the AS-assigned share demotes");
    }

    #[test]
    fn drkey_authenticates_sources_without_priority() {
        let (path, hop_keys) = two_hop_fixture();
        let src = IsdAs::new(4, 0x44);
        let mut engine = DrKeyDatapath::new([0x55; 16], hop_keys[0].clone());
        // SourceGenerator stamps src_host = 0.0.0.1 (the builder default).
        let key = engine.host_key(src, [0, 0, 0, 1], NOW_S);
        let mut sender = DrKeySender::new(src, IsdAs::new(2, 0x20), path);
        sender.attach_host_key(0, 0, 1, key, NOW_S).unwrap();
        let mut pkt = sender.generate(&[0u8; 200], NOW_MS).unwrap();
        let v = engine.process(&mut pkt, NOW_NS);
        assert!(matches!(v, Verdict::BestEffort { .. }), "no priority class: {v:?}");

        // A different host's key does not verify.
        let other_key = engine.host_key(src, [9, 9, 9, 9], NOW_S);
        let mut sender = DrKeySender::new(src, IsdAs::new(2, 0x20), two_hop_fixture().0);
        sender.attach_host_key(0, 0, 1, other_key, NOW_S).unwrap();
        let mut forged = sender.generate(&[0u8; 200], NOW_MS).unwrap();
        assert_eq!(engine.process(&mut forged, NOW_NS), Verdict::Drop(DropReason::BadMac));
    }
}
