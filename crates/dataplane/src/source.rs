//! Source-side traffic generation (paper §7, Appendix B.3).
//!
//! The source holds a beaconed path plus the reservation keys obtained on
//! the control plane, and stamps every outgoing packet with fresh
//! timestamps, a unique counter, and one flyover MAC per reserved hop
//! (Eq. 3 / Fig. 11). This is the workload of Table 4 and Figs. 14-15:
//! unlike a border router, the source computes the authentication tags for
//! *all* on-path ASes.

use hummingbird_crypto::{aggregate_mac, AuthKey, FlyoverMacInput, ResInfo};
use hummingbird_wire::common::IsdAs;
use hummingbird_wire::hopfield::{FlyoverHopField, HopFlags};
use hummingbird_wire::packet::{Packet, PacketBuilder};
use hummingbird_wire::path::{HummingbirdPath, PathField};
use hummingbird_wire::WireError;

/// A reservation attached to one hop of the source's path.
#[derive(Clone, Debug)]
pub struct SourceReservation {
    /// Data-plane reservation parameters (must match the hop's
    /// interfaces).
    pub res_info: ResInfo,
    /// The authentication key obtained through the control plane.
    pub key: AuthKey,
}

/// Errors from packet generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenError {
    /// Reservation interfaces do not match the path hop.
    InterfaceMismatch,
    /// The packet is sent before the reservation start or more than the
    /// 16-bit offset range after it.
    StartOffsetOutOfRange,
    /// Wire-format error.
    Wire(WireError),
    /// Hop index out of range.
    NoSuchHop,
}

impl From<WireError> for GenError {
    fn from(e: WireError) -> Self {
        GenError::Wire(e)
    }
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::InterfaceMismatch => f.write_str("reservation/hop interface mismatch"),
            GenError::StartOffsetOutOfRange => f.write_str("ResStartOffset out of range"),
            GenError::Wire(e) => write!(f, "wire error: {e}"),
            GenError::NoSuchHop => f.write_str("hop index out of range"),
        }
    }
}

impl std::error::Error for GenError {}

/// A Hummingbird traffic source for one path.
pub struct SourceGenerator {
    builder: PacketBuilder,
    base_path: HummingbirdPath,
    reservations: Vec<Option<SourceReservation>>,
    counter: u16,
    last_ms: u64,
    dst: IsdAs,
}

impl SourceGenerator {
    /// Creates a generator over a beaconed `path` (plain hop fields, e.g.
    /// from [`crate::beacon::forge_path`]).
    pub fn new(src: IsdAs, dst: IsdAs, path: HummingbirdPath) -> Self {
        let n = path.hops.len();
        SourceGenerator {
            builder: PacketBuilder::new(src, dst),
            base_path: path,
            reservations: vec![None; n],
            counter: 0,
            last_ms: 0,
            dst,
        }
    }

    /// Attaches a reservation to hop `index`. The reservation's interfaces
    /// must match the hop's.
    pub fn attach_reservation(
        &mut self,
        index: usize,
        res: SourceReservation,
    ) -> Result<(), GenError> {
        let hop = self.base_path.hops.get(index).ok_or(GenError::NoSuchHop)?;
        if hop.cons_ingress() != res.res_info.ingress || hop.cons_egress() != res.res_info.egress {
            return Err(GenError::InterfaceMismatch);
        }
        self.reservations[index] = Some(res);
        Ok(())
    }

    /// Removes the reservation on hop `index`.
    pub fn detach_reservation(&mut self, index: usize) {
        if let Some(slot) = self.reservations.get_mut(index) {
            *slot = None;
        }
    }

    /// How many hops carry reservations.
    pub fn reserved_hops(&self) -> usize {
        self.reservations.iter().filter(|r| r.is_some()).count()
    }

    /// Generates one packet with `payload` at time `now_ms` (Unix ms),
    /// returning the serialized bytes. Each call stamps a unique
    /// `(BaseTimestamp, MillisTimestamp, Counter)` triple.
    pub fn generate(&mut self, payload: &[u8], now_ms: u64) -> Result<Vec<u8>, GenError> {
        let pkt = self.generate_packet(payload, now_ms)?;
        Ok(pkt.to_bytes()?)
    }

    /// Generates one packet as an owned [`Packet`] structure.
    pub fn generate_packet(&mut self, payload: &[u8], now_ms: u64) -> Result<Packet, GenError> {
        // Unique (BaseTS, MillisTS, Counter) per packet (App. A.1).
        if now_ms != self.last_ms {
            self.last_ms = now_ms;
            self.counter = 0;
        } else {
            self.counter = self.counter.wrapping_add(1);
        }
        let base_ts = (now_ms / 1000) as u32;
        let millis_ts = (now_ms % 1000) as u16;

        // Build the path: plain hops stay as-is; reserved hops become
        // flyover hop fields. MACs are filled in after the packet length
        // is known (PktLen is authenticated, Eq. 7d).
        let mut path = self.base_path.clone();
        path.meta.base_ts = base_ts;
        path.meta.millis_ts = millis_ts;
        path.meta.counter = self.counter;

        let mut seg_len_delta = [0u16; 3];
        let mut hop_segments = Vec::with_capacity(path.hops.len());
        {
            // Which segment each hop belongs to (for SegLen adjustment).
            let mut seg = 0usize;
            let mut consumed = 0u16;
            for hop in &self.base_path.hops {
                while consumed >= u16::from(self.base_path.meta.seg_len[seg]) {
                    consumed -= u16::from(self.base_path.meta.seg_len[seg]);
                    seg += 1;
                }
                hop_segments.push(seg);
                consumed += u16::from(hop.units());
            }
        }

        for (i, slot) in self.reservations.iter().enumerate() {
            let Some(res) = slot else { continue };
            let PathField::Hop(hf) = path.hops[i] else {
                continue; // base path always carries plain hop fields
            };
            let offset = compute_start_offset(base_ts, res.res_info.res_start)?;
            path.hops[i] = PathField::Flyover(FlyoverHopField {
                flags: HopFlags { flyover: true, ..hf.flags },
                exp_time: hf.exp_time,
                cons_ingress: hf.cons_ingress,
                cons_egress: hf.cons_egress,
                agg_mac: hf.mac, // placeholder; XORed below
                res_id: res.res_info.res_id,
                bw: res.res_info.bw_encoded,
                res_start_offset: offset,
                res_duration: res.res_info.duration,
            });
            seg_len_delta[hop_segments[i]] += 2; // 20 B vs 12 B = +2 units
        }
        for (i, delta) in seg_len_delta.iter().enumerate() {
            path.meta.seg_len[i] = path.meta.seg_len[i].saturating_add(*delta as u8);
        }

        // Assemble to learn PktLen, then compute flyover MACs (Table 4:
        // "Compute flyover MACs" happens per packet for all on-path ASes).
        let mut pkt = self.builder.build(path, payload.to_vec())?;
        let pkt_len = pkt.pkt_len()?;
        for (i, slot) in self.reservations.iter().enumerate() {
            let Some(res) = slot else { continue };
            let PathField::Flyover(ref mut fly) = pkt.path.hops[i] else { continue };
            let input = FlyoverMacInput {
                dst_isd: self.dst.isd,
                dst_as: self.dst.asn,
                pkt_len,
                res_start_offset: fly.res_start_offset,
                millis_ts,
                counter: pkt.path.meta.counter,
            };
            let fly_mac = res.key.flyover_mac(&input);
            fly.agg_mac = aggregate_mac(&fly.agg_mac, &fly_mac);
        }
        Ok(pkt)
    }
}

/// `ResStartOffset = BaseTimestamp − ResStart`, checked to the 16-bit
/// field range (≈18 h, App. A.4).
fn compute_start_offset(base_ts: u32, res_start: u32) -> Result<u16, GenError> {
    if base_ts < res_start {
        return Err(GenError::StartOffsetOutOfRange);
    }
    u16::try_from(base_ts - res_start).map_err(|_| GenError::StartOffsetOutOfRange)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beacon::{forge_path, BeaconHop};
    use hummingbird_crypto::SecretValue;
    use hummingbird_wire::scion_mac::HopMacKey;

    fn make_gen(n_hops: usize) -> (SourceGenerator, Vec<SecretValue>) {
        let hops: Vec<BeaconHop> = (0..n_hops)
            .map(|i| BeaconHop {
                key: HopMacKey::new([i as u8 + 1; 16]),
                cons_ingress: if i == 0 { 0 } else { 2 * i as u16 },
                cons_egress: if i == n_hops - 1 { 0 } else { 2 * i as u16 + 1 },
            })
            .collect();
        let path = forge_path(&hops, 1_700_000_000, 7);
        let svs: Vec<SecretValue> =
            (0..n_hops).map(|i| SecretValue::new([0x40 + i as u8; 16])).collect();
        let src = IsdAs::new(1, 0x10);
        let dst = IsdAs::new(2, 0x20);
        (SourceGenerator::new(src, dst, path), svs)
    }

    fn reservation_for(
        sv: &SecretValue,
        ingress: u16,
        egress: u16,
        res_start: u32,
    ) -> SourceReservation {
        let res_info =
            ResInfo { ingress, egress, res_id: 5, bw_encoded: 200, res_start, duration: 600 };
        let key = sv.derive_key(&res_info);
        SourceReservation { res_info, key }
    }

    #[test]
    fn generates_parseable_packets() {
        let (mut g, svs) = make_gen(4);
        let now_ms = 1_700_000_100_000;
        g.attach_reservation(1, reservation_for(&svs[1], 2, 3, 1_700_000_050)).unwrap();
        let bytes = g.generate(&[0xab; 500], now_ms).unwrap();
        let pkt = Packet::parse(&bytes).unwrap();
        assert_eq!(pkt.path.hops.len(), 4);
        assert!(pkt.path.hops[1].is_flyover());
        assert_eq!(pkt.payload.len(), 500);
    }

    #[test]
    fn counters_make_packets_unique() {
        let (mut g, _) = make_gen(2);
        let now_ms = 1_700_000_100_000;
        let a = g.generate(&[1], now_ms).unwrap();
        let b = g.generate(&[1], now_ms).unwrap();
        let pa = Packet::parse(&a).unwrap();
        let pb = Packet::parse(&b).unwrap();
        assert_ne!(pa.path.meta.counter, pb.path.meta.counter);
        // New millisecond resets the counter.
        let c = g.generate(&[1], now_ms + 1).unwrap();
        let pc = Packet::parse(&c).unwrap();
        assert_eq!(pc.path.meta.counter, 0);
        assert_eq!(pc.path.meta.millis_ts, pa.path.meta.millis_ts + 1);
    }

    #[test]
    fn interface_mismatch_rejected() {
        let (mut g, svs) = make_gen(3);
        let bad = reservation_for(&svs[1], 99, 98, 1_700_000_000);
        assert_eq!(g.attach_reservation(1, bad), Err(GenError::InterfaceMismatch));
    }

    #[test]
    fn start_offset_range_enforced() {
        let (mut g, svs) = make_gen(2);
        // Reservation starting in the future relative to send time.
        g.attach_reservation(0, reservation_for(&svs[0], 0, 1, 1_700_000_000)).unwrap();
        let too_early = 1_699_999_000_000; // 1000 s before start
        assert_eq!(g.generate(&[0], too_early), Err(GenError::StartOffsetOutOfRange));
        // More than 18 h after start is unencodable.
        let too_late = (1_700_000_000 + 70_000) * 1000;
        assert_eq!(g.generate(&[0], too_late), Err(GenError::StartOffsetOutOfRange));
    }

    #[test]
    fn seg_len_accounts_for_flyover_fields() {
        let (mut g, svs) = make_gen(3);
        g.attach_reservation(0, reservation_for(&svs[0], 0, 1, 1_700_000_000)).unwrap();
        g.attach_reservation(2, reservation_for(&svs[2], 4, 0, 1_700_000_000)).unwrap();
        let bytes = g.generate(&[0; 10], 1_700_000_001_000).unwrap();
        let pkt = Packet::parse(&bytes).unwrap();
        // 2 flyovers (5 units) + 1 hop (3 units) = 13.
        assert_eq!(pkt.path.meta.seg_len[0], 13);
    }

    #[test]
    fn full_hop_count_of_flyovers() {
        let (mut g, svs) = make_gen(5);
        for (i, sv) in svs.iter().enumerate() {
            let hop = g.base_path.hops[i];
            g.attach_reservation(
                i,
                reservation_for(sv, hop.cons_ingress(), hop.cons_egress(), 1_700_000_000),
            )
            .unwrap();
        }
        assert_eq!(g.reserved_hops(), 5);
        let bytes = g.generate(&[0; 100], 1_700_000_001_000).unwrap();
        let pkt = Packet::parse(&bytes).unwrap();
        assert!(pkt.path.hops.iter().all(|h| h.is_flyover()));
    }
}
