//! Beaconing substitute: forges valid SCION paths for the simulation.
//!
//! In SCION, hop-field MACs are created by ASes during beaconing and handed
//! to sources through the path lookup infrastructure. This module plays
//! that role for the simulated topology: given the (test-controlled) AS
//! forwarding keys, it builds a single-segment construction-direction path
//! whose hop-field MACs and SegID chaining verify at every router.

use hummingbird_wire::hopfield::{HopField, HopFlags, InfoField};
use hummingbird_wire::meta::PathMetaHdr;
use hummingbird_wire::path::{HummingbirdPath, PathField};
use hummingbird_wire::scion_mac::{update_seg_id, HopMacInput, HopMacKey};

/// One AS hop of a path under construction.
#[derive(Clone, Debug)]
pub struct BeaconHop {
    /// The AS's hop-field MAC key (`K_i`).
    pub key: HopMacKey,
    /// Ingress interface in construction direction (0 at the first AS).
    pub cons_ingress: u16,
    /// Egress interface in construction direction (0 at the last AS).
    pub cons_egress: u16,
}

/// Default hop-field expiry byte (SCION encodes expiry in units of
/// 24h/256 = 337.5 s relative to the info-field timestamp; 63 ≈ 6 h).
pub const DEFAULT_EXP_TIME: u8 = 63;

/// Absolute expiry of a hop field in Unix seconds (SCION rule:
/// `Timestamp + (1 + ExpTime) · 337.5 s`).
pub fn hop_field_expiry(info_timestamp: u32, exp_time: u8) -> u64 {
    u64::from(info_timestamp) + ((1 + u64::from(exp_time)) * 1350) / 4
}

/// Builds a single-segment construction-direction path through `hops`.
///
/// `info_timestamp` is the beacon timestamp; `beta0` the initial SegID.
/// The returned path carries plain hop fields; sources upgrade hops with
/// reservations to flyover hop fields via
/// [`crate::source::SourceGenerator`].
pub fn forge_path(hops: &[BeaconHop], info_timestamp: u32, beta0: u16) -> HummingbirdPath {
    let mut beta = beta0;
    let mut fields = Vec::with_capacity(hops.len());
    for hop in hops {
        let input = HopMacInput {
            seg_id: beta,
            timestamp: info_timestamp,
            exp_time: DEFAULT_EXP_TIME,
            cons_ingress: hop.cons_ingress,
            cons_egress: hop.cons_egress,
        };
        let mac = hop.key.hop_mac(&input);
        beta = update_seg_id(beta, &mac);
        fields.push(PathField::Hop(HopField {
            flags: HopFlags::default(),
            exp_time: DEFAULT_EXP_TIME,
            cons_ingress: hop.cons_ingress,
            cons_egress: hop.cons_egress,
            mac,
        }));
    }
    let seg_units: u16 = fields.iter().map(|f| u16::from(f.units())).sum();
    HummingbirdPath {
        meta: PathMetaHdr {
            curr_inf: 0,
            curr_hf: 0,
            seg_len: [seg_units as u8, 0, 0],
            base_ts: 0,
            millis_ts: 0,
            counter: 0,
        },
        info: vec![InfoField {
            peering: false,
            cons_dir: true,
            seg_id: beta0,
            timestamp: info_timestamp,
        }],
        hops: fields,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<HopMacKey> {
        (0..n).map(|i| HopMacKey::new([i as u8 + 1; 16])).collect()
    }

    fn hops_from(keys: &[HopMacKey]) -> Vec<BeaconHop> {
        let n = keys.len();
        keys.iter()
            .enumerate()
            .map(|(i, k)| BeaconHop {
                key: k.clone(),
                cons_ingress: if i == 0 { 0 } else { (2 * i) as u16 },
                cons_egress: if i == n - 1 { 0 } else { (2 * i + 1) as u16 },
            })
            .collect()
    }

    #[test]
    fn forged_path_is_valid_and_chain_verifies() {
        let keys = keys(5);
        let hops = hops_from(&keys);
        let path = forge_path(&hops, 1_700_000_000, 0xbeef);
        path.validate().unwrap();
        assert_eq!(path.hops.len(), 5);

        // Walk the chain like routers do: verify then update SegID.
        let mut beta = path.info[0].seg_id;
        for (i, field) in path.hops.iter().enumerate() {
            let PathField::Hop(hf) = field else { panic!("plain hops expected") };
            let input = HopMacInput {
                seg_id: beta,
                timestamp: path.info[0].timestamp,
                exp_time: hf.exp_time,
                cons_ingress: hf.cons_ingress,
                cons_egress: hf.cons_egress,
            };
            assert_eq!(keys[i].hop_mac(&input), hf.mac, "hop {i} MAC");
            beta = update_seg_id(beta, &hf.mac);
        }
    }

    #[test]
    fn expiry_rule_matches_scion() {
        // ExpTime 0 = 337.5 s -> floor 337 with integer math at .5? Use
        // exact: (1*1350)/4 = 337 (truncated ns-free integer form).
        assert_eq!(hop_field_expiry(0, 0), 337);
        assert_eq!(hop_field_expiry(0, 255), 86_400);
        assert_eq!(hop_field_expiry(1000, 63), 1000 + 21_600);
    }
}
