//! Multi-core throughput harness (paper §7.1-7.2, Figs. 5/14).
//!
//! The paper drives its DPDK implementation with a Spirent traffic
//! generator over 4×40 Gbps links. Here each core runs an independent
//! router (or source generator) over an in-memory packet batch — the same
//! per-packet work, scaled across threads with `crossbeam`.

use crate::router::BorderRouter;
use crate::source::SourceGenerator;
use std::time::Instant;

/// The line rate of the paper's testbed: four 40 Gbps links.
pub const LINE_RATE_GBPS: f64 = 160.0;

/// A throughput measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Throughput {
    /// Packets processed (across all cores).
    pub packets: u64,
    /// Bits moved (wire size × packets).
    pub bits: u64,
    /// Wall-clock seconds (slowest core).
    pub seconds: f64,
}

impl Throughput {
    /// Aggregate throughput in Gbps.
    pub fn gbps(&self) -> f64 {
        self.bits as f64 / self.seconds / 1e9
    }

    /// Aggregate throughput in Gbps, capped at the testbed line rate.
    pub fn gbps_line_capped(&self) -> f64 {
        self.gbps().min(LINE_RATE_GBPS)
    }

    /// Million packets per second.
    pub fn mpps(&self) -> f64 {
        self.packets as f64 / self.seconds / 1e6
    }

    /// Average nanoseconds per packet per core.
    pub fn ns_per_pkt(&self, cores: usize) -> f64 {
        self.seconds * 1e9 * cores as f64 / self.packets as f64
    }
}

/// A packet buffer that can be cheaply reset after the router mutates it
/// in place (SegID, CurrHF, MAC replacement), so the hot loop measures
/// router work rather than packet construction.
pub struct HotLoopPacket {
    bytes: Vec<u8>,
    header_copy: Vec<u8>,
    header_len: usize,
}

impl HotLoopPacket {
    /// Wraps serialized packet bytes; `header_len` bytes are snapshotted.
    pub fn new(bytes: Vec<u8>) -> Self {
        // hdr_len is at byte 5, in 4-byte units.
        let header_len = (4 * usize::from(bytes[5])).min(bytes.len());
        let header_copy = bytes[..header_len].to_vec();
        HotLoopPacket { bytes, header_copy, header_len }
    }

    /// Mutable view of the packet bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Restores the pristine header.
    #[inline]
    pub fn reset(&mut self) {
        self.bytes[..self.header_len].copy_from_slice(&self.header_copy);
    }

    /// Wire length in bytes.
    pub fn wire_len(&self) -> usize {
        self.bytes.len()
    }
}

/// Measures border-router forwarding throughput: `cores` threads each
/// process `pkts_per_core` copies of `packet` through their own router.
pub fn forwarding_throughput<F>(
    make_router: F,
    packet: &[u8],
    cores: usize,
    pkts_per_core: u64,
    now_ns: u64,
) -> Throughput
where
    F: Fn() -> BorderRouter + Sync,
{
    let seconds = crossbeam::thread::scope(|s| {
        let mut handles = Vec::with_capacity(cores);
        for _ in 0..cores {
            let make_router = &make_router;
            handles.push(s.spawn(move |_| {
                let mut router = make_router();
                let mut pkt = HotLoopPacket::new(packet.to_vec());
                let start = Instant::now();
                for _ in 0..pkts_per_core {
                    let verdict = router.process(pkt.bytes_mut(), now_ns);
                    debug_assert!(verdict.egress().is_some(), "{verdict:?}");
                    pkt.reset();
                }
                start.elapsed().as_secs_f64()
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .fold(0.0f64, f64::max)
    })
    .expect("scope");
    let packets = pkts_per_core * cores as u64;
    Throughput { packets, bits: packets * packet.len() as u64 * 8, seconds }
}

/// Measures source traffic-generation throughput: `cores` threads each
/// generate `pkts_per_core` packets with their own generator.
pub fn generation_throughput<F>(
    make_generator: F,
    payload_len: usize,
    cores: usize,
    pkts_per_core: u64,
    start_ms: u64,
) -> Throughput
where
    F: Fn() -> SourceGenerator + Sync,
{
    let payload = vec![0u8; payload_len];
    let bits = std::sync::atomic::AtomicU64::new(0);
    let seconds = crossbeam::thread::scope(|s| {
        let mut handles = Vec::with_capacity(cores);
        for _ in 0..cores {
            let make_generator = &make_generator;
            let payload = &payload;
            let bits = &bits;
            handles.push(s.spawn(move |_| {
                let mut generator = make_generator();
                let mut local_bits = 0u64;
                let start = Instant::now();
                for i in 0..pkts_per_core {
                    // Advance the millisecond clock slowly so the per-ms
                    // counter provides uniqueness.
                    let now_ms = start_ms + i / 1000;
                    let pkt = generator
                        .generate(payload, now_ms)
                        .expect("generation failed");
                    local_bits += pkt.len() as u64 * 8;
                    std::hint::black_box(&pkt);
                }
                bits.fetch_add(local_bits, std::sync::atomic::Ordering::Relaxed);
                start.elapsed().as_secs_f64()
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .fold(0.0f64, f64::max)
    })
    .expect("scope");
    Throughput {
        packets: pkts_per_core * cores as u64,
        bits: bits.into_inner(),
        seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_arithmetic() {
        let t = Throughput { packets: 1_000_000, bits: 12_000_000_000, seconds: 0.5 };
        assert!((t.gbps() - 24.0).abs() < 1e-9);
        assert!((t.mpps() - 2.0).abs() < 1e-9);
        assert!((t.ns_per_pkt(4) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn line_rate_cap() {
        let t = Throughput { packets: 1, bits: 400_000_000_000, seconds: 1.0 };
        assert!((t.gbps_line_capped() - LINE_RATE_GBPS).abs() < 1e-9);
    }
}
