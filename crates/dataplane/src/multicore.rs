//! Multi-core throughput harness (paper §7.1-7.2, Figs. 5/14).
//!
//! The paper drives its DPDK implementation with a Spirent traffic
//! generator over 4×40 Gbps links. Here the [`crate::runtime`] worker-
//! ring runtime supplies the cores: [`forwarding_throughput`] is the
//! per-core-clone configuration of [`crate::runtime::run_to_completion`]
//! (each core drives its own engine through its own NIC-model ring), and
//! the sharded configuration — one logical router with RSS steering and
//! correct cross-core policing — is reached through the same entry point
//! with [`crate::runtime::RuntimeMode::Sharded`].
//!
//! # Migration note
//!
//! [`forwarding_throughput`] used to be hard-wired to `BorderRouter` and
//! to a thread-private batch loop; it is generic over any [`Datapath`]
//! engine and now runs on the worker-ring runtime. Engines that drop
//! traffic are measurable — drops are tallied in the runtime report, not
//! asserted away. The deprecated `HotLoopPacket` alias is gone: use
//! [`crate::PacketBuf`].

use crate::datapath::Datapath;
use crate::runtime::{run_to_completion, ExecMode, RuntimeConfig, RuntimeMode};
use crate::source::SourceGenerator;
use std::time::Instant;

/// The line rate of the paper's testbed: four 40 Gbps links.
pub const LINE_RATE_GBPS: f64 = 160.0;

/// Packets per [`Datapath::process_batch`] burst in the hot loop (a
/// DPDK-ish burst size).
pub const BATCH_SIZE: usize = 32;

/// A throughput measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Throughput {
    /// Packets processed (across all cores).
    pub packets: u64,
    /// Bits moved (wire size × packets).
    pub bits: u64,
    /// Wall-clock seconds (slowest core).
    pub seconds: f64,
}

impl Throughput {
    /// Aggregate throughput in Gbps (0 for an instantaneous or empty
    /// run — tiny smoke runs must not report `inf`/`NaN`).
    pub fn gbps(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.bits as f64 / self.seconds / 1e9
    }

    /// Aggregate throughput in Gbps, capped at the testbed line rate.
    pub fn gbps_line_capped(&self) -> f64 {
        self.gbps().min(LINE_RATE_GBPS)
    }

    /// Million packets per second (0 for an instantaneous or empty run).
    pub fn mpps(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.packets as f64 / self.seconds / 1e6
    }

    /// Average nanoseconds per packet per core (0 for an empty run).
    pub fn ns_per_pkt(&self, cores: usize) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        self.seconds * 1e9 * cores as f64 / self.packets as f64
    }
}

/// Measures forwarding throughput of any [`Datapath`] engine: `cores`
/// worker shards each drive `pkts_per_core` copies of `packet` through
/// their own engine instance in [`BATCH_SIZE`]-packet bursts via the
/// batch path — the [`RuntimeMode::PerCoreClone`] configuration of the
/// worker-ring runtime. Engines that drop traffic are measured, not
/// rejected (drop counts live in the runtime report; use
/// [`run_to_completion`] directly to inspect them).
pub fn forwarding_throughput<D, F>(
    make_engine: F,
    packet: &[u8],
    cores: usize,
    pkts_per_core: u64,
    now_ns: u64,
) -> Throughput
where
    D: Datapath,
    F: Fn() -> D + Sync,
{
    let cores = cores.max(1);
    let mut cfg = RuntimeConfig::new(cores);
    cfg.batch_size = BATCH_SIZE.min(pkts_per_core.max(1) as usize);
    cfg.ring_capacity = cfg.batch_size.max(2);
    // Benchmark setting: real threads when the host has the cores,
    // dedicated-core critical-path estimate when it doesn't.
    cfg.exec = ExecMode::Auto;
    let templates = [packet.to_vec()];
    let report = run_to_completion(
        &cfg,
        RuntimeMode::PerCoreClone,
        |_| make_engine(),
        &templates,
        pkts_per_core * cores as u64,
        now_ns,
    );
    report.throughput()
}

/// Measures source traffic-generation throughput: `cores` threads each
/// generate `pkts_per_core` packets with their own generator.
pub fn generation_throughput<F>(
    make_generator: F,
    payload_len: usize,
    cores: usize,
    pkts_per_core: u64,
    start_ms: u64,
) -> Throughput
where
    F: Fn() -> SourceGenerator + Sync,
{
    let payload = vec![0u8; payload_len];
    let bits = std::sync::atomic::AtomicU64::new(0);
    let seconds = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(cores);
        for _ in 0..cores {
            let make_generator = &make_generator;
            let payload = &payload;
            let bits = &bits;
            handles.push(s.spawn(move || {
                let mut generator = make_generator();
                let mut local_bits = 0u64;
                let start = Instant::now();
                for i in 0..pkts_per_core {
                    // Advance the millisecond clock slowly so the per-ms
                    // counter provides uniqueness.
                    let now_ms = start_ms + i / 1000;
                    let pkt = generator.generate(payload, now_ms).expect("generation failed");
                    local_bits += pkt.len() as u64 * 8;
                    std::hint::black_box(&pkt);
                }
                bits.fetch_add(local_bits, std::sync::atomic::Ordering::Relaxed);
                start.elapsed().as_secs_f64()
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).fold(0.0f64, f64::max)
    });
    Throughput { packets: pkts_per_core * cores as u64, bits: bits.into_inner(), seconds }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_arithmetic() {
        let t = Throughput { packets: 1_000_000, bits: 12_000_000_000, seconds: 0.5 };
        assert!((t.gbps() - 24.0).abs() < 1e-9);
        assert!((t.mpps() - 2.0).abs() < 1e-9);
        assert!((t.ns_per_pkt(4) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn line_rate_cap() {
        let t = Throughput { packets: 1, bits: 400_000_000_000, seconds: 1.0 };
        assert!((t.gbps_line_capped() - LINE_RATE_GBPS).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_and_zero_packets_are_finite() {
        // Tiny smoke runs can complete inside the clock resolution; the
        // arithmetic must stay finite instead of reporting inf/NaN.
        let t = Throughput { packets: 10, bits: 8_000, seconds: 0.0 };
        assert_eq!(t.gbps(), 0.0);
        assert_eq!(t.gbps_line_capped(), 0.0);
        assert_eq!(t.mpps(), 0.0);
        let empty = Throughput { packets: 0, bits: 0, seconds: 1.0 };
        assert_eq!(empty.ns_per_pkt(4), 0.0);
        assert!(t.gbps().is_finite() && empty.mpps().is_finite());
    }

    #[test]
    fn drop_heavy_engines_are_measurable() {
        // Garbage traffic through a real router: every packet drops, and
        // the harness measures it instead of asserting.
        use crate::datapath::DatapathBuilder;
        use hummingbird_crypto::SecretValue;
        use hummingbird_wire::scion_mac::HopMacKey;
        let make =
            || DatapathBuilder::new(SecretValue::new([9; 16]), HopMacKey::new([4; 16])).build();
        let junk = vec![0u8; 128];
        let t = forwarding_throughput(make, &junk, 2, 500, 1);
        assert_eq!(t.packets, 1_000);
        assert!(t.gbps().is_finite());
    }
}
