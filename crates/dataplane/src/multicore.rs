//! Multi-core throughput harness (paper §7.1-7.2, Figs. 5/14).
//!
//! The paper drives its DPDK implementation with a Spirent traffic
//! generator over 4×40 Gbps links. Here each core runs an independent
//! engine (or source generator) over an in-memory packet batch — the same
//! per-packet work, scaled across threads with `std::thread::scope`.
//!
//! # Migration note
//!
//! [`forwarding_throughput`] used to be hard-wired to `BorderRouter`; it
//! is now generic over any [`Datapath`] engine and drives the engine's
//! batch path ([`Datapath::process_batch`]), so every figure binary can
//! sweep engines with a `--engine` flag. `HotLoopPacket` moved to the
//! shared API as [`crate::PacketBuf`] (a deprecated alias remains).

use crate::datapath::{Datapath, PacketBuf, Verdict};
use crate::source::SourceGenerator;
use std::time::Instant;

/// Former name of [`PacketBuf`].
#[deprecated(note = "renamed to hummingbird_dataplane::PacketBuf")]
pub type HotLoopPacket = PacketBuf;

/// The line rate of the paper's testbed: four 40 Gbps links.
pub const LINE_RATE_GBPS: f64 = 160.0;

/// Packets per [`Datapath::process_batch`] burst in the hot loop (a
/// DPDK-ish burst size).
pub const BATCH_SIZE: usize = 32;

/// A throughput measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Throughput {
    /// Packets processed (across all cores).
    pub packets: u64,
    /// Bits moved (wire size × packets).
    pub bits: u64,
    /// Wall-clock seconds (slowest core).
    pub seconds: f64,
}

impl Throughput {
    /// Aggregate throughput in Gbps.
    pub fn gbps(&self) -> f64 {
        self.bits as f64 / self.seconds / 1e9
    }

    /// Aggregate throughput in Gbps, capped at the testbed line rate.
    pub fn gbps_line_capped(&self) -> f64 {
        self.gbps().min(LINE_RATE_GBPS)
    }

    /// Million packets per second.
    pub fn mpps(&self) -> f64 {
        self.packets as f64 / self.seconds / 1e6
    }

    /// Average nanoseconds per packet per core.
    pub fn ns_per_pkt(&self, cores: usize) -> f64 {
        self.seconds * 1e9 * cores as f64 / self.packets as f64
    }
}

/// Measures forwarding throughput of any [`Datapath`] engine: `cores`
/// threads each drive `pkts_per_core` copies of `packet` through their own
/// engine instance in [`BATCH_SIZE`]-packet bursts via the batch path.
pub fn forwarding_throughput<D, F>(
    make_engine: F,
    packet: &[u8],
    cores: usize,
    pkts_per_core: u64,
    now_ns: u64,
) -> Throughput
where
    D: Datapath,
    F: Fn() -> D + Sync,
{
    let seconds = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(cores);
        for _ in 0..cores {
            let make_engine = &make_engine;
            handles.push(s.spawn(move || {
                let mut engine = make_engine();
                let batch_len = BATCH_SIZE.min(pkts_per_core.max(1) as usize);
                let mut batch: Vec<PacketBuf> =
                    (0..batch_len).map(|_| PacketBuf::new(packet.to_vec())).collect();
                let mut verdicts: Vec<Verdict> = Vec::with_capacity(batch_len);
                let mut remaining = pkts_per_core;
                let start = Instant::now();
                while remaining > 0 {
                    let n = (remaining as usize).min(batch_len);
                    verdicts.clear();
                    engine.process_batch(&mut batch[..n], now_ns, &mut verdicts);
                    debug_assert!(verdicts.iter().all(|v| v.egress().is_some()), "{verdicts:?}");
                    for pkt in &mut batch[..n] {
                        pkt.reset();
                    }
                    remaining -= n as u64;
                }
                start.elapsed().as_secs_f64()
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).fold(0.0f64, f64::max)
    });
    let packets = pkts_per_core * cores as u64;
    Throughput { packets, bits: packets * packet.len() as u64 * 8, seconds }
}

/// Measures source traffic-generation throughput: `cores` threads each
/// generate `pkts_per_core` packets with their own generator.
pub fn generation_throughput<F>(
    make_generator: F,
    payload_len: usize,
    cores: usize,
    pkts_per_core: u64,
    start_ms: u64,
) -> Throughput
where
    F: Fn() -> SourceGenerator + Sync,
{
    let payload = vec![0u8; payload_len];
    let bits = std::sync::atomic::AtomicU64::new(0);
    let seconds = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(cores);
        for _ in 0..cores {
            let make_generator = &make_generator;
            let payload = &payload;
            let bits = &bits;
            handles.push(s.spawn(move || {
                let mut generator = make_generator();
                let mut local_bits = 0u64;
                let start = Instant::now();
                for i in 0..pkts_per_core {
                    // Advance the millisecond clock slowly so the per-ms
                    // counter provides uniqueness.
                    let now_ms = start_ms + i / 1000;
                    let pkt = generator.generate(payload, now_ms).expect("generation failed");
                    local_bits += pkt.len() as u64 * 8;
                    std::hint::black_box(&pkt);
                }
                bits.fetch_add(local_bits, std::sync::atomic::Ordering::Relaxed);
                start.elapsed().as_secs_f64()
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).fold(0.0f64, f64::max)
    });
    Throughput { packets: pkts_per_core * cores as u64, bits: bits.into_inner(), seconds }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_arithmetic() {
        let t = Throughput { packets: 1_000_000, bits: 12_000_000_000, seconds: 0.5 };
        assert!((t.gbps() - 24.0).abs() < 1e-9);
        assert!((t.mpps() - 2.0).abs() < 1e-9);
        assert!((t.ns_per_pkt(4) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn line_rate_cap() {
        let t = Throughput { packets: 1, bits: 400_000_000_000, seconds: 1.0 };
        assert!((t.gbps_line_capped() - LINE_RATE_GBPS).abs() < 1e-9);
    }
}
