//! Bounded single-producer / single-consumer rings — the NIC-queue model
//! of the worker-ring runtime.
//!
//! A real deployment of the paper's router receives packets through DPDK
//! rx rings: fixed-capacity descriptor rings the NIC fills and one core
//! drains, with no locking between producer and consumer beyond the
//! head/tail indices. [`SpscRing`] reproduces that discipline in safe
//! Rust: two monotonically increasing atomic counters partition the slot
//! array between exactly one producer and exactly one consumer, so the
//! hot path is one relaxed load, one acquire load, one slot write and one
//! release store per operation. (Each slot carries an uncontended
//! `Mutex` purely to satisfy the compiler's aliasing rules without
//! `unsafe`; by the head/tail protocol the two sides never touch the
//! same slot at the same time, so the lock never blocks.)
//!
//! The ring is *bounded* on purpose: capacity is the model's stand-in
//! for NIC descriptor-ring depth, and a full ring is backpressure — the
//! dispatcher holds off exactly like a NIC drops or pauses when a queue
//! overruns.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A bounded SPSC ring of `T`.
///
/// Sharable by reference across threads (`&SpscRing<T>` is `Send + Sync`
/// for `T: Send`); correctness requires the single-producer /
/// single-consumer discipline: at most one thread calls
/// [`try_push`](SpscRing::try_push) and at most one thread calls
/// [`try_pop`](SpscRing::try_pop)/[`pop_burst`](SpscRing::pop_burst)
/// concurrently.
#[derive(Debug)]
pub struct SpscRing<T> {
    slots: Vec<Mutex<Option<T>>>,
    /// Consumer cursor: total items popped.
    head: AtomicUsize,
    /// Producer cursor: total items pushed.
    tail: AtomicUsize,
}

impl<T> SpscRing<T> {
    /// Creates a ring with room for `capacity` items (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpscRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Maximum number of items the ring holds.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Items currently enqueued (racy snapshot when called off-thread).
    pub fn len(&self) -> usize {
        self.tail.load(Ordering::Acquire).wrapping_sub(self.head.load(Ordering::Acquire))
    }

    /// Whether the ring is currently empty (racy snapshot off-thread).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, or hands it back if the ring is full
    /// (backpressure; the caller decides whether to spin or drop).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        // Only the producer writes `tail`, so a relaxed load reads our
        // own last store; `head` needs acquire to observe the consumer's
        // slot release before we reuse it.
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.slots.len() {
            return Err(item);
        }
        let mut slot = self.slots[tail % self.slots.len()].lock().expect("ring slot poisoned");
        debug_assert!(slot.is_none(), "SPSC protocol violated: producer overran consumer");
        *slot = Some(item);
        drop(slot);
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Dequeues one item, if any.
    pub fn try_pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let item = self.slots[head % self.slots.len()]
            .lock()
            .expect("ring slot poisoned")
            .take()
            .expect("SPSC protocol violated: consumer overran producer");
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// Dequeues up to `max` items into `out` (appending), returning how
    /// many were taken — the burst-oriented rx of a DPDK poll-mode
    /// driver.
    pub fn pop_burst(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut taken = 0;
        while taken < max {
            match self.try_pop() {
                Some(item) => {
                    out.push(item);
                    taken += 1;
                }
                None => break,
            }
        }
        taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let ring = SpscRing::new(4);
        assert_eq!(ring.capacity(), 4);
        for i in 0..4 {
            ring.try_push(i).unwrap();
        }
        assert_eq!(ring.try_push(99), Err(99), "full ring refuses");
        assert_eq!(ring.len(), 4);
        for i in 0..4 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert_eq!(ring.try_pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn wraps_around_many_times() {
        let ring = SpscRing::new(3);
        for round in 0..100u32 {
            ring.try_push(round).unwrap();
            assert_eq!(ring.try_pop(), Some(round));
        }
    }

    #[test]
    fn burst_pop_takes_at_most_max() {
        let ring = SpscRing::new(8);
        for i in 0..6 {
            ring.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(ring.pop_burst(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(ring.pop_burst(&mut out, 4), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(ring.pop_burst(&mut out, 4), 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = SpscRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.try_push(7).unwrap();
        assert_eq!(ring.try_push(8), Err(8));
        assert_eq!(ring.try_pop(), Some(7));
    }

    #[test]
    fn cross_thread_stream_preserves_order() {
        let ring = SpscRing::new(16);
        let n = 10_000u64;
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..n {
                    let mut item = i;
                    loop {
                        match ring.try_push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            });
            let mut expected = 0u64;
            while expected < n {
                if let Some(got) = ring.try_pop() {
                    assert_eq!(got, expected);
                    expected += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
    }
}
