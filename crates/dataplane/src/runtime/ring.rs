//! Bounded single-producer / single-consumer burst rings — the NIC-queue
//! model of the worker-ring runtime.
//!
//! A real deployment of the paper's router receives packets through DPDK
//! rx rings: fixed-capacity descriptor rings the NIC fills and one core
//! drains in *bursts*, with no locking between producer and consumer
//! beyond the head/tail indices. [`SpscRing`] reproduces that discipline
//! in safe Rust at burst granularity: each slot carries one whole burst
//! (a `Vec<T>`), and the burst operations move a burst in or out with a
//! single `Vec` pointer swap plus **one** head/tail update — O(1) per
//! burst, regardless of how many packets it carries.
//!
//! # Memory layout
//!
//! The slot count is rounded up to a power of two so slot indexing is a
//! mask (`cursor & mask`), never a division. The producer's and the
//! consumer's cursors live on **separate cache lines** (the
//! `CachePadded` wrappers below): the producer writes `tail` on every
//! push and the consumer writes `head` on every pop, so sharing a line
//! would bounce it between cores on every operation (false sharing).
//! Each side also keeps a same-line *cache* of the opposite cursor and
//! only re-reads the shared counter when the cached view says the ring
//! might be full (producer) or empty (consumer) — in steady state a
//! burst push or pop touches exactly one foreign cache line (the slot),
//! not three.
//!
//! # Locking discipline (grep-able invariant)
//!
//! **INVARIANT: no per-packet lock.** The burst paths
//! ([`push_burst`](SpscRing::push_burst) /
//! [`pop_burst`](SpscRing::pop_burst)) acquire exactly one uncontended
//! `Mutex` per *burst* — needed only to satisfy the compiler's aliasing
//! rules without `unsafe` (this crate is `#![forbid(unsafe_code)]`); by
//! the head/tail protocol the two sides never touch the same slot at the
//! same time, so the lock never blocks — and move the burst with a
//! pointer swap, so the per-packet cost of a ring hop is `1/burst_len`
//! atomic updates and zero lock acquisitions. The per-packet
//! [`try_push`](SpscRing::try_push) / [`try_pop`](SpscRing::try_pop)
//! compatibility paths are one-item bursts and are not used on the
//! runtime's hot paths (`tests` and priming/teardown only).
//!
//! The ring is *bounded* on purpose: capacity (in burst slots) is the
//! model's stand-in for NIC descriptor-ring depth, and a full ring is
//! backpressure — the producer holds off exactly like a NIC drops or
//! pauses when a queue overruns.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Pads (and aligns) its contents to a 64-byte cache line so the two
/// cursors of an [`SpscRing`] never share a line (x86-64 and aarch64
/// both use 64-byte lines; on machines with longer lines this merely
/// wastes a few bytes).
#[derive(Debug, Default)]
#[repr(align(64))]
struct CachePadded<T>(T);

/// The producer's cache line: the shared `tail` cursor (bursts pushed)
/// plus a producer-private cached view of `head`.
#[derive(Debug, Default)]
struct ProducerSide {
    /// Total bursts pushed. Written only by the producer.
    tail: AtomicUsize,
    /// The producer's last view of `head` (only the producer touches
    /// this, always `Relaxed`; it is an atomic purely so the ring stays
    /// `Sync` without `unsafe`).
    head_cache: AtomicUsize,
}

/// The consumer's cache line: the shared `head` cursor (bursts popped)
/// plus a consumer-private cached view of `tail`.
#[derive(Debug, Default)]
struct ConsumerSide {
    /// Total bursts popped. Written only by the consumer.
    head: AtomicUsize,
    /// The consumer's last view of `tail` (consumer-private, as above).
    tail_cache: AtomicUsize,
}

/// A bounded SPSC ring of `T` bursts.
///
/// Sharable by reference across threads (`&SpscRing<T>` is `Send + Sync`
/// for `T: Send`); correctness requires the single-producer /
/// single-consumer discipline: at most one thread calls
/// [`try_push`](SpscRing::try_push)/[`push_burst`](SpscRing::push_burst)
/// and at most one thread calls
/// [`try_pop`](SpscRing::try_pop)/[`pop_burst`](SpscRing::pop_burst)
/// concurrently.
#[derive(Debug)]
pub struct SpscRing<T> {
    /// One burst per slot. A slot is logically empty (zero-length `Vec`)
    /// outside `[head, tail)`; the `Vec`'s *capacity* stays with the
    /// slot/burst as it circulates, so steady state allocates nothing.
    slots: Vec<Mutex<Vec<T>>>,
    /// `slots.len() - 1`; the slot count is a power of two.
    mask: usize,
    prod: CachePadded<ProducerSide>,
    cons: CachePadded<ConsumerSide>,
}

impl<T> SpscRing<T> {
    /// Creates a ring with room for `capacity` bursts (at least 1;
    /// rounded up to the next power of two so indexing is a mask).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two();
        SpscRing {
            slots: (0..capacity).map(|_| Mutex::new(Vec::new())).collect(),
            mask: capacity - 1,
            prod: CachePadded::default(),
            cons: CachePadded::default(),
        }
    }

    /// Maximum number of bursts the ring holds.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied burst slots — a **conservative upper bound** when called
    /// off-thread. The consumer's cursor is loaded *before* the
    /// producer's: `head` only grows, so a later `tail` load can only
    /// overcount, never undercount into a wrapped (huge) difference the
    /// old tail-first order allowed. A partially consumed head burst
    /// (see [`try_pop`](SpscRing::try_pop)) still counts as one slot.
    pub fn len(&self) -> usize {
        let head = self.cons.0.head.load(Ordering::Acquire);
        let tail = self.prod.0.tail.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Whether the ring is currently empty. Like [`len`](SpscRing::len),
    /// conservative off-thread: `true` is only stable once the producer
    /// has stopped pushing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether every burst slot is occupied — the producer-side view of
    /// backpressure. A full ring is exactly the condition under which
    /// [`push_burst`](SpscRing::push_burst) returns `false`: a stalled
    /// consumer (e.g. a worker refusing to drain rx while its tx queue
    /// is over the
    /// [`BackpressureConfig::high_watermark`](super::BackpressureConfig::high_watermark))
    /// surfaces here, and the producer decides whether to spin
    /// ([`BackpressurePolicy::Block`](super::BackpressurePolicy::Block))
    /// or shed
    /// ([`BackpressurePolicy::Drop`](super::BackpressurePolicy::Drop)).
    /// Conservative off-thread in the same sense as `len`.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity()
    }

    /// Enqueues `burst` whole, or leaves it untouched and returns
    /// `false` if the ring is full (backpressure; the caller decides
    /// whether to spin or drop). On success `burst` comes back *empty
    /// but with the slot's previous capacity* — the `Vec` allocations
    /// circulate through the ring, so steady state never allocates.
    ///
    /// Empty bursts are accepted as a no-op (nothing to enqueue), so a
    /// caller draining a staging buffer never deadlocks on zero items.
    pub fn push_burst(&self, burst: &mut Vec<T>) -> bool {
        if burst.is_empty() {
            return true;
        }
        // Only the producer writes `tail`, so a relaxed load reads our
        // own last store. Check the cached head first; only when the
        // ring *looks* full re-read the shared cursor (acquire, to
        // observe the consumer's slot release before we reuse it).
        let tail = self.prod.0.tail.load(Ordering::Relaxed);
        let mut head = self.prod.0.head_cache.load(Ordering::Relaxed);
        if tail.wrapping_sub(head) >= self.slots.len() {
            head = self.cons.0.head.load(Ordering::Acquire);
            self.prod.0.head_cache.store(head, Ordering::Relaxed);
            if tail.wrapping_sub(head) >= self.slots.len() {
                return false;
            }
        }
        let mut slot = self.slots[tail & self.mask].lock().expect("ring slot poisoned");
        debug_assert!(slot.is_empty(), "SPSC protocol violated: producer overran consumer");
        std::mem::swap(&mut *slot, burst);
        drop(slot);
        self.prod.0.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Dequeues one whole burst. When `out` is empty the burst is moved
    /// with a `Vec` swap (`out`'s old capacity stays behind in the slot
    /// for the producer to reuse); otherwise the items are appended.
    /// Returns how many items arrived (0 when the ring is empty).
    pub fn pop_burst(&self, out: &mut Vec<T>) -> usize {
        let head = self.cons.0.head.load(Ordering::Relaxed);
        let mut tail = self.cons.0.tail_cache.load(Ordering::Relaxed);
        if head == tail {
            tail = self.prod.0.tail.load(Ordering::Acquire);
            self.cons.0.tail_cache.store(tail, Ordering::Relaxed);
            if head == tail {
                return 0;
            }
        }
        let mut slot = self.slots[head & self.mask].lock().expect("ring slot poisoned");
        let taken = slot.len();
        debug_assert!(taken > 0, "SPSC protocol violated: consumer overran producer");
        if out.is_empty() {
            std::mem::swap(&mut *slot, out);
        } else {
            out.append(&mut slot);
        }
        drop(slot);
        self.cons.0.head.store(head.wrapping_add(1), Ordering::Release);
        taken
    }

    /// Enqueues one item as a one-item burst (a compatibility path for
    /// priming/teardown and tests — the hot paths use
    /// [`push_burst`](SpscRing::push_burst)). Hands the item back if the
    /// ring is full.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut burst = vec![item];
        if self.push_burst(&mut burst) {
            Ok(())
        } else {
            Err(burst.pop().expect("push_burst left the refused burst intact"))
        }
    }

    /// Dequeues one item, if any. Multi-item head bursts are consumed
    /// front-to-back (FIFO) without advancing `head` until the burst
    /// empties, so mixing granularities stays ordered; the in-burst
    /// `remove(0)` makes this a compatibility path, not a hot one.
    pub fn try_pop(&self) -> Option<T> {
        let head = self.cons.0.head.load(Ordering::Relaxed);
        let mut tail = self.cons.0.tail_cache.load(Ordering::Relaxed);
        if head == tail {
            tail = self.prod.0.tail.load(Ordering::Acquire);
            self.cons.0.tail_cache.store(tail, Ordering::Relaxed);
            if head == tail {
                return None;
            }
        }
        let mut slot = self.slots[head & self.mask].lock().expect("ring slot poisoned");
        debug_assert!(!slot.is_empty(), "SPSC protocol violated: consumer overran producer");
        let item = slot.remove(0);
        let emptied = slot.is_empty();
        drop(slot);
        if emptied {
            self.cons.0.head.store(head.wrapping_add(1), Ordering::Release);
        }
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let ring = SpscRing::new(4);
        assert_eq!(ring.capacity(), 4);
        for i in 0..4 {
            ring.try_push(i).unwrap();
        }
        assert_eq!(ring.try_push(99), Err(99), "full ring refuses");
        assert_eq!(ring.len(), 4);
        for i in 0..4 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert_eq!(ring.try_pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(SpscRing::<u8>::new(0).capacity(), 1);
        assert_eq!(SpscRing::<u8>::new(3).capacity(), 4);
        assert_eq!(SpscRing::<u8>::new(8).capacity(), 8);
        assert_eq!(SpscRing::<u8>::new(200).capacity(), 256);
    }

    #[test]
    fn wraps_around_many_times() {
        let ring = SpscRing::new(3);
        for round in 0..100u32 {
            ring.try_push(round).unwrap();
            assert_eq!(ring.try_pop(), Some(round));
        }
    }

    #[test]
    fn burst_swap_preserves_order_and_recycles_capacity() {
        let ring = SpscRing::new(2);
        let mut burst: Vec<u32> = (0..32).collect();
        assert!(ring.push_burst(&mut burst));
        assert!(burst.is_empty(), "pushed burst comes back empty");
        let mut more: Vec<u32> = (32..40).collect();
        assert!(ring.push_burst(&mut more));
        let mut refused = vec![99u32];
        assert!(!ring.push_burst(&mut refused), "full ring refuses the burst");
        assert_eq!(refused, vec![99], "refused burst is untouched");

        let mut out = Vec::new();
        assert_eq!(ring.pop_burst(&mut out), 32);
        assert_eq!(out, (0..32).collect::<Vec<_>>());
        // Non-empty `out` appends instead of swapping.
        assert_eq!(ring.pop_burst(&mut out), 8);
        assert_eq!(out, (0..40).collect::<Vec<_>>());
        assert_eq!(ring.pop_burst(&mut out), 0);
        // Allocations circulate instead of being freed: the swap handed
        // the pushed burst's 32-capacity Vec to the consumer...
        assert!(out.capacity() >= 32, "burst capacity travels to the consumer");
        // ...and a fresh push swaps the staged Vec into the slot,
        // handing the producer the slot's previous (empty) Vec back.
        let mut next = vec![7u32];
        assert!(ring.push_burst(&mut next));
        assert!(next.is_empty());
    }

    #[test]
    fn empty_burst_push_is_a_noop() {
        let ring: SpscRing<u32> = SpscRing::new(1);
        let mut none = Vec::new();
        assert!(ring.push_burst(&mut none));
        assert!(ring.is_empty());
    }

    #[test]
    fn single_item_pops_consume_a_burst_in_order() {
        let ring = SpscRing::new(2);
        let mut burst = vec![1, 2, 3];
        assert!(ring.push_burst(&mut burst));
        ring.try_push(4).unwrap();
        assert_eq!(ring.len(), 2, "len counts bursts, not items");
        for want in 1..=4 {
            assert_eq!(ring.try_pop(), Some(want));
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn len_is_a_conservative_bound_and_never_wraps() {
        let ring = SpscRing::new(8);
        assert_eq!(ring.len(), 0);
        for i in 0..5 {
            ring.try_push(i).unwrap();
        }
        assert_eq!(ring.len(), 5);
        for _ in 0..5 {
            ring.try_pop().unwrap();
        }
        assert_eq!(ring.len(), 0);
        // The head-before-tail load order keeps the subtraction
        // non-negative under any interleaving; exhaustively check the
        // single-threaded algebra across wrap points.
        for _ in 0..64 {
            ring.try_push(1u32).unwrap();
            assert_eq!(ring.len(), 1);
            ring.try_pop().unwrap();
            assert_eq!(ring.len(), 0);
        }
    }

    #[test]
    fn cross_thread_stream_preserves_order() {
        let ring = SpscRing::new(16);
        let n = 10_000u64;
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..n {
                    let mut item = i;
                    loop {
                        match ring.try_push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                // Yield, not spin: single-hardware-thread
                                // CI hosts would otherwise burn a whole
                                // timeslice per full-ring stall.
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
            let mut expected = 0u64;
            while expected < n {
                if let Some(got) = ring.try_pop() {
                    assert_eq!(got, expected);
                    expected += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
    }

    /// Loom-style interleaving check of the head/tail protocol: a
    /// producer and a consumer race over a deliberately tiny ring with
    /// pseudo-random burst sizes and pseudo-random yields jittering the
    /// schedule on both sides, across many rounds. Every item must
    /// arrive exactly once, in order — no loss, no duplication — and the
    /// conservative `len()` must never exceed capacity. (The real loom
    /// crate is unavailable offline; scheduling jitter over many rounds
    /// explores the same protocol states probabilistically.)
    #[test]
    fn interleaved_bursts_lose_and_duplicate_nothing() {
        // Deterministic LCG so failures reproduce.
        fn lcg(state: &mut u64) -> u64 {
            *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *state >> 33
        }
        for seed in 0..4u64 {
            let ring: SpscRing<u64> = SpscRing::new(4);
            let total = 8_000u64;
            std::thread::scope(|s| {
                s.spawn(|| {
                    let mut rng = seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
                    let mut next = 0u64;
                    let mut burst = Vec::new();
                    while next < total {
                        let want = 1 + lcg(&mut rng) % 7;
                        while (burst.len() as u64) < want && next < total {
                            burst.push(next);
                            next += 1;
                        }
                        while !ring.push_burst(&mut burst) {
                            std::thread::yield_now();
                        }
                        if lcg(&mut rng).is_multiple_of(3) {
                            std::thread::yield_now();
                        }
                    }
                });
                let mut rng = seed.wrapping_mul(0xB529_7A4D).wrapping_add(7);
                let mut expected = 0u64;
                let mut out = Vec::new();
                while expected < total {
                    assert!(ring.len() <= ring.capacity(), "len must never exceed capacity");
                    out.clear();
                    if ring.pop_burst(&mut out) == 0 {
                        std::thread::yield_now();
                        continue;
                    }
                    for &got in &out {
                        assert_eq!(got, expected, "seed {seed}: lost or duplicated an item");
                        expected += 1;
                    }
                    if lcg(&mut rng).is_multiple_of(3) {
                        std::thread::yield_now();
                    }
                }
                assert_eq!(expected, total);
            });
            assert!(ring.is_empty(), "seed {seed}: ring must drain");
        }
    }
}
