//! The tx half of the worker-ring runtime: per-interface egress queues
//! with the paper's two-class strict-priority forwarding, bounded queue
//! depth, and the backpressure contract the rx side honors.
//!
//! The rx half ([`super::run_to_completion`]) models the NIC-to-core
//! path; until this module existed, verdicts were tallied and the buffer
//! recycled — there was no egress, so the runtime could measure
//! throughput but never *latency*. The tx path closes that gap:
//!
//! * workers push every processed packet as a [`TxPacket`] — the buffer,
//!   its verdict, an enqueue stamp and a per-shard sequence number —
//!   into a per-shard egress [`super::SpscRing`] (the SPSC discipline of
//!   the rx side, reversed);
//! * each processed packet lands in a [`TxScheduler`], which models one
//!   egress port per interface as a *bounded* FIFO pair of
//!   priority-class queues — flyover traffic is serialized ahead of best
//!   effort, exactly the two-class forwarding of the paper's routers
//!   (and of the netsim [`Link`](../../hummingbird_netsim) model) — over
//!   a configurable link rate in virtual time;
//! * per-packet **residence time** (worker enqueue → modeled wire
//!   departure) is folded into [`EgressStats`], the
//!   [`RuntimeReport`](super::RuntimeReport) extension the latency
//!   harnesses read, including a log₂ [`LatencyHistogram`] for tail
//!   (p99) queries.
//!
//! # Overload semantics
//!
//! The port queues are bounded ([`BackpressureConfig::tx_queue_pkts`]
//! per port per class) and [`transmit`](TxScheduler::transmit) is
//! *wire-paced*: a call serializes only the packets the modeled link can
//! start by `now_ns`. When verdicts arrive faster than the wire drains,
//! the queues fill; a packet staged against a full class queue is
//! tail-dropped under [`DropReason::TxQueueFull`] and counted in
//! [`EgressStats::tx_queue_full`] — never silently lost. Upstream, the
//! worker loop watches [`queued_pkts`](TxScheduler::queued_pkts) against
//! [`BackpressureConfig::high_watermark`] and stops draining its rx ring
//! while the tx queue is over it, so producers see a full ring and
//! either block ([`BackpressurePolicy::Block`], the closed-loop
//! netsim/testbed shape) or shed load into
//! `rx_backpressure_drops` ([`BackpressurePolicy::Drop`], the open-loop
//! bench shape). At end of run [`flush`](TxScheduler::flush) drains the
//! residue in virtual time so packet conservation is exact:
//! `processed = forwarded + dropped + tx_queue_full`.
//!
//! Within one `(shard, class)` the egress path is provably FIFO — the
//! SPSC ring preserves worker order and the scheduler serves each class
//! queue front-to-back — and the drain side asserts the per-shard
//! sequence numbers to catch any leak, duplication or reorder (the
//! property `tests/prop_sharded.rs` exercises end to end).

use crate::datapath::{DropReason, PacketBuf, Verdict};
use std::collections::{HashMap, VecDeque};

/// Tuning of the tx path.
#[derive(Clone, Copy, Debug)]
pub struct EgressConfig {
    /// Serialization rate of each egress interface, bits per second.
    pub bandwidth_bps: u64,
}

impl Default for EgressConfig {
    /// 40 Gbps — one port of the paper's 4×40 Gbps testbed.
    fn default() -> Self {
        EgressConfig { bandwidth_bps: 40_000_000_000 }
    }
}

/// What the rx side does while the tx queue is over the high-watermark
/// ([`BackpressureConfig::policy`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Open-loop producers keep arriving and are shed at the rx ring:
    /// each refused packet counts into the shard's
    /// `rx_backpressure_drops`. The bench shape — offered load is a
    /// workload parameter, so loss is the observable.
    #[default]
    Drop,
    /// Producers hold until the wire drains below the watermark — the
    /// closed-loop netsim/testbed shape, where upstream senders feel the
    /// stall and slow down. The worker busy-waits per the configured
    /// [`WaitStrategy`](super::WaitStrategy); no packet is lost at rx.
    Block,
}

/// Bounded-queue and backpressure tuning of the tx path
/// ([`RuntimeConfig::backpressure`](super::RuntimeConfig::backpressure)).
#[derive(Clone, Copy, Debug)]
pub struct BackpressureConfig {
    /// Per-port, per-class tx queue bound in packets (clamped to ≥ 1).
    /// A packet staged against a full class queue is tail-dropped under
    /// [`DropReason::TxQueueFull`].
    pub tx_queue_pkts: usize,
    /// Total queued packets (across all ports of one shard's scheduler)
    /// past which the worker stops draining its rx ring. Keep it below
    /// `tx_queue_pkts` so [`BackpressurePolicy::Block`] stalls before
    /// tail drop sets in.
    pub high_watermark: usize,
    /// What the rx side does while over the watermark.
    pub policy: BackpressurePolicy,
}

impl Default for BackpressureConfig {
    /// 2048-packet class queues, a 1536-packet watermark (¾ of the
    /// bound), open-loop [`BackpressurePolicy::Drop`]. At the default
    /// 40 Gbps [`EgressConfig`] the wire outruns every engine and the
    /// watermark never trips — the bounds only bite when a scenario
    /// narrows the link.
    fn default() -> Self {
        BackpressureConfig {
            tx_queue_pkts: 2048,
            high_watermark: 1536,
            policy: BackpressurePolicy::Drop,
        }
    }
}

/// One processed packet traveling an egress ring: the recycled buffer,
/// its verdict, the worker's enqueue stamp (ns since run start) and the
/// worker's per-shard sequence number (FIFO audit).
#[derive(Debug)]
pub struct TxPacket {
    /// The processed buffer (recycled by the dispatcher after tx).
    pub buf: PacketBuf,
    /// The engine's verdict (class + egress interface).
    pub verdict: Verdict,
    /// Worker-side enqueue time, ns since run start.
    pub enqueued_ns: u64,
    /// Per-shard monotone sequence number.
    pub seq: u64,
}

/// A log₂-bucketed latency histogram: [`Self::BUCKETS`] power-of-two
/// buckets cover the full `u64` nanosecond range — real-socket runs see
/// multi-second scheduler stalls, which a 32-bucket (~2.1 s cap)
/// histogram used to silently flatten — in 520 bytes of `Copy` state.
///
/// The percentile query answers with the *upper bound* of the bucket the
/// rank falls in (resolution ±2×) — the honest precision of a fixed-size
/// histogram, and exactly what the overload acceptance needs: "p99
/// stays bounded" is a factor-of-two claim, not a nanosecond one. The
/// top bucket has no finite upper bound and answers `u64::MAX`.
/// Empty populations answer `0`, never panic or `NaN`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    count: u64,
    buckets: [u64; Self::BUCKETS],
}

impl Default for LatencyHistogram {
    // Manual: std derives `Default` for arrays only up to 32 elements.
    fn default() -> Self {
        LatencyHistogram { count: 0, buckets: [0; Self::BUCKETS] }
    }
}

impl LatencyHistogram {
    /// Bucket count: one per bit of a `u64` sample, so `bucket_of` never
    /// clamps a representable latency into a smaller bucket.
    pub const BUCKETS: usize = 64;

    fn bucket_of(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            ((64 - ns.leading_zeros()) as usize).min(Self::BUCKETS - 1)
        }
    }

    /// Upper bound of bucket `i`, derived from the bucket count: the
    /// shift is guarded so the top bucket (and anything past it) answers
    /// `u64::MAX` instead of overflowing `1u64 << 64` or inventing a
    /// spurious cap.
    fn bucket_upper_ns(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= Self::BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample. Saturating: counts never wrap.
    pub fn record(&mut self, ns: u64) {
        self.count = self.count.saturating_add(1);
        let b = Self::bucket_of(ns);
        self.buckets[b] = self.buckets[b].saturating_add(1);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Nearest-rank percentile (`p` in `[0, 1]`), answered as the upper
    /// bound of the bucket the rank lands in. `0` on an empty
    /// population.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * p.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                return Self::bucket_upper_ns(i);
            }
        }
        Self::bucket_upper_ns(Self::BUCKETS - 1)
    }

    /// Folds another histogram into this one (saturating).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.count = self.count.saturating_add(other.count);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
    }

    /// The samples recorded *since* an `earlier` snapshot of the same
    /// histogram (bucket-wise saturating subtraction) — how windowed
    /// phase statistics carve a percentile out of cumulative counters.
    pub fn since(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut out = *self;
        out.count = out.count.saturating_sub(earlier.count);
        for (b, e) in out.buckets.iter_mut().zip(earlier.buckets.iter()) {
            *b = b.saturating_sub(*e);
        }
        out
    }
}

/// Per-class egress counters and residence times.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EgressClassStats {
    /// Packets serialized in this class.
    pub pkts: u64,
    /// Bytes serialized in this class.
    pub bytes: u64,
    /// Sum of per-packet residence times (worker enqueue → modeled wire
    /// departure), ns. Saturating — a pathological residence sum pins at
    /// `u64::MAX` instead of panicking.
    pub residence_ns_sum: u64,
    /// Maximum per-packet residence time, ns.
    pub residence_ns_max: u64,
    /// Residence-time distribution (for p99-under-overload queries).
    pub residence: LatencyHistogram,
}

impl EgressClassStats {
    /// Mean residence time in ns (0 when no packets were serialized).
    pub fn mean_residence_ns(&self) -> f64 {
        if self.pkts == 0 {
            return 0.0;
        }
        self.residence_ns_sum as f64 / self.pkts as f64
    }

    /// p99 residence time in ns — `0` when nothing was serialized, with
    /// the ±2× bucket resolution of [`LatencyHistogram`].
    pub fn residence_p99_ns(&self) -> u64 {
        self.residence.percentile_ns(0.99)
    }

    fn fold_residence(&mut self, residence: u64) {
        self.residence_ns_sum = self.residence_ns_sum.saturating_add(residence);
        self.residence_ns_max = self.residence_ns_max.max(residence);
        self.residence.record(residence);
    }

    /// Folds another shard's class counters into this one: counts and
    /// residence sums add (saturating), the max residence is the max of
    /// maxes.
    pub fn merge(&mut self, other: &EgressClassStats) {
        self.pkts += other.pkts;
        self.bytes += other.bytes;
        self.residence_ns_sum = self.residence_ns_sum.saturating_add(other.residence_ns_sum);
        self.residence_ns_max = self.residence_ns_max.max(other.residence_ns_max);
        self.residence.merge(&other.residence);
    }
}

/// What the tx path did during one run — the latency face of
/// [`super::RuntimeReport`].
///
/// The per-class packet/byte counts are deterministic (each is a pure
/// function of the verdicts) when the queues never fill; under overload
/// the `tx_queue_full` count depends on worker/tx interleaving, but the
/// conservation identity `forwarded() + dropped + tx_queue_full =
/// processed` is exact in every schedule. Residence times are
/// diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EgressStats {
    /// Flyover (priority-class) traffic.
    pub priority: EgressClassStats,
    /// Best-effort traffic.
    pub best_effort: EgressClassStats,
    /// Packets whose verdict was a drop: recycled without touching an
    /// egress queue.
    pub dropped: u64,
    /// Packets tail-dropped at a full bounded tx queue
    /// ([`DropReason::TxQueueFull`]).
    pub tx_queue_full: u64,
}

impl EgressStats {
    /// Total packets serialized onto the wire.
    pub fn forwarded(&self) -> u64 {
        self.priority.pkts + self.best_effort.pkts
    }

    /// Folds another shard's egress statistics into this one — how the
    /// multi-queue runtime aggregates its per-worker [`TxScheduler`]s
    /// into the single [`EgressStats`] the report carries.
    pub fn merge(&mut self, other: &EgressStats) {
        self.priority.merge(&other.priority);
        self.best_effort.merge(&other.best_effort);
        self.dropped += other.dropped;
        self.tx_queue_full += other.tx_queue_full;
    }
}

/// Per-interface egress port state: one virtual-time serialization
/// horizon plus the bounded two-class queue.
#[derive(Debug, Default)]
struct Port {
    /// When the wire frees up, ns since run start (virtual: may run
    /// ahead of the wall clock).
    busy_until_ns: u64,
    /// Queued priority-class packets `(wire_len, enqueued_ns)`.
    prio: VecDeque<(usize, u64)>,
    /// Queued best-effort packets.
    best_effort: VecDeque<(usize, u64)>,
}

impl Port {
    /// Pops the next packet to serialize, priority first (strict
    /// priority scheduling).
    fn pop_next(&mut self) -> Option<(usize, u64)> {
        self.prio.pop_front().or_else(|| self.best_effort.pop_front())
    }
}

/// Wire-serialization time of `bytes` at `bandwidth_bps`, ns — the one
/// formula both [`TxScheduler::tx_time_ns`] and the transmit loop use.
#[inline]
fn wire_ns(bandwidth_bps: u64, bytes: usize) -> u64 {
    (bytes as u64 * 8).saturating_mul(1_000_000_000) / bandwidth_bps
}

/// The tx scheduler: bounded per-interface FIFO + priority-class egress
/// queues over a modeled link rate.
///
/// Driven in cycles by the worker (or, in single-dispatcher mode, the
/// dispatcher): [`stage`](TxScheduler::stage) every packet popped off
/// the egress rings, then [`transmit`](TxScheduler::transmit) once per
/// cycle — each interface serializes whatever the wire can start by
/// `now_ns`, staged priority packets front-to-back before any staged
/// best-effort packet, so flyover traffic overtakes best effort at
/// exactly the granularity a strict-priority port would enforce. At the
/// end of a run, [`flush`](TxScheduler::flush) drains the residue in
/// virtual time.
#[derive(Debug)]
pub struct TxScheduler {
    bandwidth_bps: u64,
    /// Per-port, per-class queue bound, packets.
    queue_bound: usize,
    ports: HashMap<u16, Port>,
    /// Total packets currently queued across all ports and classes.
    queued: usize,
    stats: EgressStats,
}

impl TxScheduler {
    /// Creates a scheduler over `cfg`'s link rate with the default
    /// [`BackpressureConfig`] queue bound.
    pub fn new(cfg: &EgressConfig) -> Self {
        Self::with_backpressure(cfg, &BackpressureConfig::default())
    }

    /// Creates a scheduler over `cfg`'s link rate with `bp`'s per-class
    /// queue bound.
    pub fn with_backpressure(cfg: &EgressConfig, bp: &BackpressureConfig) -> Self {
        TxScheduler {
            bandwidth_bps: cfg.bandwidth_bps.max(1),
            queue_bound: bp.tx_queue_pkts.max(1),
            ports: HashMap::new(),
            queued: 0,
            stats: EgressStats::default(),
        }
    }

    /// Wire-serialization time of `bytes` at the configured rate, ns.
    pub fn tx_time_ns(&self, bytes: usize) -> u64 {
        wire_ns(self.bandwidth_bps, bytes)
    }

    /// Packets currently queued across all ports — what the worker
    /// compares against [`BackpressureConfig::high_watermark`].
    pub fn queued_pkts(&self) -> usize {
        self.queued
    }

    /// Queues one packet for its verdict's port; dropped verdicts are
    /// counted and never queued. Returns the drop reason if the packet
    /// did not reach a queue: the verdict's own reason, or
    /// [`DropReason::TxQueueFull`] when the class queue is at its bound
    /// (counted in [`EgressStats::tx_queue_full`]).
    pub fn stage(
        &mut self,
        verdict: Verdict,
        wire_len: usize,
        enqueued_ns: u64,
    ) -> Result<(), DropReason> {
        match verdict {
            Verdict::Drop(reason) => {
                self.stats.dropped += 1;
                Err(reason)
            }
            Verdict::Flyover { egress } | Verdict::BestEffort { egress } => {
                let port = self.ports.entry(egress).or_default();
                let queue =
                    if verdict.is_flyover() { &mut port.prio } else { &mut port.best_effort };
                if queue.len() >= self.queue_bound {
                    self.stats.tx_queue_full += 1;
                    return Err(DropReason::TxQueueFull);
                }
                queue.push_back((wire_len, enqueued_ns));
                self.queued += 1;
                Ok(())
            }
        }
    }

    /// Serializes one queued packet on `port`, folding its residence
    /// into the stats. The packet starts when the wire frees up or when
    /// it was staged, whichever is later — never before it existed, but
    /// also never idling a free wire just because the owner polls
    /// coarsely.
    fn serialize_next(port: &mut Port, bandwidth_bps: u64, stats: &mut EgressStats) -> bool {
        let from_prio = !port.prio.is_empty();
        let Some((wire_len, enqueued_ns)) = port.pop_next() else {
            return false;
        };
        let start = port.busy_until_ns.max(enqueued_ns);
        let departure = start + wire_ns(bandwidth_bps, wire_len);
        port.busy_until_ns = departure;
        let class = if from_prio { &mut stats.priority } else { &mut stats.best_effort };
        class.pkts += 1;
        class.bytes += wire_len as u64;
        class.fold_residence(departure.saturating_sub(enqueued_ns));
        true
    }

    /// Serializes what the wire can *start* by `now_ns`: per interface,
    /// packets leave the bounded queues (priority class first) while the
    /// port's serialization horizon has not passed `now_ns`. The wire is
    /// modeled as continuously busy between polls — each packet starts
    /// at `max(previous departure, its stage time)`, so a coarse polling
    /// cadence costs nothing and the drain rate is the configured
    /// bandwidth, not the poll rate. A producer genuinely outrunning the
    /// wire still sees its queues fill: `busy_until` runs ahead of
    /// `now_ns` and the loop stops until the wall clock catches up.
    pub fn transmit(&mut self, now_ns: u64) {
        let bandwidth_bps = self.bandwidth_bps;
        for port in self.ports.values_mut() {
            while port.busy_until_ns <= now_ns {
                if !Self::serialize_next(port, bandwidth_bps, &mut self.stats) {
                    break;
                }
                self.queued -= 1;
            }
        }
    }

    /// Drains every queued packet in virtual time (departures may run
    /// past the wall clock; each packet still starts no earlier than its
    /// stage time) — the end-of-run residue drain that makes packet
    /// conservation exact: after `flush`,
    /// `forwarded() + dropped + tx_queue_full` equals every packet ever
    /// staged.
    pub fn flush(&mut self) {
        let bandwidth_bps = self.bandwidth_bps;
        for port in self.ports.values_mut() {
            while Self::serialize_next(port, bandwidth_bps, &mut self.stats) {
                self.queued -= 1;
            }
        }
    }

    /// The accumulated egress statistics.
    pub fn stats(&self) -> EgressStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fly(egress: u16) -> Verdict {
        Verdict::Flyover { egress }
    }
    fn be(egress: u16) -> Verdict {
        Verdict::BestEffort { egress }
    }

    #[test]
    fn priority_serializes_ahead_of_best_effort() {
        // 8 bits/ns link: a 1000-byte packet takes 1000 ns.
        let mut tx = TxScheduler::new(&EgressConfig { bandwidth_bps: 8_000_000_000 });
        // Best effort staged first, priority second — priority still
        // leaves the wire first.
        assert!(tx.stage(be(1), 1000, 0).is_ok());
        assert!(tx.stage(fly(1), 1000, 0).is_ok());
        assert_eq!(tx.queued_pkts(), 2);
        tx.flush();
        assert_eq!(tx.queued_pkts(), 0);
        let s = tx.stats();
        assert_eq!(s.priority.pkts, 1);
        assert_eq!(s.best_effort.pkts, 1);
        // Priority departed at 1000 ns, best effort queued behind it.
        assert_eq!(s.priority.residence_ns_max, 1000);
        assert_eq!(s.best_effort.residence_ns_max, 2000);
    }

    #[test]
    fn classes_are_fifo_and_interfaces_independent() {
        let mut tx = TxScheduler::new(&EgressConfig { bandwidth_bps: 8_000_000_000 });
        for i in 0..3u64 {
            tx.stage(fly(1), 500, i).unwrap();
            tx.stage(fly(2), 500, i).unwrap();
        }
        tx.flush();
        let s = tx.stats();
        assert_eq!(s.priority.pkts, 6);
        // Each interface serialized its three packets back to back
        // (500 B = 500 ns each): FIFO departures at 500/1000/1500, so the
        // max residence is 1500 − 2.
        assert_eq!(s.priority.residence_ns_max, 1500 - 2);
    }

    #[test]
    fn transmit_is_wire_paced_and_flush_drains() {
        // 1000 ns per 1000-byte packet; stage three, clock at 0.
        let mut tx = TxScheduler::new(&EgressConfig { bandwidth_bps: 8_000_000_000 });
        for _ in 0..3 {
            tx.stage(fly(1), 1000, 0).unwrap();
        }
        // The wire can start exactly one packet at t = 0.
        tx.transmit(0);
        assert_eq!(tx.stats().forwarded(), 1);
        assert_eq!(tx.queued_pkts(), 2);
        // By t = 1000 the wire is free again: one more starts.
        tx.transmit(1_000);
        assert_eq!(tx.stats().forwarded(), 2);
        // The end-of-run flush takes the residue in virtual time.
        tx.flush();
        assert_eq!(tx.stats().forwarded(), 3);
        assert_eq!(tx.queued_pkts(), 0);
        assert_eq!(tx.stats().priority.residence_ns_max, 3_000);
    }

    #[test]
    fn full_class_queue_tail_drops_with_named_reason() {
        let bp = BackpressureConfig { tx_queue_pkts: 2, ..Default::default() };
        let mut tx = TxScheduler::with_backpressure(&EgressConfig::default(), &bp);
        assert!(tx.stage(fly(1), 100, 0).is_ok());
        assert!(tx.stage(fly(1), 100, 0).is_ok());
        assert_eq!(tx.stage(fly(1), 100, 0), Err(DropReason::TxQueueFull));
        // The classes are bounded independently: best effort still fits.
        assert!(tx.stage(be(1), 100, 0).is_ok());
        assert!(tx.stage(be(1), 100, 1).is_ok());
        assert_eq!(tx.stage(be(1), 100, 2), Err(DropReason::TxQueueFull));
        tx.flush();
        let s = tx.stats();
        assert_eq!(s.tx_queue_full, 2);
        // Conservation: everything staged either serialized or was
        // tail-dropped under the named counter.
        assert_eq!(s.forwarded() + s.dropped + s.tx_queue_full, 6);
    }

    #[test]
    fn drops_never_touch_a_queue() {
        let mut tx = TxScheduler::new(&EgressConfig::default());
        assert_eq!(tx.stage(Verdict::Drop(DropReason::BadMac), 1000, 0), Err(DropReason::BadMac));
        tx.flush();
        let s = tx.stats();
        assert_eq!(s.dropped, 1);
        assert_eq!(s.forwarded(), 0);
    }

    #[test]
    fn merge_adds_counts_and_maxes_residence() {
        let mut a = EgressStats {
            priority: EgressClassStats {
                pkts: 3,
                bytes: 1500,
                residence_ns_sum: 900,
                residence_ns_max: 400,
                residence: LatencyHistogram::default(),
            },
            best_effort: EgressClassStats::default(),
            dropped: 1,
            tx_queue_full: 2,
        };
        let b = EgressStats {
            priority: EgressClassStats {
                pkts: 2,
                bytes: 1000,
                residence_ns_sum: 1_000,
                residence_ns_max: 700,
                residence: LatencyHistogram::default(),
            },
            best_effort: EgressClassStats {
                pkts: 5,
                bytes: 250,
                residence_ns_sum: 50,
                residence_ns_max: 20,
                residence: LatencyHistogram::default(),
            },
            dropped: 4,
            tx_queue_full: 3,
        };
        a.merge(&b);
        assert_eq!(a.priority.pkts, 5);
        assert_eq!(a.priority.bytes, 2500);
        assert_eq!(a.priority.residence_ns_sum, 1_900);
        assert_eq!(a.priority.residence_ns_max, 700);
        assert_eq!(a.best_effort.pkts, 5);
        assert_eq!(a.dropped, 5);
        assert_eq!(a.tx_queue_full, 5);
        assert_eq!(a.forwarded(), 10);
        // Merging a default is the identity.
        let before = a;
        a.merge(&EgressStats::default());
        assert_eq!(a, before);
    }

    #[test]
    fn wire_starts_at_stage_time_or_when_free() {
        let mut tx = TxScheduler::new(&EgressConfig { bandwidth_bps: 8_000_000_000 });
        tx.stage(fly(1), 1000, 0).unwrap();
        // Polled late: the wire was free the whole time, so the packet
        // departed at 1 µs (stage + serialization), not at the poll —
        // a coarse polling cadence must not masquerade as a slow wire.
        tx.transmit(5_000);
        assert_eq!(tx.stats().priority.residence_ns_max, 1_000);
        // A packet staged while the wire is free starts at its own
        // stage time (departure 6.5 µs); the one staged behind it waits
        // for the busy wire, not the clock (departure 7.5 µs).
        tx.stage(fly(1), 1000, 5_500).unwrap();
        tx.stage(fly(1), 1000, 5_600).unwrap();
        tx.flush();
        assert_eq!(tx.stats().priority.residence_ns_sum, 1_000 + 1_000 + 1_900);
    }

    #[test]
    fn residence_accumulation_saturates_instead_of_panicking() {
        let mut c = EgressClassStats::default();
        c.fold_residence(u64::MAX);
        c.fold_residence(u64::MAX);
        assert_eq!(c.residence_ns_sum, u64::MAX);
        assert_eq!(c.residence_ns_max, u64::MAX);
        // Merging two saturated halves saturates too.
        let mut a = c;
        a.merge(&c);
        assert_eq!(a.residence_ns_sum, u64::MAX);
        assert_eq!(a.residence.count(), 4);
    }

    #[test]
    fn histogram_percentiles_are_zero_on_empty_and_log2_bounded() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile_ns(0.99), 0);
        assert_eq!(h.count(), 0);
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(900); // bucket [512, 1024)
        }
        h.record(1_000_000); // one outlier in [2^19, 2^20)
        assert_eq!(h.count(), 100);
        // p50 answers the dense bucket's upper bound.
        assert_eq!(h.percentile_ns(0.50), 1023);
        // p99+ reaches the outlier's bucket.
        assert_eq!(h.percentile_ns(1.0), (1u64 << 20) - 1);
        // Zero samples land in the zero bucket; huge ones land in the
        // unbounded top bucket, which answers u64::MAX.
        let mut h = LatencyHistogram::default();
        h.record(0);
        assert_eq!(h.percentile_ns(0.5), 0);
        h.record(u64::MAX);
        assert_eq!(h.percentile_ns(1.0), u64::MAX);
        // Windowed subtraction removes the earlier samples.
        let mut later = h;
        later.record(900);
        let delta = later.since(&h);
        assert_eq!(delta.count(), 1);
        assert_eq!(delta.percentile_ns(0.5), 1023);
    }

    #[test]
    fn histogram_resolves_multi_second_tails() {
        // A 5 s scheduler stall (real sockets under load) must not be
        // silently capped at the ~2.1 s of a 32-bucket histogram.
        let mut h = LatencyHistogram::default();
        h.record(5_000_000_000);
        let p100 = h.percentile_ns(1.0);
        assert!(p100 >= 5_000_000_000, "5 s sample answered {p100} ns");
        // The top bucket is unbounded above: it answers u64::MAX rather
        // than pretending a ~2.1 s upper bound.
        let mut h = LatencyHistogram::default();
        h.record(u64::MAX);
        assert_eq!(h.percentile_ns(1.0), u64::MAX);
    }

    #[test]
    fn egress_stats_p99_reads_the_histogram() {
        let mut tx = TxScheduler::new(&EgressConfig { bandwidth_bps: 8_000_000_000 });
        assert_eq!(tx.stats().priority.residence_p99_ns(), 0, "empty population reads 0");
        for _ in 0..10 {
            tx.stage(fly(1), 1000, 0).unwrap();
        }
        tx.flush();
        // Residences 1000..=10_000; p99 lands in the 10_000 bucket.
        let p99 = tx.stats().priority.residence_p99_ns();
        assert!((10_000..20_000).contains(&p99), "{p99}");
    }
}
