//! The tx half of the worker-ring runtime: per-interface egress queues
//! with the paper's two-class strict-priority forwarding.
//!
//! The rx half ([`super::run_to_completion`]) models the NIC-to-core
//! path; until this module existed, verdicts were tallied and the buffer
//! recycled — there was no egress, so the runtime could measure
//! throughput but never *latency*. The tx path closes that gap:
//!
//! * workers push every processed packet as a [`TxPacket`] — the buffer,
//!   its verdict, an enqueue stamp and a per-shard sequence number —
//!   into a per-shard egress [`super::SpscRing`] (the SPSC discipline of
//!   the rx side, reversed);
//! * the dispatcher thread doubles as the tx scheduler: each cycle it
//!   drains the egress rings into a [`TxScheduler`], which models one
//!   egress port per interface as a FIFO pair of priority-class queues —
//!   flyover traffic is serialized ahead of best effort, exactly the
//!   two-class forwarding of the paper's routers (and of the netsim
//!   [`Link`](../../hummingbird_netsim) model) — over a configurable
//!   link rate in *virtual* time (`busy_until` per interface may run
//!   ahead of the wall clock: the scheduler computes when the packet
//!   *would* leave the wire, it does not sleep);
//! * per-packet **residence time** (worker enqueue → modeled wire
//!   departure) is folded into [`EgressStats`], the
//!   [`RuntimeReport`](super::RuntimeReport) extension the latency
//!   harnesses read.
//!
//! Within one `(shard, class)` the egress path is provably FIFO — the
//! SPSC ring preserves worker order and the scheduler serves each class
//! queue front-to-back — and the dispatcher asserts the per-shard
//! sequence numbers to catch any leak, duplication or reorder (the
//! property `tests/prop_sharded.rs` exercises end to end).

use crate::datapath::{PacketBuf, Verdict};
use std::collections::HashMap;

/// Tuning of the tx path.
#[derive(Clone, Copy, Debug)]
pub struct EgressConfig {
    /// Serialization rate of each egress interface, bits per second.
    pub bandwidth_bps: u64,
}

impl Default for EgressConfig {
    /// 40 Gbps — one port of the paper's 4×40 Gbps testbed.
    fn default() -> Self {
        EgressConfig { bandwidth_bps: 40_000_000_000 }
    }
}

/// One processed packet traveling an egress ring: the recycled buffer,
/// its verdict, the worker's enqueue stamp (ns since run start) and the
/// worker's per-shard sequence number (FIFO audit).
#[derive(Debug)]
pub struct TxPacket {
    /// The processed buffer (recycled by the dispatcher after tx).
    pub buf: PacketBuf,
    /// The engine's verdict (class + egress interface).
    pub verdict: Verdict,
    /// Worker-side enqueue time, ns since run start.
    pub enqueued_ns: u64,
    /// Per-shard monotone sequence number.
    pub seq: u64,
}

/// Per-class egress counters and residence times.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EgressClassStats {
    /// Packets serialized in this class.
    pub pkts: u64,
    /// Bytes serialized in this class.
    pub bytes: u64,
    /// Sum of per-packet residence times (worker enqueue → modeled wire
    /// departure), ns.
    pub residence_ns_sum: u64,
    /// Maximum per-packet residence time, ns.
    pub residence_ns_max: u64,
}

impl EgressClassStats {
    /// Mean residence time in ns (0 when no packets were serialized).
    pub fn mean_residence_ns(&self) -> f64 {
        if self.pkts == 0 {
            return 0.0;
        }
        self.residence_ns_sum as f64 / self.pkts as f64
    }

    /// Folds another shard's class counters into this one: counts and
    /// residence sums add, the max residence is the max of maxes.
    pub fn merge(&mut self, other: &EgressClassStats) {
        self.pkts += other.pkts;
        self.bytes += other.bytes;
        self.residence_ns_sum += other.residence_ns_sum;
        self.residence_ns_max = self.residence_ns_max.max(other.residence_ns_max);
    }
}

/// What the tx path did during one run — the latency face of
/// [`super::RuntimeReport`].
///
/// The per-class packet/byte counts are deterministic (each is a pure
/// function of the verdicts); residence times depend on worker/tx
/// interleaving and are reported as diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EgressStats {
    /// Flyover (priority-class) traffic.
    pub priority: EgressClassStats,
    /// Best-effort traffic.
    pub best_effort: EgressClassStats,
    /// Packets whose verdict was a drop: recycled without touching an
    /// egress queue.
    pub dropped: u64,
}

impl EgressStats {
    /// Total packets that reached an egress queue.
    pub fn forwarded(&self) -> u64 {
        self.priority.pkts + self.best_effort.pkts
    }

    /// Folds another shard's egress statistics into this one — how the
    /// multi-queue runtime aggregates its per-worker [`TxScheduler`]s
    /// into the single [`EgressStats`] the report carries.
    pub fn merge(&mut self, other: &EgressStats) {
        self.priority.merge(&other.priority);
        self.best_effort.merge(&other.best_effort);
        self.dropped += other.dropped;
    }
}

/// Per-interface egress port state: one virtual-time serialization
/// horizon plus the staged two-class queue of the current drain cycle.
#[derive(Debug, Default)]
struct Port {
    /// When the wire frees up, ns since run start (virtual: may run
    /// ahead of the wall clock).
    busy_until_ns: u64,
    /// Staged priority-class packets `(wire_len, enqueued_ns)`.
    prio: Vec<(usize, u64)>,
    /// Staged best-effort packets.
    best_effort: Vec<(usize, u64)>,
}

/// Wire-serialization time of `bytes` at `bandwidth_bps`, ns — the one
/// formula both [`TxScheduler::tx_time_ns`] and the transmit loop use.
#[inline]
fn wire_ns(bandwidth_bps: u64, bytes: usize) -> u64 {
    (bytes as u64 * 8).saturating_mul(1_000_000_000) / bandwidth_bps
}

/// The tx scheduler: per-interface FIFO + priority-class egress queues
/// over a modeled link rate.
///
/// Driven in cycles by the dispatcher: [`stage`](TxScheduler::stage)
/// every packet popped off the egress rings, then
/// [`transmit`](TxScheduler::transmit) once per cycle — each interface
/// serializes its staged priority packets front-to-back before any
/// staged best-effort packet, so flyover traffic overtakes best effort
/// at exactly the granularity a strict-priority port would enforce.
#[derive(Debug)]
pub struct TxScheduler {
    bandwidth_bps: u64,
    ports: HashMap<u16, Port>,
    stats: EgressStats,
}

impl TxScheduler {
    /// Creates a scheduler over `cfg`'s link rate.
    pub fn new(cfg: &EgressConfig) -> Self {
        TxScheduler {
            bandwidth_bps: cfg.bandwidth_bps.max(1),
            ports: HashMap::new(),
            stats: EgressStats::default(),
        }
    }

    /// Wire-serialization time of `bytes` at the configured rate, ns.
    pub fn tx_time_ns(&self, bytes: usize) -> u64 {
        wire_ns(self.bandwidth_bps, bytes)
    }

    /// Stages one packet for the current drain cycle; dropped verdicts
    /// are counted and never queued.
    pub fn stage(&mut self, verdict: Verdict, wire_len: usize, enqueued_ns: u64) {
        match verdict.egress() {
            None => self.stats.dropped += 1,
            Some(iface) => {
                let port = self.ports.entry(iface).or_default();
                if verdict.is_flyover() {
                    port.prio.push((wire_len, enqueued_ns));
                } else {
                    port.best_effort.push((wire_len, enqueued_ns));
                }
            }
        }
    }

    /// Serializes everything staged this cycle in virtual time, priority
    /// class first per interface, folding each packet's residence time
    /// (enqueue → departure) into the stats. `now_ns` is the current
    /// wall-clock offset since run start; a port never starts a packet
    /// before it (or before the previous packet's departure).
    pub fn transmit(&mut self, now_ns: u64) {
        let bandwidth_bps = self.bandwidth_bps;
        for port in self.ports.values_mut() {
            for (class_queue, stats) in [
                (&mut port.prio, &mut self.stats.priority),
                (&mut port.best_effort, &mut self.stats.best_effort),
            ] {
                for (wire_len, enqueued_ns) in class_queue.drain(..) {
                    let start = port.busy_until_ns.max(now_ns);
                    let departure = start + wire_ns(bandwidth_bps, wire_len);
                    port.busy_until_ns = departure;
                    stats.pkts += 1;
                    stats.bytes += wire_len as u64;
                    let residence = departure.saturating_sub(enqueued_ns);
                    stats.residence_ns_sum += residence;
                    stats.residence_ns_max = stats.residence_ns_max.max(residence);
                }
            }
        }
    }

    /// The accumulated egress statistics.
    pub fn stats(&self) -> EgressStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fly(egress: u16) -> Verdict {
        Verdict::Flyover { egress }
    }
    fn be(egress: u16) -> Verdict {
        Verdict::BestEffort { egress }
    }

    #[test]
    fn priority_serializes_ahead_of_best_effort() {
        // 8 bits/ns link: a 1000-byte packet takes 1000 ns.
        let mut tx = TxScheduler::new(&EgressConfig { bandwidth_bps: 8_000_000_000 });
        // Best effort staged first, priority second — priority still
        // leaves the wire first.
        tx.stage(be(1), 1000, 0);
        tx.stage(fly(1), 1000, 0);
        tx.transmit(0);
        let s = tx.stats();
        assert_eq!(s.priority.pkts, 1);
        assert_eq!(s.best_effort.pkts, 1);
        // Priority departed at 1000 ns, best effort queued behind it.
        assert_eq!(s.priority.residence_ns_max, 1000);
        assert_eq!(s.best_effort.residence_ns_max, 2000);
    }

    #[test]
    fn classes_are_fifo_and_interfaces_independent() {
        let mut tx = TxScheduler::new(&EgressConfig { bandwidth_bps: 8_000_000_000 });
        for i in 0..3u64 {
            tx.stage(fly(1), 500, i);
            tx.stage(fly(2), 500, i);
        }
        tx.transmit(0);
        let s = tx.stats();
        assert_eq!(s.priority.pkts, 6);
        // Each interface serialized its three packets back to back
        // (500 B = 500 ns each): FIFO departures at 500/1000/1500, so the
        // max residence is 1500 − 2.
        assert_eq!(s.priority.residence_ns_max, 1500 - 2);
    }

    #[test]
    fn drops_never_touch_a_queue() {
        let mut tx = TxScheduler::new(&EgressConfig::default());
        tx.stage(Verdict::Drop(crate::datapath::DropReason::BadMac), 1000, 0);
        tx.transmit(0);
        let s = tx.stats();
        assert_eq!(s.dropped, 1);
        assert_eq!(s.forwarded(), 0);
    }

    #[test]
    fn merge_adds_counts_and_maxes_residence() {
        let mut a = EgressStats {
            priority: EgressClassStats {
                pkts: 3,
                bytes: 1500,
                residence_ns_sum: 900,
                residence_ns_max: 400,
            },
            best_effort: EgressClassStats::default(),
            dropped: 1,
        };
        let b = EgressStats {
            priority: EgressClassStats {
                pkts: 2,
                bytes: 1000,
                residence_ns_sum: 1_000,
                residence_ns_max: 700,
            },
            best_effort: EgressClassStats {
                pkts: 5,
                bytes: 250,
                residence_ns_sum: 50,
                residence_ns_max: 20,
            },
            dropped: 4,
        };
        a.merge(&b);
        assert_eq!(a.priority.pkts, 5);
        assert_eq!(a.priority.bytes, 2500);
        assert_eq!(a.priority.residence_ns_sum, 1_900);
        assert_eq!(a.priority.residence_ns_max, 700);
        assert_eq!(a.best_effort.pkts, 5);
        assert_eq!(a.dropped, 5);
        assert_eq!(a.forwarded(), 10);
        // Merging a default is the identity.
        let before = a;
        a.merge(&EgressStats::default());
        assert_eq!(a, before);
    }

    #[test]
    fn wire_never_starts_before_now_or_while_busy() {
        let mut tx = TxScheduler::new(&EgressConfig { bandwidth_bps: 8_000_000_000 });
        tx.stage(fly(1), 1000, 0);
        tx.transmit(5_000); // staged at 0, drained at 5 µs
        assert_eq!(tx.stats().priority.residence_ns_max, 6_000);
        // The next cycle's packet waits for the busy wire (until 6 µs),
        // not the clock: departure 7 µs, residence 1.5 µs.
        tx.stage(fly(1), 1000, 5_500);
        tx.transmit(5_500);
        assert_eq!(tx.stats().priority.residence_ns_sum, 6_000 + 1_500);
    }
}
