//! RSS-style flow steering: which worker shard owns a packet.
//!
//! The invariant the whole sharded datapath rests on is **ResID
//! ownership**: every packet carrying reservation `r` must be policed by
//! the same shard, because the policer's token bucket for `r` (Algorithm
//! 1's `TSArray[r]`) is per-shard state and must never split. [`ShardMap`]
//! therefore partitions the ResID space `[0, slots)` into contiguous
//! per-shard ranges — the natural fit for the paper's interval-coloring
//! story, which keeps live ResIDs compact — and steers every flyover
//! packet by the (authenticated) ResID in its hop field. Range
//! partitioning also makes placement auditable: an operator can say
//! "shard 2 owns ResIDs 25 000-49 999" the way the related iBGP overlay
//! work sizes per-node responsibility up front.
//!
//! Packets without a reservation carry no ResID, so they steer by a hash
//! of *exactly* the fields that key the router's only other per-packet
//! state, the duplicate filter: `(src AS, BaseTS, MillisTS, Counter)`.
//! Every pair of packets with one duplicate identity therefore lands on
//! one shard, which keeps duplicate suppression of plain traffic exact
//! under sharding (not merely effective for bit-identical replays).
//! Unparseable packets hash their leading bytes — they drop in any
//! shard, the choice only spreads the parsing cost.
//!
//! [`Steering::BySource`] replaces all of the above with a pure
//! source-address hash, for engines whose state is keyed by sender
//! rather than reservation (the gateway's per-host token buckets).

use crate::router::stages::{self, HopKind};

/// How a [`ShardMap`] assigns packets to shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steering {
    /// Reservation-aware RSS (the default): flyover packets steer by
    /// ResID range so each reservation's policer state lives on exactly
    /// one shard; plain packets steer by the duplicate-filter key; junk
    /// steers by a byte hash.
    ByReservation,
    /// Pure source-address steering (`src` AS + host), for engines keyed
    /// by sender — e.g. a sharded gateway, where the per-host admission
    /// buckets must not split. The aggregate bucket becomes per-shard,
    /// i.e. each shard polices its slice of the uplink.
    BySource,
}

/// The flow class [`ShardMap::classify`] extracts from a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowClass {
    /// A flyover packet on reservation `res_id`.
    Reservation(u32),
    /// A plain packet; the hash covers the duplicate-filter key.
    Plain(u64),
    /// Structurally unparseable; the hash covers the leading bytes.
    Opaque(u64),
}

/// FNV-1a over `bytes` — cheap, deterministic, good avalanche for the
/// handful of header bytes a flow key covers.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Maps packets onto `shards` workers over a ResID space of `slots`.
#[derive(Clone, Copy, Debug)]
pub struct ShardMap {
    shards: usize,
    slots: u32,
    steering: Steering,
}

impl ShardMap {
    /// Creates a map of `shards` workers over ResIDs `[0, slots)` —
    /// `slots` should match the engines' policer capacity so ranges line
    /// up with real reservations. Shard and slot counts are clamped to at
    /// least 1.
    pub fn new(shards: usize, slots: u32, steering: Steering) -> Self {
        ShardMap { shards: shards.max(1), slots: slots.max(1), steering }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The steering policy.
    pub fn steering(&self) -> Steering {
        self.steering
    }

    /// The shard owning reservation `res_id` (contiguous ranges;
    /// out-of-range ResIDs clamp into the last shard — the policer
    /// demotes them identically everywhere, so only the stats location
    /// is affected).
    #[inline]
    pub fn shard_of_res_id(&self, res_id: u32) -> usize {
        let idx = u64::from(res_id.min(self.slots - 1));
        (idx * self.shards as u64 / u64::from(self.slots)) as usize
    }

    /// The ResID range shard `shard` owns.
    pub fn res_id_range(&self, shard: usize) -> std::ops::Range<u32> {
        let per = |s: u64| (s * u64::from(self.slots)).div_ceil(self.shards as u64) as u32;
        per(shard as u64)..per(shard as u64 + 1)
    }

    /// All per-shard ResID ranges, in shard order. They tile `[0, slots)`
    /// exactly — this is the hand-off the control plane's steering-aware
    /// allocator (`ShardedFirstFit` in `hummingbird-coloring`) consumes
    /// so admission draws ResIDs from the least-loaded shard's range.
    pub fn res_id_ranges(&self) -> Vec<std::ops::Range<u32>> {
        (0..self.shards).map(|s| self.res_id_range(s)).collect()
    }

    /// Extracts the flow class steering operates on.
    pub fn classify(&self, pkt: &[u8]) -> FlowClass {
        match stages::parse(pkt) {
            Ok(parsed) => match parsed.hop {
                HopKind::Flyover(fly) => FlowClass::Reservation(fly.res_id),
                HopKind::Plain(_) => {
                    // Exactly the duplicate-filter identity — (src AS,
                    // BaseTS, MillisTS, Counter), see
                    // `stages::duplicate_check` — and nothing more: any
                    // extra field (ISD, source host) would let two
                    // packets with one dup identity steer to different
                    // shards, and the sharded router would forward what
                    // a single engine drops as a duplicate.
                    let mut key = [0u8; 16];
                    key[0..8].copy_from_slice(&parsed.addr.src.asn.to_be_bytes());
                    key[8..12].copy_from_slice(&parsed.meta.base_ts.to_be_bytes());
                    key[12..14].copy_from_slice(&parsed.meta.millis_ts.to_be_bytes());
                    key[14..16].copy_from_slice(&parsed.meta.counter.to_be_bytes());
                    FlowClass::Plain(fnv1a(&key))
                }
            },
            Err(_) => FlowClass::Opaque(fnv1a(&pkt[..pkt.len().min(24)])),
        }
    }

    /// Producer-side RSS: partitions a template workload into per-shard
    /// injection plans, the multi-queue runtime's replacement for a
    /// dispatcher thread. Template `j` of `T` contributes exactly
    /// `total_pkts / T` packets (+1 when `j < total_pkts % T`, the
    /// largest-remainder rule a round-robin generator realizes), and
    /// lands whole on the shard [`ShardMap::shard_of`] assigns it —
    /// steering is per *flow*, and a template is one flow. Returns one
    /// `(template index, packet count)` plan per shard; counts sum to
    /// `total_pkts` (packet conservation) and the assignment is a pure
    /// function of the bytes, so every run over the same workload
    /// splits identically.
    pub fn partition_templates(
        &self,
        templates: &[Vec<u8>],
        total_pkts: u64,
    ) -> Vec<Vec<(usize, u64)>> {
        let n = templates.len().max(1) as u64;
        let mut plans = vec![Vec::new(); self.shards];
        for (j, t) in templates.iter().enumerate() {
            let count = total_pkts / n + u64::from((j as u64) < total_pkts % n);
            plans[self.shard_of(t)].push((j, count));
        }
        plans
    }

    /// The shard that must process `pkt` — the RSS function of the model
    /// NIC. Deterministic in the packet bytes, so retransmissions and
    /// replays always revisit the same shard.
    pub fn shard_of(&self, pkt: &[u8]) -> usize {
        match self.steering {
            Steering::ByReservation => match self.classify(pkt) {
                FlowClass::Reservation(res_id) => self.shard_of_res_id(res_id),
                FlowClass::Plain(h) | FlowClass::Opaque(h) => (h % self.shards as u64) as usize,
            },
            Steering::BySource => match stages::parse(pkt) {
                Ok(parsed) => {
                    let mut key = [0u8; 14];
                    key[0..2].copy_from_slice(&parsed.addr.src.isd.to_be_bytes());
                    key[2..10].copy_from_slice(&parsed.addr.src.asn.to_be_bytes());
                    key[10..14].copy_from_slice(&parsed.addr.src_host);
                    (fnv1a(&key) % self.shards as u64) as usize
                }
                Err(_) => (fnv1a(&pkt[..pkt.len().min(24)]) % self.shards as u64) as usize,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn res_id_ranges_partition_the_slot_space() {
        for shards in [1usize, 2, 3, 4, 7, 16] {
            let map = ShardMap::new(shards, 100_000, Steering::ByReservation);
            // Ranges tile [0, slots) without gap or overlap.
            let mut next = 0u32;
            for s in 0..shards {
                let r = map.res_id_range(s);
                assert_eq!(r.start, next, "{shards} shards, shard {s}");
                next = r.end;
                for probe in [r.start, (r.start + r.end.saturating_sub(1)) / 2] {
                    if r.contains(&probe) {
                        assert_eq!(map.shard_of_res_id(probe), s);
                    }
                }
            }
            assert_eq!(next, 100_000);
            // The bulk accessor agrees with the per-shard one.
            let ranges = map.res_id_ranges();
            assert_eq!(ranges.len(), shards);
            for (s, r) in ranges.iter().enumerate() {
                assert_eq!(*r, map.res_id_range(s));
            }
        }
    }

    #[test]
    fn every_res_id_has_exactly_one_owner() {
        let map = ShardMap::new(4, 1000, Steering::ByReservation);
        for res_id in 0..1000 {
            let owner = map.shard_of_res_id(res_id);
            assert!(owner < 4);
            assert!(map.res_id_range(owner).contains(&res_id), "res_id {res_id}");
        }
        // Out-of-range ResIDs clamp to the last shard.
        assert_eq!(map.shard_of_res_id(1000), 3);
        assert_eq!(map.shard_of_res_id(u32::MAX), 3);
    }

    #[test]
    fn single_shard_owns_everything() {
        let map = ShardMap::new(1, 100_000, Steering::ByReservation);
        for res_id in [0u32, 1, 99_999, u32::MAX] {
            assert_eq!(map.shard_of_res_id(res_id), 0);
        }
        assert_eq!(map.shard_of(&[0u8; 8]), 0);
    }

    #[test]
    fn partition_conserves_packets_and_matches_shard_of() {
        let map = ShardMap::new(4, 100_000, Steering::ByReservation);
        // Opaque templates steer by byte hash; counts follow the
        // largest-remainder rule regardless of where they land.
        let templates: Vec<Vec<u8>> =
            (0..7u8).map(|i| vec![i, 0xA5, i.wrapping_mul(31), 9, 9, 0, 1, 2]).collect();
        let plans = map.partition_templates(&templates, 1_003);
        assert_eq!(plans.len(), 4);
        let total: u64 = plans.iter().flatten().map(|&(_, c)| c).sum();
        assert_eq!(total, 1_003, "packet conservation");
        // Each template appears exactly once, on the shard shard_of picks,
        // with its largest-remainder count.
        let mut seen = vec![false; templates.len()];
        for (shard, plan) in plans.iter().enumerate() {
            for &(j, count) in plan {
                assert!(!seen[j], "template {j} assigned twice");
                seen[j] = true;
                assert_eq!(map.shard_of(&templates[j]), shard);
                let expected = 1_003 / 7 + u64::from((j as u64) < 1_003 % 7);
                assert_eq!(count, expected, "template {j}");
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Deterministic: the same workload partitions identically.
        assert_eq!(plans, map.partition_templates(&templates, 1_003));
        // Zero packets still yields a structurally complete plan.
        let empty = map.partition_templates(&templates, 0);
        assert_eq!(empty.iter().flatten().map(|&(_, c)| c).sum::<u64>(), 0);
        assert_eq!(empty.iter().map(|p| p.len()).sum::<usize>(), templates.len());
    }

    #[test]
    fn junk_steering_is_deterministic() {
        let map = ShardMap::new(8, 100_000, Steering::ByReservation);
        let junk = vec![0xA5u8; 40];
        let first = map.shard_of(&junk);
        for _ in 0..4 {
            assert_eq!(map.shard_of(&junk), first);
        }
        assert!(matches!(map.classify(&junk), FlowClass::Opaque(_)));
        assert!(map.shard_of(&[]) < 8, "empty packets steer somewhere");
    }
}
