//! The sharded worker-ring datapath runtime: a software model of the
//! NIC-fed multi-core router the paper evaluates (§7.1, Figs. 5/14).
//!
//! # The model vs. the paper's DPDK testbed
//!
//! The paper drives a DPDK implementation with a Spirent generator over
//! 4×40 Gbps links: the NIC hashes each packet onto an rx queue (RSS),
//! one core polls each queue in bursts, and per-core state is never
//! shared — policing works because the flow hash pins every reservation
//! to one queue. This module reproduces that architecture with portable
//! pieces:
//!
//! * [`ring::SpscRing`] — bounded SPSC rings of [`PacketBuf`] stand in
//!   for NIC descriptor rings (capacity = queue depth, full ring =
//!   backpressure);
//! * [`shard::ShardMap`] — the RSS function: flyover packets steer by
//!   **per-shard ResID ranges** so each reservation's token bucket
//!   (Algorithm 1) lives on exactly one core, plain packets steer by the
//!   duplicate-filter key, and a [`shard::Steering::BySource`] mode
//!   covers sender-keyed engines like the gateway;
//! * [`ShardedRouter`] — a facade that *itself implements* [`Datapath`],
//!   so the simulator, testbed and every benchmark binary can drive a
//!   multi-shard router exactly where they drove a single engine;
//! * [`run_to_completion`] — the threaded harness: a dispatcher thread
//!   (the NIC) steers packets into per-shard rings, one worker thread
//!   per shard drains its ring in [`BATCH_SIZE`]-packet bursts through
//!   the engine's batch path, and processed buffers recycle back to the
//!   dispatcher like re-armed rx descriptors. No locks on the hot path —
//!   workers share nothing but their rings.
//!
//! * [`egress::TxScheduler`] — the tx path: per-shard egress rings of
//!   `(PacketBuf, Verdict)` drained by the dispatcher into per-interface
//!   FIFO + priority-class queues over a modeled link rate, recording
//!   per-packet residence times ([`EgressStats`] on the report). Enabled
//!   by [`RuntimeConfig::egress`]; see the [`egress`] module docs.
//!
//! What the model deliberately simplifies: "line rate" on the rx side is
//! a cap applied in reporting, the tx link is modeled in virtual time
//! (the scheduler computes departures, it does not pace the wire), and
//! the dispatcher is one thread — a software stand-in for
//! hashing hardware, so dispatch cost shows up on the dispatcher core
//! instead of being free. Cross-shard duplicate detection holds for
//! exact replays (bit-identical packets steer identically) but not for
//! distinct packets that collide on the duplicate-filter key while
//! carrying different ResIDs — the same property a per-queue dup filter
//! has on real RSS hardware.

pub mod egress;
pub mod ring;
pub mod shard;

pub use egress::{EgressClassStats, EgressConfig, EgressStats, TxPacket, TxScheduler};
pub use ring::SpscRing;
pub use shard::{FlowClass, ShardMap, Steering};

use crate::datapath::{Datapath, DatapathStats, PacketBuf, Verdict};
use crate::multicore::{Throughput, BATCH_SIZE};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// One logical router spread across per-shard engines, behind the
/// [`Datapath`] trait.
///
/// Every packet is steered by the [`ShardMap`] to the shard that owns
/// its flow, so per-reservation policing state never splits across
/// engines; verdicts and aggregate [`stats`](Datapath::stats) are
/// element-wise identical to a single engine over the same traffic (the
/// contract `tests/prop_sharded.rs` enforces).
/// [`process_batch`](Datapath::process_batch) forwards maximal same-shard
/// runs to the
/// owning engine's batch path, so per-burst amortizations (batch key
/// derivation, policer pre-touch) survive sharding.
///
/// This synchronous facade is the drop-in form — harnesses that want
/// real parallelism drive the same engines through
/// [`run_to_completion`]. Cost model: steering parses the header a
/// second time (hardware RSS gets this for free), a deliberate trade —
/// sharing the engine's own `stages::parse` keeps the steering decision
/// bit-exact with what the engine will see, which is what the ResID-
/// ownership invariant rests on; the `runtime` criterion bench group
/// measures the overhead against a single engine. (The threaded runtime
/// avoids it in steady state by re-arming recycled buffers.)
pub struct ShardedRouter {
    shards: Vec<Box<dyn Datapath + Send>>,
    map: ShardMap,
    /// Per-call scratch: the shard of each packet in the current burst.
    steer_scratch: Vec<usize>,
}

impl ShardedRouter {
    /// Builds a facade over `engines` (one per shard) with
    /// reservation-aware steering across a ResID space of `slots` —
    /// `slots` should match the engines' policer capacity.
    pub fn new(engines: Vec<Box<dyn Datapath + Send>>, slots: u32, steering: Steering) -> Self {
        assert!(!engines.is_empty(), "a sharded router needs at least one shard");
        let map = ShardMap::new(engines.len(), slots, steering);
        ShardedRouter { shards: engines, map, steer_scratch: Vec::new() }
    }

    /// Builds `shards` engines with `make` (called with the shard index)
    /// under default reservation-aware steering.
    pub fn from_fn(
        shards: usize,
        slots: u32,
        mut make: impl FnMut(usize) -> Box<dyn Datapath + Send>,
    ) -> Self {
        Self::new((0..shards.max(1)).map(&mut make).collect(), slots, Steering::ByReservation)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The steering map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Per-shard counter snapshots (the aggregate is
    /// [`Datapath::stats`]).
    pub fn shard_stats(&self) -> Vec<DatapathStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }
}

impl Datapath for ShardedRouter {
    fn process(&mut self, pkt: &mut [u8], now_ns: u64) -> Verdict {
        let shard = self.map.shard_of(pkt);
        self.shards[shard].process(pkt, now_ns)
    }

    fn process_batch(&mut self, pkts: &mut [PacketBuf], now_ns: u64, out: &mut Vec<Verdict>) {
        self.steer_scratch.clear();
        self.steer_scratch.extend(pkts.iter().map(|p| self.map.shard_of(p.as_bytes())));
        // Hand maximal same-shard runs to the owning engine's batch path;
        // verdict order is input order because runs are processed in
        // sequence.
        let mut start = 0;
        while start < pkts.len() {
            let shard = self.steer_scratch[start];
            let mut end = start + 1;
            while end < pkts.len() && self.steer_scratch[end] == shard {
                end += 1;
            }
            self.shards[shard].process_batch(&mut pkts[start..end], now_ns, out);
            start = end;
        }
    }

    /// The underlying engine's name — the facade is transparent, so
    /// harness output keeps labeling the engine, not the wrapper.
    fn engine_name(&self) -> &'static str {
        self.shards[0].engine_name()
    }

    fn stats(&self) -> DatapathStats {
        let mut total = DatapathStats::default();
        for s in &self.shards {
            let st = s.stats();
            total.processed += st.processed;
            total.flyover += st.flyover;
            total.best_effort += st.best_effort;
            total.dropped += st.dropped;
            total.demoted_overuse += st.demoted_overuse;
            total.demoted_untimely += st.demoted_untimely;
            // Per-shard key caches sum exactly to a single engine's
            // counters: every reservation steers to one shard, so the
            // set of first-contact misses is partitioned, not repeated.
            total.key_cache_hits += st.key_cache_hits;
            total.key_cache_misses += st.key_cache_misses;
        }
        total
    }

    fn reset_stats(&mut self) {
        for s in &mut self.shards {
            s.reset_stats();
        }
    }
}

/// How [`run_to_completion`] lays work onto cores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeMode {
    /// Each worker owns an independent engine and self-feeds its own
    /// ring — the historical `multicore` harness, now expressed as a
    /// runtime configuration. Measures pure per-core engine scaling; no
    /// cross-core policing semantics.
    PerCoreClone,
    /// One dispatcher thread steers every packet through the
    /// [`ShardMap`] into per-shard rings — one logical router with
    /// correct cross-core policing.
    Sharded,
}

/// Tuning of the worker-ring runtime.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Worker shard count (cores devoted to packet processing).
    pub shards: usize,
    /// Per-shard ring depth (NIC descriptor-ring model).
    pub ring_capacity: usize,
    /// Burst size per `process_batch` call.
    pub batch_size: usize,
    /// ResID slot count the steering ranges partition (should match the
    /// engines' policer capacity).
    pub policer_slots: u32,
    /// Flow steering policy (ignored in [`RuntimeMode::PerCoreClone`]).
    pub steering: Steering,
    /// Tx-path model: `Some` routes every processed packet through
    /// per-shard egress rings into the two-class [`TxScheduler`] and
    /// reports [`EgressStats`]; `None` (the default) recycles buffers
    /// directly, the historical rx-only harness. Only
    /// [`RuntimeMode::Sharded`] has a tx port (the clone mode measures
    /// independent engines, not one logical router), so the model is
    /// ignored under [`RuntimeMode::PerCoreClone`].
    pub egress: Option<EgressConfig>,
}

impl RuntimeConfig {
    /// A sensible default: `shards` workers, 256-deep rings,
    /// [`BATCH_SIZE`]-packet bursts, the paper's 10⁵ ResID slots,
    /// reservation-aware steering, no tx path.
    pub fn new(shards: usize) -> Self {
        RuntimeConfig {
            shards: shards.max(1),
            ring_capacity: 256,
            batch_size: BATCH_SIZE,
            policer_slots: 100_000,
            steering: Steering::ByReservation,
            egress: None,
        }
    }
}

/// What one worker shard did during a [`run_to_completion`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardReport {
    /// Packets this shard processed.
    pub processed: u64,
    /// Packets forwarded (flyover or best effort).
    pub forwarded: u64,
    /// Packets dropped by the engine.
    pub dropped: u64,
    /// The shard engine's counters.
    pub stats: DatapathStats,
}

/// The outcome of a [`run_to_completion`].
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Packets processed across all shards.
    pub packets: u64,
    /// Bits moved (wire size × packets).
    pub bits: u64,
    /// Wall-clock seconds for the whole run.
    pub seconds: f64,
    /// Per-shard breakdown (reveals steering skew).
    pub per_shard: Vec<ShardReport>,
    /// Tx-path statistics, when [`RuntimeConfig::egress`] enabled it:
    /// per-class packet/byte counts and residence times.
    pub egress: Option<EgressStats>,
}

impl RuntimeReport {
    /// The run as a [`Throughput`] measurement.
    pub fn throughput(&self) -> Throughput {
        Throughput { packets: self.packets, bits: self.bits, seconds: self.seconds }
    }
}

/// Worker loop state shared by both runtime modes: drain the rx ring in
/// bursts through the engine's batch path, tally, recycle.
struct WorkerTally {
    processed: u64,
    bits: u64,
    forwarded: u64,
    dropped: u64,
}

fn tally_burst(tally: &mut WorkerTally, burst: &[PacketBuf], verdicts: &[Verdict]) {
    tally.processed += burst.len() as u64;
    tally.bits += burst.iter().map(|p| p.wire_len() as u64 * 8).sum::<u64>();
    for v in verdicts {
        if v.is_drop() {
            tally.dropped += 1;
        } else {
            tally.forwarded += 1;
        }
    }
}

/// Runs `total_pkts` packets (cycling over `templates`) through
/// `cfg.shards` worker threads and reports aggregate and per-shard
/// throughput.
///
/// In [`RuntimeMode::Sharded`] the calling thread becomes the dispatcher:
/// it steers each packet by flow hash into the owning shard's rx ring
/// and re-arms recycled buffers, so one logical router with correct
/// policing runs across the workers. In [`RuntimeMode::PerCoreClone`]
/// each worker self-feeds its own ring with an even share of the total —
/// the classic per-core-clone measurement. Engines are constructed
/// inside their worker thread (no `Send` bound on `D`); a barrier keeps
/// construction out of the timed region.
pub fn run_to_completion<D, F>(
    cfg: &RuntimeConfig,
    mode: RuntimeMode,
    make_engine: F,
    templates: &[Vec<u8>],
    total_pkts: u64,
    now_ns: u64,
) -> RuntimeReport
where
    D: Datapath,
    F: Fn(usize) -> D + Sync,
{
    assert!(!templates.is_empty(), "need at least one packet template");
    let shards = cfg.shards.max(1);
    let batch = cfg.batch_size.max(1);
    let cap = cfg.ring_capacity.max(1);

    match mode {
        RuntimeMode::PerCoreClone => {
            let per_worker = |i: usize| {
                total_pkts / shards as u64 + u64::from((i as u64) < total_pkts % shards as u64)
            };
            let results = std::thread::scope(|s| {
                let handles: Vec<_> = (0..shards)
                    .map(|i| {
                        let make_engine = &make_engine;
                        s.spawn(move || {
                            let mut engine = make_engine(i);
                            let target = per_worker(i);
                            let ring: SpscRing<PacketBuf> = SpscRing::new(cap);
                            let mut pool: Vec<PacketBuf> = (0..cap.min(target.max(1) as usize))
                                .map(|k| PacketBuf::new(templates[k % templates.len()].clone()))
                                .collect();
                            let mut tally =
                                WorkerTally { processed: 0, bits: 0, forwarded: 0, dropped: 0 };
                            let mut burst = Vec::with_capacity(batch);
                            let mut verdicts = Vec::with_capacity(batch);
                            let mut sent = 0u64;
                            let start = Instant::now();
                            while tally.processed < target {
                                // Producer half: re-arm the ring.
                                while sent < target {
                                    let Some(mut buf) = pool.pop() else { break };
                                    buf.reset();
                                    match ring.try_push(buf) {
                                        Ok(()) => sent += 1,
                                        Err(back) => {
                                            pool.push(back);
                                            break;
                                        }
                                    }
                                }
                                // Consumer half: drain a burst.
                                burst.clear();
                                verdicts.clear();
                                ring.pop_burst(&mut burst, batch);
                                engine.process_batch(&mut burst, now_ns, &mut verdicts);
                                tally_burst(&mut tally, &burst, &verdicts);
                                pool.append(&mut burst);
                            }
                            let seconds = start.elapsed().as_secs_f64();
                            let report = ShardReport {
                                processed: tally.processed,
                                forwarded: tally.forwarded,
                                dropped: tally.dropped,
                                stats: engine.stats(),
                            };
                            (report, tally.bits, seconds)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("runtime worker panicked"))
                    .collect::<Vec<_>>()
            });
            let seconds = results.iter().fold(0.0f64, |m, (_, _, s)| m.max(*s));
            RuntimeReport {
                packets: results.iter().map(|(r, _, _)| r.processed).sum(),
                bits: results.iter().map(|(_, b, _)| *b).sum(),
                seconds,
                per_shard: results.into_iter().map(|(r, _, _)| r).collect(),
                egress: None,
            }
        }
        RuntimeMode::Sharded => {
            if let Some(ecfg) = cfg.egress {
                return run_sharded_with_egress(
                    cfg,
                    &ecfg,
                    make_engine,
                    templates,
                    total_pkts,
                    now_ns,
                );
            }
            // NOTE: this rx-only loop is deliberately mirrored (not
            // shared) by `run_sharded_with_egress` — see its docs; keep
            // the two disciplines in lockstep when editing either.
            let map = ShardMap::new(shards, cfg.policer_slots, cfg.steering);
            let rx: Vec<SpscRing<PacketBuf>> = (0..shards).map(|_| SpscRing::new(cap)).collect();
            let recycle: Vec<SpscRing<PacketBuf>> =
                (0..shards).map(|_| SpscRing::new(cap)).collect();
            let stop = AtomicBool::new(false);
            let ready = Barrier::new(shards + 1);

            std::thread::scope(|s| {
                let handles: Vec<_> = (0..shards)
                    .map(|i| {
                        let make_engine = &make_engine;
                        let (rx, recycle, stop, ready) = (&rx[i], &recycle[i], &stop, &ready);
                        s.spawn(move || {
                            let mut engine = make_engine(i);
                            let mut tally =
                                WorkerTally { processed: 0, bits: 0, forwarded: 0, dropped: 0 };
                            let mut burst = Vec::with_capacity(batch);
                            let mut verdicts = Vec::with_capacity(batch);
                            ready.wait();
                            loop {
                                burst.clear();
                                rx.pop_burst(&mut burst, batch);
                                if burst.is_empty() {
                                    if stop.load(Ordering::Acquire) && rx.is_empty() {
                                        break;
                                    }
                                    // Yield rather than spin: on
                                    // oversubscribed hosts the dispatcher
                                    // needs this core to make progress.
                                    std::thread::yield_now();
                                    continue;
                                }
                                verdicts.clear();
                                engine.process_batch(&mut burst, now_ns, &mut verdicts);
                                tally_burst(&mut tally, &burst, &verdicts);
                                for buf in burst.drain(..) {
                                    // By the allocation invariant at most
                                    // `cap` buffers circulate per shard,
                                    // so the recycle ring always has room.
                                    let mut item = buf;
                                    while let Err(back) = recycle.try_push(item) {
                                        item = back;
                                        std::thread::yield_now();
                                    }
                                }
                            }
                            let report = ShardReport {
                                processed: tally.processed,
                                forwarded: tally.forwarded,
                                dropped: tally.dropped,
                                stats: engine.stats(),
                            };
                            (report, tally.bits)
                        })
                    })
                    .collect();

                // ---- Dispatcher (this thread): the model NIC. ----
                ready.wait();
                let start = Instant::now();
                let mut sent = 0u64;
                let mut allocated = vec![0usize; shards];
                // Prime: allocate fresh buffers round-robin over the
                // templates until every target ring is at depth (or the
                // run is smaller than the ring).
                'prime: loop {
                    let mut progress = false;
                    for t in templates {
                        if sent >= total_pkts {
                            break 'prime;
                        }
                        let dst = map.shard_of(t);
                        if allocated[dst] < cap {
                            rx[dst]
                                .try_push(PacketBuf::new(t.clone()))
                                .unwrap_or_else(|_| panic!("primed ring {dst} overflowed"));
                            allocated[dst] += 1;
                            sent += 1;
                            progress = true;
                        }
                    }
                    if !progress {
                        break;
                    }
                }
                // Steady state: re-arm recycled buffers until the run is
                // dispatched. A buffer recycled by shard `s` steers back
                // to `s` — reset restores the header, so the flow hash (a
                // function of the pristine bytes) is stable — which makes
                // steady-state dispatch O(1) per packet, like a NIC
                // re-arming an rx descriptor; classification happened
                // once at prime time.
                while sent < total_pkts {
                    let mut progress = false;
                    for s_idx in 0..shards {
                        while sent < total_pkts {
                            let Some(mut buf) = recycle[s_idx].try_pop() else { break };
                            buf.reset();
                            debug_assert_eq!(
                                map.shard_of(buf.as_bytes()),
                                s_idx,
                                "flow hash must be reset-stable"
                            );
                            let mut item = buf;
                            while let Err(back) = rx[s_idx].try_push(item) {
                                item = back;
                                std::thread::yield_now();
                            }
                            sent += 1;
                            progress = true;
                        }
                    }
                    if !progress {
                        std::thread::yield_now();
                    }
                }
                stop.store(true, Ordering::Release);
                let results: Vec<_> = handles
                    .into_iter()
                    .map(|h| h.join().expect("runtime worker panicked"))
                    .collect();
                let seconds = start.elapsed().as_secs_f64();
                RuntimeReport {
                    packets: results.iter().map(|(r, _)| r.processed).sum(),
                    bits: results.iter().map(|(_, b)| *b).sum(),
                    seconds,
                    per_shard: results.into_iter().map(|(r, _)| r).collect(),
                    egress: None,
                }
            })
        }
    }
}

/// The [`RuntimeMode::Sharded`] run with the tx path enabled: workers
/// push every processed packet — buffer, verdict, enqueue stamp,
/// per-shard sequence number — into per-shard egress rings, and the
/// dispatcher doubles as the tx scheduler, draining them through the
/// per-interface two-class [`TxScheduler`] before re-arming the buffer
/// onto the owning shard's rx ring. The per-shard sequence numbers are
/// asserted on the drain side: within a shard (and therefore within a
/// priority class of that shard) no packet is leaked, duplicated or
/// reordered on its way through the egress ring.
///
/// This mirrors the rx-only `RuntimeMode::Sharded` arm of
/// [`run_to_completion`] on purpose rather than sharing it: the rings
/// carry a different element type ([`TxPacket`] vs bare [`PacketBuf`])
/// and the rx-only path is the *benchmarked* configuration, which must
/// not pay for per-packet `Instant` stamps it doesn't use. A fix to the
/// shared discipline — prime-phase allocation, the stop/drain
/// handshake, the yield policy — belongs in both loops.
fn run_sharded_with_egress<D, F>(
    cfg: &RuntimeConfig,
    ecfg: &EgressConfig,
    make_engine: F,
    templates: &[Vec<u8>],
    total_pkts: u64,
    now_ns: u64,
) -> RuntimeReport
where
    D: Datapath,
    F: Fn(usize) -> D + Sync,
{
    let shards = cfg.shards.max(1);
    let batch = cfg.batch_size.max(1);
    let cap = cfg.ring_capacity.max(1);
    let map = ShardMap::new(shards, cfg.policer_slots, cfg.steering);
    let rx: Vec<SpscRing<PacketBuf>> = (0..shards).map(|_| SpscRing::new(cap)).collect();
    let etx: Vec<SpscRing<TxPacket>> = (0..shards).map(|_| SpscRing::new(cap)).collect();
    let stop = AtomicBool::new(false);
    let ready = Barrier::new(shards + 1);
    // One clock for enqueue stamps and the scheduler's `now`: every
    // residence time is a difference of offsets from this epoch.
    let epoch = Instant::now();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..shards)
            .map(|i| {
                let make_engine = &make_engine;
                let (rx, etx, stop, ready, epoch) = (&rx[i], &etx[i], &stop, &ready, &epoch);
                s.spawn(move || {
                    let mut engine = make_engine(i);
                    let mut tally = WorkerTally { processed: 0, bits: 0, forwarded: 0, dropped: 0 };
                    let mut burst = Vec::with_capacity(batch);
                    let mut verdicts = Vec::with_capacity(batch);
                    let mut seq = 0u64;
                    ready.wait();
                    loop {
                        burst.clear();
                        rx.pop_burst(&mut burst, batch);
                        if burst.is_empty() {
                            if stop.load(Ordering::Acquire) && rx.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                            continue;
                        }
                        verdicts.clear();
                        engine.process_batch(&mut burst, now_ns, &mut verdicts);
                        tally_burst(&mut tally, &burst, &verdicts);
                        for (buf, &verdict) in burst.drain(..).zip(verdicts.iter()) {
                            let enqueued_ns = epoch.elapsed().as_nanos() as u64;
                            let mut item = TxPacket { buf, verdict, enqueued_ns, seq };
                            seq += 1;
                            // At most `cap` buffers circulate per shard,
                            // so the egress ring always frees up.
                            while let Err(back) = etx.try_push(item) {
                                item = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                    let report = ShardReport {
                        processed: tally.processed,
                        forwarded: tally.forwarded,
                        dropped: tally.dropped,
                        stats: engine.stats(),
                    };
                    (report, tally.bits)
                })
            })
            .collect();

        // ---- Dispatcher + tx scheduler (this thread). ----
        ready.wait();
        let start = Instant::now();
        let mut scheduler = TxScheduler::new(ecfg);
        let mut sent = 0u64;
        let mut drained = 0u64;
        let mut expected_seq = vec![0u64; shards];
        let mut allocated = vec![0usize; shards];
        // Prime: exactly like the rx-only run.
        'prime: loop {
            let mut progress = false;
            for t in templates {
                if sent >= total_pkts {
                    break 'prime;
                }
                let dst = map.shard_of(t);
                if allocated[dst] < cap {
                    rx[dst]
                        .try_push(PacketBuf::new(t.clone()))
                        .unwrap_or_else(|_| panic!("primed ring {dst} overflowed"));
                    allocated[dst] += 1;
                    sent += 1;
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
        // Steady state: every processed packet comes back through its
        // shard's egress ring, gets serialized by the scheduler, and its
        // buffer re-arms onto the same shard's rx ring until the run is
        // fully dispatched — then keeps draining until every packet has
        // left through the tx path.
        while drained < total_pkts {
            let mut progress = false;
            for s_idx in 0..shards {
                while let Some(tx) = etx[s_idx].try_pop() {
                    assert_eq!(
                        tx.seq, expected_seq[s_idx],
                        "egress ring of shard {s_idx} leaked, duplicated or reordered a packet"
                    );
                    expected_seq[s_idx] += 1;
                    scheduler.stage(tx.verdict, tx.buf.wire_len(), tx.enqueued_ns);
                    drained += 1;
                    progress = true;
                    if sent < total_pkts {
                        let mut buf = tx.buf;
                        buf.reset();
                        debug_assert_eq!(
                            map.shard_of(buf.as_bytes()),
                            s_idx,
                            "flow hash must be reset-stable"
                        );
                        let mut item = buf;
                        while let Err(back) = rx[s_idx].try_push(item) {
                            item = back;
                            std::thread::yield_now();
                        }
                        sent += 1;
                    }
                }
            }
            scheduler.transmit(epoch.elapsed().as_nanos() as u64);
            if !progress {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Release);
        let results: Vec<_> =
            handles.into_iter().map(|h| h.join().expect("runtime worker panicked")).collect();
        let seconds = start.elapsed().as_secs_f64();
        RuntimeReport {
            packets: results.iter().map(|(r, _)| r.processed).sum(),
            bits: results.iter().map(|(_, b)| *b).sum(),
            seconds,
            per_shard: results.into_iter().map(|(r, _)| r).collect(),
            egress: Some(scheduler.stats()),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beacon::{forge_path, BeaconHop};
    use crate::datapath::DatapathBuilder;
    use crate::router::RouterConfig;
    use crate::source::{SourceGenerator, SourceReservation};
    use hummingbird_crypto::{ResInfo, SecretValue};
    use hummingbird_wire::scion_mac::HopMacKey;
    use hummingbird_wire::IsdAs;

    const NOW_MS: u64 = 1_700_000_100_000;
    const NOW_NS: u64 = NOW_MS * 1_000_000;

    fn reserved_packet(res_id: u32) -> Vec<u8> {
        let hops =
            vec![BeaconHop { key: HopMacKey::new([0x10; 16]), cons_ingress: 0, cons_egress: 0 }];
        let path = forge_path(&hops, (NOW_MS / 1000) as u32 - 100, 0x1234);
        let mut generator = SourceGenerator::new(IsdAs::new(1, 0x10), IsdAs::new(2, 0x20), path);
        let res_info = ResInfo {
            ingress: 0,
            egress: 0,
            res_id,
            bw_encoded: 900,
            res_start: (NOW_MS / 1000) as u32 - 50,
            duration: 600,
        };
        let key = SecretValue::new([0x60; 16]).derive_key(&res_info);
        generator.attach_reservation(0, SourceReservation { res_info, key }).unwrap();
        generator.generate(&[0u8; 200], NOW_MS).unwrap()
    }

    fn hop_engine() -> Box<dyn Datapath + Send> {
        DatapathBuilder::new(SecretValue::new([0x60; 16]), HopMacKey::new([0x10; 16])).build_boxed()
    }

    #[test]
    fn facade_matches_single_engine_on_reserved_traffic() {
        let cfg = RouterConfig::default();
        let templates: Vec<Vec<u8>> =
            [1u32, 30_000, 60_000, 99_999].iter().map(|&r| reserved_packet(r)).collect();
        let mut single = hop_engine();
        let mut sharded = ShardedRouter::from_fn(4, cfg.policer_slots, |_| hop_engine());
        for t in &templates {
            let a = single.process(&mut t.clone(), NOW_NS);
            let b = sharded.process(&mut t.clone(), NOW_NS);
            assert_eq!(a, b);
            assert!(b.is_flyover(), "{b:?}");
        }
        assert_eq!(single.stats(), sharded.stats());
        // Traffic actually spread: more than one shard saw packets.
        let active = sharded.shard_stats().iter().filter(|s| s.processed > 0).count();
        assert!(active > 1, "expected ResID spread across shards");
    }

    #[test]
    fn facade_batch_preserves_verdict_order() {
        let cfg = RouterConfig::default();
        let templates: Vec<Vec<u8>> =
            [99_999u32, 1, 50_000, 1, 99_999].iter().map(|&r| reserved_packet(r)).collect();
        let mut single = hop_engine();
        let expected: Vec<Verdict> =
            templates.iter().map(|t| single.process(&mut t.clone(), NOW_NS)).collect();
        let mut sharded = ShardedRouter::from_fn(3, cfg.policer_slots, |_| hop_engine());
        let mut bufs: Vec<PacketBuf> =
            templates.iter().map(|t| PacketBuf::new(t.clone())).collect();
        let mut got = Vec::new();
        sharded.process_batch(&mut bufs, NOW_NS, &mut got);
        assert_eq!(got, expected);
        assert_eq!(sharded.stats().processed, templates.len() as u64);
    }

    #[test]
    fn threaded_runtime_processes_every_packet_in_both_modes() {
        let templates: Vec<Vec<u8>> =
            [5u32, 40_000, 77_000].iter().map(|&r| reserved_packet(r)).collect();
        for mode in [RuntimeMode::PerCoreClone, RuntimeMode::Sharded] {
            let mut cfg = RuntimeConfig::new(3);
            cfg.ring_capacity = 8;
            let report = run_to_completion(&cfg, mode, |_| hop_engine(), &templates, 1_000, NOW_NS);
            assert_eq!(report.packets, 1_000, "{mode:?}");
            assert_eq!(
                report.per_shard.iter().map(|r| r.processed).sum::<u64>(),
                1_000,
                "{mode:?}"
            );
            assert!(report.bits > 0 && report.seconds > 0.0, "{mode:?}");
            let forwarded: u64 = report.per_shard.iter().map(|r| r.forwarded).sum();
            assert_eq!(forwarded, 1_000, "valid reserved packets all forward ({mode:?})");
        }
    }

    #[test]
    fn sharded_runtime_egress_reports_residence_times() {
        let templates: Vec<Vec<u8>> =
            [7u32, 33_000, 88_000].iter().map(|&r| reserved_packet(r)).collect();
        let mut cfg = RuntimeConfig::new(3);
        cfg.ring_capacity = 8;
        cfg.egress = Some(EgressConfig::default());
        let report = run_to_completion(
            &cfg,
            RuntimeMode::Sharded,
            |_| hop_engine(),
            &templates,
            1_000,
            NOW_NS,
        );
        assert_eq!(report.packets, 1_000);
        let e = report.egress.expect("tx path enabled");
        // Packet conservation through the tx path: everything processed
        // either serialized or was a verdict drop.
        assert_eq!(e.forwarded() + e.dropped, 1_000);
        // Valid reserved traffic rides the priority class exclusively.
        assert_eq!(e.priority.pkts, 1_000);
        assert_eq!(e.best_effort.pkts, 0);
        assert!(e.priority.bytes > 0);
        assert!(e.priority.residence_ns_sum >= e.priority.pkts, "residence accrues");
        assert!(e.priority.residence_ns_max > 0);
        // Tiny and zero-packet runs drain the tx path cleanly too.
        let mut cfg2 = RuntimeConfig::new(2);
        cfg2.egress = Some(EgressConfig::default());
        let report =
            run_to_completion(&cfg2, RuntimeMode::Sharded, |_| hop_engine(), &templates, 3, NOW_NS);
        assert_eq!(report.packets, 3);
        assert_eq!(report.egress.expect("enabled").forwarded(), 3);
        let report =
            run_to_completion(&cfg2, RuntimeMode::Sharded, |_| hop_engine(), &templates, 0, NOW_NS);
        assert_eq!(report.egress.expect("enabled").forwarded(), 0);
    }

    #[test]
    fn sharded_runtime_handles_tiny_runs_and_single_shard() {
        let templates = vec![reserved_packet(42)];
        let cfg = RuntimeConfig::new(1);
        let report =
            run_to_completion(&cfg, RuntimeMode::Sharded, |_| hop_engine(), &templates, 3, NOW_NS);
        assert_eq!(report.packets, 3);
        // Zero-packet runs terminate cleanly too.
        let report =
            run_to_completion(&cfg, RuntimeMode::Sharded, |_| hop_engine(), &templates, 0, NOW_NS);
        assert_eq!(report.packets, 0);
    }
}
