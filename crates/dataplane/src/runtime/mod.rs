//! The sharded worker-ring datapath runtime: a software model of the
//! NIC-fed multi-core router the paper evaluates (§7.1, Figs. 5/14).
//!
//! # The model vs. the paper's DPDK testbed
//!
//! The paper drives a DPDK implementation with a Spirent generator over
//! 4×40 Gbps links: the NIC hashes each packet onto an rx queue (RSS),
//! one core polls each queue in bursts, and per-core state is never
//! shared — policing works because the flow hash pins every reservation
//! to one queue. This module reproduces that architecture with portable
//! pieces:
//!
//! * [`ring::SpscRing`] — bounded SPSC *burst* rings of [`PacketBuf`]
//!   stand in for NIC descriptor rings (capacity = queue depth, full
//!   ring = backpressure). One head/tail update moves a whole burst; no
//!   per-packet lock (see the ring module's invariant note).
//! * [`shard::ShardMap`] — the RSS function: flyover packets steer by
//!   **per-shard ResID ranges** so each reservation's token bucket
//!   (Algorithm 1) lives on exactly one core, plain packets steer by the
//!   duplicate-filter key, and a [`shard::Steering::BySource`] mode
//!   covers sender-keyed engines like the gateway;
//! * [`ShardedRouter`] — a facade that *itself implements* [`Datapath`],
//!   so the simulator, testbed and every benchmark binary can drive a
//!   multi-shard router exactly where they drove a single engine;
//! * [`run_to_completion`] — the threaded harness, in two rx layouts
//!   selected by [`RuntimeConfig::rx_mode`]:
//!
//!   **[`RxMode::MultiQueue`]** (the default, and the configuration
//!   that scales): steering happens at *injection time* — the ShardMap
//!   partitions the template workload into per-shard plans up front
//!   (exactly what RSS hardware does per packet, hoisted to the
//!   producer side), and each shard then runs a self-fed loop: re-arm a
//!   burst of recycled buffers, push it through its own rx ring, pop it
//!   back, process it via the engine's batch path, recycle. No
//!   dispatcher thread exists; shards share *nothing*, so N shards
//!   approach N× one core.
//!
//!   **[`RxMode::SingleDispatcher`]** (legacy): one dispatcher thread
//!   classifies every packet and feeds per-shard rings, modeling a
//!   software RSS stage whose cost is paid on a real core. Kept because
//!   it is the configuration where steering cost is *measurable* and as
//!   the historical tx-scheduler arrangement (dispatcher doubles as the
//!   egress scheduler).
//!
//! * [`egress::TxScheduler`] — the tx path: processed packets travel
//!   per-shard egress rings of [`TxPacket`] into per-interface FIFO +
//!   priority-class queues over a modeled link rate, recording
//!   per-packet residence times ([`EgressStats`] on the report). In
//!   multi-queue mode each *worker drains its own egress ring* into a
//!   shard-local scheduler (its model of a per-core NIC tx queue) and
//!   the per-shard stats are merged — no dispatcher round trip; in
//!   single-dispatcher mode the dispatcher drains all rings into one
//!   scheduler. Both enforce the per-shard sequence-number conservation
//!   check. Enabled by [`RuntimeConfig::egress`].
//!
//! Blocking behavior is governed by [`RuntimeConfig::wait`]
//! ([`WaitStrategy`]): dedicated-core deployments busy-poll,
//! oversubscribed CI hosts yield. How workers map onto host threads is
//! governed by [`RuntimeConfig::exec`] ([`ExecMode`]) — see its docs
//! for the honest accounting of what "sequential" measures.
//!
//! What the model deliberately simplifies: "line rate" on the rx side
//! is a cap applied in reporting, the tx link is modeled in virtual
//! time (the scheduler computes departures, it does not pace the wire),
//! and in multi-queue mode classification is hoisted to plan time — a
//! software stand-in for hashing hardware, which also classifies before
//! the packet reaches a core. Cross-shard duplicate detection holds for
//! exact replays (bit-identical packets steer identically) but not for
//! distinct packets that collide on the duplicate-filter key while
//! carrying different ResIDs — the same property a per-queue dup filter
//! has on real RSS hardware.

pub mod egress;
pub mod ring;
pub mod shard;

pub use egress::{
    BackpressureConfig, BackpressurePolicy, EgressClassStats, EgressConfig, EgressStats,
    LatencyHistogram, TxPacket, TxScheduler,
};
pub use ring::SpscRing;
pub use shard::{FlowClass, ShardMap, Steering};

use crate::datapath::{Datapath, DatapathStats, PacketBuf, Verdict};
use crate::multicore::{Throughput, BATCH_SIZE};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// One logical router spread across per-shard engines, behind the
/// [`Datapath`] trait.
///
/// Every packet is steered by the [`ShardMap`] to the shard that owns
/// its flow, so per-reservation policing state never splits across
/// engines; verdicts and aggregate [`stats`](Datapath::stats) are
/// element-wise identical to a single engine over the same traffic (the
/// contract `tests/prop_sharded.rs` enforces).
/// [`process_batch`](Datapath::process_batch) forwards maximal same-shard
/// runs to the
/// owning engine's batch path, so per-burst amortizations (batch key
/// derivation, policer pre-touch) survive sharding.
///
/// This synchronous facade is the drop-in form — harnesses that want
/// real parallelism drive the same engines through
/// [`run_to_completion`]. Cost model: steering parses the header a
/// second time (hardware RSS gets this for free), a deliberate trade —
/// sharing the engine's own `stages::parse` keeps the steering decision
/// bit-exact with what the engine will see, which is what the ResID-
/// ownership invariant rests on; the `runtime` criterion bench group
/// measures the overhead against a single engine. (The threaded runtime
/// avoids it in steady state by classifying once per template at plan
/// time and re-arming recycled buffers.)
pub struct ShardedRouter {
    shards: Vec<Box<dyn Datapath + Send>>,
    map: ShardMap,
    /// Per-call scratch: the shard of each packet in the current burst.
    steer_scratch: Vec<usize>,
}

impl ShardedRouter {
    /// Builds a facade over `engines` (one per shard) with
    /// reservation-aware steering across a ResID space of `slots` —
    /// `slots` should match the engines' policer capacity.
    pub fn new(engines: Vec<Box<dyn Datapath + Send>>, slots: u32, steering: Steering) -> Self {
        assert!(!engines.is_empty(), "a sharded router needs at least one shard");
        let map = ShardMap::new(engines.len(), slots, steering);
        ShardedRouter { shards: engines, map, steer_scratch: Vec::new() }
    }

    /// Builds `shards` engines with `make` (called with the shard index)
    /// under default reservation-aware steering.
    pub fn from_fn(
        shards: usize,
        slots: u32,
        mut make: impl FnMut(usize) -> Box<dyn Datapath + Send>,
    ) -> Self {
        Self::new((0..shards.max(1)).map(&mut make).collect(), slots, Steering::ByReservation)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The steering map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Per-shard counter snapshots (the aggregate is
    /// [`Datapath::stats`]).
    pub fn shard_stats(&self) -> Vec<DatapathStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }
}

impl Datapath for ShardedRouter {
    fn process(&mut self, pkt: &mut [u8], now_ns: u64) -> Verdict {
        let shard = self.map.shard_of(pkt);
        self.shards[shard].process(pkt, now_ns)
    }

    fn process_batch(&mut self, pkts: &mut [PacketBuf], now_ns: u64, out: &mut Vec<Verdict>) {
        self.steer_scratch.clear();
        self.steer_scratch.extend(pkts.iter().map(|p| self.map.shard_of(p.as_bytes())));
        // Hand maximal same-shard runs to the owning engine's batch path;
        // verdict order is input order because runs are processed in
        // sequence.
        let mut start = 0;
        while start < pkts.len() {
            let shard = self.steer_scratch[start];
            let mut end = start + 1;
            while end < pkts.len() && self.steer_scratch[end] == shard {
                end += 1;
            }
            self.shards[shard].process_batch(&mut pkts[start..end], now_ns, out);
            start = end;
        }
    }

    /// The underlying engine's name — the facade is transparent, so
    /// harness output keeps labeling the engine, not the wrapper.
    fn engine_name(&self) -> &'static str {
        self.shards[0].engine_name()
    }

    fn stats(&self) -> DatapathStats {
        let mut total = DatapathStats::default();
        for s in &self.shards {
            let st = s.stats();
            total.processed += st.processed;
            total.flyover += st.flyover;
            total.best_effort += st.best_effort;
            total.dropped += st.dropped;
            total.demoted_overuse += st.demoted_overuse;
            total.demoted_untimely += st.demoted_untimely;
            // Per-shard key caches sum exactly to a single engine's
            // counters: every reservation steers to one shard, so the
            // set of first-contact misses is partitioned, not repeated.
            total.key_cache_hits += st.key_cache_hits;
            total.key_cache_misses += st.key_cache_misses;
        }
        total
    }

    fn reset_stats(&mut self) {
        for s in &mut self.shards {
            s.reset_stats();
        }
    }
}

/// How [`run_to_completion`] lays work onto cores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeMode {
    /// Each worker owns an independent engine and self-feeds its own
    /// ring — the historical `multicore` harness, now expressed as a
    /// runtime configuration. Measures pure per-core engine scaling; no
    /// cross-core policing semantics.
    PerCoreClone,
    /// One logical router with correct cross-core policing: every
    /// packet is processed by the shard the [`ShardMap`] assigns it to.
    /// Where the steering decision is *executed* depends on
    /// [`RuntimeConfig::rx_mode`] — at injection time
    /// ([`RxMode::MultiQueue`], the default) or on a dispatcher thread
    /// ([`RxMode::SingleDispatcher`]).
    Sharded,
}

/// How worker threads wait when a ring has nothing for them
/// ([`RuntimeConfig::wait`]).
///
/// In multi-queue mode shards are self-fed and hardly ever wait; the
/// strategy matters most for [`RxMode::SingleDispatcher`], where every
/// worker continuously polls a ring another thread fills (and vice
/// versa), and on oversubscribed hosts, where a spinning thread steals
/// the timeslice the thread it waits on needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitStrategy {
    /// Spin (`spin_loop` hint) without ever yielding — lowest latency
    /// when every shard owns a dedicated hardware thread, pathological
    /// when cores are shared.
    BusyPoll,
    /// Spin `n` times, then yield the timeslice on every subsequent
    /// miss until progress resets the count. `YieldAfter(0)` yields
    /// immediately — the pre-wait-strategy behavior of this runtime.
    YieldAfter(u32),
    /// Exponential backoff: spin 1, 2, 4, … (doubling up to a cap) on
    /// consecutive misses, then start yielding. A middle ground that
    /// needs no tuning parameter: short stalls stay on-core, long
    /// stalls surrender the timeslice.
    Backoff,
}

impl Default for WaitStrategy {
    /// [`WaitStrategy::Backoff`]: graceful on both dedicated and
    /// oversubscribed hosts without a tuning parameter.
    fn default() -> Self {
        WaitStrategy::Backoff
    }
}

/// Progressive waiter driven by a [`WaitStrategy`]: call
/// [`wait`](Waiter::wait) on every miss, [`reset`](Waiter::reset) on
/// progress.
#[derive(Debug)]
struct Waiter {
    strategy: WaitStrategy,
    misses: u32,
}

impl Waiter {
    fn new(strategy: WaitStrategy) -> Self {
        Waiter { strategy, misses: 0 }
    }

    #[inline]
    fn wait(&mut self) {
        match self.strategy {
            WaitStrategy::BusyPoll => std::hint::spin_loop(),
            WaitStrategy::YieldAfter(n) => {
                if self.misses < n {
                    self.misses += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            WaitStrategy::Backoff => {
                // 2^6 = 64 spins is the largest burst; past that the
                // stall is long enough that the timeslice is better
                // spent by whoever we are waiting on.
                const MAX_SPIN_EXP: u32 = 6;
                if self.misses <= MAX_SPIN_EXP {
                    for _ in 0..(1u32 << self.misses) {
                        std::hint::spin_loop();
                    }
                    self.misses += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    #[inline]
    fn reset(&mut self) {
        self.misses = 0;
    }
}

/// Where rx steering runs in [`RuntimeMode::Sharded`]
/// ([`RuntimeConfig::rx_mode`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RxMode {
    /// Per-shard rx queues filled by RSS-style hashing at injection
    /// time (the default): the workload is partitioned into per-shard
    /// plans up front via [`ShardMap::partition_templates`], each shard
    /// self-feeds its own ring, and no dispatcher thread exists. This
    /// is the layout that scales — shards share nothing.
    #[default]
    MultiQueue,
    /// The legacy layout: one dispatcher thread classifies every packet
    /// and feeds per-shard rings (and, with egress enabled, drains all
    /// egress rings into one tx scheduler). Kept as the configuration
    /// where software steering cost is measurable on a real core.
    SingleDispatcher,
}

/// How shard workers map onto host threads ([`RuntimeConfig::exec`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// [`Threaded`](ExecMode::Threaded) when the host has at least as
    /// many hardware threads as shards, otherwise
    /// [`Sequential`](ExecMode::Sequential). The benchmark setting: use
    /// real parallelism when it exists, fall back to the dedicated-core
    /// estimate instead of measuring timeslice ping-pong when it
    /// doesn't.
    Auto,
    /// One OS thread per shard, started together behind a barrier; the
    /// run's `seconds` is the slowest worker's wall clock, so scheduler
    /// contention on oversubscribed hosts shows up in the measurement.
    /// The default — and the only mode that exercises the rings
    /// cross-thread, which is why the conservation tests pin it.
    #[default]
    Threaded,
    /// Run each shard's worker loop to completion on the calling
    /// thread, one after another, timing each independently; `seconds`
    /// is the *maximum* per-shard elapsed time. Because multi-queue and
    /// per-core-clone shards share no state whatsoever, this is a
    /// faithful critical-path estimate of N dedicated cores — what the
    /// run *would* take if each worker had its own core — and the only
    /// honest way to measure N-shard scaling on a host with fewer than
    /// N hardware threads. Only self-fed layouts honor it; the
    /// single-dispatcher layout is inherently concurrent and always
    /// threads.
    Sequential,
}

/// Tuning of the worker-ring runtime.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Worker shard count (cores devoted to packet processing).
    pub shards: usize,
    /// Per-shard ring depth in *bursts* (NIC descriptor-ring model;
    /// rounded up to a power of two by the ring).
    pub ring_capacity: usize,
    /// Burst size per `process_batch` call.
    pub batch_size: usize,
    /// ResID slot count the steering ranges partition (should match the
    /// engines' policer capacity).
    pub policer_slots: u32,
    /// Flow steering policy (ignored in [`RuntimeMode::PerCoreClone`]).
    pub steering: Steering,
    /// Tx-path model: `Some` routes every processed packet through
    /// per-shard egress rings into the two-class [`TxScheduler`] and
    /// reports [`EgressStats`]; `None` (the default) recycles buffers
    /// directly, the historical rx-only harness. Only
    /// [`RuntimeMode::Sharded`] has a tx port (the clone mode measures
    /// independent engines, not one logical router), so the model is
    /// ignored under [`RuntimeMode::PerCoreClone`].
    pub egress: Option<EgressConfig>,
    /// Bounded-queue and backpressure tuning of the tx path (only
    /// meaningful when [`egress`](RuntimeConfig::egress) is `Some`):
    /// per-port per-class queue bound, the high-watermark past which a
    /// worker stops draining its rx ring, and what the rx side does
    /// while stalled ([`BackpressurePolicy::Block`] holds producers,
    /// [`BackpressurePolicy::Drop`] sheds offered packets into
    /// [`ShardReport::rx_backpressure_drops`]). The single-dispatcher
    /// layout honors the queue bound (tail drop under
    /// [`DropReason`](crate::DropReason)`::TxQueueFull`) but not the
    /// watermark stall: its workers and dispatcher already form a
    /// closed buffer-recycling loop, and a stalled dispatcher could
    /// deadlock against workers blocked on their egress rings.
    pub backpressure: BackpressureConfig,
    /// How threads wait on empty/full rings. Default
    /// [`WaitStrategy::Backoff`].
    pub wait: WaitStrategy,
    /// Where rx steering runs in [`RuntimeMode::Sharded`]. Default
    /// [`RxMode::MultiQueue`].
    pub rx_mode: RxMode,
    /// How shard workers map onto host threads. Default
    /// [`ExecMode::Threaded`]; benchmarks pass [`ExecMode::Auto`].
    pub exec: ExecMode,
}

impl RuntimeConfig {
    /// A sensible default: `shards` workers, 256-burst rings,
    /// [`BATCH_SIZE`]-packet bursts, the paper's 10⁵ ResID slots,
    /// reservation-aware steering, no tx path, backoff waits,
    /// multi-queue rx, threaded execution.
    pub fn new(shards: usize) -> Self {
        RuntimeConfig {
            shards: shards.max(1),
            ring_capacity: 256,
            batch_size: BATCH_SIZE,
            policer_slots: 100_000,
            steering: Steering::ByReservation,
            egress: None,
            backpressure: BackpressureConfig::default(),
            wait: WaitStrategy::default(),
            rx_mode: RxMode::default(),
            exec: ExecMode::default(),
        }
    }
}

/// What one worker shard did during a [`run_to_completion`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardReport {
    /// Packets this shard processed.
    pub processed: u64,
    /// Packets forwarded (flyover or best effort).
    pub forwarded: u64,
    /// Packets dropped by the engine.
    pub dropped: u64,
    /// Offered packets shed at the rx ring while this shard's tx queue
    /// was over the high-watermark under [`BackpressurePolicy::Drop`]
    /// (never counted in `processed` — they were refused before the
    /// engine saw them).
    pub rx_backpressure_drops: u64,
    /// The shard engine's counters.
    pub stats: DatapathStats,
}

/// The outcome of a [`run_to_completion`].
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Packets processed across all shards.
    pub packets: u64,
    /// Bits moved (wire size × packets).
    pub bits: u64,
    /// Run duration in seconds: the slowest worker's wall clock in the
    /// self-fed layouts (threaded or sequential — see [`ExecMode`]),
    /// the dispatcher's wall clock in [`RxMode::SingleDispatcher`].
    pub seconds: f64,
    /// Offered packets shed at rx rings under backpressure, summed
    /// across shards. Conservation: `packets + rx_backpressure_drops`
    /// equals the offered total in every mode and policy.
    pub rx_backpressure_drops: u64,
    /// Per-shard breakdown (reveals steering skew).
    pub per_shard: Vec<ShardReport>,
    /// Tx-path statistics, when [`RuntimeConfig::egress`] enabled it:
    /// per-class packet/byte counts and residence times (merged across
    /// shards in multi-queue mode).
    pub egress: Option<EgressStats>,
}

impl RuntimeReport {
    /// The run as a [`Throughput`] measurement.
    pub fn throughput(&self) -> Throughput {
        Throughput { packets: self.packets, bits: self.bits, seconds: self.seconds }
    }
}

/// Worker loop state shared by every runtime layout: drain the rx ring
/// in bursts through the engine's batch path, tally, recycle.
#[derive(Default)]
struct WorkerTally {
    processed: u64,
    bits: u64,
    forwarded: u64,
    dropped: u64,
}

fn tally_burst(tally: &mut WorkerTally, burst: &[PacketBuf], verdicts: &[Verdict]) {
    tally.processed += burst.len() as u64;
    tally.bits += burst.iter().map(|p| p.wire_len() as u64 * 8).sum::<u64>();
    for v in verdicts {
        if v.is_drop() {
            tally.dropped += 1;
        } else {
            tally.forwarded += 1;
        }
    }
}

/// Runs `total_pkts` packets (cycling over `templates`) through
/// `cfg.shards` worker threads and reports aggregate and per-shard
/// throughput.
///
/// In [`RuntimeMode::Sharded`] one logical router with correct policing
/// runs across the workers; [`RuntimeConfig::rx_mode`] picks the rx
/// layout (per-shard multi-queue injection by default, legacy central
/// dispatcher on request). In [`RuntimeMode::PerCoreClone`] each worker
/// self-feeds its own ring with an even share of the total — the
/// classic per-core-clone measurement. Engines are constructed inside
/// their worker (no `Send` bound on `D`); construction stays out of the
/// timed region.
///
/// Packet accounting is deterministic: template `j` of `T` contributes
/// exactly `total_pkts / T` packets plus one more when
/// `j < total_pkts % T`, in every mode and layout — which is what makes
/// sharded runs byte-comparable against a single engine fed the same
/// multiset.
pub fn run_to_completion<D, F>(
    cfg: &RuntimeConfig,
    mode: RuntimeMode,
    make_engine: F,
    templates: &[Vec<u8>],
    total_pkts: u64,
    now_ns: u64,
) -> RuntimeReport
where
    D: Datapath,
    F: Fn(usize) -> D + Sync,
{
    assert!(!templates.is_empty(), "need at least one packet template");
    let shards = cfg.shards.max(1);

    match mode {
        RuntimeMode::PerCoreClone => {
            let plans = clone_plans(templates.len(), shards, total_pkts);
            run_multi_queue(cfg, plans, make_engine, templates, now_ns, None)
        }
        RuntimeMode::Sharded => match cfg.rx_mode {
            RxMode::MultiQueue => {
                let map = ShardMap::new(shards, cfg.policer_slots, cfg.steering);
                let plans = map.partition_templates(templates, total_pkts);
                run_multi_queue(cfg, plans, make_engine, templates, now_ns, cfg.egress)
            }
            RxMode::SingleDispatcher => {
                if let Some(ecfg) = cfg.egress {
                    run_single_dispatcher_egress(
                        cfg,
                        &ecfg,
                        make_engine,
                        templates,
                        total_pkts,
                        now_ns,
                    )
                } else {
                    run_single_dispatcher(cfg, make_engine, templates, total_pkts, now_ns)
                }
            }
        },
    }
}

/// The per-worker plan of [`RuntimeMode::PerCoreClone`]: every worker
/// drives all templates, worker `i` taking `total / shards` packets
/// (+1 for the first `total % shards` workers), spread over the
/// templates with the same largest-remainder rule.
fn clone_plans(templates: usize, shards: usize, total: u64) -> Vec<Vec<(usize, u64)>> {
    let n = templates.max(1) as u64;
    (0..shards)
        .map(|i| {
            let target = total / shards as u64 + u64::from((i as u64) < total % shards as u64);
            (0..templates).map(|j| (j, target / n + u64::from((j as u64) < target % n))).collect()
        })
        .collect()
}

/// What one self-fed shard worker returns.
struct SelfFedOutcome {
    report: ShardReport,
    bits: u64,
    seconds: f64,
    egress: Option<EgressStats>,
}

/// The self-fed shard loop shared by [`RuntimeMode::PerCoreClone`] and
/// the multi-queue [`RuntimeMode::Sharded`] layout: fill a burst of
/// re-armed buffers from the shard's plan, push it through the shard's
/// own rx ring (the NIC-model hop — one `push_burst`/`pop_burst` pair,
/// no per-packet ring traffic), process it through the engine's batch
/// path, tally, recycle. With egress enabled, processed packets take
/// one more burst hop through the shard's egress ring and the worker
/// drains it into its *own* [`TxScheduler`] (the per-core NIC tx
/// queue), asserting the per-shard sequence numbers.
///
/// Backpressure: each iteration first gives the scheduler a wire-paced
/// [`transmit`](TxScheduler::transmit) tick; while the tx queue is over
/// [`BackpressureConfig::high_watermark`] the worker refuses to drain
/// its rx ring — under [`BackpressurePolicy::Block`] it waits for the
/// wire (no loss, the closed-loop shape), under
/// [`BackpressurePolicy::Drop`] the offered packets that would have
/// arrived are shed at the rx ring and counted in
/// [`ShardReport::rx_backpressure_drops`] (the open-loop shape). The
/// run's offered total is conserved either way:
/// `processed + rx_backpressure_drops = target`, and a final
/// [`flush`](TxScheduler::flush) serializes the queued residue so the
/// egress side conserves too.
///
/// `plan` lists `(template index, packet count)`; buffers are pooled
/// per template (a buffer's bytes *are* its template, `reset()` only
/// restores the header), at most one burst's worth each, so steady
/// state allocates nothing.
#[allow(clippy::too_many_arguments)]
fn run_self_fed_shard<D: Datapath>(
    engine: &mut D,
    templates: &[Vec<u8>],
    plan: &[(usize, u64)],
    batch: usize,
    cap: usize,
    wait: WaitStrategy,
    now_ns: u64,
    egress: Option<(EgressConfig, BackpressureConfig, Instant)>,
) -> SelfFedOutcome {
    let target: u64 = plan.iter().map(|&(_, c)| c).sum();
    // (template index, packets remaining, buffer pool) per feed.
    let mut feeds: Vec<(usize, u64, Vec<PacketBuf>)> = plan
        .iter()
        .filter(|&&(_, c)| c > 0)
        .map(|&(t, c)| {
            let pool =
                (0..c.min(batch as u64)).map(|_| PacketBuf::new(templates[t].clone())).collect();
            (t, c, pool)
        })
        .collect();
    let rx: SpscRing<PacketBuf> = SpscRing::new(cap);
    let bp = egress.map(|(_, bp, _)| bp).unwrap_or_default();
    let mut tx_state = egress.map(|(ecfg, bp, epoch)| {
        (
            SpscRing::<TxPacket>::new(cap),
            TxScheduler::with_backpressure(&ecfg, &bp),
            epoch,
            0u64,
            0u64,
        )
    });
    let mut tally = WorkerTally::default();
    let mut rx_backpressure_drops = 0u64;
    let mut staging: Vec<PacketBuf> = Vec::with_capacity(batch);
    let mut staged_feeds: Vec<usize> = Vec::with_capacity(batch);
    let mut verdicts: Vec<Verdict> = Vec::with_capacity(batch);
    let mut tx_staging: Vec<TxPacket> = Vec::new();
    let mut tx_popped: Vec<TxPacket> = Vec::new();
    let mut waiter = Waiter::new(wait);

    let start = Instant::now();
    while tally.processed + rx_backpressure_drops < target {
        // Give the wire its paced tick, then honor the high-watermark:
        // a worker whose tx queue is over it stops draining rx — the
        // backpressure edge producers feel.
        if let Some((_, sched, epoch, ..)) = &mut tx_state {
            sched.transmit(epoch.elapsed().as_nanos() as u64);
            if sched.queued_pkts() > bp.high_watermark {
                match bp.policy {
                    BackpressurePolicy::Block => {
                        // Closed loop: hold the producers; wall time
                        // advances and the next tick drains the wire.
                        waiter.wait();
                    }
                    BackpressurePolicy::Drop => {
                        // Open loop: the offered packets that arrived
                        // during the stall are refused at the rx ring,
                        // round-robin across feeds like the fill loop.
                        let mut shed = 0usize;
                        'shed: loop {
                            let mut progress = false;
                            for feed in feeds.iter_mut() {
                                if shed >= batch {
                                    break 'shed;
                                }
                                if feed.1 == 0 {
                                    continue;
                                }
                                feed.1 -= 1;
                                shed += 1;
                                progress = true;
                            }
                            if !progress {
                                break;
                            }
                        }
                        rx_backpressure_drops += shed as u64;
                    }
                }
                continue;
            }
        }
        // Fill: round-robin across the feeds with work left, one buffer
        // each per pass, until the burst is full. Every buffer is home
        // between iterations, so a feed with `remaining > 0` always
        // progresses eventually.
        staged_feeds.clear();
        'fill: loop {
            let mut progress = false;
            for (fi, feed) in feeds.iter_mut().enumerate() {
                if staging.len() >= batch {
                    break 'fill;
                }
                if feed.1 == 0 {
                    continue;
                }
                let Some(mut buf) = feed.2.pop() else { continue };
                buf.reset();
                staging.push(buf);
                staged_feeds.push(fi);
                feed.1 -= 1;
                progress = true;
            }
            if !progress {
                break;
            }
        }
        if staging.is_empty() {
            break;
        }
        // The NIC-model ring hop: one slot claim in, one out. The ring
        // is drained every iteration, so the push only backpressures if
        // the configured depth is pathological (cap rounds up to ≥ 1).
        while !rx.push_burst(&mut staging) {
            waiter.wait();
        }
        rx.pop_burst(&mut staging);
        waiter.reset();

        verdicts.clear();
        engine.process_batch(&mut staging, now_ns, &mut verdicts);
        tally_burst(&mut tally, &staging, &verdicts);

        match &mut tx_state {
            None => {
                for (k, buf) in staging.drain(..).enumerate() {
                    feeds[staged_feeds[k]].2.push(buf);
                }
            }
            Some((etx, sched, epoch, next_seq, expected_seq)) => {
                // Worker-drained egress: stamp, burst through the
                // egress ring, drain into the shard-local scheduler.
                for (buf, &verdict) in staging.drain(..).zip(verdicts.iter()) {
                    let enqueued_ns = epoch.elapsed().as_nanos() as u64;
                    tx_staging.push(TxPacket { buf, verdict, enqueued_ns, seq: *next_seq });
                    *next_seq += 1;
                }
                while !etx.push_burst(&mut tx_staging) {
                    waiter.wait();
                }
                waiter.reset();
                tx_popped.clear();
                etx.pop_burst(&mut tx_popped);
                for (k, tx) in tx_popped.drain(..).enumerate() {
                    assert_eq!(
                        tx.seq, *expected_seq,
                        "egress ring leaked, duplicated or reordered a packet"
                    );
                    *expected_seq += 1;
                    // Tail drops are counted inside the scheduler
                    // (`tx_queue_full`); the buffer recycles either way.
                    let _ = sched.stage(tx.verdict, tx.buf.wire_len(), tx.enqueued_ns);
                    feeds[staged_feeds[k]].2.push(tx.buf);
                }
                sched.transmit(epoch.elapsed().as_nanos() as u64);
            }
        }
    }
    // End-of-run residue drain, in virtual time: after this the egress
    // conservation identity is exact.
    if let Some((_, sched, ..)) = &mut tx_state {
        sched.flush();
    }
    let seconds = start.elapsed().as_secs_f64();

    SelfFedOutcome {
        report: ShardReport {
            processed: tally.processed,
            forwarded: tally.forwarded,
            dropped: tally.dropped,
            rx_backpressure_drops,
            stats: engine.stats(),
        },
        bits: tally.bits,
        seconds,
        egress: tx_state.map(|(_, sched, ..)| sched.stats()),
    }
}

/// Drives one [`run_self_fed_shard`] per plan, threaded or sequentially
/// per [`RuntimeConfig::exec`], and aggregates the outcomes.
fn run_multi_queue<D, F>(
    cfg: &RuntimeConfig,
    plans: Vec<Vec<(usize, u64)>>,
    make_engine: F,
    templates: &[Vec<u8>],
    now_ns: u64,
    egress: Option<EgressConfig>,
) -> RuntimeReport
where
    D: Datapath,
    F: Fn(usize) -> D + Sync,
{
    let shards = plans.len();
    let batch = cfg.batch_size.max(1);
    let cap = cfg.ring_capacity.max(1);
    let wait = cfg.wait;
    let bp = cfg.backpressure;
    // One clock for all egress stamps, started before any worker.
    let epoch = Instant::now();
    let threaded = match cfg.exec {
        ExecMode::Threaded => true,
        ExecMode::Sequential => false,
        ExecMode::Auto => {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) >= shards
        }
    };

    let outcomes: Vec<SelfFedOutcome> = if threaded && shards > 1 {
        let ready = Barrier::new(shards);
        std::thread::scope(|s| {
            let handles: Vec<_> = plans
                .iter()
                .enumerate()
                .map(|(i, plan)| {
                    let make_engine = &make_engine;
                    let ready = &ready;
                    s.spawn(move || {
                        let mut engine = make_engine(i);
                        ready.wait();
                        run_self_fed_shard(
                            &mut engine,
                            templates,
                            plan,
                            batch,
                            cap,
                            wait,
                            now_ns,
                            egress.map(|e| (e, bp, epoch)),
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("runtime worker panicked")).collect()
        })
    } else {
        plans
            .iter()
            .enumerate()
            .map(|(i, plan)| {
                let mut engine = make_engine(i);
                run_self_fed_shard(
                    &mut engine,
                    templates,
                    plan,
                    batch,
                    cap,
                    wait,
                    now_ns,
                    egress.map(|e| (e, bp, epoch)),
                )
            })
            .collect()
    };

    let seconds = outcomes.iter().fold(0.0f64, |m, o| m.max(o.seconds));
    let egress_total = egress.map(|_| {
        let mut total = EgressStats::default();
        for o in &outcomes {
            total.merge(&o.egress.expect("egress was enabled for every shard"));
        }
        total
    });
    RuntimeReport {
        packets: outcomes.iter().map(|o| o.report.processed).sum(),
        bits: outcomes.iter().map(|o| o.bits).sum(),
        seconds,
        rx_backpressure_drops: outcomes.iter().map(|o| o.report.rx_backpressure_drops).sum(),
        per_shard: outcomes.into_iter().map(|o| o.report).collect(),
        egress: egress_total,
    }
}

/// The legacy [`RxMode::SingleDispatcher`] rx-only run: the calling
/// thread becomes the dispatcher, classifying every packet through the
/// [`ShardMap`] and feeding per-shard rings in staged bursts; workers
/// drain, process, and return buffers through per-shard recycle rings.
///
/// Liveness: the dispatcher never hard-blocks on a recycle ring (it
/// polls), and workers never block returning buffers (a failed recycle
/// push keeps the burst in a local outbox and retries next iteration —
/// leftover buffers are simply dropped at shutdown, after their packets
/// were tallied), so the stop/drain handshake cannot deadlock.
fn run_single_dispatcher<D, F>(
    cfg: &RuntimeConfig,
    make_engine: F,
    templates: &[Vec<u8>],
    total_pkts: u64,
    now_ns: u64,
) -> RuntimeReport
where
    D: Datapath,
    F: Fn(usize) -> D + Sync,
{
    let shards = cfg.shards.max(1);
    let batch = cfg.batch_size.max(1);
    let cap = cfg.ring_capacity.max(1);
    let wait = cfg.wait;
    // Circulating buffers per shard. At least one full burst; recycle
    // rings are sized to hold every circulating buffer even as 1-packet
    // bursts, so returns always succeed in bounded time.
    let budget = cap.max(batch);
    let map = ShardMap::new(shards, cfg.policer_slots, cfg.steering);
    let rx: Vec<SpscRing<PacketBuf>> = (0..shards).map(|_| SpscRing::new(cap)).collect();
    let recycle: Vec<SpscRing<PacketBuf>> = (0..shards).map(|_| SpscRing::new(budget)).collect();
    let stop = AtomicBool::new(false);
    let ready = Barrier::new(shards + 1);

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..shards)
            .map(|i| {
                let make_engine = &make_engine;
                let (rx, recycle, stop, ready) = (&rx[i], &recycle[i], &stop, &ready);
                s.spawn(move || {
                    let mut engine = make_engine(i);
                    let mut tally = WorkerTally::default();
                    let mut burst: Vec<PacketBuf> = Vec::new();
                    let mut verdicts: Vec<Verdict> = Vec::new();
                    let mut outbox: Vec<PacketBuf> = Vec::new();
                    let mut waiter = Waiter::new(wait);
                    ready.wait();
                    loop {
                        // Return processed buffers opportunistically —
                        // never block: after stop the dispatcher no
                        // longer drains.
                        if !outbox.is_empty() {
                            recycle.push_burst(&mut outbox);
                        }
                        burst.clear();
                        if rx.pop_burst(&mut burst) == 0 {
                            if stop.load(Ordering::Acquire) && rx.is_empty() {
                                break;
                            }
                            waiter.wait();
                            continue;
                        }
                        waiter.reset();
                        verdicts.clear();
                        engine.process_batch(&mut burst, now_ns, &mut verdicts);
                        tally_burst(&mut tally, &burst, &verdicts);
                        outbox.append(&mut burst);
                    }
                    let report = ShardReport {
                        processed: tally.processed,
                        forwarded: tally.forwarded,
                        dropped: tally.dropped,
                        rx_backpressure_drops: 0,
                        stats: engine.stats(),
                    };
                    (report, tally.bits)
                })
            })
            .collect();

        // ---- Dispatcher (this thread): the model NIC + RSS stage. ----
        ready.wait();
        let start = Instant::now();
        let mut waiter = Waiter::new(wait);
        let mut sent = 0u64;
        let mut allocated = vec![0usize; shards];
        let mut staging: Vec<Vec<PacketBuf>> =
            (0..shards).map(|_| Vec::with_capacity(batch)).collect();
        let mut scratch: Vec<PacketBuf> = Vec::new();
        // Prime: allocate fresh buffers round-robin over the templates
        // until every shard is at its buffer budget (or the run is
        // smaller), flushing full bursts as they form.
        'prime: loop {
            let mut progress = false;
            for t in templates {
                if sent >= total_pkts {
                    break 'prime;
                }
                let dst = map.shard_of(t);
                if allocated[dst] < budget {
                    staging[dst].push(PacketBuf::new(t.clone()));
                    allocated[dst] += 1;
                    sent += 1;
                    progress = true;
                    if staging[dst].len() >= batch {
                        while !rx[dst].push_burst(&mut staging[dst]) {
                            waiter.wait();
                        }
                    }
                }
            }
            if !progress {
                break;
            }
        }
        for (dst, stage) in staging.iter_mut().enumerate() {
            while !rx[dst].push_burst(stage) {
                waiter.wait();
            }
        }
        waiter.reset();
        // Steady state: re-arm recycled buffers until the run is
        // dispatched. A buffer recycled by shard `s` steers back to `s`
        // — reset restores the header, so the flow hash (a function of
        // the pristine bytes) is stable — which makes steady-state
        // dispatch O(1) per packet, like a NIC re-arming an rx
        // descriptor; classification happened once at prime time.
        while sent < total_pkts {
            let mut progress = false;
            for s_idx in 0..shards {
                scratch.clear();
                while recycle[s_idx].pop_burst(&mut scratch) > 0 {
                    progress = true;
                    for mut buf in scratch.drain(..) {
                        if sent >= total_pkts {
                            continue; // surplus buffer retires
                        }
                        buf.reset();
                        debug_assert_eq!(
                            map.shard_of(buf.as_bytes()),
                            s_idx,
                            "flow hash must be reset-stable"
                        );
                        staging[s_idx].push(buf);
                        sent += 1;
                        if staging[s_idx].len() >= batch {
                            while !rx[s_idx].push_burst(&mut staging[s_idx]) {
                                waiter.wait();
                            }
                        }
                    }
                }
            }
            // Flush partial bursts every cycle: a shard whose whole
            // buffer budget is staged would otherwise starve.
            for s_idx in 0..shards {
                if !staging[s_idx].is_empty() {
                    while !rx[s_idx].push_burst(&mut staging[s_idx]) {
                        waiter.wait();
                    }
                }
            }
            if progress {
                waiter.reset();
            } else {
                waiter.wait();
            }
        }
        for (dst, stage) in staging.iter_mut().enumerate() {
            while !rx[dst].push_burst(stage) {
                waiter.wait();
            }
        }
        stop.store(true, Ordering::Release);
        let results: Vec<_> =
            handles.into_iter().map(|h| h.join().expect("runtime worker panicked")).collect();
        let seconds = start.elapsed().as_secs_f64();
        RuntimeReport {
            packets: results.iter().map(|(r, _)| r.processed).sum(),
            bits: results.iter().map(|(_, b)| *b).sum(),
            seconds,
            rx_backpressure_drops: 0,
            per_shard: results.into_iter().map(|(r, _)| r).collect(),
            egress: None,
        }
    })
}

/// The legacy [`RxMode::SingleDispatcher`] run with the tx path
/// enabled: workers push every processed packet — buffer, verdict,
/// enqueue stamp, per-shard sequence number — into per-shard egress
/// rings, and the dispatcher doubles as the tx scheduler, draining them
/// through the per-interface two-class [`TxScheduler`] before re-arming
/// the buffer onto the owning shard's rx ring. The per-shard sequence
/// numbers are asserted on the drain side: within a shard (and
/// therefore within a priority class of that shard) no packet is
/// leaked, duplicated or reordered on its way through the egress ring.
///
/// This mirrors [`run_single_dispatcher`] on purpose rather than
/// sharing it: the rings carry a different element type ([`TxPacket`]
/// vs bare [`PacketBuf`]) and the rx-only path is the *benchmarked*
/// configuration, which must not pay for per-packet `Instant` stamps it
/// doesn't use. A fix to the shared discipline — prime-phase
/// allocation, the stop/drain handshake, the wait policy — belongs in
/// both loops. Liveness: egress rings are sized for every circulating
/// buffer (pushes always succeed in bounded time) and the dispatcher
/// keeps draining until every packet has left through the tx path, so
/// the handshake cannot deadlock.
fn run_single_dispatcher_egress<D, F>(
    cfg: &RuntimeConfig,
    ecfg: &EgressConfig,
    make_engine: F,
    templates: &[Vec<u8>],
    total_pkts: u64,
    now_ns: u64,
) -> RuntimeReport
where
    D: Datapath,
    F: Fn(usize) -> D + Sync,
{
    let shards = cfg.shards.max(1);
    let batch = cfg.batch_size.max(1);
    let cap = cfg.ring_capacity.max(1);
    let wait = cfg.wait;
    let budget = cap.max(batch);
    let map = ShardMap::new(shards, cfg.policer_slots, cfg.steering);
    let rx: Vec<SpscRing<PacketBuf>> = (0..shards).map(|_| SpscRing::new(cap)).collect();
    // Sized for the whole buffer budget even as 1-packet bursts, so a
    // worker's egress push always finds room in bounded time.
    let etx: Vec<SpscRing<TxPacket>> = (0..shards).map(|_| SpscRing::new(budget)).collect();
    let stop = AtomicBool::new(false);
    let ready = Barrier::new(shards + 1);
    // One clock for enqueue stamps and the scheduler's `now`: every
    // residence time is a difference of offsets from this epoch.
    let epoch = Instant::now();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..shards)
            .map(|i| {
                let make_engine = &make_engine;
                let (rx, etx, stop, ready, epoch) = (&rx[i], &etx[i], &stop, &ready, &epoch);
                s.spawn(move || {
                    let mut engine = make_engine(i);
                    let mut tally = WorkerTally::default();
                    let mut burst: Vec<PacketBuf> = Vec::new();
                    let mut verdicts: Vec<Verdict> = Vec::new();
                    let mut tx_staging: Vec<TxPacket> = Vec::new();
                    let mut seq = 0u64;
                    let mut waiter = Waiter::new(wait);
                    ready.wait();
                    loop {
                        burst.clear();
                        if rx.pop_burst(&mut burst) == 0 {
                            if stop.load(Ordering::Acquire) && rx.is_empty() {
                                break;
                            }
                            waiter.wait();
                            continue;
                        }
                        waiter.reset();
                        verdicts.clear();
                        engine.process_batch(&mut burst, now_ns, &mut verdicts);
                        tally_burst(&mut tally, &burst, &verdicts);
                        for (buf, &verdict) in burst.drain(..).zip(verdicts.iter()) {
                            let enqueued_ns = epoch.elapsed().as_nanos() as u64;
                            tx_staging.push(TxPacket { buf, verdict, enqueued_ns, seq });
                            seq += 1;
                        }
                        while !etx.push_burst(&mut tx_staging) {
                            waiter.wait();
                        }
                    }
                    let report = ShardReport {
                        processed: tally.processed,
                        forwarded: tally.forwarded,
                        dropped: tally.dropped,
                        rx_backpressure_drops: 0,
                        stats: engine.stats(),
                    };
                    (report, tally.bits)
                })
            })
            .collect();

        // ---- Dispatcher + tx scheduler (this thread). ----
        ready.wait();
        let start = Instant::now();
        let mut waiter = Waiter::new(wait);
        let mut scheduler = TxScheduler::with_backpressure(ecfg, &cfg.backpressure);
        let mut sent = 0u64;
        let mut drained = 0u64;
        let mut expected_seq = vec![0u64; shards];
        let mut allocated = vec![0usize; shards];
        let mut staging: Vec<Vec<PacketBuf>> =
            (0..shards).map(|_| Vec::with_capacity(batch)).collect();
        let mut scratch: Vec<TxPacket> = Vec::new();
        // Prime: exactly like the rx-only run.
        'prime: loop {
            let mut progress = false;
            for t in templates {
                if sent >= total_pkts {
                    break 'prime;
                }
                let dst = map.shard_of(t);
                if allocated[dst] < budget {
                    staging[dst].push(PacketBuf::new(t.clone()));
                    allocated[dst] += 1;
                    sent += 1;
                    progress = true;
                    if staging[dst].len() >= batch {
                        while !rx[dst].push_burst(&mut staging[dst]) {
                            waiter.wait();
                        }
                    }
                }
            }
            if !progress {
                break;
            }
        }
        for (dst, stage) in staging.iter_mut().enumerate() {
            while !rx[dst].push_burst(stage) {
                waiter.wait();
            }
        }
        waiter.reset();
        // Steady state: every processed packet comes back through its
        // shard's egress ring, gets serialized by the scheduler, and its
        // buffer re-arms onto the same shard's rx ring until the run is
        // fully dispatched — then keeps draining until every packet has
        // left through the tx path.
        while drained < total_pkts {
            let mut progress = false;
            for s_idx in 0..shards {
                scratch.clear();
                while etx[s_idx].pop_burst(&mut scratch) > 0 {
                    progress = true;
                    for tx in scratch.drain(..) {
                        assert_eq!(
                            tx.seq, expected_seq[s_idx],
                            "egress ring of shard {s_idx} leaked, duplicated or reordered a packet"
                        );
                        expected_seq[s_idx] += 1;
                        // Tail drops land in the scheduler's own
                        // `tx_queue_full` counter; the packet is still
                        // drained (its buffer re-arms below).
                        let _ = scheduler.stage(tx.verdict, tx.buf.wire_len(), tx.enqueued_ns);
                        drained += 1;
                        if sent < total_pkts {
                            let mut buf = tx.buf;
                            buf.reset();
                            debug_assert_eq!(
                                map.shard_of(buf.as_bytes()),
                                s_idx,
                                "flow hash must be reset-stable"
                            );
                            staging[s_idx].push(buf);
                            sent += 1;
                            if staging[s_idx].len() >= batch {
                                while !rx[s_idx].push_burst(&mut staging[s_idx]) {
                                    waiter.wait();
                                }
                            }
                        }
                    }
                }
            }
            for s_idx in 0..shards {
                if !staging[s_idx].is_empty() {
                    while !rx[s_idx].push_burst(&mut staging[s_idx]) {
                        waiter.wait();
                    }
                }
            }
            scheduler.transmit(epoch.elapsed().as_nanos() as u64);
            if progress {
                waiter.reset();
            } else {
                waiter.wait();
            }
        }
        // Residue drain in virtual time: after this, the egress stats
        // conserve exactly (`forwarded + dropped + tx_queue_full` =
        // every packet staged).
        scheduler.flush();
        stop.store(true, Ordering::Release);
        let results: Vec<_> =
            handles.into_iter().map(|h| h.join().expect("runtime worker panicked")).collect();
        let seconds = start.elapsed().as_secs_f64();
        RuntimeReport {
            packets: results.iter().map(|(r, _)| r.processed).sum(),
            bits: results.iter().map(|(_, b)| *b).sum(),
            seconds,
            rx_backpressure_drops: 0,
            per_shard: results.into_iter().map(|(r, _)| r).collect(),
            egress: Some(scheduler.stats()),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beacon::{forge_path, BeaconHop};
    use crate::datapath::DatapathBuilder;
    use crate::router::RouterConfig;
    use crate::source::{SourceGenerator, SourceReservation};
    use hummingbird_crypto::{ResInfo, SecretValue};
    use hummingbird_wire::scion_mac::HopMacKey;
    use hummingbird_wire::IsdAs;

    const NOW_MS: u64 = 1_700_000_100_000;
    const NOW_NS: u64 = NOW_MS * 1_000_000;

    fn reserved_packet(res_id: u32) -> Vec<u8> {
        let hops =
            vec![BeaconHop { key: HopMacKey::new([0x10; 16]), cons_ingress: 0, cons_egress: 0 }];
        let path = forge_path(&hops, (NOW_MS / 1000) as u32 - 100, 0x1234);
        let mut generator = SourceGenerator::new(IsdAs::new(1, 0x10), IsdAs::new(2, 0x20), path);
        let res_info = ResInfo {
            ingress: 0,
            egress: 0,
            res_id,
            bw_encoded: 900,
            res_start: (NOW_MS / 1000) as u32 - 50,
            duration: 600,
        };
        let key = SecretValue::new([0x60; 16]).derive_key(&res_info);
        generator.attach_reservation(0, SourceReservation { res_info, key }).unwrap();
        generator.generate(&[0u8; 200], NOW_MS).unwrap()
    }

    fn hop_engine() -> Box<dyn Datapath + Send> {
        DatapathBuilder::new(SecretValue::new([0x60; 16]), HopMacKey::new([0x10; 16])).build_boxed()
    }

    #[test]
    fn facade_matches_single_engine_on_reserved_traffic() {
        let cfg = RouterConfig::default();
        let templates: Vec<Vec<u8>> =
            [1u32, 30_000, 60_000, 99_999].iter().map(|&r| reserved_packet(r)).collect();
        let mut single = hop_engine();
        let mut sharded = ShardedRouter::from_fn(4, cfg.policer_slots, |_| hop_engine());
        for t in &templates {
            let a = single.process(&mut t.clone(), NOW_NS);
            let b = sharded.process(&mut t.clone(), NOW_NS);
            assert_eq!(a, b);
            assert!(b.is_flyover(), "{b:?}");
        }
        assert_eq!(single.stats(), sharded.stats());
        // Traffic actually spread: more than one shard saw packets.
        let active = sharded.shard_stats().iter().filter(|s| s.processed > 0).count();
        assert!(active > 1, "expected ResID spread across shards");
    }

    #[test]
    fn facade_batch_preserves_verdict_order() {
        let cfg = RouterConfig::default();
        let templates: Vec<Vec<u8>> =
            [99_999u32, 1, 50_000, 1, 99_999].iter().map(|&r| reserved_packet(r)).collect();
        let mut single = hop_engine();
        let expected: Vec<Verdict> =
            templates.iter().map(|t| single.process(&mut t.clone(), NOW_NS)).collect();
        let mut sharded = ShardedRouter::from_fn(3, cfg.policer_slots, |_| hop_engine());
        let mut bufs: Vec<PacketBuf> =
            templates.iter().map(|t| PacketBuf::new(t.clone())).collect();
        let mut got = Vec::new();
        sharded.process_batch(&mut bufs, NOW_NS, &mut got);
        assert_eq!(got, expected);
        assert_eq!(sharded.stats().processed, templates.len() as u64);
    }

    #[test]
    fn threaded_runtime_processes_every_packet_in_both_modes() {
        let templates: Vec<Vec<u8>> =
            [5u32, 40_000, 77_000].iter().map(|&r| reserved_packet(r)).collect();
        for mode in [RuntimeMode::PerCoreClone, RuntimeMode::Sharded] {
            let mut cfg = RuntimeConfig::new(3);
            cfg.ring_capacity = 8;
            let report = run_to_completion(&cfg, mode, |_| hop_engine(), &templates, 1_000, NOW_NS);
            assert_eq!(report.packets, 1_000, "{mode:?}");
            assert_eq!(
                report.per_shard.iter().map(|r| r.processed).sum::<u64>(),
                1_000,
                "{mode:?}"
            );
            assert!(report.bits > 0 && report.seconds > 0.0, "{mode:?}");
            let forwarded: u64 = report.per_shard.iter().map(|r| r.forwarded).sum();
            assert_eq!(forwarded, 1_000, "valid reserved packets all forward ({mode:?})");
        }
    }

    #[test]
    fn single_dispatcher_mode_conserves_packets() {
        let templates: Vec<Vec<u8>> =
            [5u32, 40_000, 77_000].iter().map(|&r| reserved_packet(r)).collect();
        let mut cfg = RuntimeConfig::new(3);
        cfg.ring_capacity = 8;
        cfg.rx_mode = RxMode::SingleDispatcher;
        cfg.wait = WaitStrategy::YieldAfter(4);
        let report = run_to_completion(
            &cfg,
            RuntimeMode::Sharded,
            |_| hop_engine(),
            &templates,
            1_000,
            NOW_NS,
        );
        assert_eq!(report.packets, 1_000);
        let forwarded: u64 = report.per_shard.iter().map(|r| r.forwarded).sum();
        assert_eq!(forwarded, 1_000);
        // Tiny and zero-packet runs terminate cleanly too.
        for total in [3, 0] {
            let report = run_to_completion(
                &cfg,
                RuntimeMode::Sharded,
                |_| hop_engine(),
                &templates,
                total,
                NOW_NS,
            );
            assert_eq!(report.packets, total);
        }
    }

    #[test]
    fn sequential_exec_matches_threaded_results() {
        let templates: Vec<Vec<u8>> =
            [9u32, 55_000, 91_000].iter().map(|&r| reserved_packet(r)).collect();
        let mut threaded_cfg = RuntimeConfig::new(4);
        threaded_cfg.exec = ExecMode::Threaded;
        let mut sequential_cfg = threaded_cfg;
        sequential_cfg.exec = ExecMode::Sequential;
        let a = run_to_completion(
            &threaded_cfg,
            RuntimeMode::Sharded,
            |_| hop_engine(),
            &templates,
            600,
            NOW_NS,
        );
        let b = run_to_completion(
            &sequential_cfg,
            RuntimeMode::Sharded,
            |_| hop_engine(),
            &templates,
            600,
            NOW_NS,
        );
        assert_eq!(a.packets, b.packets);
        for (ra, rb) in a.per_shard.iter().zip(b.per_shard.iter()) {
            assert_eq!(ra.processed, rb.processed, "per-shard split is deterministic");
            assert_eq!(ra.stats, rb.stats);
        }
        // Auto resolves to one of the two and conserves as well.
        let mut auto_cfg = threaded_cfg;
        auto_cfg.exec = ExecMode::Auto;
        let c = run_to_completion(
            &auto_cfg,
            RuntimeMode::Sharded,
            |_| hop_engine(),
            &templates,
            600,
            NOW_NS,
        );
        assert_eq!(c.packets, 600);
    }

    #[test]
    fn wait_strategies_all_complete() {
        let templates = vec![reserved_packet(42), reserved_packet(88_000)];
        for wait in [WaitStrategy::BusyPoll, WaitStrategy::YieldAfter(0), WaitStrategy::Backoff] {
            for rx_mode in [RxMode::MultiQueue, RxMode::SingleDispatcher] {
                let mut cfg = RuntimeConfig::new(2);
                cfg.ring_capacity = 4;
                cfg.wait = wait;
                cfg.rx_mode = rx_mode;
                let report = run_to_completion(
                    &cfg,
                    RuntimeMode::Sharded,
                    |_| hop_engine(),
                    &templates,
                    200,
                    NOW_NS,
                );
                assert_eq!(report.packets, 200, "{wait:?}/{rx_mode:?}");
            }
        }
    }

    #[test]
    fn waiter_progresses_under_every_strategy() {
        for strategy in [WaitStrategy::BusyPoll, WaitStrategy::YieldAfter(2), WaitStrategy::Backoff]
        {
            let mut w = Waiter::new(strategy);
            for _ in 0..32 {
                w.wait();
            }
            w.reset();
            assert_eq!(w.misses, 0);
            w.wait();
        }
    }

    #[test]
    fn sharded_runtime_egress_reports_residence_times() {
        let templates: Vec<Vec<u8>> =
            [7u32, 33_000, 88_000].iter().map(|&r| reserved_packet(r)).collect();
        for rx_mode in [RxMode::MultiQueue, RxMode::SingleDispatcher] {
            let mut cfg = RuntimeConfig::new(3);
            cfg.ring_capacity = 8;
            cfg.egress = Some(EgressConfig::default());
            cfg.rx_mode = rx_mode;
            let report = run_to_completion(
                &cfg,
                RuntimeMode::Sharded,
                |_| hop_engine(),
                &templates,
                1_000,
                NOW_NS,
            );
            assert_eq!(report.packets, 1_000, "{rx_mode:?}");
            let e = report.egress.expect("tx path enabled");
            // Packet conservation through the tx path: everything
            // processed either serialized or was a verdict drop.
            assert_eq!(e.forwarded() + e.dropped, 1_000, "{rx_mode:?}");
            // Valid reserved traffic rides the priority class exclusively.
            assert_eq!(e.priority.pkts, 1_000, "{rx_mode:?}");
            assert_eq!(e.best_effort.pkts, 0, "{rx_mode:?}");
            assert!(e.priority.bytes > 0);
            assert!(e.priority.residence_ns_sum >= e.priority.pkts, "residence accrues");
            assert!(e.priority.residence_ns_max > 0);
            // Tiny and zero-packet runs drain the tx path cleanly too.
            let mut cfg2 = RuntimeConfig::new(2);
            cfg2.egress = Some(EgressConfig::default());
            cfg2.rx_mode = rx_mode;
            let report = run_to_completion(
                &cfg2,
                RuntimeMode::Sharded,
                |_| hop_engine(),
                &templates,
                3,
                NOW_NS,
            );
            assert_eq!(report.packets, 3);
            assert_eq!(report.egress.expect("enabled").forwarded(), 3);
            let report = run_to_completion(
                &cfg2,
                RuntimeMode::Sharded,
                |_| hop_engine(),
                &templates,
                0,
                NOW_NS,
            );
            assert_eq!(report.egress.expect("enabled").forwarded(), 0);
        }
    }

    #[test]
    fn sharded_runtime_handles_tiny_runs_and_single_shard() {
        let templates = vec![reserved_packet(42)];
        let cfg = RuntimeConfig::new(1);
        let report =
            run_to_completion(&cfg, RuntimeMode::Sharded, |_| hop_engine(), &templates, 3, NOW_NS);
        assert_eq!(report.packets, 3);
        // Zero-packet runs terminate cleanly too.
        let report =
            run_to_completion(&cfg, RuntimeMode::Sharded, |_| hop_engine(), &templates, 0, NOW_NS);
        assert_eq!(report.packets, 0);
    }

    #[test]
    fn clone_plans_split_evenly() {
        let plans = clone_plans(3, 4, 1_001);
        assert_eq!(plans.len(), 4);
        let total: u64 = plans.iter().flatten().map(|&(_, c)| c).sum();
        assert_eq!(total, 1_001);
        // Worker targets differ by at most one packet.
        let targets: Vec<u64> = plans.iter().map(|p| p.iter().map(|&(_, c)| c).sum()).collect();
        assert_eq!(targets.iter().max().unwrap() - targets.iter().min().unwrap(), 1);
    }
}
