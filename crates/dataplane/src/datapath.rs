//! The unified, batch-oriented packet-processing API every engine in this
//! workspace implements.
//!
//! # The `Datapath` trait
//!
//! Historically each engine exposed an ad-hoc entry point
//! (`BorderRouter::process`, `Gateway::send`, the baseline services), so
//! the testbed, the network simulator and every benchmark binary
//! hard-coded one engine. [`Datapath`] replaces all of them with one
//! zero-copy, batch-first interface:
//!
//! * [`Datapath::process`] — one packet, in place, no allocation;
//! * [`Datapath::process_batch`] — a burst of [`PacketBuf`]s, overridable
//!   so engines can amortize per-packet work (key derivation, prefetch)
//!   across the batch;
//! * [`Datapath::stats`] — the shared [`DatapathStats`] counters.
//!
//! The [`Verdict`]/[`DropReason`] vocabulary lives here (moved out of
//! `router`) so that routers, gateways and baseline engines all speak the
//! same language and any harness can drive any engine.
//!
//! # Migration note
//!
//! Pre-redesign code called inherent methods (`BorderRouter::process`).
//! Those inherent methods are gone: import the trait
//! (`use hummingbird_dataplane::Datapath;`) and call through it. Engines
//! are constructed either directly (`BorderRouter::new`) or through
//! [`DatapathBuilder`], which composes the pipeline stages explicitly.
//!
//! ```
//! use hummingbird_dataplane::{Datapath, DatapathBuilder, PacketBuf, Verdict};
//! use hummingbird_crypto::SecretValue;
//! use hummingbird_wire::scion_mac::HopMacKey;
//!
//! let mut router = DatapathBuilder::new(SecretValue::new([6; 16]), HopMacKey::new([1; 16]))
//!     .policing(100_000, 50_000_000)
//!     .duplicate_suppression(false)
//!     .build();
//! let mut junk = PacketBuf::new(vec![0u8; 64]);
//! let mut verdicts = Vec::new();
//! router.process_batch(std::slice::from_mut(&mut junk), 1_700_000_000_000_000_000, &mut verdicts);
//! assert!(matches!(verdicts[0], Verdict::Drop(_)));
//! ```

use crate::dup::DuplicateSuppressor;
use crate::router::{BorderRouter, RouterConfig};
use hummingbird_crypto::SecretValue;
use hummingbird_wire::scion_mac::HopMacKey;

/// Why a packet was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Header shorter than declared or structurally broken.
    Malformed,
    /// The current hop field has expired (Algorithm 4 line 2).
    ExpiredHopField,
    /// Hop-field MAC (or aggregate MAC) verification failed.
    BadMac,
    /// `PayloadLen + 4·HdrLen` overflowed (Eq. 7d).
    PktLenOverflow,
    /// Duplicate packet (only with duplicate suppression enabled).
    Duplicate,
    /// The path has already been fully traversed.
    PathConsumed,
    /// Packet timestamp outside the engine's per-packet validation
    /// window. Only engines with *strict* freshness emit this (the EPIC
    /// baseline, whose replay suppression covers exactly that window);
    /// Hummingbird demotes stale packets to best effort instead.
    Untimely,
    /// Tail-dropped at a full bounded tx queue. Engines never return
    /// this — it is the egress path's drop vocabulary: a forwarded
    /// verdict that arrives at a
    /// [`TxScheduler`](crate::runtime::TxScheduler) whose per-port class
    /// queue is at its [`BackpressureConfig`](crate::runtime::BackpressureConfig)
    /// bound is dropped under this reason and counted in
    /// [`EgressStats::tx_queue_full`](crate::runtime::EgressStats::tx_queue_full).
    TxQueueFull,
}

/// An engine's forwarding decision for one packet.
///
/// `Flyover` means "forward with reservation priority" for Hummingbird and
/// the Helia baseline; engines without a priority class (plain SCION,
/// DRKey-only source authentication) only ever return `BestEffort` or
/// `Drop`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Drop the packet.
    Drop(DropReason),
    /// Forward with reservation priority through `egress`.
    Flyover {
        /// Egress interface.
        egress: u16,
    },
    /// Forward best-effort through `egress`.
    BestEffort {
        /// Egress interface.
        egress: u16,
    },
}

impl Verdict {
    /// The egress interface, if the packet is forwarded.
    pub fn egress(&self) -> Option<u16> {
        match self {
            Verdict::Flyover { egress } | Verdict::BestEffort { egress } => Some(*egress),
            Verdict::Drop(_) => None,
        }
    }

    /// Whether the packet is forwarded with priority.
    pub fn is_flyover(&self) -> bool {
        matches!(self, Verdict::Flyover { .. })
    }

    /// Whether the packet is dropped.
    pub fn is_drop(&self) -> bool {
        matches!(self, Verdict::Drop(_))
    }
}

/// Shared per-engine counters.
///
/// Moved out of `router` (where it was `RouterStats`) so every
/// [`Datapath`] engine reports the same vocabulary; the old name remains
/// as a compatibility alias (`router::RouterStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DatapathStats {
    /// Packets processed.
    pub processed: u64,
    /// Packets forwarded with priority.
    pub flyover: u64,
    /// Packets forwarded best-effort.
    pub best_effort: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Flyover packets demoted by the policer (overuse).
    pub demoted_overuse: u64,
    /// Flyover packets demoted for staleness / inactive reservation.
    pub demoted_untimely: u64,
    /// Authentication-key cache hits (the reservation's expanded AES
    /// schedule was reused instead of recomputed). Zero for engines
    /// without a key cache.
    pub key_cache_hits: u64,
    /// Authentication-key cache misses (a full derivation + key
    /// expansion ran). Zero for engines without a key cache.
    pub key_cache_misses: u64,
}

impl DatapathStats {
    /// Records `verdict` into the counters (one packet processed).
    #[inline]
    pub fn record(&mut self, verdict: Verdict) {
        self.processed += 1;
        match verdict {
            Verdict::Drop(_) => self.dropped += 1,
            Verdict::Flyover { .. } => self.flyover += 1,
            Verdict::BestEffort { .. } => self.best_effort += 1,
        }
    }
}

/// A reusable owned packet buffer for the batch path.
///
/// Wraps serialized wire bytes and snapshots the header so the buffer can
/// be cheaply [`reset`](PacketBuf::reset) after an engine mutates it in
/// place (SegID chaining, CurrHF advance, MAC replacement) — the batch
/// loops measure engine work rather than packet construction.
///
/// (Migration note: this is the former `multicore::HotLoopPacket`,
/// promoted to the shared API because [`Datapath::process_batch`] operates
/// on slices of it.)
#[derive(Clone, Debug)]
pub struct PacketBuf {
    bytes: Vec<u8>,
    header_copy: Vec<u8>,
    header_len: usize,
}

impl PacketBuf {
    /// Wraps serialized packet bytes; the declared header is snapshotted
    /// for [`reset`](PacketBuf::reset).
    pub fn new(bytes: Vec<u8>) -> Self {
        // hdr_len is at byte 5, in 4-byte units.
        let header_len = if bytes.len() > 5 {
            (4 * usize::from(bytes[5])).min(bytes.len())
        } else {
            bytes.len()
        };
        let header_copy = bytes[..header_len].to_vec();
        PacketBuf { bytes, header_copy, header_len }
    }

    /// Read-only view of the packet bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable view of the packet bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Restores the pristine header snapshot.
    #[inline]
    pub fn reset(&mut self) {
        self.bytes[..self.header_len].copy_from_slice(&self.header_copy);
    }

    /// Wire length in bytes.
    pub fn wire_len(&self) -> usize {
        self.bytes.len()
    }

    /// Releases the underlying bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.bytes
    }
}

impl From<Vec<u8>> for PacketBuf {
    fn from(bytes: Vec<u8>) -> Self {
        PacketBuf::new(bytes)
    }
}

/// The unified packet-processing interface.
///
/// Implemented by [`BorderRouter`], [`crate::Gateway`] and the baseline
/// engines in `hummingbird-baselines` (`HeliaDatapath`, `DrKeyDatapath`,
/// `EpicDatapath`). Harnesses — the network simulator, the end-to-end
/// testbed, the multicore throughput rig, every benchmark binary — drive
/// engines exclusively through this trait, so any experiment can swap
/// engines with a flag.
///
/// # Example
///
/// Build a Hummingbird border router, stamp one reserved packet with the
/// matching key material, process it, and read the counters:
///
/// ```
/// use hummingbird_dataplane::{
///     forge_path, BeaconHop, Datapath, DatapathBuilder, SourceGenerator, SourceReservation,
/// };
/// use hummingbird_crypto::{ResInfo, SecretValue};
/// use hummingbird_wire::scion_mac::HopMacKey;
/// use hummingbird_wire::IsdAs;
///
/// let now_s = 1_700_000_000u64;
/// let (sv, hop_key) = (SecretValue::new([6; 16]), HopMacKey::new([1; 16]));
///
/// // The AS's border router, composed from the default pipeline stages.
/// let mut router = DatapathBuilder::new(sv.clone(), hop_key.clone()).build();
///
/// // A source holding a beaconed one-hop path and a reservation key.
/// let hops = [BeaconHop { key: hop_key, cons_ingress: 0, cons_egress: 0 }];
/// let mut source = SourceGenerator::new(
///     IsdAs::new(1, 0x10),
///     IsdAs::new(2, 0x20),
///     forge_path(&hops, now_s as u32 - 100, 0x7777),
/// );
/// let res_info = ResInfo {
///     ingress: 0,
///     egress: 0,
///     res_id: 7,
///     bw_encoded: 700,
///     res_start: now_s as u32 - 50,
///     duration: 600,
/// };
/// let key = sv.derive_key(&res_info); // granted on the control plane
/// source.attach_reservation(0, SourceReservation { res_info, key }).unwrap();
///
/// // One packet through the engine: verified and forwarded with priority.
/// let mut pkt = source.generate(&[0u8; 200], now_s * 1000).unwrap();
/// let verdict = router.process(&mut pkt, now_s * 1_000_000_000);
/// assert!(verdict.is_flyover());
///
/// let stats = router.stats();
/// assert_eq!((stats.processed, stats.flyover, stats.dropped), (1, 1, 0));
/// ```
pub trait Datapath {
    /// Processes one packet in place at time `now_ns` (Unix nanoseconds).
    ///
    /// The engine may mutate the header (Hummingbird routers chain the
    /// SegID, advance `CurrHF` and replace the aggregate MAC) but never
    /// reallocates: zero-copy, allocation-free on the hot path.
    fn process(&mut self, pkt: &mut [u8], now_ns: u64) -> Verdict;

    /// Processes a burst of packets, appending one verdict per packet (in
    /// order) to `out`.
    ///
    /// The default implementation is element-wise equivalent to calling
    /// [`process`](Datapath::process) sequentially — a property the
    /// repository's `prop_datapath` test enforces for every engine.
    /// Engines may override it to amortize per-packet work across the
    /// burst (e.g. batching reservation-key derivations), as long as the
    /// verdicts stay element-wise identical.
    fn process_batch(&mut self, pkts: &mut [PacketBuf], now_ns: u64, out: &mut Vec<Verdict>) {
        out.reserve(pkts.len());
        for pkt in pkts {
            out.push(self.process(pkt.bytes_mut(), now_ns));
        }
    }

    /// A short, stable engine identifier (used by benchmark output and the
    /// `--engine` flag plumbing).
    fn engine_name(&self) -> &'static str;

    /// Counter snapshot.
    fn stats(&self) -> DatapathStats {
        DatapathStats::default()
    }

    /// Resets the counters.
    fn reset_stats(&mut self) {}
}

impl<D: Datapath + ?Sized> Datapath for Box<D> {
    fn process(&mut self, pkt: &mut [u8], now_ns: u64) -> Verdict {
        (**self).process(pkt, now_ns)
    }
    fn process_batch(&mut self, pkts: &mut [PacketBuf], now_ns: u64, out: &mut Vec<Verdict>) {
        (**self).process_batch(pkts, now_ns, out)
    }
    fn engine_name(&self) -> &'static str {
        (**self).engine_name()
    }
    fn stats(&self) -> DatapathStats {
        (**self).stats()
    }
    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }
}

/// A best-effort pass-through engine: no parsing, no verification, no
/// policing — every packet is forwarded best-effort through egress 0.
///
/// Useful as the zero of the engine lattice: driving a harness (the
/// multicore rig, the worker-ring runtime, a figure binary) with
/// `--engine null` measures the harness's own overhead — ring hops,
/// batch bookkeeping, buffer resets — so every other engine's cost can
/// be read as "minus the null baseline". Stats are still tallied, so
/// sharded/batched drivers can verify packet conservation.
#[derive(Clone, Debug, Default)]
pub struct NullEngine {
    stats: DatapathStats,
}

impl NullEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        NullEngine::default()
    }
}

impl Datapath for NullEngine {
    fn process(&mut self, _pkt: &mut [u8], _now_ns: u64) -> Verdict {
        let verdict = Verdict::BestEffort { egress: 0 };
        self.stats.record(verdict);
        verdict
    }

    fn engine_name(&self) -> &'static str {
        "null"
    }

    fn stats(&self) -> DatapathStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = DatapathStats::default();
    }
}

/// Builds a [`BorderRouter`] by composing the pipeline stages explicitly.
///
/// The pipeline is fixed in order — parse → flyover MAC re-derivation →
/// freshness → hop-field MAC verify → (optional) duplicate suppression →
/// header mutation → policing (see [`crate::router::stages`]) — and each
/// stage's parameters are set here instead of through a bag-of-fields
/// config. `RouterConfig` remains available for bulk configuration via
/// [`DatapathBuilder::config`].
#[derive(Clone, Debug)]
pub struct DatapathBuilder {
    sv: SecretValue,
    hop_key: HopMacKey,
    cfg: RouterConfig,
}

impl DatapathBuilder {
    /// Starts a builder with the AS's data-plane secrets and default
    /// stage parameters.
    pub fn new(sv: SecretValue, hop_key: HopMacKey) -> Self {
        DatapathBuilder { sv, hop_key, cfg: RouterConfig::default() }
    }

    /// Bulk-applies a [`RouterConfig`].
    pub fn config(mut self, cfg: RouterConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Freshness stage: maximum packet age Δ in milliseconds.
    pub fn max_packet_age_ms(mut self, ms: u64) -> Self {
        self.cfg.max_packet_age_ms = ms;
        self
    }

    /// Freshness stage: maximum clock skew δ in milliseconds.
    pub fn max_clock_skew_ms(mut self, ms: u64) -> Self {
        self.cfg.max_clock_skew_ms = ms;
        self
    }

    /// Policing stage: ResID slot count and burst budget.
    pub fn policing(mut self, slots: u32, burst_ns: u64) -> Self {
        self.cfg.policer_slots = slots;
        self.cfg.burst_time_ns = burst_ns;
        self
    }

    /// Toggles the optional duplicate-suppression stage (§5.4).
    pub fn duplicate_suppression(mut self, enabled: bool) -> Self {
        self.cfg.duplicate_suppression = enabled;
        self
    }

    /// Key-derivation stage: capacity of the per-engine [`AuthKey`]
    /// cache (expanded `A_i` schedules reused across packets of one
    /// reservation). `0` disables the cache, re-deriving per packet —
    /// the configuration the cache-equivalence property tests compare
    /// against.
    ///
    /// [`AuthKey`]: hummingbird_crypto::AuthKey
    pub fn auth_key_cache(mut self, slots: u32) -> Self {
        self.cfg.auth_key_cache_slots = slots;
        self
    }

    /// The assembled configuration.
    pub fn router_config(&self) -> RouterConfig {
        self.cfg
    }

    /// Builds the router.
    pub fn build(self) -> BorderRouter {
        BorderRouter::new(self.sv, self.hop_key, self.cfg)
    }

    /// Builds the router type-erased, ready for heterogeneous engine
    /// collections (e.g. the simulator's nodes).
    pub fn build_boxed(self) -> Box<dyn Datapath + Send> {
        Box::new(self.build())
    }

    /// The duplicate-suppressor matching this configuration, if the stage
    /// is enabled (entries outlive the freshness window `Δ + 2δ`).
    ///
    /// Public so engines built *outside* this crate on the shared
    /// [`crate::router::stages`] (the Helia/DRKey/EPIC baselines) size
    /// their replay filters exactly like [`BorderRouter`] does.
    pub fn make_suppressor(cfg: &RouterConfig) -> Option<DuplicateSuppressor> {
        cfg.duplicate_suppression.then(|| {
            let window_ns = (cfg.max_packet_age_ms + 2 * cfg.max_clock_skew_ms) * 1_000_000;
            DuplicateSuppressor::new(window_ns, 1 << 20)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_buf_resets_header_only() {
        // hdr_len (byte 5) = 2 units = 8 bytes of header.
        let mut bytes = vec![0u8; 16];
        bytes[5] = 2;
        bytes[7] = 0xAA;
        bytes[12] = 0xBB; // payload byte
        let mut buf = PacketBuf::new(bytes);
        buf.bytes_mut()[7] = 0x11;
        buf.bytes_mut()[12] = 0x22;
        buf.reset();
        assert_eq!(buf.as_bytes()[7], 0xAA, "header restored");
        assert_eq!(buf.as_bytes()[12], 0x22, "payload untouched by reset");
        assert_eq!(buf.wire_len(), 16);
    }

    #[test]
    fn packet_buf_tolerates_tiny_buffers() {
        for n in 0..6 {
            let mut buf = PacketBuf::new(vec![0u8; n]);
            buf.reset();
            assert_eq!(buf.wire_len(), n);
        }
    }

    #[test]
    fn builder_composes_stage_parameters() {
        let b = DatapathBuilder::new(SecretValue::new([1; 16]), HopMacKey::new([2; 16]))
            .max_packet_age_ms(2_000)
            .max_clock_skew_ms(250)
            .policing(64, 10_000_000)
            .duplicate_suppression(true);
        let cfg = b.router_config();
        assert_eq!(cfg.max_packet_age_ms, 2_000);
        assert_eq!(cfg.max_clock_skew_ms, 250);
        assert_eq!(cfg.policer_slots, 64);
        assert_eq!(cfg.burst_time_ns, 10_000_000);
        assert!(cfg.duplicate_suppression);
        let router = b.build();
        assert_eq!(router.engine_name(), "hummingbird");
    }

    #[test]
    fn null_engine_forwards_everything_best_effort() {
        let mut null = NullEngine::new();
        let v = null.process(&mut [0u8; 8], 0);
        assert_eq!(v, Verdict::BestEffort { egress: 0 });
        let mut batch: Vec<PacketBuf> = (0..5).map(|_| PacketBuf::new(vec![0u8; 64])).collect();
        let mut out = Vec::new();
        null.process_batch(&mut batch, 0, &mut out);
        assert!(out.iter().all(|v| matches!(v, Verdict::BestEffort { egress: 0 })));
        assert_eq!(null.stats().processed, 6);
        assert_eq!(null.stats().best_effort, 6);
        null.reset_stats();
        assert_eq!(null.stats(), DatapathStats::default());
    }

    #[test]
    fn default_batch_is_sequential() {
        let mut router =
            DatapathBuilder::new(SecretValue::new([6; 16]), HopMacKey::new([1; 16])).build_boxed();
        let mut batch: Vec<PacketBuf> = (0..4).map(|i| PacketBuf::new(vec![i as u8; 32])).collect();
        let mut out = Vec::new();
        router.process_batch(&mut batch, 1, &mut out);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|v| v.is_drop()), "garbage never forwards");
        assert_eq!(router.stats().processed, 4);
    }
}
