//! Optional duplicate suppression (paper §5.4, Appendix A.1).
//!
//! Hummingbird deliberately does *not* require duplicate suppression — the
//! header's unique `(BaseTimestamp, MillisTimestamp, Counter)` triple merely
//! makes it possible for ASes that want it. This module implements it so
//! the netsim experiments can quantify what it buys against
//! on-reservation-set replay adversaries (the ablation DESIGN.md lists).
//!
//! Implementation: two-epoch rotating hash sets. Entries live at least one
//! full packet-validity window (`Δ + 2δ`) and at most two, using bounded
//! memory without per-entry timers.

use std::collections::HashSet;

/// A packet identity: `(BaseTimestamp, MillisTimestamp, Counter)` plus the
/// source-identifying flow information the AS chooses to scope by.
pub type PacketId = (u32, u16, u16, u64);

/// Two-epoch duplicate suppressor.
#[derive(Clone, Debug)]
pub struct DuplicateSuppressor {
    current: HashSet<PacketId>,
    previous: HashSet<PacketId>,
    epoch_len_ns: u64,
    epoch_start_ns: u64,
    /// Capacity cap per epoch; beyond it entries are dropped (fail-open:
    /// duplicates might pass, but memory stays bounded).
    max_entries: usize,
}

impl DuplicateSuppressor {
    /// Creates a suppressor whose entries survive at least `window_ns`.
    pub fn new(window_ns: u64, max_entries: usize) -> Self {
        DuplicateSuppressor {
            current: HashSet::new(),
            previous: HashSet::new(),
            epoch_len_ns: window_ns.max(1),
            epoch_start_ns: 0,
            max_entries,
        }
    }

    fn rotate_if_needed(&mut self, now_ns: u64) {
        if now_ns >= self.epoch_start_ns + self.epoch_len_ns {
            self.previous = std::mem::take(&mut self.current);
            // Skip forward over idle gaps.
            if now_ns >= self.epoch_start_ns + 2 * self.epoch_len_ns {
                self.previous.clear();
            }
            self.epoch_start_ns = now_ns - (now_ns % self.epoch_len_ns);
        }
    }

    /// Records `id`; returns `true` if it was seen before (a duplicate).
    pub fn check_and_insert(&mut self, id: PacketId, now_ns: u64) -> bool {
        self.rotate_if_needed(now_ns);
        if self.current.contains(&id) || self.previous.contains(&id) {
            return true;
        }
        if self.current.len() < self.max_entries {
            self.current.insert(id);
        }
        false
    }

    /// Number of tracked identities.
    pub fn len(&self) -> usize {
        self.current.len() + self.previous.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty() && self.previous.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn detects_duplicates_within_window() {
        let mut d = DuplicateSuppressor::new(1500 * MS, 1 << 16);
        let id = (100, 5, 1, 42);
        assert!(!d.check_and_insert(id, 0));
        assert!(d.check_and_insert(id, 700 * MS));
        assert!(d.check_and_insert(id, 1400 * MS));
    }

    #[test]
    fn distinct_counters_are_not_duplicates() {
        let mut d = DuplicateSuppressor::new(1500 * MS, 1 << 16);
        assert!(!d.check_and_insert((100, 5, 1, 42), 0));
        assert!(!d.check_and_insert((100, 5, 2, 42), 0));
        assert!(!d.check_and_insert((100, 6, 1, 42), 0));
    }

    #[test]
    fn entries_expire_after_two_epochs() {
        let mut d = DuplicateSuppressor::new(1000 * MS, 1 << 16);
        let id = (1, 1, 1, 1);
        assert!(!d.check_and_insert(id, 0));
        // Two full epochs later (and an idle gap), the entry is gone.
        assert!(!d.check_and_insert(id, 3500 * MS));
    }

    #[test]
    fn memory_is_bounded() {
        let mut d = DuplicateSuppressor::new(1000 * MS, 100);
        for i in 0..1000u16 {
            d.check_and_insert((0, 0, i, 0), 0);
        }
        assert!(d.len() <= 100);
    }

    #[test]
    fn idle_gap_clears_old_epochs() {
        let mut d = DuplicateSuppressor::new(1000 * MS, 1 << 16);
        d.check_and_insert((1, 0, 0, 0), 0);
        d.check_and_insert((2, 0, 0, 0), 100 * MS);
        assert_eq!(d.len(), 2);
        d.check_and_insert((3, 0, 0, 0), 10_000 * MS);
        assert!(d.len() <= 2);
    }
}
