//! The optional Hummingbird gateway (paper §5.4, Appendix B.3).
//!
//! Gateways are *not required* in Hummingbird — that is one of the paper's
//! headline simplifications over Colibri/Helia — but they remain useful
//! for scalability: a single entity (e.g. a corporate LAN operator) buys
//! one inter-domain reservation and multiplexes many internal hosts onto
//! it, keeping the authentication keys away from the hosts. This module
//! implements that aggregation: per-host admission, local rate limiting so
//! the *aggregate* stays within the reservation, and packet stamping on
//! behalf of hosts.

use crate::datapath::{Datapath, DatapathStats, DropReason, Verdict};
use crate::policing::{transmission_time_ns, DEFAULT_BURST_TIME_NS};
use crate::source::{GenError, SourceGenerator};
use hummingbird_wire::common::{AddressHeader, CommonHeader, COMMON_HDR_LEN};
use std::collections::HashMap;

/// Identifier of an internal host behind the gateway.
pub type HostId = u32;

/// Admission decision for one host packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GatewayVerdict {
    /// Stamped with reservation MACs; carries the wire bytes.
    Reserved(Vec<u8>),
    /// Host unknown or over its share: sent best-effort (no flyovers).
    BestEffort(Vec<u8>),
    /// Generation failed (e.g. reservation outside its window).
    Failed(GenError),
}

/// Per-host share configuration.
#[derive(Clone, Copy, Debug)]
pub struct HostShare {
    /// The host's slice of the aggregate reservation, kbps.
    pub rate_kbps: u64,
}

/// A gateway multiplexing hosts onto one reserved path.
///
/// Internally the gateway runs the same token-bucket discipline as the
/// on-path policers (Algorithm 1), both per host and for the aggregate,
/// so conforming hosts are never demoted *by the network*: the gateway
/// demotes locally first, which is strictly better for the hosts (the
/// demoted packet still rides best effort end-to-end).
pub struct Gateway {
    reserved: SourceGenerator,
    best_effort: SourceGenerator,
    aggregate_rate_kbps: u64,
    burst_ns: u64,
    aggregate_deadline: u64,
    hosts: HashMap<HostId, HostState>,
    stats: DatapathStats,
}

struct HostState {
    share: HostShare,
    deadline: u64,
}

/// Counters for gateway observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Packets stamped with reservation MACs.
    pub reserved: u64,
    /// Packets demoted to best effort (unknown host or over rate).
    pub best_effort: u64,
    /// Generation failures.
    pub failed: u64,
}

impl Gateway {
    /// Creates a gateway over a reserved generator (flyovers attached on
    /// the hops the operator bought) and a plain best-effort generator on
    /// the same path. `aggregate_rate_kbps` must not exceed the purchased
    /// reservation bandwidth.
    pub fn new(
        reserved: SourceGenerator,
        best_effort: SourceGenerator,
        aggregate_rate_kbps: u64,
    ) -> Self {
        Gateway {
            reserved,
            best_effort,
            aggregate_rate_kbps,
            burst_ns: DEFAULT_BURST_TIME_NS,
            aggregate_deadline: 0,
            hosts: HashMap::new(),
            stats: DatapathStats::default(),
        }
    }

    /// Registers (or updates) a host's share.
    pub fn admit_host(&mut self, host: HostId, share: HostShare) {
        self.hosts.insert(host, HostState { share, deadline: 0 });
    }

    /// Removes a host.
    pub fn evict_host(&mut self, host: HostId) {
        self.hosts.remove(&host);
    }

    /// Number of admitted hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// The admission decision shared by [`Gateway::send`] and the
    /// [`Datapath`] impl: both the host's share and the aggregate token
    /// bucket must admit `wire_len` bytes at `now_ns` (Algorithm 1 run
    /// twice, host first so an over-share host cannot drain the
    /// aggregate).
    pub fn admit(&mut self, host: HostId, wire_len: u16, now_ns: u64) -> bool {
        let eligible = match self.hosts.get_mut(&host) {
            None => false,
            Some(state) => {
                let ts = state.deadline.max(now_ns)
                    + transmission_time_ns(wire_len, state.share.rate_kbps);
                if ts <= now_ns + self.burst_ns {
                    state.deadline = ts;
                    true
                } else {
                    false
                }
            }
        };
        if !eligible {
            return false;
        }
        let ts = self.aggregate_deadline.max(now_ns)
            + transmission_time_ns(wire_len, self.aggregate_rate_kbps);
        if ts <= now_ns + self.burst_ns {
            self.aggregate_deadline = ts;
            true
        } else {
            false
        }
    }

    /// Processes one packet from `host` at `now_ns`, stamping it onto the
    /// reservation if both the host's share and the aggregate allow it.
    pub fn send(&mut self, host: HostId, payload: &[u8], now_ns: u64) -> GatewayVerdict {
        let now_ms = now_ns / 1_000_000;
        let wire_estimate = (payload.len() + 200).min(u16::MAX as usize) as u16;
        let aggregate_ok = self.admit(host, wire_estimate, now_ns);

        if aggregate_ok {
            match self.reserved.generate(payload, now_ms) {
                Ok(bytes) => GatewayVerdict::Reserved(bytes),
                Err(e) => GatewayVerdict::Failed(e),
            }
        } else {
            match self.best_effort.generate(payload, now_ms) {
                Ok(bytes) => GatewayVerdict::BestEffort(bytes),
                Err(e) => GatewayVerdict::Failed(e),
            }
        }
    }
}

/// The gateway as a [`Datapath`] engine: it processes *already serialized*
/// packets arriving from internal hosts on their way onto the reserved
/// uplink. The host is identified by the packet's source host address
/// (`AddressHeader::src_host`, big-endian `u32` = [`HostId`]); the verdict
/// classifies the packet onto the reservation ([`Verdict::Flyover`]) or
/// demotes it locally ([`Verdict::BestEffort`]) — in both cases through
/// egress interface 0, the gateway's single WAN uplink.
///
/// Unlike [`Gateway::send`] this path does not stamp flyover MACs (the
/// bytes pass through unmodified); it is the admission half of the
/// gateway, exposed uniformly so harnesses can sweep it alongside the
/// router engines.
impl Datapath for Gateway {
    fn process(&mut self, pkt: &mut [u8], now_ns: u64) -> Verdict {
        let verdict = (|| {
            if CommonHeader::parse(pkt).is_err() {
                return Verdict::Drop(DropReason::Malformed);
            }
            let Ok(addr) = AddressHeader::parse(&pkt[COMMON_HDR_LEN..]) else {
                return Verdict::Drop(DropReason::Malformed);
            };
            let host = HostId::from_be_bytes(addr.src_host);
            let known = self.hosts.contains_key(&host);
            let wire_len = pkt.len().min(usize::from(u16::MAX)) as u16;
            if known && self.admit(host, wire_len, now_ns) {
                Verdict::Flyover { egress: 0 }
            } else {
                if known {
                    self.stats.demoted_overuse += 1;
                }
                Verdict::BestEffort { egress: 0 }
            }
        })();
        self.stats.record(verdict);
        verdict
    }

    fn engine_name(&self) -> &'static str {
        "gateway"
    }

    fn stats(&self) -> DatapathStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = DatapathStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beacon::{forge_path, BeaconHop};
    use crate::source::SourceReservation;
    use hummingbird_crypto::{ResInfo, SecretValue};
    use hummingbird_wire::scion_mac::HopMacKey;
    use hummingbird_wire::IsdAs;

    const NOW_MS: u64 = 1_700_000_100_000;
    const NOW_NS: u64 = NOW_MS * 1_000_000;

    fn make_gateway(aggregate_kbps: u64) -> Gateway {
        let hops =
            vec![BeaconHop { key: HopMacKey::new([1u8; 16]), cons_ingress: 0, cons_egress: 0 }];
        let path = forge_path(&hops, (NOW_MS / 1000) as u32 - 10, 1);
        let src = IsdAs::new(1, 1);
        let dst = IsdAs::new(2, 2);
        let mut reserved = SourceGenerator::new(src, dst, path.clone());
        let sv = SecretValue::new([9u8; 16]);
        let res_info = ResInfo {
            ingress: 0,
            egress: 0,
            res_id: 1,
            bw_encoded: 1000,
            res_start: (NOW_MS / 1000) as u32 - 5,
            duration: 600,
        };
        let key = sv.derive_key(&res_info);
        reserved.attach_reservation(0, SourceReservation { res_info, key }).unwrap();
        let best_effort = SourceGenerator::new(src, dst, path);
        Gateway::new(reserved, best_effort, aggregate_kbps)
    }

    #[test]
    fn admitted_host_gets_reserved_packets() {
        let mut gw = make_gateway(10_000);
        gw.admit_host(1, HostShare { rate_kbps: 5_000 });
        match gw.send(1, &[0u8; 500], NOW_NS) {
            GatewayVerdict::Reserved(bytes) => {
                let pkt = hummingbird_wire::Packet::parse(&bytes).unwrap();
                assert!(pkt.path.hops[0].is_flyover());
            }
            other => panic!("expected reserved, got {other:?}"),
        }
    }

    #[test]
    fn unknown_host_is_best_effort() {
        let mut gw = make_gateway(10_000);
        match gw.send(99, &[0u8; 100], NOW_NS) {
            GatewayVerdict::BestEffort(bytes) => {
                let pkt = hummingbird_wire::Packet::parse(&bytes).unwrap();
                assert!(!pkt.path.hops[0].is_flyover());
            }
            other => panic!("expected best effort, got {other:?}"),
        }
    }

    #[test]
    fn host_share_is_enforced() {
        let mut gw = make_gateway(100_000);
        gw.admit_host(1, HostShare { rate_kbps: 240 }); // ~1 pkt per burst
        let mut reserved = 0;
        let mut demoted = 0;
        for _ in 0..10 {
            match gw.send(1, &[0u8; 1300], NOW_NS) {
                GatewayVerdict::Reserved(_) => reserved += 1,
                GatewayVerdict::BestEffort(_) => demoted += 1,
                GatewayVerdict::Failed(e) => panic!("{e}"),
            }
        }
        assert!(reserved >= 1);
        assert!(demoted >= 5, "over-share traffic demoted locally");
    }

    #[test]
    fn aggregate_cap_protects_the_reservation() {
        // Two hosts, each within its share, but shares oversubscribe the
        // aggregate: the gateway must hold the aggregate line.
        let mut gw = make_gateway(1_000);
        gw.admit_host(1, HostShare { rate_kbps: 1_000 });
        gw.admit_host(2, HostShare { rate_kbps: 1_000 });
        let mut reserved_bits = 0u64;
        for i in 0..40 {
            let host = 1 + (i % 2);
            if let GatewayVerdict::Reserved(b) = gw.send(host, &[0u8; 1000], NOW_NS) {
                reserved_bits += b.len() as u64 * 8;
            }
        }
        // At most BurstTime worth of aggregate-rate traffic instantly.
        assert!(reserved_bits <= 1_000 * 50 + 10_000, "aggregate exceeded: {reserved_bits}");
    }

    #[test]
    fn eviction_takes_effect() {
        let mut gw = make_gateway(10_000);
        gw.admit_host(1, HostShare { rate_kbps: 5_000 });
        assert!(matches!(gw.send(1, &[0u8; 100], NOW_NS), GatewayVerdict::Reserved(_)));
        gw.evict_host(1);
        assert!(matches!(gw.send(1, &[0u8; 100], NOW_NS), GatewayVerdict::BestEffort(_)));
        assert_eq!(gw.host_count(), 0);
    }

    #[test]
    fn budget_refills_over_time() {
        let mut gw = make_gateway(1_000);
        gw.admit_host(1, HostShare { rate_kbps: 1_000 });
        // Exhaust.
        while matches!(gw.send(1, &[0u8; 1000], NOW_NS), GatewayVerdict::Reserved(_)) {}
        // One second later the bucket has drained.
        assert!(matches!(
            gw.send(1, &[0u8; 1000], NOW_NS + 2_000_000_000),
            GatewayVerdict::Reserved(_)
        ));
    }
}
