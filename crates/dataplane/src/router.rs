//! The border-router packet pipeline (paper §4.3, Fig. 13, Algorithms 2-4).
//!
//! Processing operates in place on raw packet bytes, exactly like the DPDK
//! implementation the paper evaluates: parse the fixed headers, locate the
//! current hop field, recompute MACs, police, and mutate the header
//! (SegID chaining, CurrHF advance, AggMAC → HopFieldMAC replacement)
//! before forwarding. No allocation on the hot path.
//!
//! # Migration note
//!
//! The `Verdict`/`DropReason`/stats vocabulary moved to
//! [`crate::datapath`] (re-exported here for compatibility), and
//! `BorderRouter::process` is no longer an inherent method: the router is
//! driven through the [`Datapath`] trait
//! (`use hummingbird_dataplane::Datapath;`). The monolithic
//! `process_inner` was decomposed into the explicit, individually
//! testable [`stages`] the [`crate::DatapathBuilder`] documents; baseline
//! engines reuse the same stages with their own key-derivation rules.

use crate::datapath::{Datapath, DatapathBuilder, DatapathStats, PacketBuf};
use crate::dup::DuplicateSuppressor;
use crate::policing::{Policer, DEFAULT_BURST_TIME_NS};
use hummingbird_crypto::{
    flyover_tags_batch_with, AuthKey, AuthKeyCache, BurstKeyResolver, FlyoverMacInput, ResInfo,
    SecretValue, Tag,
};
use hummingbird_wire::scion_mac::HopMacKey;

pub use crate::datapath::{DropReason, Verdict};

/// Former name of [`DatapathStats`], kept for compatibility with
/// pre-`Datapath` call sites.
pub type RouterStats = DatapathStats;

/// Router configuration.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Maximum packet age Δ, milliseconds.
    pub max_packet_age_ms: u64,
    /// Maximum clock skew δ, milliseconds (paper: e.g. 500 ms).
    pub max_clock_skew_ms: u64,
    /// Policing array slots (ResIDmax; paper evaluation: 10⁵).
    pub policer_slots: u32,
    /// Burst budget, nanoseconds.
    pub burst_time_ns: u64,
    /// Enable the optional duplicate suppression stage.
    pub duplicate_suppression: bool,
    /// Capacity of the per-engine authentication-key cache (expanded
    /// `A_i` schedules reused across packets of one reservation);
    /// `0` disables caching and re-derives per packet.
    pub auth_key_cache_slots: u32,
}

/// Default [`RouterConfig::auth_key_cache_slots`]: comfortably above the
/// per-shard live-reservation working set of the evaluation workloads
/// while keeping the footprint (≈230 B per expanded key) under ~2 MB.
pub const DEFAULT_AUTH_KEY_CACHE_SLOTS: u32 = 8_192;

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_packet_age_ms: 1_000,
            max_clock_skew_ms: 500,
            policer_slots: 100_000,
            burst_time_ns: DEFAULT_BURST_TIME_NS,
            duplicate_suppression: false,
            auth_key_cache_slots: DEFAULT_AUTH_KEY_CACHE_SLOTS,
        }
    }
}

pub mod stages {
    //! The border-router pipeline as explicit, individually testable
    //! stages — the decomposition [`crate::DatapathBuilder`] composes:
    //!
    //! 1. [`parse`] — structural validation, header extraction, hop-field
    //!    location (Algorithm 2 prologue);
    //! 2. [`flyover_inputs`] + [`candidate_hop_mac`] — flyover MAC
    //!    re-derivation (Algorithm 3); the authentication key is a
    //!    parameter, so baseline engines (Helia/DRKey) reuse the stage
    //!    with their own key hierarchies;
    //! 3. [`freshness`] — the `now − absTS ∈ [−δ, Δ+δ]` and
    //!    reservation-activity checks (Algorithm 3 lines 12-17);
    //! 4. [`verify_hop_mac`] — hop-field expiry and SCION MAC
    //!    verification (Algorithm 4);
    //! 5. [`duplicate_check`] — the optional §5.4 stage;
    //! 6. [`advance`] — in-place header mutation: SegID chaining, AggMAC
    //!    replacement, CurrHF/CurrINF advance (App. A.7);
    //! 7. policing via [`crate::policing::Policer::check`] (Algorithm 1).

    use super::{DropReason, RouterConfig};
    use crate::dup::DuplicateSuppressor;
    use hummingbird_crypto::{aggregate_mac, AuthKey, FlyoverMacInput, ResInfo, Tag};
    use hummingbird_wire::common::{AddressHeader, CommonHeader, ADDR_HDR_LEN, COMMON_HDR_LEN};
    use hummingbird_wire::hopfield::{
        peek_flyover_bit, FlyoverHopField, HopField, InfoField, FLYOVER_FIELD_LEN, HOP_FIELD_LEN,
        INFO_FIELD_LEN,
    };
    use hummingbird_wire::meta::{PathMetaHdr, FLYOVER_UNITS, HF_UNITS, META_HDR_LEN};
    use hummingbird_wire::scion_mac::{update_seg_id, HopMacInput, HopMacKey};

    /// The current hop field, either kind.
    #[derive(Clone, Copy, Debug)]
    pub enum HopKind {
        /// A plain SCION hop field.
        Plain(HopField),
        /// A Hummingbird flyover hop field.
        Flyover(FlyoverHopField),
    }

    impl HopKind {
        /// Expiry byte of either kind.
        pub fn exp_time(&self) -> u8 {
            match self {
                HopKind::Plain(h) => h.exp_time,
                HopKind::Flyover(f) => f.exp_time,
            }
        }

        /// Construction-direction ingress interface.
        pub fn cons_ingress(&self) -> u16 {
            match self {
                HopKind::Plain(h) => h.cons_ingress,
                HopKind::Flyover(f) => f.cons_ingress,
            }
        }

        /// Construction-direction egress interface.
        pub fn cons_egress(&self) -> u16 {
            match self {
                HopKind::Plain(h) => h.cons_egress,
                HopKind::Flyover(f) => f.cons_egress,
            }
        }
    }

    /// Everything stage 1 learns about a packet.
    #[derive(Clone, Copy, Debug)]
    pub struct Parsed {
        /// Common header.
        pub common: CommonHeader,
        /// Address header.
        pub addr: AddressHeader,
        /// Path meta header.
        pub meta: PathMetaHdr,
        /// Info field governing the current hop.
        pub info: InfoField,
        /// Byte offset of that info field.
        pub info_off: usize,
        /// Byte offset of the current hop field.
        pub hop_off: usize,
        /// The current hop field.
        pub hop: HopKind,
    }

    impl Parsed {
        /// Whether the current hop field is a flyover.
        pub fn is_flyover(&self) -> bool {
            matches!(self.hop, HopKind::Flyover(_))
        }
    }

    /// Stage 1: structural validation and header extraction.
    pub fn parse(pkt: &[u8]) -> Result<Parsed, DropReason> {
        let Ok(common) = CommonHeader::parse(pkt) else {
            return Err(DropReason::Malformed);
        };
        let Ok(addr) = AddressHeader::parse(&pkt[COMMON_HDR_LEN..]) else {
            return Err(DropReason::Malformed);
        };
        let path_start = COMMON_HDR_LEN + ADDR_HDR_LEN;
        let Ok(meta) = PathMetaHdr::parse(&pkt[path_start..]) else {
            return Err(DropReason::Malformed);
        };
        let hdr_len_bytes = 4 * usize::from(common.hdr_len);
        if pkt.len() < hdr_len_bytes {
            return Err(DropReason::Malformed);
        }
        if u16::from(meta.curr_hf) >= meta.total_hf_units() {
            return Err(DropReason::PathConsumed);
        }
        let Ok((seg_idx, _)) = meta.segment_of_curr_hf() else {
            return Err(DropReason::Malformed);
        };
        let info_off = path_start + META_HDR_LEN + INFO_FIELD_LEN * seg_idx;
        // The declared segment layout may lie about the buffer length —
        // index with a checked slice (found by the router fuzz tests).
        let Some(info_bytes) = pkt.get(info_off..) else {
            return Err(DropReason::Malformed);
        };
        let Ok(info) = InfoField::parse(info_bytes) else {
            return Err(DropReason::Malformed);
        };
        let hop_off = path_start
            + META_HDR_LEN
            + INFO_FIELD_LEN * meta.num_inf()
            + 4 * usize::from(meta.curr_hf);
        if pkt.len() < hop_off + HOP_FIELD_LEN {
            return Err(DropReason::Malformed);
        }
        let Ok(is_flyover) = peek_flyover_bit(&pkt[hop_off..]) else {
            return Err(DropReason::Malformed);
        };
        let hop = if is_flyover {
            if pkt.len() < hop_off + FLYOVER_FIELD_LEN {
                return Err(DropReason::Malformed);
            }
            let Ok(fly) = FlyoverHopField::parse(&pkt[hop_off..]) else {
                return Err(DropReason::Malformed);
            };
            HopKind::Flyover(fly)
        } else {
            let Ok(hf) = HopField::parse(&pkt[hop_off..]) else {
                return Err(DropReason::Malformed);
            };
            HopKind::Plain(hf)
        };
        Ok(Parsed { common, addr, meta, info, info_off, hop_off, hop })
    }

    /// The key-independent inputs of the flyover MAC (stage 2).
    #[derive(Clone, Copy, Debug)]
    pub struct FlyoverInputs {
        /// Reconstructed reservation parameters (Algorithm 3 line 2).
        pub res_info: ResInfo,
        /// The per-packet MAC input (Eq. 3 / 7a-7d).
        pub mac_input: FlyoverMacInput,
        /// Authenticated packet length.
        pub pkt_len: u16,
        /// The packet's aggregate MAC field.
        pub agg_mac: Tag,
    }

    /// Stage 2a: reconstructs the reservation and MAC inputs of a flyover
    /// hop field. Key derivation is left to the caller — Hummingbird
    /// derives `A_i = PRF_SV(ResInfo)`, the baseline engines substitute
    /// their own hierarchies over the same inputs.
    pub fn flyover_inputs(parsed: &Parsed) -> Result<FlyoverInputs, DropReason> {
        let HopKind::Flyover(fly) = parsed.hop else {
            return Err(DropReason::Malformed);
        };
        // ResStart ← BaseTimestamp − ResStartOffset (Algo 3 line 2).
        let res_start = parsed.meta.base_ts.wrapping_sub(u32::from(fly.res_start_offset));
        let res_info = ResInfo {
            ingress: fly.cons_ingress,
            egress: fly.cons_egress,
            res_id: fly.res_id,
            bw_encoded: fly.bw,
            res_start,
            duration: fly.res_duration,
        };
        // PktLen with overflow check (Eq. 7d).
        let Ok(pkt_len) = parsed.common.pkt_len() else {
            return Err(DropReason::PktLenOverflow);
        };
        let mac_input = FlyoverMacInput {
            dst_isd: parsed.addr.dst.isd,
            dst_as: parsed.addr.dst.asn,
            pkt_len,
            res_start_offset: fly.res_start_offset,
            millis_ts: parsed.meta.millis_ts,
            counter: parsed.meta.counter,
        };
        Ok(FlyoverInputs { res_info, mac_input, pkt_len, agg_mac: fly.agg_mac })
    }

    /// Stage 2b: the candidate hop-field MAC of a flyover packet
    /// (Algorithm 3 line 11): `AggMAC ⊕ MAC_{A_i}(...)`.
    pub fn candidate_hop_mac(auth_key: &AuthKey, inputs: &FlyoverInputs) -> Tag {
        let flyover_mac = auth_key.flyover_mac(&inputs.mac_input);
        aggregate_mac(&flyover_mac, &inputs.agg_mac)
    }

    /// Stage 3: freshness and reservation-activity (Algorithm 3 lines
    /// 12-17): the packet is eligible for priority iff
    /// `now − absTS ∈ [−δ, Δ+δ]` and the reservation is active (no skew on
    /// activity, App. A.7).
    pub fn freshness(cfg: &RouterConfig, parsed: &Parsed, res_info: &ResInfo, now_ms: u64) -> bool {
        let abs_ts_ms = parsed.meta.abs_ts_millis();
        let delta = cfg.max_packet_age_ms;
        let skew = cfg.max_clock_skew_ms;
        let timely = now_ms + skew >= abs_ts_ms && abs_ts_ms + delta + skew >= now_ms;
        let active = res_info.is_active_at((now_ms / 1000) as u32);
        timely && active
    }

    /// Stage 4: hop-field expiry and SCION MAC verification (Algorithm 4).
    /// On success returns the recomputed hop-field MAC (needed by
    /// [`advance`] for SegID chaining and AggMAC replacement).
    pub fn verify_hop_mac(
        hop_key: &HopMacKey,
        parsed: &Parsed,
        candidate_mac: &Tag,
        now_s: u64,
    ) -> Result<Tag, DropReason> {
        let expiry = crate::beacon::hop_field_expiry(parsed.info.timestamp, parsed.hop.exp_time());
        if now_s >= expiry {
            return Err(DropReason::ExpiredHopField);
        }
        let computed = hop_key.hop_mac(&HopMacInput {
            seg_id: parsed.info.seg_id,
            timestamp: parsed.info.timestamp,
            exp_time: parsed.hop.exp_time(),
            cons_ingress: parsed.hop.cons_ingress(),
            cons_egress: parsed.hop.cons_egress(),
        });
        if computed != *candidate_mac {
            return Err(DropReason::BadMac);
        }
        Ok(computed)
    }

    /// Stage 5 (optional, §5.4): duplicate suppression. Runs *after*
    /// authentication so attackers cannot poison the filter with
    /// unauthenticated junk.
    pub fn duplicate_check(
        dup: &mut DuplicateSuppressor,
        parsed: &Parsed,
        now_ns: u64,
    ) -> Result<(), DropReason> {
        let id =
            (parsed.meta.base_ts, parsed.meta.millis_ts, parsed.meta.counter, parsed.addr.src.asn);
        if dup.check_and_insert(id, now_ns) {
            return Err(DropReason::Duplicate);
        }
        Ok(())
    }

    /// Stage 6: in-place header mutation — SegID chaining, AggMAC →
    /// HopFieldMAC replacement for path reversal (App. A.7), and
    /// CurrHF/CurrINF advance.
    ///
    /// Checked like [`parse`]: a buffer shorter than the offsets recorded
    /// in `parsed` (possible only if the two come from different buffers)
    /// is `Malformed`, never a panic.
    pub fn advance(pkt: &mut [u8], parsed: &Parsed, computed: &Tag) -> Result<(), DropReason> {
        let new_seg_id = update_seg_id(parsed.info.seg_id, computed);
        pkt.get_mut(parsed.info_off + 2..parsed.info_off + 4)
            .ok_or(DropReason::Malformed)?
            .copy_from_slice(&new_seg_id.to_be_bytes());
        if parsed.is_flyover() {
            pkt.get_mut(parsed.hop_off + 6..parsed.hop_off + 12)
                .ok_or(DropReason::Malformed)?
                .copy_from_slice(computed);
        }
        let hop_units = if parsed.is_flyover() { FLYOVER_UNITS } else { HF_UNITS };
        let mut new_meta = parsed.meta;
        new_meta.curr_hf = parsed.meta.curr_hf + hop_units;
        if u16::from(new_meta.curr_hf) < new_meta.total_hf_units() {
            if let Ok((seg, _)) = new_meta.segment_of_curr_hf() {
                new_meta.curr_inf = seg as u8;
            }
        }
        let path_start = COMMON_HDR_LEN + ADDR_HDR_LEN;
        let meta_buf = pkt.get_mut(path_start..).ok_or(DropReason::Malformed)?;
        if new_meta.emit(meta_buf).is_err() {
            return Err(DropReason::Malformed);
        }
        Ok(())
    }

    /// Outcome of [`run_pipeline`]: the verdict plus which demotion (if
    /// any) produced it, so each engine keeps its own counters.
    #[derive(Clone, Copy, Debug)]
    pub struct PipelineOutcome {
        /// The forwarding decision.
        pub verdict: super::Verdict,
        /// A policing demotion (Algorithm 1) produced the verdict.
        pub demoted_overuse: bool,
        /// A freshness/eligibility demotion produced the verdict.
        pub demoted_untimely: bool,
    }

    /// Stages 1-2a as one read-only unit: structural parsing plus, for
    /// flyover hops, reconstruction of the key-derivation and MAC inputs.
    ///
    /// This is the half of the pipeline that needs no authentication key,
    /// so batch paths run it over a whole burst first, derive every
    /// burst key in one AES sweep, and then drive [`complete`] per
    /// packet. `Ok((parsed, None))` means a plain SCION hop.
    pub fn prepare(pkt: &[u8]) -> Result<(Parsed, Option<FlyoverInputs>), DropReason> {
        let parsed = parse(pkt)?;
        let inputs = if parsed.is_flyover() { Some(flyover_inputs(&parsed)?) } else { None };
        Ok((parsed, inputs))
    }

    /// Stages 2b-7, given [`prepare`]d state and a pre-derived
    /// authentication key: candidate-MAC aggregation, eligibility,
    /// hop-field verification, optional duplicate suppression, in-place
    /// header mutation, and policing.
    ///
    /// `flyover` pairs the prepared MAC inputs with the hop's
    /// authenticator and must be `Some` exactly when [`prepare`] returned
    /// flyover inputs; `eligible` decides priority-class eligibility
    /// (called with `now_ms`; constant `false` for engines without a
    /// priority class).
    #[allow(clippy::too_many_arguments)] // the pipeline's full stage set
    pub fn complete(
        pkt: &mut [u8],
        now_ns: u64,
        hop_key: &HopMacKey,
        policer: Option<&mut crate::policing::Policer>,
        dup: Option<&mut DuplicateSuppressor>,
        parsed: &Parsed,
        flyover: Option<(&FlyoverInputs, &AuthKey)>,
        eligible: impl FnOnce(&Parsed, &FlyoverInputs, u64) -> bool,
    ) -> PipelineOutcome {
        let tagged = flyover.map(|(inputs, key)| (inputs, key.flyover_mac(&inputs.mac_input)));
        complete_with_tag(pkt, now_ns, hop_key, policer, dup, parsed, tagged, eligible)
    }

    /// [`complete`] with the per-packet flyover MAC already computed —
    /// the entry point of the batched tag sweep, where a burst's `V_K`
    /// tags come out of one multi-block AES pass
    /// (`hummingbird_crypto::flyover_tags_batch`) instead of one
    /// invocation per packet. `flyover` pairs the prepared MAC inputs
    /// with that tag; semantics are otherwise identical to [`complete`].
    #[allow(clippy::too_many_arguments)] // the pipeline's full stage set
    pub fn complete_with_tag(
        pkt: &mut [u8],
        now_ns: u64,
        hop_key: &HopMacKey,
        policer: Option<&mut crate::policing::Policer>,
        dup: Option<&mut DuplicateSuppressor>,
        parsed: &Parsed,
        flyover: Option<(&FlyoverInputs, Tag)>,
        eligible: impl FnOnce(&Parsed, &FlyoverInputs, u64) -> bool,
    ) -> PipelineOutcome {
        use super::Verdict;
        let now_ms = now_ns / 1_000_000;
        let now_s = now_ms / 1000;
        let drop = |r: DropReason| PipelineOutcome {
            verdict: Verdict::Drop(r),
            demoted_overuse: false,
            demoted_untimely: false,
        };

        // Stages 2b-3: flyover MAC aggregation + eligibility.
        let (candidate_mac, priority) = match flyover {
            Some((inputs, flyover_mac)) => {
                let candidate = aggregate_mac(&flyover_mac, &inputs.agg_mac);
                let fresh = eligible(parsed, inputs, now_ms);
                (candidate, fresh.then_some(inputs))
            }
            None => {
                // A flyover hop without its derived key breaks the
                // prepare/complete contract; fail closed rather than
                // panic on packet content.
                let HopKind::Plain(hf) = parsed.hop else {
                    debug_assert!(false, "flyover hop completed without its auth key");
                    return drop(DropReason::Malformed);
                };
                (hf.mac, None)
            }
        };

        // Stage 4: hop-field expiry + SCION MAC verification.
        let computed = match verify_hop_mac(hop_key, parsed, &candidate_mac, now_s) {
            Ok(tag) => tag,
            Err(r) => return drop(r),
        };

        // Stage 5 (optional): duplicate suppression.
        if let Some(dup) = dup {
            if let Err(r) = duplicate_check(dup, parsed, now_ns) {
                return drop(r);
            }
        }

        // Stage 6: in-place header mutation.
        if let Err(r) = advance(pkt, parsed, &computed) {
            return drop(r);
        }

        // Stage 7: bandwidth monitoring (Algorithm 1).
        let egress = parsed.hop.cons_egress();
        match priority {
            Some(inputs) => {
                let admitted = match policer {
                    Some(policer) => {
                        let bw_kbps = hummingbird_wire::bwcls::decode(inputs.res_info.bw_encoded);
                        policer.check(inputs.res_info.res_id, bw_kbps, inputs.pkt_len, now_ns)
                            == crate::policing::FwdClass::Flyover
                    }
                    None => true,
                };
                if admitted {
                    PipelineOutcome {
                        verdict: Verdict::Flyover { egress },
                        demoted_overuse: false,
                        demoted_untimely: false,
                    }
                } else {
                    PipelineOutcome {
                        verdict: Verdict::BestEffort { egress },
                        demoted_overuse: true,
                        demoted_untimely: false,
                    }
                }
            }
            None => PipelineOutcome {
                verdict: Verdict::BestEffort { egress },
                demoted_overuse: false,
                demoted_untimely: parsed.is_flyover(),
            },
        }
    }

    /// The full stage driver shared by every engine built on this
    /// pipeline (`BorderRouter` and the Helia/DRKey baselines): stages
    /// 1-7 in order — [`prepare`], per-packet key derivation, then
    /// [`complete`] — with the two engine-specific points —
    /// authentication key derivation and priority eligibility — as
    /// closures.
    ///
    /// `derive_key` maps a flyover hop to its authenticator (`A_i =
    /// PRF_SV(ResInfo)` for Hummingbird, DRKey hierarchies for the
    /// baselines); `eligible` decides priority-class eligibility (called
    /// with `now_ms`; return `false` unconditionally for engines without
    /// a priority class). `policer`/`dup` toggle the optional stages.
    pub fn run_pipeline(
        pkt: &mut [u8],
        now_ns: u64,
        hop_key: &HopMacKey,
        policer: Option<&mut crate::policing::Policer>,
        dup: Option<&mut DuplicateSuppressor>,
        derive_key: impl FnOnce(&Parsed, &FlyoverInputs) -> AuthKey,
        eligible: impl FnOnce(&Parsed, &FlyoverInputs, u64) -> bool,
    ) -> PipelineOutcome {
        let (parsed, inputs) = match prepare(pkt) {
            Ok(prep) => prep,
            Err(r) => {
                return PipelineOutcome {
                    verdict: super::Verdict::Drop(r),
                    demoted_overuse: false,
                    demoted_untimely: false,
                }
            }
        };
        let auth_key = inputs.as_ref().map(|i| derive_key(&parsed, i));
        let flyover = inputs.as_ref().zip(auth_key.as_ref());
        complete(pkt, now_ns, hop_key, policer, dup, &parsed, flyover, eligible)
    }
}

/// Reusable per-burst scratch of the batched
/// [`Datapath::process_batch`] override, so steady-state bursts allocate
/// nothing once the vectors reach burst size.
#[derive(Default)]
struct BatchScratch {
    /// Per-packet outcome of the read-only pipeline half.
    prepared: Vec<Result<(stages::Parsed, Option<stages::FlyoverInputs>), DropReason>>,
    /// Burst reservation dedupe + cache resolution (shared helper).
    resolver: BurstKeyResolver<ResInfo>,
    /// Reservations that missed the cache, awaiting the derivation sweep.
    to_derive: Vec<ResInfo>,
    /// Per flyover packet: the MAC input of the tag sweep.
    mac_inputs: Vec<FlyoverMacInput>,
    /// 16-byte block scratch shared by both AES sweeps.
    blocks: Vec<[u8; 16]>,
    /// Keys out of the derivation sweep.
    derived: Vec<AuthKey>,
    /// Flyover tags out of the tag sweep, in flyover-packet order.
    tags: Vec<Tag>,
}

/// A Hummingbird-enabled border router of one AS.
///
/// Constructed directly or through [`crate::DatapathBuilder`]; driven
/// through the [`Datapath`] trait.
pub struct BorderRouter {
    sv: SecretValue,
    hop_key: HopMacKey,
    cfg: RouterConfig,
    policer: Policer,
    dup: Option<DuplicateSuppressor>,
    /// Expanded `A_i` schedules, one entry per live reservation, so key
    /// expansion runs once per epoch rather than once per packet
    /// (`None` when `cfg.auth_key_cache_slots == 0`).
    key_cache: Option<AuthKeyCache>,
    stats: DatapathStats,
    batch: BatchScratch,
}

impl BorderRouter {
    /// Creates a router with the AS's data-plane secrets.
    pub fn new(sv: SecretValue, hop_key: HopMacKey, cfg: RouterConfig) -> Self {
        BorderRouter {
            sv,
            hop_key,
            policer: Policer::new(cfg.policer_slots, cfg.burst_time_ns),
            dup: DatapathBuilder::make_suppressor(&cfg),
            key_cache: (cfg.auth_key_cache_slots > 0)
                .then(|| AuthKeyCache::new(cfg.auth_key_cache_slots as usize)),
            cfg,
            stats: DatapathStats::default(),
            batch: BatchScratch::default(),
        }
    }

    /// The router's configuration.
    pub fn config(&self) -> RouterConfig {
        self.cfg
    }

    /// Implements Algorithm 2 with Algorithms 1, 3, 4 as the explicit
    /// [`stages`], via the shared [`stages::run_pipeline`] driver with
    /// Hummingbird's key derivation: `A_i ← PRF_SV(ResInfo)`, served
    /// from the per-engine [`AuthKeyCache`] so the AES key extension
    /// runs once per reservation epoch.
    fn process_inner(&mut self, pkt: &mut [u8], now_ns: u64) -> Verdict {
        let BorderRouter { sv, hop_key, cfg, policer, dup, key_cache, stats, batch: _ } = self;
        let out = stages::run_pipeline(
            pkt,
            now_ns,
            hop_key,
            Some(policer),
            dup.as_mut(),
            |_, inputs| match key_cache {
                Some(cache) => cache
                    .get_or_derive(&inputs.res_info, || sv.derive_key(&inputs.res_info))
                    .clone(),
                None => sv.derive_key(&inputs.res_info),
            },
            |parsed, inputs, now_ms| stages::freshness(cfg, parsed, &inputs.res_info, now_ms),
        );
        stats.demoted_overuse += u64::from(out.demoted_overuse);
        stats.demoted_untimely += u64::from(out.demoted_untimely);
        out.verdict
    }
}

impl Datapath for BorderRouter {
    fn process(&mut self, pkt: &mut [u8], now_ns: u64) -> Verdict {
        let verdict = self.process_inner(pkt, now_ns);
        self.stats.record(verdict);
        verdict
    }

    /// The batched Algorithm 2: the read-only pipeline half runs over the
    /// whole burst first; the burst's reservations are **deduplicated**
    /// and resolved against the [`AuthKeyCache`] (so a single-flow burst
    /// derives its key at most once); the remaining misses are derived in
    /// **one AES sweep** ([`SecretValue::derive_keys_batch`]); every
    /// flyover tag of the burst comes out of **one multi-key AES pass**
    /// ([`flyover_tags_batch_with`]); and the (deduplicated) policer
    /// slots are pre-touched. The stateful stages (verification,
    /// duplicate suppression, header mutation, policing) then run per
    /// packet in input order — verdicts and stats stay element-wise
    /// identical to sequential [`Datapath::process`] calls (the contract
    /// `tests/prop_datapath.rs` enforces; repeats within a burst count
    /// as cache hits, exactly as they would sequentially — see
    /// [`AuthKeyCache::record_burst_hit`] for the cache-counter
    /// semantics: when a cache-generation boundary falls inside a burst,
    /// the *counters* (never the verdicts) can read slightly differently
    /// from sequential processing).
    fn process_batch(&mut self, pkts: &mut [PacketBuf], now_ns: u64, out: &mut Vec<Verdict>) {
        let BorderRouter { sv, hop_key, cfg, policer, dup, key_cache, stats, batch } = self;
        let BatchScratch { prepared, resolver, to_derive, mac_inputs, blocks, derived, tags } =
            batch;
        prepared.clear();
        resolver.begin();
        to_derive.clear();
        mac_inputs.clear();
        derived.clear();
        tags.clear();

        // Pass 1 (read-only): parse + flyover-input reconstruction, with
        // burst-local reservation dedupe resolved against the key cache.
        for pkt in pkts.iter() {
            let prep = stages::prepare(pkt.as_bytes());
            if let Ok((_, Some(inputs))) = &prep {
                resolver.visit(inputs.res_info, key_cache.as_mut());
                mac_inputs.push(inputs.mac_input);
            }
            prepared.push(prep);
        }

        // The amortized per-burst work: one AES sweep over the key
        // derivations that missed the cache, one multi-key AES pass over
        // every flyover tag, and a prefetch pass over the deduplicated
        // policing slots.
        to_derive.extend(resolver.pending().copied());
        sv.derive_keys_batch(to_derive, blocks, derived);
        resolver.fill_pending(derived.drain(..), key_cache.as_mut());
        for info in resolver.uniq_ids() {
            policer.pre_touch(info.res_id);
        }
        flyover_tags_batch_with(|i| resolver.key_of(i), mac_inputs, blocks, tags);

        // Pass 2 (stateful, in input order).
        out.reserve(pkts.len());
        let mut next_tag = tags.iter();
        for (pkt, prep) in pkts.iter_mut().zip(prepared.drain(..)) {
            let verdict = match prep {
                Err(r) => Verdict::Drop(r),
                Ok((parsed, inputs)) => {
                    let flyover = inputs
                        .as_ref()
                        .map(|i| (i, *next_tag.next().expect("one tag per flyover hop")));
                    let outcome = stages::complete_with_tag(
                        pkt.bytes_mut(),
                        now_ns,
                        hop_key,
                        Some(&mut *policer),
                        dup.as_mut(),
                        &parsed,
                        flyover,
                        |parsed, inputs, now_ms| {
                            stages::freshness(cfg, parsed, &inputs.res_info, now_ms)
                        },
                    );
                    stats.demoted_overuse += u64::from(outcome.demoted_overuse);
                    stats.demoted_untimely += u64::from(outcome.demoted_untimely);
                    outcome.verdict
                }
            };
            stats.record(verdict);
            out.push(verdict);
        }
    }

    fn engine_name(&self) -> &'static str {
        "hummingbird"
    }

    fn stats(&self) -> DatapathStats {
        let mut stats = self.stats;
        if let Some(cache) = &self.key_cache {
            stats.key_cache_hits = cache.hits();
            stats.key_cache_misses = cache.misses();
        }
        stats
    }

    fn reset_stats(&mut self) {
        self.stats = DatapathStats::default();
        if let Some(cache) = &mut self.key_cache {
            cache.reset_counters();
        }
    }
}
