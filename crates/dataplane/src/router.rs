//! The border-router packet pipeline (paper §4.3, Fig. 13, Algorithms 2-4).
//!
//! `process` operates in place on raw packet bytes, exactly like the DPDK
//! implementation the paper evaluates: parse the fixed headers, locate the
//! current hop field, recompute MACs, police, and mutate the header
//! (SegID chaining, CurrHF advance, AggMAC → HopFieldMAC replacement)
//! before forwarding. No allocation on the hot path.

use crate::dup::DuplicateSuppressor;
use crate::policing::{FwdClass, Policer, DEFAULT_BURST_TIME_NS};
use hummingbird_crypto::{aggregate_mac, FlyoverMacInput, ResInfo, SecretValue};
use hummingbird_wire::common::{AddressHeader, CommonHeader, ADDR_HDR_LEN, COMMON_HDR_LEN};
use hummingbird_wire::hopfield::{
    peek_flyover_bit, FlyoverHopField, HopField, InfoField, FLYOVER_FIELD_LEN, HOP_FIELD_LEN,
    INFO_FIELD_LEN,
};
use hummingbird_wire::meta::{PathMetaHdr, FLYOVER_UNITS, HF_UNITS, META_HDR_LEN};
use hummingbird_wire::scion_mac::{update_seg_id, HopMacInput, HopMacKey};

/// Why a packet was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Header shorter than declared or structurally broken.
    Malformed,
    /// The current hop field has expired (Algorithm 4 line 2).
    ExpiredHopField,
    /// Hop-field MAC (or aggregate MAC) verification failed.
    BadMac,
    /// `PayloadLen + 4·HdrLen` overflowed (Eq. 7d).
    PktLenOverflow,
    /// Duplicate packet (only with duplicate suppression enabled).
    Duplicate,
    /// The path has already been fully traversed.
    PathConsumed,
}

/// The router's forwarding decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Drop the packet.
    Drop(DropReason),
    /// Forward with reservation priority through `egress`.
    Flyover {
        /// Egress interface.
        egress: u16,
    },
    /// Forward best-effort through `egress`.
    BestEffort {
        /// Egress interface.
        egress: u16,
    },
}

impl Verdict {
    /// The egress interface, if the packet is forwarded.
    pub fn egress(&self) -> Option<u16> {
        match self {
            Verdict::Flyover { egress } | Verdict::BestEffort { egress } => Some(*egress),
            Verdict::Drop(_) => None,
        }
    }

    /// Whether the packet is forwarded with priority.
    pub fn is_flyover(&self) -> bool {
        matches!(self, Verdict::Flyover { .. })
    }
}

/// Router configuration.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Maximum packet age Δ, milliseconds.
    pub max_packet_age_ms: u64,
    /// Maximum clock skew δ, milliseconds (paper: e.g. 500 ms).
    pub max_clock_skew_ms: u64,
    /// Policing array slots (ResIDmax; paper evaluation: 10⁵).
    pub policer_slots: u32,
    /// Burst budget, nanoseconds.
    pub burst_time_ns: u64,
    /// Enable the optional duplicate suppression stage.
    pub duplicate_suppression: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_packet_age_ms: 1_000,
            max_clock_skew_ms: 500,
            policer_slots: 100_000,
            burst_time_ns: DEFAULT_BURST_TIME_NS,
            duplicate_suppression: false,
        }
    }
}

/// Per-router counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Packets processed.
    pub processed: u64,
    /// Packets forwarded with priority.
    pub flyover: u64,
    /// Packets forwarded best-effort.
    pub best_effort: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Flyover packets demoted by the policer (overuse).
    pub demoted_overuse: u64,
    /// Flyover packets demoted for staleness / inactive reservation.
    pub demoted_untimely: u64,
}

/// A Hummingbird-enabled border router of one AS.
pub struct BorderRouter {
    sv: SecretValue,
    hop_key: HopMacKey,
    cfg: RouterConfig,
    policer: Policer,
    dup: Option<DuplicateSuppressor>,
    stats: RouterStats,
}

enum FlyoverOutcome {
    /// Timely, active reservation; candidate MAC to verify + policing info.
    Eligible { res_id: u32, bw_kbps: u64, pkt_len: u16 },
    /// Valid structure but stale timestamp or inactive reservation.
    BestEffortOnly,
}

impl BorderRouter {
    /// Creates a router with the AS's data-plane secrets.
    pub fn new(sv: SecretValue, hop_key: HopMacKey, cfg: RouterConfig) -> Self {
        let dup = cfg
            .duplicate_suppression
            .then(|| {
                let window_ns =
                    (cfg.max_packet_age_ms + 2 * cfg.max_clock_skew_ms) * 1_000_000;
                DuplicateSuppressor::new(window_ns, 1 << 20)
            });
        BorderRouter {
            sv,
            hop_key,
            policer: Policer::new(cfg.policer_slots, cfg.burst_time_ns),
            cfg,
            dup,
            stats: RouterStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Resets counters.
    pub fn reset_stats(&mut self) {
        self.stats = RouterStats::default();
    }

    /// Processes one packet in place at time `now_ns` (Unix nanoseconds).
    /// Implements Algorithm 2 with Algorithms 1, 3, 4 inlined.
    pub fn process(&mut self, pkt: &mut [u8], now_ns: u64) -> Verdict {
        self.stats.processed += 1;
        let verdict = self.process_inner(pkt, now_ns);
        match verdict {
            Verdict::Drop(_) => self.stats.dropped += 1,
            Verdict::Flyover { .. } => self.stats.flyover += 1,
            Verdict::BestEffort { .. } => self.stats.best_effort += 1,
        }
        verdict
    }

    fn process_inner(&mut self, pkt: &mut [u8], now_ns: u64) -> Verdict {
        // --- Check packet size & parse fixed headers -------------------
        let Ok(common) = CommonHeader::parse(pkt) else {
            return Verdict::Drop(DropReason::Malformed);
        };
        let Ok(addr) = AddressHeader::parse(&pkt[COMMON_HDR_LEN..]) else {
            return Verdict::Drop(DropReason::Malformed);
        };
        let path_start = COMMON_HDR_LEN + ADDR_HDR_LEN;
        let Ok(meta) = PathMetaHdr::parse(&pkt[path_start..]) else {
            return Verdict::Drop(DropReason::Malformed);
        };
        let hdr_len_bytes = 4 * usize::from(common.hdr_len);
        if pkt.len() < hdr_len_bytes {
            return Verdict::Drop(DropReason::Malformed);
        }
        if u16::from(meta.curr_hf) >= meta.total_hf_units() {
            return Verdict::Drop(DropReason::PathConsumed);
        }

        // --- Locate current info field and hop field -------------------
        let Ok((seg_idx, _)) = meta.segment_of_curr_hf() else {
            return Verdict::Drop(DropReason::Malformed);
        };
        let info_off = path_start + META_HDR_LEN + INFO_FIELD_LEN * seg_idx;
        // The declared segment layout may lie about the buffer length —
        // index with a checked slice (found by the router fuzz tests).
        let Some(info_bytes) = pkt.get(info_off..) else {
            return Verdict::Drop(DropReason::Malformed);
        };
        let Ok(info) = InfoField::parse(info_bytes) else {
            return Verdict::Drop(DropReason::Malformed);
        };
        let hop_off = path_start + META_HDR_LEN
            + INFO_FIELD_LEN * meta.num_inf()
            + 4 * usize::from(meta.curr_hf);
        if pkt.len() < hop_off + HOP_FIELD_LEN {
            return Verdict::Drop(DropReason::Malformed);
        }
        let Ok(is_flyover) = peek_flyover_bit(&pkt[hop_off..]) else {
            return Verdict::Drop(DropReason::Malformed);
        };

        let now_ms = now_ns / 1_000_000;
        let now_s = now_ms / 1000;

        // --- Flyover processing (Algorithm 3) ---------------------------
        // Produces the candidate hop-field MAC for flyover packets and the
        // policing parameters.
        let (hf_generic, candidate_mac, flyover_outcome);
        if is_flyover {
            if pkt.len() < hop_off + FLYOVER_FIELD_LEN {
                return Verdict::Drop(DropReason::Malformed);
            }
            let Ok(fly) = FlyoverHopField::parse(&pkt[hop_off..]) else {
                return Verdict::Drop(DropReason::Malformed);
            };
            // ResStart ← BaseTimestamp − ResStartOffset (Algo 3 line 2).
            let res_start = meta.base_ts.wrapping_sub(u32::from(fly.res_start_offset));
            let res_info = ResInfo {
                ingress: fly.cons_ingress,
                egress: fly.cons_egress,
                res_id: fly.res_id,
                bw_encoded: fly.bw,
                res_start,
                duration: fly.res_duration,
            };
            // A_i ← PRF_SV(ResInfo); includes the AES key extension.
            let auth_key = self.sv.derive_key(&res_info);
            // PktLen with overflow check (Eq. 7d).
            let Ok(pkt_len) = common.pkt_len() else {
                return Verdict::Drop(DropReason::PktLenOverflow);
            };
            let mac_input = FlyoverMacInput {
                dst_isd: addr.dst.isd,
                dst_as: addr.dst.asn,
                pkt_len,
                res_start_offset: fly.res_start_offset,
                millis_ts: meta.millis_ts,
                counter: meta.counter,
            };
            let flyover_mac = auth_key.flyover_mac(&mac_input);
            // Candidate hop-field MAC (Algo 3 line 11).
            candidate_mac = aggregate_mac(&flyover_mac, &fly.agg_mac);

            // Freshness check (Algo 3 lines 12-14): now − absTS ∈ [−δ, Δ+δ].
            let abs_ts_ms = meta.abs_ts_millis();
            let delta = self.cfg.max_packet_age_ms;
            let skew = self.cfg.max_clock_skew_ms;
            let timely = now_ms + skew >= abs_ts_ms && abs_ts_ms + delta + skew >= now_ms;
            // Reservation active check (lines 15-17), no skew (App. A.7).
            let active = res_info.is_active_at(now_s as u32);

            flyover_outcome = if timely && active {
                FlyoverOutcome::Eligible {
                    res_id: fly.res_id,
                    bw_kbps: hummingbird_wire::bwcls::decode(fly.bw),
                    pkt_len,
                }
            } else {
                FlyoverOutcome::BestEffortOnly
            };
            hf_generic = HopField {
                flags: Default::default(),
                exp_time: fly.exp_time,
                cons_ingress: fly.cons_ingress,
                cons_egress: fly.cons_egress,
                mac: candidate_mac,
            };
        } else {
            let Ok(hf) = HopField::parse(&pkt[hop_off..]) else {
                return Verdict::Drop(DropReason::Malformed);
            };
            candidate_mac = hf.mac;
            flyover_outcome = FlyoverOutcome::BestEffortOnly;
            hf_generic = hf;
        }

        // --- Standard SCION processing (Algorithm 4) --------------------
        // Hop-field expiry.
        let expiry = crate::beacon::hop_field_expiry(info.timestamp, hf_generic.exp_time);
        if now_s >= expiry {
            return Verdict::Drop(DropReason::ExpiredHopField);
        }
        // Recompute the hop-field MAC and compare.
        let computed = self.hop_key.hop_mac(&HopMacInput {
            seg_id: info.seg_id,
            timestamp: info.timestamp,
            exp_time: hf_generic.exp_time,
            cons_ingress: hf_generic.cons_ingress,
            cons_egress: hf_generic.cons_egress,
        });
        if computed != candidate_mac {
            return Verdict::Drop(DropReason::BadMac);
        }

        // Optional duplicate suppression (§5.4) — after authentication so
        // attackers cannot poison the filter with unauthenticated junk.
        if let Some(dup) = &mut self.dup {
            let id = (meta.base_ts, meta.millis_ts, meta.counter, addr.src.asn);
            if dup.check_and_insert(id, now_ns) {
                return Verdict::Drop(DropReason::Duplicate);
            }
        }

        // Mutations: SegID chaining, CurrHF/CurrINF advance, and for
        // flyover hops replace AggMAC with the plain hop-field MAC so the
        // path can be reversed (App. A.7).
        let new_seg_id = update_seg_id(info.seg_id, &computed);
        pkt[info_off + 2..info_off + 4].copy_from_slice(&new_seg_id.to_be_bytes());
        if is_flyover {
            pkt[hop_off + 6..hop_off + 12].copy_from_slice(&computed);
        }
        let hop_units = if is_flyover { FLYOVER_UNITS } else { HF_UNITS };
        let mut new_meta = meta;
        new_meta.curr_hf = meta.curr_hf + hop_units;
        if u16::from(new_meta.curr_hf) < new_meta.total_hf_units() {
            if let Ok((seg, _)) = new_meta.segment_of_curr_hf() {
                new_meta.curr_inf = seg as u8;
            }
        }
        if new_meta.emit(&mut pkt[path_start..]).is_err() {
            return Verdict::Drop(DropReason::Malformed);
        }

        // --- Bandwidth monitoring (Algorithm 1) -------------------------
        let egress = hf_generic.cons_egress;
        match flyover_outcome {
            FlyoverOutcome::Eligible { res_id, bw_kbps, pkt_len } => {
                match self.policer.check(res_id, bw_kbps, pkt_len, now_ns) {
                    FwdClass::Flyover => Verdict::Flyover { egress },
                    FwdClass::BestEffort => {
                        self.stats.demoted_overuse += 1;
                        Verdict::BestEffort { egress }
                    }
                }
            }
            FlyoverOutcome::BestEffortOnly => {
                if is_flyover {
                    self.stats.demoted_untimely += 1;
                }
                Verdict::BestEffort { egress }
            }
        }
    }
}
