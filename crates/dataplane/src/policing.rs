//! Deterministic token-bucket traffic policing (paper §4.4, Algorithm 1).
//!
//! One 8-byte deadline per ResID in a flat array, plus a global `BurstTime`.
//! Processing a packet is: read the slot, one division (packet transmission
//! time at the reserved rate), two comparisons, one store. The array is
//! indexed directly by the ResID carried in the (authenticated) packet
//! header, which is why ResID compactness (interval coloring) matters.

/// Forwarding class decided by the policer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FwdClass {
    /// Within the reservation: forward with priority.
    Flyover,
    /// Over the reservation (or no reservation): forward best-effort.
    /// Packets are *not* dropped on overuse (§4.3 step 5), so benign
    /// bursts never degrade below best-effort service.
    BestEffort,
}

/// The policer state for one ingress interface.
#[derive(Clone, Debug)]
pub struct Policer {
    /// `TSArray`: one deadline (ns since epoch) per ResID.
    ts_array: Vec<u64>,
    /// `BurstTime` in nanoseconds (paper suggests ~50 ms).
    burst_time_ns: u64,
}

/// Default `BurstTime`: 50 ms (§4.4, "a value of roughly 50 ms seems
/// reasonable" given current router buffer trends).
pub const DEFAULT_BURST_TIME_NS: u64 = 50_000_000;

/// Transmission time of `pkt_len` bytes at `bw_kbps`, in nanoseconds:
/// `PktLen / BW` of Algorithm 1 line 3.
#[inline]
pub fn transmission_time_ns(pkt_len: u16, bw_kbps: u64) -> u64 {
    if bw_kbps == 0 {
        return u64::MAX;
    }
    // bits * 1e6 / kbps = ns
    (u64::from(pkt_len) * 8).saturating_mul(1_000_000) / bw_kbps
}

impl Policer {
    /// Creates a policer with `max_res_ids` slots (the 10⁵-entry, 800 kB
    /// array of §7.1) and the given burst budget.
    pub fn new(max_res_ids: u32, burst_time_ns: u64) -> Self {
        Policer { ts_array: vec![0; max_res_ids as usize], burst_time_ns }
    }

    /// Creates the paper's evaluation configuration: 10⁵ ResIDs, 50 ms.
    pub fn paper_default() -> Self {
        Self::new(100_000, DEFAULT_BURST_TIME_NS)
    }

    /// Number of ResID slots.
    pub fn capacity(&self) -> usize {
        self.ts_array.len()
    }

    /// Memory footprint of the deadline array in bytes (§4.4 sizing
    /// examples: 24 MB for 3M IDs, 600 kB for 75k).
    pub fn array_bytes(&self) -> usize {
        self.ts_array.len() * 8
    }

    /// Algorithm 1, `BandwidthMonitoring`: decides the forwarding class of
    /// a packet of `pkt_len` bytes on reservation `res_id` at `bw_kbps`.
    ///
    /// Returns [`FwdClass::BestEffort`] for ResIDs beyond the array (the AS
    /// never assigns them, so such packets cannot be legitimate) and for
    /// packets exceeding the burst budget.
    #[inline]
    pub fn check(&mut self, res_id: u32, bw_kbps: u64, pkt_len: u16, now_ns: u64) -> FwdClass {
        let Some(slot) = self.ts_array.get_mut(res_id as usize) else {
            return FwdClass::BestEffort;
        };
        let ts = (*slot).max(now_ns) + transmission_time_ns(pkt_len, bw_kbps);
        if ts <= now_ns + self.burst_time_ns {
            *slot = ts;
            FwdClass::Flyover
        } else {
            FwdClass::BestEffort
        }
    }

    /// Touches the deadline slot of `res_id` so it is cache-resident when
    /// [`check`](Policer::check) runs — the batch path calls this for a
    /// whole burst between key derivation and policing, mirroring the
    /// DPDK prefetch the paper's router issues per burst. A no-op for
    /// out-of-range ResIDs.
    #[inline]
    pub fn pre_touch(&self, res_id: u32) {
        if let Some(slot) = self.ts_array.get(res_id as usize) {
            std::hint::black_box(*slot);
        }
    }

    /// Resets one slot (e.g. when a ResID is recycled across reservations).
    pub fn reset(&mut self, res_id: u32) {
        if let Some(slot) = self.ts_array.get_mut(res_id as usize) {
            *slot = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn transmission_time_math() {
        // 1500 B at 240 kbps: 12000 bits / 240 kbps = 50 ms (§4.4: packets
        // of 1500 B max out a 240 kbps reservation's 50 ms burst budget).
        assert_eq!(transmission_time_ns(1500, 240), 50 * 1_000_000);
        // 1000 B at 8 Mbps = 1 ms.
        assert_eq!(transmission_time_ns(1000, 8_000), 1_000_000);
        assert_eq!(transmission_time_ns(100, 0), u64::MAX);
    }

    #[test]
    fn conforming_traffic_stays_flyover() {
        let mut p = Policer::new(16, DEFAULT_BURST_TIME_NS);
        // 10 Mbps reservation, 1000 B packets every ms = 8 Mbps: conforming.
        let mut now = SEC;
        for _ in 0..1000 {
            assert_eq!(p.check(3, 10_000, 1000, now), FwdClass::Flyover);
            now += 1_000_000;
        }
    }

    #[test]
    fn overuse_is_demoted_to_best_effort() {
        let mut p = Policer::new(16, DEFAULT_BURST_TIME_NS);
        // 1 Mbps reservation, 1500 B packets back-to-back = 12 ms each;
        // after ~4 packets the 50 ms burst budget is exhausted.
        let now = SEC;
        let mut flyover = 0;
        let mut best_effort = 0;
        for _ in 0..20 {
            match p.check(0, 1_000, 1500, now) {
                FwdClass::Flyover => flyover += 1,
                FwdClass::BestEffort => best_effort += 1,
            }
        }
        assert_eq!(flyover, 4, "50ms budget / 12ms per packet");
        assert_eq!(best_effort, 16);
    }

    #[test]
    fn bucket_refills_over_time() {
        let mut p = Policer::new(16, DEFAULT_BURST_TIME_NS);
        let now = SEC;
        // Exhaust the budget.
        while p.check(0, 1_000, 1500, now) == FwdClass::Flyover {}
        assert_eq!(p.check(0, 1_000, 1500, now), FwdClass::BestEffort);
        // After enough time, the reservation is usable again.
        let later = now + SEC;
        assert_eq!(p.check(0, 1_000, 1500, later), FwdClass::Flyover);
    }

    #[test]
    fn burst_allowance_is_bounded() {
        let mut p = Policer::new(16, 50_000_000);
        // A long-idle reservation does NOT accumulate unbounded credit:
        // at most BurstTime worth of traffic passes instantaneously.
        let now = 100 * SEC; // idle for 100 s
        let mut passed = 0u64;
        while p.check(0, 10_000, 1500, now) == FwdClass::Flyover {
            passed += 1500 * 8;
        }
        // 50 ms at 10 Mbps = 500 kbit ceiling.
        assert!(passed <= 500_000, "passed {passed} bits in one burst");
    }

    #[test]
    fn res_ids_are_isolated() {
        let mut p = Policer::new(16, DEFAULT_BURST_TIME_NS);
        let now = SEC;
        while p.check(0, 1_000, 1500, now) == FwdClass::Flyover {}
        // Exhausting ResID 0 does not affect ResID 1.
        assert_eq!(p.check(1, 1_000, 1500, now), FwdClass::Flyover);
    }

    #[test]
    fn out_of_range_res_id_is_best_effort() {
        let mut p = Policer::new(4, DEFAULT_BURST_TIME_NS);
        assert_eq!(p.check(4, 1_000_000, 100, SEC), FwdClass::BestEffort);
    }

    #[test]
    fn reset_recycles_slot() {
        let mut p = Policer::new(4, DEFAULT_BURST_TIME_NS);
        let now = SEC;
        while p.check(2, 1_000, 1500, now) == FwdClass::Flyover {}
        p.reset(2);
        assert_eq!(p.check(2, 1_000, 1500, now), FwdClass::Flyover);
    }

    #[test]
    fn paper_array_sizing() {
        let p = Policer::paper_default();
        assert_eq!(p.array_bytes(), 800_000, "§7.1: 10^5 IDs -> 800 kB");
    }
}
