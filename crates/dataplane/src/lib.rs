//! # hummingbird-dataplane
//!
//! The Hummingbird data plane (paper §4.3-§4.4, §7, Appendix A.7):
//!
//! * [`router`] — the border-router pipeline of Fig. 13 / Algorithms 2-4:
//!   flyover MAC re-derivation, hop-field MAC verification with SegID
//!   chaining, freshness and reservation-activity checks, in-place header
//!   mutation, all allocation-free on the hot path.
//! * [`policing`] — deterministic token-bucket policing (Algorithm 1): one
//!   8-byte deadline per ResID, a global `BurstTime`, overuse demoted to
//!   best effort (never dropped).
//! * [`source`] — the traffic generator: stamps per-packet timestamps and
//!   computes flyover MACs for every reserved hop.
//! * [`beacon`] — forges valid SCION paths (the beaconing substitute).
//! * [`dup`] — optional duplicate suppression (§5.4 ablation).
//! * [`multicore`] — `std::thread`-based throughput harness for the
//!   Fig. 5/14 scaling experiments, generic over any [`Datapath`] engine
//!   (now one configuration of the [`runtime`]).
//! * [`runtime`] — the sharded worker-ring runtime: bounded SPSC rings
//!   model NIC queues, an RSS-style flow hash steers each reservation to
//!   the one shard that polices it, and the [`ShardedRouter`] facade
//!   exposes the whole thing as a single [`Datapath`] engine.
//! * [`datapath`] — the unified batch-oriented [`Datapath`] trait that
//!   every packet-processing engine (router, gateway, baselines)
//!   implements, plus the shared [`Verdict`]/[`DropReason`]/
//!   [`DatapathStats`] vocabulary, the [`DatapathBuilder`], and the
//!   [`NullEngine`] calibration engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beacon;
pub mod datapath;
pub mod dup;
pub mod gateway;
pub mod multicore;
pub mod policing;
pub mod router;
pub mod runtime;
pub mod source;

pub use beacon::{forge_path, BeaconHop};
pub use datapath::{
    Datapath, DatapathBuilder, DatapathStats, DropReason, NullEngine, PacketBuf, Verdict,
};
pub use gateway::{Gateway, GatewayStats, GatewayVerdict, HostShare};
pub use multicore::{
    forwarding_throughput, generation_throughput, Throughput, BATCH_SIZE, LINE_RATE_GBPS,
};
pub use policing::{FwdClass, Policer, DEFAULT_BURST_TIME_NS};
pub use router::{BorderRouter, RouterConfig, RouterStats};
pub use runtime::{
    run_to_completion, BackpressureConfig, BackpressurePolicy, EgressClassStats, EgressConfig,
    EgressStats, ExecMode, LatencyHistogram, RuntimeConfig, RuntimeMode, RuntimeReport, RxMode,
    ShardMap, ShardReport, ShardedRouter, Steering, WaitStrategy,
};
pub use source::{GenError, SourceGenerator, SourceReservation};

#[cfg(test)]
mod tests {
    //! Integration tests: source-generated packets through a chain of
    //! border routers.

    use super::*;
    use hummingbird_crypto::{ResInfo, SecretValue};
    use hummingbird_wire::scion_mac::HopMacKey;
    use hummingbird_wire::IsdAs;

    const NOW_MS: u64 = 1_700_000_100_000;
    const NOW_NS: u64 = NOW_MS * 1_000_000;

    struct TestNet {
        generator: SourceGenerator,
        routers: Vec<BorderRouter>,
        svs: Vec<SecretValue>,
    }

    fn build_net(n: usize, cfg: RouterConfig) -> TestNet {
        let hop_keys: Vec<HopMacKey> =
            (0..n).map(|i| HopMacKey::new([0x10 + i as u8; 16])).collect();
        let svs: Vec<SecretValue> =
            (0..n).map(|i| SecretValue::new([0x60 + i as u8; 16])).collect();
        let hops: Vec<BeaconHop> = (0..n)
            .map(|i| BeaconHop {
                key: hop_keys[i].clone(),
                cons_ingress: if i == 0 { 0 } else { 2 * i as u16 },
                cons_egress: if i == n - 1 { 0 } else { 2 * i as u16 + 1 },
            })
            .collect();
        let path = forge_path(&hops, (NOW_MS / 1000) as u32 - 100, 0x1234);
        let generator = SourceGenerator::new(IsdAs::new(1, 0x10), IsdAs::new(2, 0x20), path);
        let routers: Vec<BorderRouter> =
            (0..n).map(|i| BorderRouter::new(svs[i].clone(), hop_keys[i].clone(), cfg)).collect();
        TestNet { generator, routers, svs }
    }

    fn interfaces(n: usize, i: usize) -> (u16, u16) {
        if n == 1 {
            (0, 0)
        } else if i == 0 {
            (0, 1)
        } else if i == n - 1 {
            (2 * i as u16, 0)
        } else {
            (2 * i as u16, 2 * i as u16 + 1)
        }
    }

    fn attach_all_reservations(net: &mut TestNet, n: usize, bw_encoded: u16) {
        for i in 0..n {
            let (ingress, egress) = interfaces(n, i);
            let res_info = ResInfo {
                ingress,
                egress,
                res_id: 40 + i as u32,
                bw_encoded,
                res_start: (NOW_MS / 1000) as u32 - 50,
                duration: 600,
            };
            let key = net.svs[i].derive_key(&res_info);
            net.generator.attach_reservation(i, SourceReservation { res_info, key }).unwrap();
        }
    }

    #[test]
    fn full_path_forwards_with_priority() {
        let n = 5;
        let mut net = build_net(n, RouterConfig::default());
        attach_all_reservations(&mut net, n, 300);
        let mut pkt = net.generator.generate(&[7u8; 500], NOW_MS).unwrap();
        for (i, router) in net.routers.iter_mut().enumerate() {
            let verdict = router.process(&mut pkt, NOW_NS);
            assert!(verdict.is_flyover(), "hop {i}: {verdict:?}");
        }
    }

    #[test]
    fn partial_reservations_mix_classes() {
        let n = 4;
        let mut net = build_net(n, RouterConfig::default());
        // Reserve only hop 1 (partial path protection, §3.3 ❸).
        let res_info = ResInfo {
            ingress: 2,
            egress: 3,
            res_id: 9,
            bw_encoded: 300,
            res_start: (NOW_MS / 1000) as u32 - 50,
            duration: 600,
        };
        let key = net.svs[1].derive_key(&res_info);
        net.generator.attach_reservation(1, SourceReservation { res_info, key }).unwrap();
        let mut pkt = net.generator.generate(&[1u8; 200], NOW_MS).unwrap();
        let verdicts: Vec<Verdict> =
            net.routers.iter_mut().map(|r| r.process(&mut pkt, NOW_NS)).collect();
        assert!(matches!(verdicts[0], Verdict::BestEffort { .. }));
        assert!(verdicts[1].is_flyover());
        assert!(matches!(verdicts[2], Verdict::BestEffort { .. }));
        assert!(matches!(verdicts[3], Verdict::BestEffort { .. }));
    }

    #[test]
    fn plain_scion_packets_are_best_effort() {
        let n = 3;
        let mut net = build_net(n, RouterConfig::default());
        let mut pkt = net.generator.generate(&[0u8; 100], NOW_MS).unwrap();
        for router in net.routers.iter_mut() {
            let verdict = router.process(&mut pkt, NOW_NS);
            assert!(matches!(verdict, Verdict::BestEffort { .. }), "{verdict:?}");
        }
    }

    #[test]
    fn forged_flyover_mac_is_dropped() {
        let n = 2;
        let mut net = build_net(n, RouterConfig::default());
        // Attacker uses a wrong key for hop 0 (spoofed reservation, D1).
        let res_info = ResInfo {
            ingress: 0,
            egress: 1,
            res_id: 3,
            bw_encoded: 300,
            res_start: (NOW_MS / 1000) as u32 - 50,
            duration: 600,
        };
        let wrong_sv = SecretValue::new([0xAA; 16]);
        let key = wrong_sv.derive_key(&res_info);
        net.generator.attach_reservation(0, SourceReservation { res_info, key }).unwrap();
        let mut pkt = net.generator.generate(&[0u8; 64], NOW_MS).unwrap();
        let verdict = net.routers[0].process(&mut pkt, NOW_NS);
        assert_eq!(verdict, Verdict::Drop(DropReason::BadMac));
    }

    #[test]
    fn tampered_packet_length_is_dropped() {
        let n = 2;
        let mut net = build_net(n, RouterConfig::default());
        attach_all_reservations(&mut net, n, 300);
        let mut pkt = net.generator.generate(&[0u8; 100], NOW_MS).unwrap();
        // Attacker inflates PayloadLen to smuggle more bytes past
        // policing: the MAC covers PktLen, so verification must fail.
        let forged_payload_len = 200u16.to_be_bytes();
        pkt[6..8].copy_from_slice(&forged_payload_len);
        pkt.extend_from_slice(&[0u8; 100]);
        let verdict = net.routers[0].process(&mut pkt, NOW_NS);
        assert_eq!(verdict, Verdict::Drop(DropReason::BadMac));
    }

    #[test]
    fn stale_packets_fall_back_to_best_effort() {
        let n = 1;
        let mut net = build_net(n, RouterConfig::default());
        attach_all_reservations(&mut net, n, 300);
        let mut pkt = net.generator.generate(&[0u8; 64], NOW_MS).unwrap();
        // Process 10 s later: outside [−δ, Δ+δ] — demoted, not dropped.
        let verdict = net.routers[0].process(&mut pkt, NOW_NS + 10_000_000_000);
        assert!(matches!(verdict, Verdict::BestEffort { .. }), "{verdict:?}");
        assert_eq!(net.routers[0].stats().demoted_untimely, 1);
    }

    #[test]
    fn reservation_window_enforced() {
        let n = 1;
        let mut net = build_net(n, RouterConfig::default());
        attach_all_reservations(&mut net, n, 300);
        let mut pkt = net.generator.generate(&[0u8; 64], NOW_MS).unwrap();
        // Router clock 200 s earlier: reservation not active yet and the
        // packet timestamp is in the future beyond skew — demoted.
        let verdict = net.routers[0].process(&mut pkt, NOW_NS - 200_000_000_000);
        assert!(matches!(verdict, Verdict::BestEffort { .. }));
    }

    #[test]
    fn overuse_is_policed_per_reservation() {
        let n = 1;
        let mut net = build_net(n, RouterConfig::default());
        // 240 kbps reservation (class 124): §4.4 notes this is exactly the
        // rate where one 1500 B packet fills the 50 ms burst budget.
        attach_all_reservations(&mut net, n, 124);
        let mut flyover = 0;
        let mut best_effort = 0;
        for _ in 0..50 {
            let mut pkt = net.generator.generate(&[0u8; 1400], NOW_MS).unwrap();
            match net.routers[0].process(&mut pkt, NOW_NS) {
                v if v.is_flyover() => flyover += 1,
                Verdict::BestEffort { .. } => best_effort += 1,
                v => panic!("unexpected {v:?}"),
            }
        }
        assert!(flyover >= 1, "burst budget admits at least one packet");
        assert!(best_effort > 40, "sustained overuse must be demoted");
        assert_eq!(net.routers[0].stats().demoted_overuse as usize, best_effort);
    }

    #[test]
    fn duplicate_suppression_catches_replays() {
        let n = 1;
        let cfg = RouterConfig { duplicate_suppression: true, ..Default::default() };
        let mut net = build_net(n, cfg);
        attach_all_reservations(&mut net, n, 300);
        let pkt = net.generator.generate(&[0u8; 128], NOW_MS).unwrap();
        let mut first = pkt.clone();
        let mut replay = pkt;
        assert!(net.routers[0].process(&mut first, NOW_NS).is_flyover());
        let verdict = net.routers[0].process(&mut replay, NOW_NS + 1000);
        assert_eq!(verdict, Verdict::Drop(DropReason::Duplicate));
    }

    #[test]
    fn without_dup_suppression_replays_consume_the_reservation() {
        // The on-reservation-set attack of §5.4: replayed tags pass
        // authentication and eat the victim's bandwidth budget.
        let n = 1;
        let mut net = build_net(n, RouterConfig::default());
        attach_all_reservations(&mut net, n, 124); // small (240 kbps) reservation
        let pkt = net.generator.generate(&[0u8; 1400], NOW_MS).unwrap();
        let mut replays_passed = 0;
        for _ in 0..10 {
            let mut copy = pkt.clone();
            if net.routers[0].process(&mut copy, NOW_NS).is_flyover() {
                replays_passed += 1;
            }
        }
        assert!(replays_passed >= 1, "replays authenticate without dup suppression");
        // Victim's next packet is demoted: budget consumed by attacker.
        let mut victim = net.generator.generate(&[0u8; 1400], NOW_MS).unwrap();
        assert!(!net.routers[0].process(&mut victim, NOW_NS).is_flyover());
    }

    #[test]
    fn seg_id_chain_breaks_if_hop_skipped() {
        let n = 3;
        let mut net = build_net(n, RouterConfig::default());
        let mut pkt = net.generator.generate(&[0u8; 64], NOW_MS).unwrap();
        // Skip router 0 and go straight to router 1: the packet's CurrHF
        // still points at hop 0, whose MAC router 1 cannot validate.
        let verdict = net.routers[1].process(&mut pkt, NOW_NS);
        assert_eq!(verdict, Verdict::Drop(DropReason::BadMac));
    }

    #[test]
    fn path_consumed_detected() {
        let n = 1;
        let mut net = build_net(n, RouterConfig::default());
        let mut pkt = net.generator.generate(&[0u8; 64], NOW_MS).unwrap();
        assert!(net.routers[0].process(&mut pkt, NOW_NS).egress().is_some());
        let verdict = net.routers[0].process(&mut pkt, NOW_NS);
        assert_eq!(verdict, Verdict::Drop(DropReason::PathConsumed));
    }

    #[test]
    fn agg_mac_replaced_for_path_reversal() {
        let n = 2;
        let mut net = build_net(n, RouterConfig::default());
        attach_all_reservations(&mut net, n, 300);
        let mut pkt = net.generator.generate(&[0u8; 64], NOW_MS).unwrap();
        assert!(net.routers[0].process(&mut pkt, NOW_NS).is_flyover());
        // After processing, the first hop's MAC field holds the *plain*
        // hop-field MAC (App. A.7), so the reversed path verifies as
        // standard SCION.
        let parsed = hummingbird_wire::Packet::parse(&pkt).unwrap();
        let hummingbird_wire::PathField::Flyover(fly) = parsed.path.hops[0] else {
            panic!("flyover expected")
        };
        let expected = HopMacKey::new([0x10; 16]).hop_mac(&hummingbird_wire::HopMacInput {
            seg_id: 0x1234,
            timestamp: (NOW_MS / 1000) as u32 - 100,
            exp_time: fly.exp_time,
            cons_ingress: fly.cons_ingress,
            cons_egress: fly.cons_egress,
        });
        assert_eq!(fly.agg_mac, expected);
    }

    #[test]
    fn multicore_harness_smoke() {
        let n = 2;
        let mut net = build_net(n, RouterConfig::default());
        attach_all_reservations(&mut net, n, 300);
        let pkt = net.generator.generate(&[0u8; 500], NOW_MS).unwrap();
        let hop_key = HopMacKey::new([0x10; 16]);
        let sv = SecretValue::new([0x60; 16]);
        let t = forwarding_throughput(
            || BorderRouter::new(sv.clone(), hop_key.clone(), RouterConfig::default()),
            &pkt,
            2,
            2_000,
            NOW_NS,
        );
        assert_eq!(t.packets, 4_000);
        assert!(t.gbps() > 0.0);
    }
}
