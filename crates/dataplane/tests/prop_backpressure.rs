//! Packet conservation under backpressure, as properties.
//!
//! The tx path's contract is that overload is *accounted*, never
//! silent: whatever the queue bound, watermark, policy, shard count or
//! offered load, every offered packet lands in exactly one bucket —
//!
//! * refused at rx while the tx queue was over the watermark
//!   (`rx_backpressure_drops`, [`BackpressurePolicy::Drop`] only),
//! * dropped by the engine (`EgressStats::dropped`),
//! * tail-dropped at a full bounded tx queue
//!   (`EgressStats::tx_queue_full`), or
//! * serialized onto the wire (`EgressStats::forwarded()`).
//!
//! So `offered = processed + rx_backpressure_drops` and
//! `processed = forwarded + dropped + tx_queue_full`, exactly, in every
//! schedule. [`BackpressurePolicy::Block`] additionally promises
//! losslessness at rx: producers stall instead, so
//! `rx_backpressure_drops = 0` and — with the watermark under the queue
//! bound — the stall engages before tail drop can.

use hummingbird_crypto::{ResInfo, SecretValue};
use hummingbird_dataplane::{
    forge_path, run_to_completion, BackpressureConfig, BackpressurePolicy, BeaconHop, BorderRouter,
    EgressConfig, RouterConfig, RuntimeConfig, RuntimeMode, RxMode, SourceGenerator,
    SourceReservation,
};
use hummingbird_wire::scion_mac::HopMacKey;
use hummingbird_wire::IsdAs;
use proptest::prelude::*;

const EPOCH_S: u64 = 1_700_000_000;
const EPOCH_MS: u64 = EPOCH_S * 1000;
const EPOCH_NS: u64 = EPOCH_S * 1_000_000_000;

fn hop_key() -> HopMacKey {
    HopMacKey::new([0x31; 16])
}

fn sv() -> SecretValue {
    SecretValue::new([0x61; 16])
}

/// A 1-hop wire packet; `res_id` of `Some` attaches a reservation (the
/// priority class), `None` sends best effort. Distinct `res_id`s /
/// sources give the steering layer flows to spread.
fn packet(res_id: Option<u32>, src_low: u64, payload: usize) -> Vec<u8> {
    let hops = vec![BeaconHop { key: hop_key(), cons_ingress: 0, cons_egress: 0 }];
    let path = forge_path(&hops, EPOCH_S as u32 - 10, 3);
    let mut generator = SourceGenerator::new(IsdAs::new(1, src_low), IsdAs::new(2, 0xb), path);
    if let Some(res_id) = res_id {
        let res_info = ResInfo {
            ingress: 0,
            egress: 0,
            res_id,
            bw_encoded: 500,
            res_start: EPOCH_S as u32 - 3600,
            duration: 7200,
        };
        let key = sv().derive_key(&res_info);
        generator.attach_reservation(0, SourceReservation { res_info, key }).unwrap();
    }
    generator.generate(&vec![0u8; payload], EPOCH_MS).expect("generation")
}

/// A mixed workload: two reserved flows, two best-effort flows.
fn templates() -> Vec<Vec<u8>> {
    vec![
        packet(Some(7), 0xa, 700),
        packet(Some(8), 0xa1, 700),
        packet(None, 0xa2, 700),
        packet(None, 0xa3, 700),
    ]
}

fn engine(_: usize) -> BorderRouter {
    BorderRouter::new(sv(), hop_key(), RouterConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Drop policy, with a wire slow enough and a queue small enough
    /// that both the watermark and the tail-drop bound actually trip:
    /// conservation is exact at both stages, for any shard count, rx
    /// layout, queue bound and offered load.
    #[test]
    fn conservation_under_drop_policy(
        shards in 1usize..5,
        tx_queue_pkts in 2usize..24,
        pkts in 200u64..1200,
        single_dispatcher in any::<bool>(),
        mbps in 20u64..200,
    ) {
        let mut cfg = RuntimeConfig::new(shards);
        cfg.egress = Some(EgressConfig { bandwidth_bps: mbps * 1_000_000 });
        cfg.backpressure = BackpressureConfig {
            tx_queue_pkts,
            high_watermark: (tx_queue_pkts * 3 / 4).max(1),
            policy: BackpressurePolicy::Drop,
        };
        if single_dispatcher {
            cfg.rx_mode = RxMode::SingleDispatcher;
        }
        let report = run_to_completion(
            &cfg, RuntimeMode::Sharded, engine, &templates(), pkts, EPOCH_NS,
        );

        // Stage 1: everything offered was processed or refused at rx.
        prop_assert_eq!(
            report.packets + report.rx_backpressure_drops, pkts,
            "offered packets must be processed or refused at rx"
        );
        // Stage 2: everything processed hit the wire or a named drop.
        let e = report.egress.expect("tx path enabled");
        prop_assert_eq!(
            e.forwarded() + e.dropped + e.tx_queue_full, report.packets,
            "processed packets must be forwarded or attributed"
        );
        // Per-shard verdict accounting is closed too.
        for (i, s) in report.per_shard.iter().enumerate() {
            prop_assert_eq!(
                s.forwarded + s.dropped, s.processed,
                "shard {} verdicts must cover processed", i
            );
        }
    }

    /// Block policy: producers stall instead of shedding, so rx loses
    /// nothing, and with the watermark under the queue bound the stall
    /// engages before tail drop — every offered packet is processed and
    /// attributed, at any shard count and queue bound.
    #[test]
    fn conservation_under_block_policy(
        shards in 1usize..5,
        tx_queue_pkts in 64usize..256,
        pkts in 200u64..1000,
    ) {
        let mut cfg = RuntimeConfig::new(shards);
        // A fast wire bounds the wall-clock cost of blocking; the small
        // watermark still forces stalls to happen.
        cfg.egress = Some(EgressConfig { bandwidth_bps: 2_000_000_000 });
        cfg.backpressure = BackpressureConfig {
            tx_queue_pkts,
            high_watermark: tx_queue_pkts / 2,
            policy: BackpressurePolicy::Block,
        };
        let report = run_to_completion(
            &cfg, RuntimeMode::Sharded, engine, &templates(), pkts, EPOCH_NS,
        );

        prop_assert_eq!(report.rx_backpressure_drops, 0, "Block never sheds at rx");
        prop_assert_eq!(report.packets, pkts, "every offered packet is processed");
        let e = report.egress.expect("tx path enabled");
        prop_assert_eq!(
            e.forwarded() + e.dropped + e.tx_queue_full, report.packets,
            "processed packets must be forwarded or attributed"
        );
        prop_assert_eq!(
            e.tx_queue_full, 0,
            "the watermark stall must engage before tail drop"
        );
    }
}
