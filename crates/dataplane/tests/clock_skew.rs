//! Deterministic clock-skew injection around the freshness window
//! (paper §3.2: sync to max skew δ ≈ 0.5 s; §4.3 step 3: a packet is
//! timely iff `now − absTS ∈ [−δ, Δ+δ]`).
//!
//! These tests pin the exact boundary behaviour: a router whose clock is
//! off by up to δ still prioritizes fresh packets; beyond the window the
//! packet is demoted (never dropped), exactly as the paper specifies —
//! "a time synchronization error above 0.5 s can invalidate the QoS
//! reservation".

use hummingbird_crypto::{ResInfo, SecretValue};
use hummingbird_dataplane::{
    forge_path, BeaconHop, BorderRouter, Datapath, RouterConfig, SourceGenerator,
    SourceReservation, Verdict,
};
use hummingbird_wire::scion_mac::HopMacKey;
use hummingbird_wire::IsdAs;

const SEND_MS: u64 = 1_700_000_100_000;
const MS: u64 = 1_000_000; // ns per ms

struct Fixture {
    generator: SourceGenerator,
    router: BorderRouter,
}

/// Default config: Δ = 1000 ms, δ = 500 ms.
fn fixture() -> Fixture {
    let hop_key = HopMacKey::new([1u8; 16]);
    let sv = SecretValue::new([2u8; 16]);
    let hops = vec![BeaconHop { key: hop_key.clone(), cons_ingress: 0, cons_egress: 0 }];
    let path = forge_path(&hops, (SEND_MS / 1000) as u32 - 10, 3);
    let mut generator = SourceGenerator::new(IsdAs::new(1, 1), IsdAs::new(2, 2), path);
    let res_info = ResInfo {
        ingress: 0,
        egress: 0,
        res_id: 1,
        bw_encoded: 500,
        res_start: (SEND_MS / 1000) as u32 - 3600,
        duration: 7200,
    };
    let key = sv.derive_key(&res_info);
    generator.attach_reservation(0, SourceReservation { res_info, key }).unwrap();
    let router = BorderRouter::new(sv, hop_key, RouterConfig::default());
    Fixture { generator, router }
}

/// Sends one packet stamped at SEND_MS and processes it at
/// `router_clock_ms`, returning whether it kept priority.
fn timely_at(router_offset_ms: i64) -> bool {
    let mut fx = fixture();
    let mut pkt = fx.generator.generate(&[0u8; 100], SEND_MS).unwrap();
    let now_ns = ((SEND_MS as i64 + router_offset_ms) as u64) * MS;
    match fx.router.process(&mut pkt, now_ns) {
        Verdict::Flyover { .. } => true,
        Verdict::BestEffort { .. } => false,
        v @ Verdict::Drop(_) => panic!("freshness must demote, not drop: {v:?}"),
    }
}

#[test]
fn synchronized_clocks_are_timely() {
    assert!(timely_at(0));
    assert!(timely_at(1));
    assert!(timely_at(100));
}

#[test]
fn router_clock_behind_within_skew_is_timely() {
    // Packet "from the future" by up to δ = 500 ms is accepted.
    assert!(timely_at(-499));
    assert!(timely_at(-500));
}

#[test]
fn router_clock_behind_beyond_skew_is_demoted() {
    assert!(!timely_at(-501));
    assert!(!timely_at(-5_000));
}

#[test]
fn old_packets_within_age_plus_skew_are_timely() {
    // Δ + δ = 1500 ms of allowed age.
    assert!(timely_at(1_499));
    assert!(timely_at(1_500));
}

#[test]
fn old_packets_beyond_age_plus_skew_are_demoted() {
    assert!(!timely_at(1_501));
    assert!(!timely_at(60_000));
}

#[test]
fn tight_skew_config_shrinks_the_window() {
    // δ = 50 ms, Δ = 200 ms.
    let cfg = RouterConfig { max_packet_age_ms: 200, max_clock_skew_ms: 50, ..Default::default() };
    let mut fx = fixture();
    // A fresh router per probe: the probes jump the clock backwards, which
    // would otherwise leave stale token-bucket deadlines behind.
    let mut check = |offset_ms: i64| -> bool {
        let mut router =
            BorderRouter::new(SecretValue::new([2u8; 16]), HopMacKey::new([1u8; 16]), cfg);
        let mut pkt = fx.generator.generate(&[0u8; 100], SEND_MS).unwrap();
        let now_ns = ((SEND_MS as i64 + offset_ms) as u64) * MS;
        router.process(&mut pkt, now_ns).is_flyover()
    };
    assert!(check(0));
    assert!(check(250)); // Δ + δ boundary
    assert!(!check(251));
    assert!(check(-50));
    assert!(!check(-51));
}

#[test]
fn demoted_stale_traffic_is_still_policed_separately() {
    // A stale packet does not consume the reservation's token bucket:
    // Algorithm 2 routes untimely packets around BandwidthMonitoring.
    let mut fx = fixture();
    // Exhaust nothing: send 10 stale packets, then one fresh one.
    for _ in 0..10 {
        let mut pkt = fx.generator.generate(&[0u8; 1400], SEND_MS).unwrap();
        let verdict = fx.router.process(&mut pkt, (SEND_MS + 10_000) * MS);
        assert!(matches!(verdict, Verdict::BestEffort { .. }));
    }
    let mut fresh = fx.generator.generate(&[0u8; 1400], SEND_MS + 10_000).unwrap();
    let verdict = fx.router.process(&mut fresh, (SEND_MS + 10_000) * MS);
    assert!(verdict.is_flyover(), "stale traffic must not drain the bucket: {verdict:?}");
}
