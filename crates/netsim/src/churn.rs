//! Event-driven fault injection on the simulator clock: scheduled link
//! down/up, router reboots (datapath state wiped — auth-key cache,
//! policer buckets and duplicate suppressor come back cold), and
//! mid-epoch reroute of the flows a failure stranded.
//!
//! A [`ChurnPlan`] is a timestamped action list; [`run_with_churn`]
//! interleaves it with the packet schedule by advancing the
//! [`Simulator`](crate::Simulator) to each action's instant and applying
//! it there. Because [`Simulator::run_until`](crate::Simulator::run_until)
//! is inclusive, every packet event at time `t` is processed *before* a
//! churn action at `t` — the stable tie-break the determinism tests pin
//! (see the event-ordering notes on `Simulator::schedule`).
//!
//! Every application is recorded as a [`ChurnRecord`] whose
//! [`ChurnOutcome`] carries the measurable effect (packets drained by a
//! failure, stats discarded by a reboot, flows rerouted vs stranded), so
//! experiments can assert *recovery*, not just survival.

use crate::topo::{AdjId, RouterId, TopologyBuilder};
use hummingbird_dataplane::DatapathStats;

/// One fault-injection action against a [`TopologyBuilder`] topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnAction {
    /// Take a bidirectional adjacency down; packets queued on it are
    /// dropped (counted per flow) and packets sent into it die until
    /// the adjacency comes back.
    LinkDown(AdjId),
    /// Restore a downed adjacency.
    LinkUp(AdjId),
    /// Reboot a router: its engine is rebuilt from scratch (all
    /// datapath state cold) and its service model restarts idle.
    RouterReboot(RouterId),
    /// Re-path every still-active flow whose route crosses a downed
    /// adjacency (fresh credentials on the new path; old reservations
    /// stay stranded on the dead one).
    RerouteAffected,
}

/// A [`ChurnAction`] scheduled at an absolute simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When to apply the action, ns (simulated clock).
    pub at_ns: u64,
    /// What to do.
    pub action: ChurnAction,
}

/// A timestamped fault-injection schedule. Actions sharing a timestamp
/// apply in insertion order (the sort is stable).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnPlan {
    events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `action` at `at_ns` (builder style).
    #[must_use]
    pub fn at(mut self, at_ns: u64, action: ChurnAction) -> Self {
        self.push(at_ns, action);
        self
    }

    /// Schedules `action` at `at_ns`.
    pub fn push(&mut self, at_ns: u64, action: ChurnAction) {
        self.events.push(ChurnEvent { at_ns, action });
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }
}

/// The measurable effect of one applied [`ChurnAction`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnOutcome {
    /// The failure drained this many queued packets (each counted into
    /// its flow's [`link_down_drops`](crate::FlowStats::link_down_drops)).
    LinkDown {
        /// Packets dropped from the dying link's queues.
        drained: u64,
    },
    /// The adjacency is back up.
    LinkUp,
    /// The router rebooted; these are the counters its old engine died
    /// with (lost to the reboot — post-reboot stats restart from zero).
    Rebooted {
        /// Final stats of the discarded engine.
        discarded: DatapathStats,
    },
    /// The reroute pass moved `rerouted` flows onto fresh paths and
    /// left `stranded` flows with no surviving path.
    Rerouted {
        /// Flows re-pathed around the failures.
        rerouted: usize,
        /// Flows with no surviving path (still sending into the dead
        /// link).
        stranded: usize,
    },
}

/// One applied action with its instant and effect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnRecord {
    /// Simulated time the action was applied, ns.
    pub at_ns: u64,
    /// The action.
    pub action: ChurnAction,
    /// Its measured effect.
    pub outcome: ChurnOutcome,
}

/// The full application log of a churn run — `PartialEq` so the
/// determinism tests can demand bit-identical replays of the whole
/// fault timeline, not just the flow stats.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnReport {
    /// Applied actions in application order.
    pub records: Vec<ChurnRecord>,
}

impl ChurnReport {
    /// Total flows rerouted across all reroute passes.
    pub fn total_rerouted(&self) -> usize {
        self.records
            .iter()
            .map(|r| match r.outcome {
                ChurnOutcome::Rerouted { rerouted, .. } => rerouted,
                _ => 0,
            })
            .sum()
    }

    /// Total flows found stranded across all reroute passes.
    pub fn total_stranded(&self) -> usize {
        self.records
            .iter()
            .map(|r| match r.outcome {
                ChurnOutcome::Rerouted { stranded, .. } => stranded,
                _ => 0,
            })
            .sum()
    }

    /// Number of link failures applied.
    pub fn link_failures(&self) -> usize {
        self.records.iter().filter(|r| matches!(r.action, ChurnAction::LinkDown(_))).count()
    }
}

/// Applies one action to `topo` *now* (at the simulator's current
/// instant) and returns the record.
pub fn apply_action(topo: &mut TopologyBuilder, action: ChurnAction) -> ChurnRecord {
    let outcome = match action {
        ChurnAction::LinkDown(adj) => {
            ChurnOutcome::LinkDown { drained: topo.set_adjacency_up(adj, false) }
        }
        ChurnAction::LinkUp(adj) => {
            topo.set_adjacency_up(adj, true);
            ChurnOutcome::LinkUp
        }
        ChurnAction::RouterReboot(r) => ChurnOutcome::Rebooted { discarded: topo.reboot_router(r) },
        ChurnAction::RerouteAffected => {
            let (rerouted, stranded) = topo.reroute_affected();
            ChurnOutcome::Rerouted { rerouted, stranded }
        }
    };
    ChurnRecord { at_ns: topo.sim.now_ns(), action, outcome }
}

/// Runs the simulation to `end_ns`, applying every `plan` action at its
/// scheduled instant (actions past `end_ns` are skipped). Packet events
/// at an action's timestamp are processed first — see the module docs
/// for the tie-break contract.
pub fn run_with_churn(topo: &mut TopologyBuilder, plan: &ChurnPlan, end_ns: u64) -> ChurnReport {
    let mut events = plan.events.clone();
    events.sort_by_key(|e| e.at_ns);
    let mut report = ChurnReport::default();
    for ev in events {
        if ev.at_ns > end_ns {
            break;
        }
        topo.sim.run_until(ev.at_ns);
        report.records.push(apply_action(topo, ev.action));
    }
    topo.sim.run_until(end_ns);
    report
}
