//! Reactive (closed-loop) flows: a windowed, ack-clocked sender with
//! retransmission timeouts, exponential backoff, and a bounded retry
//! budget.
//!
//! The CBR [`Flow`](crate::sim::Flow) injectors are open loop — they
//! keep sending at their configured rate no matter what the network
//! does, which is the right model for measuring *isolation* (the
//! flooding adversary of Fig. 3 is exactly such a sender) but the wrong
//! one for measuring *overload*: a real application backs off when the
//! path congests, retries when packets die, and gives up when the path
//! stays dead. [`ReactiveFlow`] is that sender, shaped like the
//! flow objects of classic packet-level simulators (a host owns a set
//! of flows, each reacting to the packets that come back to it):
//!
//! * **window** — at most `window` packets unacknowledged in flight; a
//!   send opportunity that finds the window full stalls (counted in
//!   [`FlowStats::backpressure_stalls`](crate::sim::FlowStats::backpressure_stalls))
//!   and the next acknowledgment restarts the send chain — ack
//!   clocking, the closed loop itself;
//! * **pacing** — new packets leave at most one per `pacing_ns`, so a
//!   wide-open window does not burst-dump into the first queue;
//! * **RTO** — each packet arms a retransmission timer; on expiry the
//!   packet is regenerated *through the flow's current generator* (so a
//!   reroute applied between tries sends the retry down the new path —
//!   retransmit-driven recovery) and the timer doubles up to
//!   `rto_max_ns`;
//! * **budget** — after `max_retransmits` retries the packet is
//!   abandoned. Every sequence number therefore terminates — acked or
//!   abandoned — and the flow completes in bounded time even on a path
//!   that blackholes everything (the no-livelock property the
//!   `closed_loop` tests pin).
//!
//! The acknowledgment channel is modeled, not simulated: delivery at
//! the destination host schedules an ack event `ack_delay_ns` later
//! rather than routing a reverse-path packet. That keeps the reverse
//! path out of the contended forward topology (acks are tiny and ride
//! links the experiments never saturate) while preserving what matters
//! for closed-loop dynamics: the round-trip delay before the window
//! opens again.

use crate::sim::NodeId;
use hummingbird_dataplane::SourceGenerator;
use std::collections::HashMap;

/// Configuration of a closed-loop flow
/// ([`Simulator::add_reactive_flow`](crate::sim::Simulator::add_reactive_flow)).
pub struct ReactiveFlow {
    /// Source generator (holds path + reservations). Retransmissions
    /// regenerate through whatever generator the flow holds *at retry
    /// time*, so a mid-run
    /// [`set_flow_route`](crate::sim::Simulator::set_flow_route) applies
    /// to them.
    pub generator: SourceGenerator,
    /// Node the packets enter (the first on-path AS).
    pub entry: NodeId,
    /// Payload bytes per packet.
    pub payload_len: usize,
    /// Total distinct packets to deliver (the flow completes when every
    /// one is acked or abandoned).
    pub total_pkts: u64,
    /// Maximum unacknowledged packets in flight (≥ 1).
    pub window: usize,
    /// Minimum gap between *new* packet sends, ns.
    pub pacing_ns: u64,
    /// Modeled reverse-path delay between delivery and the sender
    /// seeing the ack, ns.
    pub ack_delay_ns: u64,
    /// Initial retransmission timeout, ns.
    pub rto_ns: u64,
    /// Backoff cap: the RTO doubles per retry up to this, ns.
    pub rto_max_ns: u64,
    /// Retries per packet before it is abandoned.
    pub max_retransmits: u32,
    /// First send time, ns.
    pub start_ns: u64,
}

/// What happened, when — one entry in a reactive flow's timeline
/// ([`Simulator::flow_events`](crate::sim::Simulator::flow_events)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowEvent {
    /// Simulation time of the event, ns.
    pub at_ns: u64,
    /// What happened.
    pub kind: FlowEventKind,
}

/// The kinds of [`FlowEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowEventKind {
    /// A new sequence number left the host.
    Sent {
        /// Sequence number.
        seq: u64,
    },
    /// A retransmission left the host.
    Retransmit {
        /// Sequence number.
        seq: u64,
        /// Retry ordinal (1 = first retransmission).
        attempt: u32,
    },
    /// The sender saw the acknowledgment for `seq`.
    Acked {
        /// Sequence number.
        seq: u64,
    },
    /// A retransmission timer fired for `seq`.
    Timeout {
        /// Sequence number.
        seq: u64,
    },
    /// A send opportunity found the window full; the flow is ack-blocked.
    Stalled,
    /// `seq` exhausted its retransmit budget and was given up on.
    Abandoned {
        /// Sequence number.
        seq: u64,
    },
    /// Every sequence number is acked or abandoned; the flow is done.
    Completed,
}

/// Timer/window state of one unacknowledged sequence number.
pub(crate) struct Outstanding {
    /// Retry ordinal of the copy most recently sent (0 = original). An
    /// RTO event carries the attempt it armed for, so a timer made
    /// stale by a retransmission is recognized and ignored.
    pub attempt: u32,
    /// Timeout armed for the *next* expiry, ns (doubles per retry, capped).
    pub rto_ns: u64,
}

/// Run-time state machine of one reactive flow.
pub(crate) struct ReactiveState {
    pub cfg: ReactiveFlow,
    /// Next new sequence number to send.
    pub next_seq: u64,
    /// Sequence numbers acknowledged.
    pub acked: u64,
    /// Sequence numbers that exhausted their budget.
    pub abandoned: u64,
    /// In-flight (unacked, not abandoned) sequence numbers. Never
    /// iterated — only keyed access — so the map's order cannot leak
    /// into the simulation (determinism contract).
    pub outstanding: HashMap<u64, Outstanding>,
    /// Whether a `ReactiveSend` event is already in the queue (the send
    /// chain is self-perpetuating; acks and abandons restart it when it
    /// stalled on a full window).
    pub send_scheduled: bool,
    /// Last new-packet send time, ns — pacing floor for restarts.
    pub last_send_ns: u64,
    /// Every sequence number has terminated.
    pub done: bool,
    /// The timeline.
    pub events: Vec<FlowEvent>,
}

impl ReactiveState {
    pub(crate) fn new(cfg: ReactiveFlow) -> Self {
        ReactiveState {
            cfg,
            next_seq: 0,
            acked: 0,
            abandoned: 0,
            outstanding: HashMap::new(),
            send_scheduled: false,
            last_send_ns: 0,
            done: false,
            events: Vec::new(),
        }
    }

    /// Whether every sequence number has been acked or abandoned.
    pub(crate) fn complete(&self) -> bool {
        self.acked + self.abandoned >= self.cfg.total_pkts
    }
}
