//! # hummingbird-netsim
//!
//! A discrete-event inter-domain network simulator used to validate the
//! paper's QoS and DoS-resilience claims (property D2, §3.1/§5.4) on top
//! of the real Hummingbird data plane: every simulated border router runs
//! the actual [`hummingbird_dataplane::BorderRouter`] pipeline over real
//! packet bytes, and links schedule reservation traffic with strict
//! priority over best effort.
//!
//! * [`sim`] — the event engine: nodes, priority links, flows, replay
//!   adversaries.
//! * [`scenario`] — ready-made linear topologies and CBR flow plumbing,
//!   plus the [`EngineScenario`] config that reruns any experiment with
//!   every router node swapped to a baseline engine family (Helia,
//!   DRKey, EPIC — see `hummingbird-baselines`), optionally sharded.
//! * [`topo`] — seed-driven Internet-scale topology generation
//!   (ring-of-PoPs backbones, fat trees, AS hierarchies) over the same
//!   real-router nodes, with BFS routing and per-family credentials.
//! * [`churn`] — fault injection on the simulator clock: link down/up,
//!   cold router reboots, and mid-epoch reroute of stranded flows.
//! * [`flow`] — closed-loop reactive flows: windowed, ack-clocked
//!   senders with RTO/backoff retransmission and a bounded retry
//!   budget, the senders the overload scenarios drive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod flow;
pub mod multipath;
pub mod scenario;
pub mod sim;
pub mod topo;

pub use churn::{
    apply_action, run_with_churn, ChurnAction, ChurnEvent, ChurnOutcome, ChurnPlan, ChurnRecord,
    ChurnReport,
};
pub use flow::{FlowEvent, FlowEventKind, ReactiveFlow};
pub use multipath::{Branch, DiamondTopology};
pub use scenario::{
    calibrated_per_pkt_ns, run_churn_scenario, run_latency_churn_scenario, run_latency_scenario,
    run_multipath_scenario, run_overload_churn_scenario, run_overload_scenario,
    run_partial_path_scenario, ChurnScenarioOutcome, ChurnSpec, EngineFamily, EngineScenario,
    LatencyChurnOutcome, LatencyOutcome, LatencySpec, LinearTopology, LinkSpec, MultipathOutcome,
    OverloadChurnOutcome, OverloadChurnSpec, OverloadOutcome, OverloadPoint, OverloadSpec,
    PartialPathOutcome, ReactiveProfile,
};
pub use sim::{
    Class, Flow, FlowId, FlowStats, Node, NodeId, ReplayTap, ServiceModel, SimPacket, Simulator,
};
pub use topo::{
    AdjId, Adjacency, BackboneSpec, HierarchySpec, RouterId, TopologyBuilder, TopologyParts,
};

#[cfg(test)]
mod tests {
    use super::*;
    use hummingbird_dataplane::RouterConfig;
    use hummingbird_wire::IsdAs;

    const START_S: u64 = 1_700_000_000;
    const START_NS: u64 = START_S * 1_000_000_000;
    const SEC: u64 = 1_000_000_000;

    fn src() -> IsdAs {
        IsdAs::new(1, 0xa)
    }
    fn dst() -> IsdAs {
        IsdAs::new(2, 0xb)
    }
    fn atk() -> IsdAs {
        IsdAs::new(3, 0xc)
    }

    /// The headline QoS property (D2): under a flooding attack on a
    /// bottleneck link, the reserved flow keeps its goodput and latency
    /// while the attacker only gets leftover capacity.
    #[test]
    fn reservation_protects_against_flooding() {
        let mut topo = LinearTopology::build(
            3,
            LinkSpec::default(), // 10 Mbps bottlenecks
            START_NS,
            RouterConfig::default(),
        );
        let run_s = 2;
        // Victim: 2 Mbps with reservations on every hop.
        let victim = topo.add_cbr_flow(
            src(),
            dst(),
            1000,
            2_000,
            Some(3_000),
            START_NS,
            START_NS + run_s * SEC,
        );
        // Attacker: 30 Mbps best-effort flood (3× the bottleneck).
        let attacker =
            topo.add_cbr_flow(atk(), dst(), 1000, 30_000, None, START_NS, START_NS + run_s * SEC);
        topo.sim.run_until(START_NS + (run_s + 1) * SEC);

        let v = topo.sim.stats(victim);
        let a = topo.sim.stats(attacker);
        assert!(
            v.delivery_ratio() > 0.99,
            "victim delivery ratio {} under flood",
            v.delivery_ratio()
        );
        // Victim goodput ≈ its sending rate.
        let goodput = v.goodput_kbps(run_s as f64);
        assert!(goodput > 1_800.0, "victim goodput {goodput} kbps");
        // Victim latency stays near propagation (2 links × 1 ms + tx).
        assert!(v.mean_latency_ms() < 10.0, "victim latency {}", v.mean_latency_ms());
        // Attacker is capped by leftover capacity: far below its 30 Mbps.
        assert!(a.goodput_kbps(run_s as f64) < 9_000.0);
        assert!(a.queue_drops > 0, "flood must overflow the best-effort queue");
    }

    /// The same D2 flooding scenario with the entry router swapped for a
    /// 4-shard [`hummingbird_dataplane::ShardedRouter`] via
    /// `replace_engine`: the sharded facade is a drop-in node engine and
    /// the QoS property is unchanged.
    #[test]
    fn sharded_router_node_preserves_flood_protection() {
        let cfg = RouterConfig::default();
        let mut topo = LinearTopology::build(3, LinkSpec::default(), START_NS, cfg);
        let entry = topo.as_nodes[0];
        let sharded = topo.make_sharded_hop_engine(0, cfg, 4);
        topo.sim.replace_engine(entry, sharded).ok().expect("entry node is a router");
        let run_s = 2;
        let victim = topo.add_cbr_flow(
            src(),
            dst(),
            1000,
            2_000,
            Some(3_000),
            START_NS,
            START_NS + run_s * SEC,
        );
        let attacker =
            topo.add_cbr_flow(atk(), dst(), 1000, 30_000, None, START_NS, START_NS + run_s * SEC);
        topo.sim.run_until(START_NS + (run_s + 1) * SEC);
        let v = topo.sim.stats(victim);
        let a = topo.sim.stats(attacker);
        assert!(v.delivery_ratio() > 0.99, "sharded node: ratio {}", v.delivery_ratio());
        assert!(a.goodput_kbps(run_s as f64) < 9_000.0);
        // The facade aggregates stats across its shards like one router.
        let rs = topo.sim.router_stats(entry).unwrap();
        assert_eq!(rs.processed, v.sent_pkts + a.sent_pkts, "every packet counted once");
    }

    /// The engine-family sweep: the same flood experiment rerun with
    /// every router node swapped per [`EngineScenario`] — single-engine
    /// and 4-shard deployments of Hummingbird, Helia, DRKey and EPIC.
    /// The D2 split falls exactly along the priority-class axis: the
    /// reservation families keep the victim's delivery ratio while the
    /// authentication-only families (DRKey, EPIC) validate every packet
    /// yet leave it to starve in the flooded best-effort class — EPIC's
    /// per-packet path validation is not bandwidth protection.
    #[test]
    fn engine_family_sweep_reruns_flood_protection() {
        let cfg = RouterConfig::default();
        for family in EngineFamily::ALL {
            for shards in [1usize, 4] {
                let mut topo = LinearTopology::build(3, LinkSpec::default(), START_NS, cfg);
                topo.install_engines(EngineScenario { family, shards }, cfg);
                let run_s = 2;
                let victim = topo.add_family_cbr_flow(
                    family,
                    src(),
                    dst(),
                    1000,
                    2_000,
                    Some(3_000),
                    START_NS,
                    START_NS + run_s * SEC,
                );
                let attacker = topo.add_family_cbr_flow(
                    family,
                    atk(),
                    dst(),
                    1000,
                    30_000,
                    None,
                    START_NS,
                    START_NS + run_s * SEC,
                );
                topo.sim.run_until(START_NS + (run_s + 1) * SEC);
                let v = topo.sim.stats(victim);
                let a = topo.sim.stats(attacker);
                let label = format!("{}x{shards}", family.name());
                // Credentialed traffic authenticates in every family: the
                // victim loses packets only to congestion, never to MAC
                // verification.
                assert_eq!(v.router_drops, 0, "{label}: victim must authenticate");
                if family.has_priority_class() {
                    assert!(
                        v.delivery_ratio() > 0.99,
                        "{label}: reservation family must protect the victim, ratio {}",
                        v.delivery_ratio()
                    );
                    assert!(a.goodput_kbps(run_s as f64) < 9_000.0, "{label}");
                } else {
                    assert!(
                        v.delivery_ratio() < 0.7,
                        "{label}: authentication-only family cannot protect, ratio {}",
                        v.delivery_ratio()
                    );
                }
                // Stats aggregate identically however many shards: every
                // packet reaching the entry router is counted once.
                let rs = topo.sim.router_stats(topo.as_nodes[0]).unwrap();
                assert_eq!(
                    rs.processed,
                    v.sent_pkts + a.sent_pkts,
                    "{label}: every packet counted once"
                );
            }
        }
    }

    /// D1 for the EPIC family: per-packet path validation rejects forged
    /// credentials at the first router, and with the replay filter on, a
    /// duplicating adversary gets every copy dropped while the victim's
    /// delivery is untouched — on EPIC's best-effort-only service.
    #[test]
    fn epic_nodes_reject_forgery_and_replay() {
        let cfg = RouterConfig { duplicate_suppression: true, ..Default::default() };
        // Uncongested links: what's measured is validation, not queueing.
        let link = LinkSpec { bandwidth_bps: 100_000_000, ..Default::default() };
        let mut topo = LinearTopology::build(2, link, START_NS, cfg);
        topo.install_engines(EngineScenario { family: EngineFamily::Epic, shards: 1 }, cfg);
        let run_s = 1;
        let victim = topo.add_family_cbr_flow(
            EngineFamily::Epic,
            src(),
            dst(),
            1000,
            2_000,
            Some(2_000),
            START_NS,
            START_NS + run_s * SEC,
        );
        // Forger: EPIC credentials derived under the wrong DRKey masters
        // (a seeded sibling topology) — every packet must fail the MAC.
        let mut other = LinearTopology::build_seeded(2, link, START_NS, cfg, 0xEE);
        let mut forged_gen = other.make_generator(atk(), dst());
        for hop in 0..2 {
            let credential =
                other.make_family_credential(EngineFamily::Epic, hop, atk(), 0, START_S);
            forged_gen.attach_reservation(hop, credential).unwrap();
        }
        let entry = topo.as_nodes[0];
        let forged = topo.sim.add_flow(crate::sim::Flow {
            generator: forged_gen,
            entry,
            payload_len: 500,
            interval_ns: 1_000_000,
            start_ns: START_NS,
            stop_ns: START_NS + run_s * SEC,
        });
        // Replayer: duplicates every victim packet 5× at the entry AS.
        let tap = topo.sim.add_replay_tap(victim, entry, 5, 200_000);
        topo.sim.run_until(START_NS + (run_s + 1) * SEC);

        let v = topo.sim.stats(victim);
        let f = topo.sim.stats(forged);
        let t = topo.sim.stats(tap);
        assert!(v.delivery_ratio() > 0.99, "victim ratio {}", v.delivery_ratio());
        assert_eq!(f.delivered_pkts, 0);
        assert_eq!(f.router_drops, f.sent_pkts, "all forged packets dropped");
        assert!(t.sent_pkts > 0, "tap observed packets");
        assert_eq!(t.router_drops, t.sent_pkts, "all replays dropped by the window filter");
    }

    /// Baseline: the same victim *without* a reservation is starved by the
    /// flood — this is the problem Hummingbird solves.
    #[test]
    fn without_reservation_victim_starves() {
        let mut topo =
            LinearTopology::build(3, LinkSpec::default(), START_NS, RouterConfig::default());
        let run_s = 2;
        let victim = topo.add_cbr_flow(
            src(),
            dst(),
            1000,
            2_000,
            None, // best effort
            START_NS,
            START_NS + run_s * SEC,
        );
        let _attacker =
            topo.add_cbr_flow(atk(), dst(), 1000, 30_000, None, START_NS, START_NS + run_s * SEC);
        topo.sim.run_until(START_NS + (run_s + 1) * SEC);
        let v = topo.sim.stats(victim);
        assert!(
            v.delivery_ratio() < 0.7,
            "unreserved victim should lose traffic, got ratio {}",
            v.delivery_ratio()
        );
    }

    /// Overuse: a sender pushing 8 Mbps through a 2 Mbps reservation gets
    /// the excess demoted (not dropped) by deterministic policing.
    #[test]
    fn overuse_is_demoted_not_dropped() {
        let mut topo = LinearTopology::build(
            2,
            LinkSpec {
                bandwidth_bps: 100_000_000, // uncongested
                ..Default::default()
            },
            START_NS,
            RouterConfig::default(),
        );
        let run_s = 1;
        let flow = topo.add_cbr_flow(
            src(),
            dst(),
            1000,
            8_000,
            Some(2_000),
            START_NS,
            START_NS + run_s * SEC,
        );
        topo.sim.run_until(START_NS + (run_s + 1) * SEC);
        let s = topo.sim.stats(flow);
        // Nothing is dropped on an uncongested path...
        assert!(s.delivery_ratio() > 0.99, "ratio {}", s.delivery_ratio());
        // ...but the first router demoted the excess.
        let rs = topo.sim.router_stats(topo.as_nodes[0]).unwrap();
        assert!(rs.demoted_overuse > 0, "policer must demote overuse");
        let expected_demoted = s.sent_pkts * 3 / 4; // 8 Mbps vs 2 Mbps
        assert!(
            rs.demoted_overuse as f64 > expected_demoted as f64 * 0.8,
            "demoted {} of {}",
            rs.demoted_overuse,
            s.sent_pkts
        );
    }

    /// The on-reservation-set replay attack (Fig. 3 / §5.4): without
    /// duplicate suppression, replayed copies consume the shared
    /// reservation's budget and the victim's packets get demoted into the
    /// congested best-effort class.
    #[test]
    fn replay_attack_degrades_shared_reservation() {
        let cfg = RouterConfig::default();
        let mut topo = LinearTopology::build(2, LinkSpec::default(), START_NS, cfg);
        let run_s = 2;
        let victim = topo.add_cbr_flow(
            src(),
            dst(),
            1000,
            2_000,
            Some(2_500),
            START_NS,
            START_NS + run_s * SEC,
        );
        // Congestion so demoted packets actually hurt.
        let _flood =
            topo.add_cbr_flow(atk(), dst(), 1000, 30_000, None, START_NS, START_NS + run_s * SEC);
        // Adversary duplicates every victim packet 20× at AS 0's ingress:
        // enough accepted copies pin the token bucket at the burst ceiling
        // so subsequent originals are demoted.
        let tap = topo.sim.add_replay_tap(victim, topo.as_nodes[0], 19, 200_000);
        topo.sim.run_until(START_NS + (run_s + 1) * SEC);

        let v = topo.sim.stats(victim);
        let t = topo.sim.stats(tap);
        assert!(t.sent_pkts > 0, "tap observed packets");
        assert!(
            v.delivery_ratio() < 0.95,
            "victim should suffer under replay, ratio {}",
            v.delivery_ratio()
        );
        let rs = topo.sim.router_stats(topo.as_nodes[0]).unwrap();
        assert!(rs.demoted_overuse > 0, "replays exhaust the reservation budget");
    }

    /// The §5.4 mitigation an AS can deploy incrementally: duplicate
    /// suppression. The same replay attack now has no effect.
    #[test]
    fn duplicate_suppression_defeats_replay() {
        let cfg = RouterConfig { duplicate_suppression: true, ..Default::default() };
        let mut topo = LinearTopology::build(2, LinkSpec::default(), START_NS, cfg);
        let run_s = 2;
        let victim = topo.add_cbr_flow(
            src(),
            dst(),
            1000,
            2_000,
            Some(2_500),
            START_NS,
            START_NS + run_s * SEC,
        );
        let _flood =
            topo.add_cbr_flow(atk(), dst(), 1000, 30_000, None, START_NS, START_NS + run_s * SEC);
        let tap = topo.sim.add_replay_tap(victim, topo.as_nodes[0], 19, 200_000);
        topo.sim.run_until(START_NS + (run_s + 1) * SEC);

        let v = topo.sim.stats(victim);
        let t = topo.sim.stats(tap);
        assert!(
            v.delivery_ratio() > 0.99,
            "dup suppression should protect the victim, ratio {}",
            v.delivery_ratio()
        );
        // All replays dropped at the router.
        assert_eq!(t.router_drops, t.sent_pkts);
    }

    /// An off-path adversary forging tags cannot use reservations: its
    /// packets fail MAC verification and are dropped (D1).
    #[test]
    fn forged_tags_are_dropped_at_first_router() {
        let mut topo =
            LinearTopology::build(2, LinkSpec::default(), START_NS, RouterConfig::default());
        let run_s = 1;
        // "Forged" = reservation keys derived from the wrong secret value:
        // build a second topology's generator (different SVs/hop keys) and
        // inject its packets here.
        let mut other = LinearTopology::build_seeded(
            2,
            LinkSpec::default(),
            START_NS,
            RouterConfig::default(),
            0xEE,
        );
        let mut forged_gen = other.make_generator(atk(), dst());
        for hop in 0..2 {
            let res = other.make_reservation(hop, 5_000, START_S as u32 - 5, u16::MAX);
            forged_gen.attach_reservation(hop, res).unwrap();
        }
        let entry = topo.as_nodes[0];
        let forged = topo.sim.add_flow(crate::sim::Flow {
            generator: forged_gen,
            entry,
            payload_len: 500,
            interval_ns: 1_000_000,
            start_ns: START_NS,
            stop_ns: START_NS + run_s * SEC,
        });
        topo.sim.run_until(START_NS + (run_s + 1) * SEC);
        let f = topo.sim.stats(forged);
        assert_eq!(f.delivered_pkts, 0);
        assert_eq!(f.router_drops, f.sent_pkts, "all forged packets dropped");
    }

    /// Partial reservations (§3.3 ❸): reserving only the congested hop is
    /// enough when the rest of the path has headroom.
    #[test]
    fn partial_reservation_on_congested_hop_suffices() {
        let mut topo = LinearTopology::build(
            3,
            LinkSpec { bandwidth_bps: 100_000_000, ..Default::default() },
            START_NS,
            RouterConfig::default(),
        );
        let run_s = 2;
        let victim = {
            // Reservation only on hop 1.
            let mut generator = topo.make_generator(src(), dst());
            let res = topo.make_reservation(1, 3_000, START_S as u32 - 5, u16::MAX);
            generator.attach_reservation(1, res).unwrap();
            let entry = topo.as_nodes[0];
            topo.sim.add_flow(crate::sim::Flow {
                generator,
                entry,
                payload_len: 1000,
                interval_ns: 4_000_000, // 2 Mbps
                start_ns: START_NS,
                stop_ns: START_NS + run_s * SEC,
            })
        };
        // Heavy cross traffic: 120 Mbps > the 100 Mbps links.
        let _flood =
            topo.add_cbr_flow(atk(), dst(), 1000, 120_000, None, START_NS, START_NS + run_s * SEC);
        topo.sim.run_until(START_NS + (run_s + 1) * SEC);
        let v = topo.sim.stats(victim);
        // Hop 0 is unreserved and congested: some victim loss is expected
        // there, but hop 1 priority must keep the flow mostly alive
        // relative to a fully unreserved flow (checked loosely).
        assert!(v.sent_pkts > 0);
        assert!(v.delivered_pkts > 0, "partial reservation keeps the flow alive");
    }
}
