//! A diamond (two-path) topology for multi-path experiments — the exact
//! shape of the paper's Fig. 3: a source with two paths `P` and `Q` that
//! share a target AS `T`, with an adversary sitting on `Q` only.
//!
//! ```text
//!            ┌── AS_P ──┐
//!  source ───┤          ├── AS_T ── dest
//!            └── AS_Q ──┘   (shared)
//! ```
//!
//! SCION's path choice is what makes the paper's market liquid (§5.3) and
//! what creates the on-reservation-set adversary class (§5.1); this
//! topology lets tests and examples exercise both with real packets.

use crate::scenario::{
    deploy_engine, family_credential, family_engine, EngineFamily, EngineScenario, LinkSpec,
};
use crate::sim::{Flow, FlowId, NodeId, ServiceModel, Simulator};
use hummingbird_crypto::{ResInfo, SecretValue};
use hummingbird_dataplane::{
    forge_path, BeaconHop, RouterConfig, SourceGenerator, SourceReservation,
};
use hummingbird_wire::bwcls;
use hummingbird_wire::scion_mac::HopMacKey;
use hummingbird_wire::IsdAs;
use std::collections::HashMap;

/// Which of the two disjoint branches a path uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Branch {
    /// The upper branch (`P` in Fig. 3).
    P,
    /// The lower branch (`Q` in Fig. 3 — where the adversary sits).
    Q,
}

/// Interface conventions on the diamond:
/// * branch ASes: ingress 0 (host-facing), egress 1 (toward T);
/// * shared AS T: ingress 2 from P, ingress 3 from Q, egress 0 (local
///   delivery to the destination host).
const BRANCH_EGRESS: u16 = 1;
const T_INGRESS_P: u16 = 2;
const T_INGRESS_Q: u16 = 3;

/// The assembled diamond.
pub struct DiamondTopology {
    /// The simulator, wired.
    pub sim: Simulator,
    /// Branch AS for path P.
    pub as_p: NodeId,
    /// Branch AS for path Q.
    pub as_q: NodeId,
    /// The shared target AS T.
    pub as_t: NodeId,
    /// Destination host behind T.
    pub dest: NodeId,
    keys: HashMap<&'static str, (HopMacKey, SecretValue)>,
    /// Per-AS DRKey masters for the baseline engine families, derived
    /// from the SV bytes like [`crate::LinearTopology`] derives its own.
    masters: HashMap<&'static str, [u8; 16]>,
    info_ts: u32,
    next_res_id: u32,
}

impl DiamondTopology {
    /// Builds the diamond with uniform link parameters. Wiring (and the
    /// DRKey-master derivation) goes through the shared
    /// [`TopologyBuilder`](crate::TopologyBuilder) primitives; only the
    /// branch/T interface convention is owned here.
    pub fn build(link: LinkSpec, start_ns: u64, cfg: RouterConfig) -> Self {
        let mut keys = HashMap::new();
        let mut builder = crate::TopologyBuilder::new(start_ns, cfg);
        let mut ids = Vec::new();
        for (i, (name, seed)) in [("P", 0x11u8), ("Q", 0x22), ("T", 0x33)].iter().enumerate() {
            let sv_bytes = [seed ^ 0xFF; 16];
            keys.insert(*name, (HopMacKey::new([*seed; 16]), SecretValue::new(sv_bytes)));
            ids.push(builder.add_router_keyed(
                [*seed; 16],
                sv_bytes,
                IsdAs::new(1, 0x100 + i as u64),
            ));
        }
        let (p, q, t) = (ids[0], ids[1], ids[2]);
        builder.attach_host(t);
        builder.connect_oneway(p, BRANCH_EGRESS, t, link);
        builder.connect_oneway(q, BRANCH_EGRESS, t, link);
        let parts = builder.into_parts();
        let masters = ["P", "Q", "T"]
            .into_iter()
            .zip(parts.drkey_masters.iter().copied())
            .collect::<HashMap<_, _>>();
        DiamondTopology {
            sim: parts.sim,
            as_p: parts.router_nodes[p],
            as_q: parts.router_nodes[q],
            as_t: parts.router_nodes[t],
            dest: parts.hosts[t].expect("host attached to T"),
            keys,
            masters,
            info_ts: (start_ns / 1_000_000_000) as u32,
            next_res_id: 0,
        }
    }

    fn branch_names(branch: Branch) -> (&'static str, u16) {
        match branch {
            Branch::P => ("P", T_INGRESS_P),
            Branch::Q => ("Q", T_INGRESS_Q),
        }
    }

    /// Swaps every router node's engine for `scenario`'s family (sharded
    /// across `scenario.shards` engines when more than one) — the
    /// multipath face of the family sweep, mirroring
    /// [`crate::LinearTopology::install_engines`].
    pub fn install_engines(&mut self, scenario: EngineScenario, cfg: RouterConfig) {
        for (name, node) in [("P", self.as_p), ("Q", self.as_q), ("T", self.as_t)] {
            let (hop_key, sv) = &self.keys[name];
            let master = &self.masters[name];
            let engine = deploy_engine(scenario, cfg, || {
                family_engine(scenario.family, sv, hop_key, master, cfg)
            });
            self.sim.replace_engine(node, engine).ok().expect("diamond nodes are routers");
        }
    }

    /// Installs `model` on every router node (or clears it with `None`).
    pub fn set_service_model(&mut self, model: Option<ServiceModel>) {
        for node in [self.as_p, self.as_q, self.as_t] {
            self.sim.set_router_service(node, model);
        }
    }

    /// [`add_flow`](DiamondTopology::add_flow) generalized over the
    /// engine family: `credential_kbps` of `Some(r)` attaches the
    /// family's credential at both on-path ASes (the branch AS and T);
    /// `None` sends plain best-effort SCION. Pair with
    /// [`install_engines`](DiamondTopology::install_engines).
    #[allow(clippy::too_many_arguments)]
    pub fn add_family_flow(
        &mut self,
        family: EngineFamily,
        branch: Branch,
        src: IsdAs,
        dst: IsdAs,
        payload_len: usize,
        rate_kbps: u64,
        credential_kbps: Option<u64>,
        start_ns: u64,
        stop_ns: u64,
    ) -> FlowId {
        let (name, t_ingress) = Self::branch_names(branch);
        let mut reservations = Vec::new();
        if let Some(r) = credential_kbps {
            let now_s = start_ns / 1_000_000_000;
            for (hop, as_name, ingress, egress) in
                [(0usize, name, 0u16, BRANCH_EGRESS), (1, "T", t_ingress, 0)]
            {
                let (_, sv) = &self.keys[as_name];
                let credential = family_credential(
                    family,
                    sv,
                    &self.masters[as_name],
                    ingress,
                    egress,
                    &mut self.next_res_id,
                    src,
                    r,
                    now_s,
                );
                reservations.push((hop, credential));
            }
        }
        self.add_flow(branch, src, dst, payload_len, rate_kbps, reservations, start_ns, stop_ns)
    }

    /// A beaconed 2-hop path over `branch` then T.
    pub fn make_generator(&self, branch: Branch, src: IsdAs, dst: IsdAs) -> SourceGenerator {
        let (name, t_ingress) = Self::branch_names(branch);
        let hops = vec![
            BeaconHop {
                key: self.keys[name].0.clone(),
                cons_ingress: 0,
                cons_egress: BRANCH_EGRESS,
            },
            BeaconHop { key: self.keys["T"].0.clone(), cons_ingress: t_ingress, cons_egress: 0 },
        ];
        SourceGenerator::new(src, dst, forge_path(&hops, self.info_ts, 0x5151))
    }

    /// A reservation at the shared AS T for traffic arriving over
    /// `branch`. With `shared_res_id = Some(id)` the caller can force two
    /// paths onto one reservation identity **only if they also share the
    /// ingress interface** — on this topology the two branches enter T on
    /// different interfaces, so per-path reservations are the natural
    /// shape and sharing means reusing the same grant on one branch.
    pub fn reservation_at_t(
        &mut self,
        branch: Branch,
        bw_kbps: u64,
        res_start: u32,
        duration_s: u16,
        shared_res_id: Option<u32>,
    ) -> SourceReservation {
        let (_, t_ingress) = Self::branch_names(branch);
        let res_id = shared_res_id.unwrap_or_else(|| {
            let id = self.next_res_id;
            self.next_res_id += 1;
            id
        });
        let res_info = ResInfo {
            ingress: t_ingress,
            egress: 0,
            res_id,
            bw_encoded: bwcls::encode_ceil(bw_kbps).expect("encodable"),
            res_start,
            duration: duration_s,
        };
        let key = self.keys["T"].1.derive_key(&res_info);
        SourceReservation { res_info, key }
    }

    /// A reservation at the branch AS itself.
    pub fn reservation_at_branch(
        &mut self,
        branch: Branch,
        bw_kbps: u64,
        res_start: u32,
        duration_s: u16,
    ) -> SourceReservation {
        let (name, _) = Self::branch_names(branch);
        let id = self.next_res_id;
        self.next_res_id += 1;
        let res_info = ResInfo {
            ingress: 0,
            egress: BRANCH_EGRESS,
            res_id: id,
            bw_encoded: bwcls::encode_ceil(bw_kbps).expect("encodable"),
            res_start,
            duration: duration_s,
        };
        let key = self.keys[name].1.derive_key(&res_info);
        SourceReservation { res_info, key }
    }

    /// Adds a CBR flow over `branch` with optional reservations at the
    /// branch AS and at T.
    #[allow(clippy::too_many_arguments)]
    pub fn add_flow(
        &mut self,
        branch: Branch,
        src: IsdAs,
        dst: IsdAs,
        payload_len: usize,
        rate_kbps: u64,
        reservations: Vec<(usize, SourceReservation)>,
        start_ns: u64,
        stop_ns: u64,
    ) -> FlowId {
        let mut generator = self.make_generator(branch, src, dst);
        for (hop, res) in reservations {
            generator.attach_reservation(hop, res).expect("matching interfaces");
        }
        let entry = match branch {
            Branch::P => self.as_p,
            Branch::Q => self.as_q,
        };
        let interval_ns = (payload_len as u64 * 8).saturating_mul(1_000_000) / rate_kbps.max(1);
        self.sim.add_flow(Flow { generator, entry, payload_len, interval_ns, start_ns, stop_ns })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const START_S: u64 = 1_700_000_000;
    const START_NS: u64 = START_S * 1_000_000_000;
    const SEC: u64 = 1_000_000_000;

    #[test]
    fn both_branches_deliver() {
        let mut d = DiamondTopology::build(LinkSpec::default(), START_NS, RouterConfig::default());
        let src = IsdAs::new(1, 1);
        let dst = IsdAs::new(2, 2);
        let p = d.add_flow(Branch::P, src, dst, 500, 1_000, vec![], START_NS, START_NS + SEC);
        let q = d.add_flow(Branch::Q, src, dst, 500, 1_000, vec![], START_NS, START_NS + SEC);
        d.sim.run_until(START_NS + 2 * SEC);
        for f in [p, q] {
            let s = d.sim.stats(f);
            assert!(s.delivery_ratio() > 0.99, "flow {f}: {s:?}");
        }
    }

    #[test]
    fn reservations_verify_on_both_hops() {
        let mut d = DiamondTopology::build(LinkSpec::default(), START_NS, RouterConfig::default());
        let res_branch = d.reservation_at_branch(Branch::P, 2_000, START_S as u32 - 5, u16::MAX);
        let res_t = d.reservation_at_t(Branch::P, 2_000, START_S as u32 - 5, u16::MAX, None);
        let src = IsdAs::new(1, 1);
        let dst = IsdAs::new(2, 2);
        let f = d.add_flow(
            Branch::P,
            src,
            dst,
            500,
            1_000,
            vec![(0, res_branch), (1, res_t)],
            START_NS,
            START_NS + SEC,
        );
        d.sim.run_until(START_NS + 2 * SEC);
        let s = d.sim.stats(f);
        assert!(s.delivery_ratio() > 0.99);
        let rs_t = d.sim.router_stats(d.as_t).unwrap();
        assert_eq!(rs_t.flyover, s.sent_pkts, "priority at the shared AS");
    }

    /// The full Fig. 3 shape: the adversary on branch Q duplicates the
    /// source's Q traffic toward T. With per-path reservations at T, the
    /// source's P traffic is untouched.
    #[test]
    fn fig3_adversary_on_q_cannot_touch_p() {
        let mut d = DiamondTopology::build(LinkSpec::default(), START_NS, RouterConfig::default());
        let src = IsdAs::new(1, 1);
        let dst = IsdAs::new(2, 2);
        let run = 2 * SEC;

        // Full-path reservations for both flows, with *separate*
        // reservations at the shared AS T (the §5.4 mitigation).
        let res_p_branch = d.reservation_at_branch(Branch::P, 5_000, START_S as u32 - 5, u16::MAX);
        let res_q_branch = d.reservation_at_branch(Branch::Q, 5_000, START_S as u32 - 5, u16::MAX);
        let res_p = d.reservation_at_t(Branch::P, 5_000, START_S as u32 - 5, u16::MAX, None);
        let res_q = d.reservation_at_t(Branch::Q, 5_000, START_S as u32 - 5, u16::MAX, None);
        let flow_p = d.add_flow(
            Branch::P,
            src,
            dst,
            1000,
            2_000,
            vec![(0, res_p_branch), (1, res_p)],
            START_NS,
            START_NS + run,
        );
        let flow_q = d.add_flow(
            Branch::Q,
            src,
            dst,
            1000,
            2_000,
            vec![(0, res_q_branch), (1, res_q)],
            START_NS,
            START_NS + run,
        );
        // Congestion on the shared links.
        let _flood = d.add_flow(
            Branch::P,
            IsdAs::new(6, 6),
            dst,
            1000,
            30_000,
            vec![],
            START_NS,
            START_NS + run,
        );
        // The adversary duplicates Q's packets into T.
        d.sim.add_replay_tap(flow_q, d.as_t, 19, 200_000);
        d.sim.run_until(START_NS + run + SEC);

        let p = d.sim.stats(flow_p);
        assert!(
            p.delivery_ratio() > 0.99,
            "path P must be isolated from the Q adversary: {}",
            p.delivery_ratio()
        );
    }
}
