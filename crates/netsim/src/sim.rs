//! The discrete-event engine: AS nodes with real Hummingbird border
//! routers, links with two-class strict-priority queues, hosts with
//! constant-bit-rate flows, and adversarial packet injection.
//!
//! This is the testbed substitute for the paper's QoS claims (property D2,
//! §5.4): reservation traffic is prioritized over best effort at every
//! contested link, so congestion and flooding cannot degrade it, while
//! overuse is demoted by deterministic policing.

use crate::flow::{FlowEvent, FlowEventKind, Outstanding, ReactiveFlow, ReactiveState};
use hummingbird_dataplane::{Datapath, DatapathStats, LatencyHistogram, SourceGenerator, Verdict};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Node identifier.
pub type NodeId = usize;
/// Link identifier.
pub type LinkId = usize;
/// Flow identifier.
pub type FlowId = usize;

/// Traffic class on a link (decided by the border router's verdict).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Reservation-protected: strict priority.
    Priority,
    /// Best effort.
    BestEffort,
}

/// A packet in flight, with bookkeeping for statistics.
#[derive(Clone, Debug)]
pub struct SimPacket {
    /// Serialized wire bytes (mutated by routers en route).
    pub bytes: Vec<u8>,
    /// Originating flow.
    pub flow: FlowId,
    /// Send timestamp (ns).
    pub sent_at: u64,
    /// Flow-level sequence number (reactive flows ack by it; always 0
    /// for CBR flows, which have no acknowledgment channel).
    pub seq: u64,
}

/// A unidirectional link between two nodes.
pub struct Link {
    /// Destination node.
    pub to: NodeId,
    /// Serialization rate, bits per second.
    pub bandwidth_bps: u64,
    /// Propagation delay, ns.
    pub propagation_ns: u64,
    /// Per-class queue capacity in bytes (tail drop beyond).
    pub queue_cap_bytes: usize,
    prio: VecDeque<SimPacket>,
    best_effort: VecDeque<SimPacket>,
    prio_bytes: usize,
    be_bytes: usize,
    busy: bool,
    /// Whether the link is up (churn: [`Simulator::set_link_up`]).
    up: bool,
}

impl Link {
    fn new(to: NodeId, bandwidth_bps: u64, propagation_ns: u64, queue_cap_bytes: usize) -> Self {
        Link {
            to,
            bandwidth_bps,
            propagation_ns,
            queue_cap_bytes,
            prio: VecDeque::new(),
            best_effort: VecDeque::new(),
            prio_bytes: 0,
            be_bytes: 0,
            busy: false,
            up: true,
        }
    }

    fn tx_time_ns(&self, bytes: usize) -> u64 {
        (bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bandwidth_bps.max(1)
    }

    /// Pops the next packet, priority first (strict priority scheduling).
    fn pop_next(&mut self) -> Option<SimPacket> {
        if let Some(p) = self.prio.pop_front() {
            self.prio_bytes -= p.bytes.len();
            return Some(p);
        }
        if let Some(p) = self.best_effort.pop_front() {
            self.be_bytes -= p.bytes.len();
            return Some(p);
        }
        None
    }
}

/// What happens to packets arriving at a node.
///
/// (Migration note: `Router` used to hold a concrete
/// `hummingbird_dataplane::BorderRouter`; it now holds any boxed
/// [`Datapath`] engine, so simulations can mix Hummingbird routers,
/// gateways and baseline engines in one topology.)
pub enum Node {
    /// An AS border router: verifies, polices and forwards by interface.
    Router {
        /// The packet-processing engine (owns its keys and policer).
        router: Box<dyn Datapath + Send>,
        /// Egress interface → link. Interface 0 delivers to `local`.
        interfaces: std::collections::HashMap<u16, LinkId>,
        /// Node receiving locally-delivered packets (the destination
        /// host), if any.
        local: Option<NodeId>,
    },
    /// An end host: records deliveries.
    Host,
    /// A blackhole (used to model adversary-controlled sinks).
    Sink,
}

/// Per-flow statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Packets sent by the source.
    pub sent_pkts: u64,
    /// Bytes sent.
    pub sent_bytes: u64,
    /// Packets delivered to the destination host.
    pub delivered_pkts: u64,
    /// Bytes delivered.
    pub delivered_bytes: u64,
    /// Packets dropped by routers (bad MAC, expiry, …).
    pub router_drops: u64,
    /// Packets tail-dropped at link queues.
    pub queue_drops: u64,
    /// Sum of end-to-end latencies (ns) over delivered packets.
    pub latency_sum_ns: u64,
    /// Maximum end-to-end latency (ns).
    pub latency_max_ns: u64,
    /// Deliveries that arrived out of send order (a packet sent *after*
    /// an already-delivered one landing *before* it). Zero whenever the
    /// flow rides one class over one path: strict-priority links and the
    /// router service model are both FIFO within a class.
    pub reordered_pkts: u64,
    /// Packets lost to a downed link (churn): packets handed to a link
    /// while it was down, plus packets drained from its queues at the
    /// moment it went down. A stranded reservation shows up here — the
    /// flow keeps sending onto a dead path until it is rerouted.
    pub link_down_drops: u64,
    /// Path reconfigurations applied to this flow
    /// ([`Simulator::set_flow_route`]): each reroute after a link
    /// failure increments this once.
    pub reroutes: u64,
    /// Retransmissions sent (reactive flows only): copies of a sequence
    /// number beyond its original send. Each is also counted in
    /// `sent_pkts`/`sent_bytes` — it is a real packet on the wire.
    pub retransmits: u64,
    /// Retransmission timers fired (reactive flows only). A timeout
    /// whose packet is out of budget abandons it instead of resending,
    /// so `timeouts ≥ retransmits + abandoned`.
    pub timeouts: u64,
    /// Send opportunities that found the window full (reactive flows
    /// only) — the sender-side face of backpressure: the network is
    /// holding acks, so the source stops offering load.
    pub backpressure_stalls: u64,
    /// Packets tail-dropped at a router's bounded service queue
    /// ([`ServiceModel::queue_pkts`]) — the netsim face of the
    /// runtime's `TxQueueFull`.
    pub service_queue_drops: u64,
    /// End-to-end latency distribution over delivered packets
    /// (log₂-bucketed; [`FlowStats::p99_latency_ms`] reads it).
    pub latency: LatencyHistogram,
}

impl FlowStats {
    /// Mean end-to-end latency in milliseconds; `0.0` when nothing was
    /// delivered (a starved flow reads as zero, never `NaN`).
    pub fn mean_latency_ms(&self) -> f64 {
        if self.delivered_pkts == 0 {
            return 0.0;
        }
        self.latency_sum_ns as f64 / self.delivered_pkts as f64 / 1e6
    }

    /// Delivered goodput over `window_s` seconds, in kbps; `0.0` when
    /// nothing was delivered or the window is empty (never `inf`/`NaN`).
    pub fn goodput_kbps(&self, window_s: f64) -> f64 {
        if self.delivered_bytes == 0 || window_s <= 0.0 {
            return 0.0;
        }
        self.delivered_bytes as f64 * 8.0 / window_s / 1e3
    }

    /// Delivery ratio; `0.0` when nothing was sent (never `NaN`).
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent_pkts == 0 {
            return 0.0;
        }
        self.delivered_pkts as f64 / self.sent_pkts as f64
    }

    /// p99 end-to-end latency in milliseconds, from the log₂ histogram
    /// (±2× bucket resolution); `0.0` when nothing was delivered —
    /// empty populations never panic or read `NaN`.
    pub fn p99_latency_ms(&self) -> f64 {
        self.latency.percentile_ns(0.99) as f64 / 1e6
    }

    /// The stats accrued *since* an `earlier` snapshot of the same flow
    /// — how churn experiments isolate a phase (base window, outage,
    /// post-reroute recovery) out of the cumulative counters. All sums
    /// and counts subtract; `latency_max_ns` and `reroutes` are
    /// cumulative high-water marks and carry the later value.
    pub fn since(&self, earlier: &FlowStats) -> FlowStats {
        FlowStats {
            sent_pkts: self.sent_pkts - earlier.sent_pkts,
            sent_bytes: self.sent_bytes - earlier.sent_bytes,
            delivered_pkts: self.delivered_pkts - earlier.delivered_pkts,
            delivered_bytes: self.delivered_bytes - earlier.delivered_bytes,
            router_drops: self.router_drops - earlier.router_drops,
            queue_drops: self.queue_drops - earlier.queue_drops,
            latency_sum_ns: self.latency_sum_ns - earlier.latency_sum_ns,
            latency_max_ns: self.latency_max_ns,
            reordered_pkts: self.reordered_pkts - earlier.reordered_pkts,
            link_down_drops: self.link_down_drops - earlier.link_down_drops,
            reroutes: self.reroutes,
            retransmits: self.retransmits - earlier.retransmits,
            timeouts: self.timeouts - earlier.timeouts,
            backpressure_stalls: self.backpressure_stalls - earlier.backpressure_stalls,
            service_queue_drops: self.service_queue_drops - earlier.service_queue_drops,
            latency: self.latency.since(&earlier.latency),
        }
    }
}

/// A constant-bit-rate flow.
pub struct Flow {
    /// Source generator (holds path + reservations).
    pub generator: SourceGenerator,
    /// Node the first packet enters (the first on-path AS).
    pub entry: NodeId,
    /// Payload bytes per packet.
    pub payload_len: usize,
    /// Packet interval, ns.
    pub interval_ns: u64,
    /// First send time, ns.
    pub start_ns: u64,
    /// Last send time (exclusive), ns.
    pub stop_ns: u64,
}

/// How a registered flow drives traffic: the open-loop CBR injector,
/// the closed-loop reactive state machine, or a replay tap's pseudo-flow
/// (which only accrues statistics). One slot per [`FlowId`], so flow ids
/// and stats ids are the same index space no matter in which order flows
/// and taps are registered.
enum FlowSlot {
    Cbr(Flow),
    Reactive(Box<ReactiveState>),
    Tap,
}

enum Event {
    FlowSend {
        flow: FlowId,
    },
    /// A reactive flow's next send opportunity (pacing tick).
    ReactiveSend {
        flow: FlowId,
    },
    /// The sender of a reactive flow sees the ack for `seq` (scheduled
    /// `ack_delay_ns` after delivery — the modeled reverse path).
    FlowAck {
        flow: FlowId,
        seq: u64,
    },
    /// A reactive flow's retransmission timer for `seq` fires. Carries
    /// the attempt it armed for: a timer made stale by a newer
    /// retransmission of the same seq is ignored.
    FlowRto {
        flow: FlowId,
        seq: u64,
        attempt: u32,
    },
    Arrival {
        node: NodeId,
        pkt: SimPacket,
    },
    LinkDone {
        link: LinkId,
    },
    /// A router finished serving a packet: hand it to its egress target.
    Egress {
        target: EgressTarget,
        pkt: SimPacket,
        class: Class,
    },
}

/// Where a router's verdict sends a forwarded packet.
#[derive(Clone, Copy, Debug)]
enum EgressTarget {
    /// Local delivery to the attached host.
    Local(NodeId),
    /// Onto an inter-AS link.
    Link(LinkId),
}

/// The per-router packet-service model: how long the router's datapath
/// holds a packet before it reaches the egress queue, and across how
/// many parallel cores.
///
/// `None` (the default) keeps the historical instantaneous forwarding.
/// With a model installed ([`Simulator::set_router_service`]), every
/// forwarded packet is served by the earliest-free of `shards` cores for
/// `per_pkt_ns` — the M/D/c shape of the worker-ring runtime, where a
/// [`hummingbird_dataplane::ShardedRouter`] with `c` shards drains its
/// ingress `c` packets at a time. Feeding the measured per-packet engine
/// cost (e.g. `BENCH_hotpath.json`'s ns/pkt) in here is what lets the
/// Fig. 3/4-style latency sweeps run on the real multi-core datapath
/// numbers instead of zero-cost routers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceModel {
    /// Per-packet service time, ns (one core's datapath cost).
    pub per_pkt_ns: u64,
    /// Parallel cores (≥ 1): the shard count of the deployed engine.
    pub shards: usize,
    /// Bound on packets held by the router (in service + waiting), in
    /// packets; `0` keeps the queue unbounded (the historical shape). A
    /// packet arriving at a full router is tail-dropped into
    /// [`FlowStats::service_queue_drops`] — the netsim counterpart of
    /// the runtime's bounded tx queues, and what turns queueing collapse
    /// into observable loss instead of unbounded delay.
    pub queue_pkts: usize,
}

impl ServiceModel {
    /// An unbounded model: `per_pkt_ns` service across `shards` cores,
    /// no queue bound — the pre-overload-control shape.
    pub fn new(per_pkt_ns: u64, shards: usize) -> Self {
        ServiceModel { per_pkt_ns, shards, queue_pkts: 0 }
    }
}

/// Run-time state of a [`ServiceModel`] on one router node.
struct RouterService {
    per_pkt_ns: u64,
    /// Bound on packets held (in service + waiting); 0 = unbounded.
    queue_pkts: usize,
    /// Per-core busy horizon, ns.
    busy_until: Vec<u64>,
}

impl RouterService {
    /// Packets currently held (in service + waiting) at `now`, derived
    /// from the busy horizons: each core holds
    /// `ceil(remaining_busy / per_pkt_ns)` packets. Stateless, so churn
    /// (engine swaps, reroutes) can never desynchronize an occupancy
    /// counter from the horizons.
    fn occupancy(&self, now: u64) -> usize {
        let per = self.per_pkt_ns.max(1);
        self.busy_until.iter().map(|&b| (b.saturating_sub(now)).div_ceil(per) as usize).sum()
    }

    /// Serves one packet arriving at `now`: the earliest-free core takes
    /// it (first index on ties, so the choice is deterministic) and the
    /// departure time comes back — or `None` when the router is at its
    /// queue bound (the caller tail-drops). Equal service times keep
    /// departures in arrival order — the FIFO-within-class property the
    /// latency tests pin.
    fn try_serve(&mut self, now: u64) -> Option<u64> {
        if self.queue_pkts > 0 && self.occupancy(now) >= self.queue_pkts {
            return None;
        }
        let core = (0..self.busy_until.len())
            .min_by_key(|&i| self.busy_until[i])
            .expect("at least one core");
        let depart = self.busy_until[core].max(now) + self.per_pkt_ns;
        self.busy_until[core] = depart;
        Some(depart)
    }
}

/// An on-path / on-reservation-set duplicating adversary (Fig. 3, §5.4):
/// it observes the victim's packets as they arrive at `inject_at` (an AS
/// the adversary sits in front of) and injects `copies` duplicates there.
/// Duplicates carry valid authentication tags, so without duplicate
/// suppression they pass verification and consume the reservation budget.
pub struct ReplayTap {
    /// The flow being observed.
    pub victim: FlowId,
    /// Node at whose ingress the duplicates appear.
    pub inject_at: NodeId,
    /// Duplicates injected per observed packet.
    pub copies: u32,
    /// Injection delay after observing the packet, ns.
    pub delay_ns: u64,
    /// The adversary's own pseudo-flow id for accounting.
    pub attacker_flow: FlowId,
}

/// The simulator.
pub struct Simulator {
    nodes: Vec<Node>,
    links: Vec<Link>,
    flows: Vec<FlowSlot>,
    stats: Vec<FlowStats>,
    /// Per flow: latest `sent_at` delivered so far (reorder detection).
    newest_delivered: Vec<u64>,
    taps: Vec<ReplayTap>,
    /// Per node: the installed service model, if any.
    services: Vec<Option<RouterService>>,
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
    pending: Vec<Option<Event>>,
    seq: u64,
    now_ns: u64,
    events_processed: u64,
}

impl Simulator {
    /// Creates an empty simulator starting at time `start_ns`.
    pub fn new(start_ns: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            links: Vec::new(),
            flows: Vec::new(),
            stats: Vec::new(),
            newest_delivered: Vec::new(),
            taps: Vec::new(),
            services: Vec::new(),
            queue: BinaryHeap::new(),
            pending: Vec::new(),
            seq: 0,
            now_ns: start_ns,
            events_processed: 0,
        }
    }

    /// Adds a node, returning its ID.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        self.services.push(None);
        self.nodes.len() - 1
    }

    /// Installs (or clears, with `None`) the packet-service model of a
    /// router node: with a model, forwarded packets reach their egress
    /// queue only after the earliest-free of `model.shards` cores has
    /// spent `model.per_pkt_ns` on them, instead of instantaneously.
    pub fn set_router_service(&mut self, node: NodeId, model: Option<ServiceModel>) {
        self.services[node] = model.map(|m| RouterService {
            per_pkt_ns: m.per_pkt_ns,
            queue_pkts: m.queue_pkts,
            busy_until: vec![0; m.shards.max(1)],
        });
    }

    /// Adds a link, returning its ID.
    pub fn add_link(
        &mut self,
        to: NodeId,
        bandwidth_bps: u64,
        propagation_ns: u64,
        queue_cap_bytes: usize,
    ) -> LinkId {
        self.links.push(Link::new(to, bandwidth_bps, propagation_ns, queue_cap_bytes));
        self.links.len() - 1
    }

    /// Wires egress `interface` of router `node` onto `link`.
    pub fn connect_interface(&mut self, node: NodeId, interface: u16, link: LinkId) {
        if let Node::Router { interfaces, .. } = &mut self.nodes[node] {
            interfaces.insert(interface, link);
        }
    }

    /// Re-rates a link (e.g. to narrow one hop of a uniform topology
    /// into the bottleneck). Packets already being serialized keep their
    /// scheduled completion; everything queued serializes at the new
    /// rate.
    pub fn set_link_bandwidth(&mut self, link: LinkId, bandwidth_bps: u64) {
        self.links[link].bandwidth_bps = bandwidth_bps.max(1);
    }

    /// Takes a link down (`up = false`) or restores it (`up = true`) —
    /// the churn primitive behind scheduled link failures.
    ///
    /// Going down drains both class queues immediately (those packets
    /// were committed to a cable that just died; each counts into its
    /// flow's [`FlowStats::link_down_drops`]) and every packet handed to
    /// the link while it is down is dropped the same way. A packet whose
    /// serialization already started keeps its scheduled arrival — it
    /// was on the wire when the link was cut. Restoring the link leaves
    /// the queues empty; traffic flows again from the next enqueue.
    ///
    /// Returns how many queued packets were drained.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) -> u64 {
        let l = &mut self.links[link];
        let was_up = l.up;
        l.up = up;
        if up || !was_up {
            return 0;
        }
        let mut drained_flows = Vec::new();
        while let Some(pkt) = l.pop_next() {
            drained_flows.push(pkt.flow);
        }
        for flow in &drained_flows {
            self.stats[*flow].link_down_drops += 1;
        }
        drained_flows.len() as u64
    }

    /// Whether a link is currently up.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.links[link].up
    }

    /// Wires local delivery of a router node to `host` — packets the
    /// router forwards on egress interface 0 arrive there. No-op on
    /// non-router nodes.
    pub fn set_local_delivery(&mut self, node: NodeId, host: NodeId) {
        if let Node::Router { local, .. } = &mut self.nodes[node] {
            *local = Some(host);
        }
    }

    /// Registers a CBR (open-loop) flow, returning its ID. Send events
    /// are scheduled lazily, one at a time.
    pub fn add_flow(&mut self, flow: Flow) -> FlowId {
        let id = self.flows.len();
        let start = flow.start_ns.max(self.now_ns);
        self.flows.push(FlowSlot::Cbr(flow));
        self.stats.push(FlowStats::default());
        self.newest_delivered.push(0);
        self.schedule(start, Event::FlowSend { flow: id });
        id
    }

    /// Registers a closed-loop [`ReactiveFlow`], returning its ID. The
    /// flow drives itself: sends are paced and window-limited, delivery
    /// acks open the window, timeouts retransmit with backoff until the
    /// per-packet budget runs out, and the flow completes when every
    /// sequence number is acked or abandoned
    /// ([`reactive_done`](Simulator::reactive_done)).
    pub fn add_reactive_flow(&mut self, flow: ReactiveFlow) -> FlowId {
        let id = self.flows.len();
        let start = flow.start_ns.max(self.now_ns);
        let mut state = ReactiveState::new(flow);
        state.send_scheduled = true;
        self.flows.push(FlowSlot::Reactive(Box::new(state)));
        self.stats.push(FlowStats::default());
        self.newest_delivered.push(0);
        self.schedule(start, Event::ReactiveSend { flow: id });
        id
    }

    /// Registers an on-reservation-set replay adversary. The attacker's
    /// pseudo-flow gets its own stats slot, which is returned.
    pub fn add_replay_tap(
        &mut self,
        victim: FlowId,
        inject_at: NodeId,
        copies: u32,
        delay_ns: u64,
    ) -> FlowId {
        let attacker_flow = self.flows.len();
        self.flows.push(FlowSlot::Tap);
        self.stats.push(FlowStats::default());
        self.newest_delivered.push(0);
        self.taps.push(ReplayTap { victim, inject_at, copies, delay_ns, attacker_flow });
        attacker_flow
    }

    /// Statistics of `flow`.
    pub fn stats(&self, flow: FlowId) -> FlowStats {
        self.stats[flow]
    }

    /// Current simulation time, ns.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Events dispatched so far — the sim-throughput denominator the
    /// `netsim_scale` bench reports (events per wall-clock second).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Whether `flow` still has sends ahead of the current sim time:
    /// a CBR flow before its stop time, or a reactive flow that has not
    /// completed. Taps are never active (they have no sends of their
    /// own).
    pub fn flow_is_active(&self, flow: FlowId) -> bool {
        self.flows.get(flow).is_some_and(|f| match f {
            FlowSlot::Cbr(f) => f.stop_ns > self.now_ns,
            FlowSlot::Reactive(st) => !st.done,
            FlowSlot::Tap => false,
        })
    }

    /// Whether a reactive flow has terminated — every sequence number
    /// acked or abandoned. `true` for CBR flows and taps (they have no
    /// open-ended retry state to wait on); useful as a blanket
    /// "nothing is livelocked" check over all flow ids.
    pub fn reactive_done(&self, flow: FlowId) -> bool {
        self.flows.get(flow).is_none_or(|f| match f {
            FlowSlot::Reactive(st) => st.done,
            FlowSlot::Cbr(_) | FlowSlot::Tap => true,
        })
    }

    /// The event timeline of a reactive flow (empty for CBR flows and
    /// taps): every send, retransmit, ack, timeout, stall, abandonment
    /// and the completion marker, in simulation order.
    pub fn flow_events(&self, flow: FlowId) -> &[FlowEvent] {
        match self.flows.get(flow) {
            Some(FlowSlot::Reactive(st)) => &st.events,
            _ => &[],
        }
    }

    /// Reconfigures a flow's path mid-run (churn: reroute after a link
    /// failure): future sends use `generator` — carrying the new path
    /// and its freshly attached credentials — and enter at `entry`.
    /// Packets already in flight finish on the old path. Bumps the
    /// flow's [`FlowStats::reroutes`].
    ///
    /// Panics if `flow` is a replay tap's pseudo-flow (taps observe a
    /// victim; they have no path of their own).
    pub fn set_flow_route(&mut self, flow: FlowId, generator: SourceGenerator, entry: NodeId) {
        match self.flows.get_mut(flow).expect("set_flow_route: unknown flow") {
            FlowSlot::Cbr(f) => {
                f.generator = generator;
                f.entry = entry;
            }
            FlowSlot::Reactive(st) => {
                // Future sends *and retransmissions* regenerate through
                // the new generator — retransmit-driven recovery.
                st.cfg.generator = generator;
                st.cfg.entry = entry;
            }
            FlowSlot::Tap => panic!("set_flow_route: not a real flow"),
        }
        self.stats[flow].reroutes += 1;
    }

    /// Engine statistics of a node, if it is a router.
    pub fn router_stats(&self, node: NodeId) -> Option<DatapathStats> {
        match &self.nodes[node] {
            Node::Router { router, .. } => Some(router.stats()),
            _ => None,
        }
    }

    /// Swaps the packet-processing engine of a router node (e.g. to rerun
    /// a scenario with a baseline engine): `Ok(previous_engine)` on a
    /// router node, `Err(engine)` — handing the argument back — if the
    /// node is not a router.
    #[allow(clippy::result_large_err)]
    pub fn replace_engine(
        &mut self,
        node: NodeId,
        engine: Box<dyn Datapath + Send>,
    ) -> Result<Box<dyn Datapath + Send>, Box<dyn Datapath + Send>> {
        match &mut self.nodes[node] {
            Node::Router { router, .. } => Ok(std::mem::replace(router, engine)),
            _ => Err(engine),
        }
    }

    /// Processes one packet synchronously through a node's engine, outside
    /// the event loop (used by tests and examples to probe verdicts
    /// without scheduling flows).
    pub fn process_at_router(
        &mut self,
        node: NodeId,
        pkt: &mut [u8],
        now_ns: u64,
    ) -> Option<Verdict> {
        match &mut self.nodes[node] {
            Node::Router { router, .. } => Some(router.process(pkt, now_ns)),
            _ => None,
        }
    }

    /// Enqueues `event` at `at_ns`.
    ///
    /// Equal-timestamp determinism contract: the queue orders by
    /// `(time, seq)` with `seq` strictly increasing per `schedule` call,
    /// so events at the same instant dispatch in exactly the order they
    /// were scheduled — FIFO, never heap-arbitrary. This is what makes
    /// reruns bit-identical, and what gives churn a stable tie-break:
    /// [`run_until`](Simulator::run_until) drains every event at `t`
    /// before returning, so an externally applied churn action at `t`
    /// (link down, reboot, reroute) always acts *after* the packet
    /// events of that instant.
    fn schedule(&mut self, at_ns: u64, event: Event) {
        let slot = self.pending.len();
        self.pending.push(Some(event));
        self.queue.push(Reverse((at_ns, self.seq, slot)));
        self.seq += 1;
    }

    /// Runs until `end_ns` inclusive (or until no events remain): every
    /// event with timestamp `<= end_ns` — including ones scheduled
    /// during the run — has been dispatched when this returns, in
    /// `(time, schedule-order)` order.
    pub fn run_until(&mut self, end_ns: u64) {
        while let Some(&Reverse((t, _, slot))) = self.queue.peek() {
            if t > end_ns {
                break;
            }
            self.queue.pop();
            self.now_ns = t;
            let event = self.pending[slot].take().expect("event consumed twice");
            self.events_processed += 1;
            self.dispatch(event);
        }
        self.now_ns = self.now_ns.max(end_ns);
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::FlowSend { flow } => self.handle_flow_send(flow),
            Event::ReactiveSend { flow } => self.handle_reactive_send(flow),
            Event::FlowAck { flow, seq } => self.handle_flow_ack(flow, seq),
            Event::FlowRto { flow, seq, attempt } => self.handle_flow_rto(flow, seq, attempt),
            Event::Arrival { node, pkt } => self.handle_arrival(node, pkt),
            Event::LinkDone { link } => self.handle_link_done(link),
            Event::Egress { target, pkt, class } => self.handle_egress(target, pkt, class),
        }
    }

    fn handle_flow_send(&mut self, flow_id: FlowId) {
        let now = self.now_ns;
        let FlowSlot::Cbr(flow) = &mut self.flows[flow_id] else {
            return;
        };
        if now >= flow.stop_ns {
            return;
        }
        let payload = vec![0u8; flow.payload_len];
        let now_ms = now / 1_000_000;
        let interval = flow.interval_ns;
        let stop_ns = flow.stop_ns;
        let entry = flow.entry;
        match flow.generator.generate(&payload, now_ms) {
            Ok(bytes) => {
                self.stats[flow_id].sent_pkts += 1;
                self.stats[flow_id].sent_bytes += bytes.len() as u64;
                let pkt = SimPacket { bytes, flow: flow_id, sent_at: now, seq: 0 };
                self.schedule(now, Event::Arrival { node: entry, pkt });
            }
            Err(_) => {
                // Generation failure (e.g. reservation not yet active):
                // count as a send that never left the host.
                self.stats[flow_id].sent_pkts += 1;
            }
        }
        let next = now + interval;
        if next < stop_ns {
            self.schedule(next, Event::FlowSend { flow: flow_id });
        }
    }

    /// A reactive flow's pacing tick: send the next new sequence number
    /// if the window has room, else stall (the next ack restarts the
    /// chain). The chain self-perpetuates — each successful new send
    /// schedules the next opportunity one `pacing_ns` later.
    fn handle_reactive_send(&mut self, flow_id: FlowId) {
        let now = self.now_ns;
        let mut to_schedule: Vec<(u64, Event)> = Vec::new();
        {
            let FlowSlot::Reactive(st) = &mut self.flows[flow_id] else {
                return;
            };
            st.send_scheduled = false;
            if st.done || st.next_seq >= st.cfg.total_pkts {
                return;
            }
            if st.outstanding.len() >= st.cfg.window.max(1) {
                // Ack-blocked: the closed loop is doing its job. No
                // reschedule — handle_flow_ack restarts the chain.
                self.stats[flow_id].backpressure_stalls += 1;
                st.events.push(FlowEvent { at_ns: now, kind: FlowEventKind::Stalled });
                return;
            }
            let seq = st.next_seq;
            st.next_seq += 1;
            st.last_send_ns = now;
            self.stats[flow_id].sent_pkts += 1;
            let payload = vec![0u8; st.cfg.payload_len];
            match st.cfg.generator.generate(&payload, now / 1_000_000) {
                Ok(bytes) => {
                    self.stats[flow_id].sent_bytes += bytes.len() as u64;
                    let pkt = SimPacket { bytes, flow: flow_id, sent_at: now, seq };
                    to_schedule.push((now, Event::Arrival { node: st.cfg.entry, pkt }));
                }
                Err(_) => {
                    // Generation failure: the packet never left the
                    // host. It still occupies the window and arms its
                    // timer — the retry path handles it like any loss
                    // (by then the reservation may have become active).
                }
            }
            st.outstanding.insert(seq, Outstanding { attempt: 0, rto_ns: st.cfg.rto_ns });
            st.events.push(FlowEvent { at_ns: now, kind: FlowEventKind::Sent { seq } });
            to_schedule
                .push((now + st.cfg.rto_ns, Event::FlowRto { flow: flow_id, seq, attempt: 0 }));
            if st.next_seq < st.cfg.total_pkts {
                st.send_scheduled = true;
                to_schedule
                    .push((now + st.cfg.pacing_ns.max(1), Event::ReactiveSend { flow: flow_id }));
            }
        }
        for (at, ev) in to_schedule {
            self.schedule(at, ev);
        }
    }

    /// The sender sees an acknowledgment: retire the sequence number,
    /// open the window, restart a stalled send chain.
    fn handle_flow_ack(&mut self, flow_id: FlowId, seq: u64) {
        let now = self.now_ns;
        let mut to_schedule: Vec<(u64, Event)> = Vec::new();
        {
            let FlowSlot::Reactive(st) = &mut self.flows[flow_id] else {
                return;
            };
            if st.done || st.outstanding.remove(&seq).is_none() {
                // Spurious ack: a retransmission's original copy also
                // arrived, or the seq was already abandoned.
                return;
            }
            st.acked += 1;
            st.events.push(FlowEvent { at_ns: now, kind: FlowEventKind::Acked { seq } });
            Self::after_retire(st, flow_id, now, &mut to_schedule);
        }
        for (at, ev) in to_schedule {
            self.schedule(at, ev);
        }
    }

    /// A retransmission timer fires: resend through the flow's *current*
    /// generator with doubled (capped) RTO, or abandon the sequence
    /// number once its budget is spent.
    fn handle_flow_rto(&mut self, flow_id: FlowId, seq: u64, attempt: u32) {
        let now = self.now_ns;
        let mut to_schedule: Vec<(u64, Event)> = Vec::new();
        {
            let FlowSlot::Reactive(st) = &mut self.flows[flow_id] else {
                return;
            };
            if st.done {
                return;
            }
            let Some(out) = st.outstanding.get_mut(&seq) else {
                return; // already acked
            };
            if out.attempt != attempt {
                return; // stale timer from a superseded attempt
            }
            self.stats[flow_id].timeouts += 1;
            st.events.push(FlowEvent { at_ns: now, kind: FlowEventKind::Timeout { seq } });
            if out.attempt >= st.cfg.max_retransmits {
                st.outstanding.remove(&seq);
                st.abandoned += 1;
                st.events.push(FlowEvent { at_ns: now, kind: FlowEventKind::Abandoned { seq } });
                Self::after_retire(st, flow_id, now, &mut to_schedule);
            } else {
                out.attempt += 1;
                out.rto_ns = out.rto_ns.saturating_mul(2).min(st.cfg.rto_max_ns.max(1));
                let next_attempt = out.attempt;
                let next_rto = out.rto_ns;
                self.stats[flow_id].retransmits += 1;
                self.stats[flow_id].sent_pkts += 1;
                let payload = vec![0u8; st.cfg.payload_len];
                // Regenerate through the *current* generator: a reroute
                // applied since the original send puts the retry on the
                // new path.
                if let Ok(bytes) = st.cfg.generator.generate(&payload, now / 1_000_000) {
                    self.stats[flow_id].sent_bytes += bytes.len() as u64;
                    let pkt = SimPacket { bytes, flow: flow_id, sent_at: now, seq };
                    to_schedule.push((now, Event::Arrival { node: st.cfg.entry, pkt }));
                }
                st.events.push(FlowEvent {
                    at_ns: now,
                    kind: FlowEventKind::Retransmit { seq, attempt: next_attempt },
                });
                to_schedule.push((
                    now + next_rto,
                    Event::FlowRto { flow: flow_id, seq, attempt: next_attempt },
                ));
            }
        }
        for (at, ev) in to_schedule {
            self.schedule(at, ev);
        }
    }

    /// Common tail of ack and abandon: check completion, and restart the
    /// send chain if it stalled on the window this retirement just
    /// opened (respecting the pacing floor).
    fn after_retire(
        st: &mut ReactiveState,
        flow_id: FlowId,
        now: u64,
        to_schedule: &mut Vec<(u64, Event)>,
    ) {
        if st.complete() {
            st.done = true;
            st.events.push(FlowEvent { at_ns: now, kind: FlowEventKind::Completed });
            return;
        }
        if !st.send_scheduled && st.next_seq < st.cfg.total_pkts {
            st.send_scheduled = true;
            let at = now.max(st.last_send_ns + st.cfg.pacing_ns.max(1));
            to_schedule.push((at, Event::ReactiveSend { flow: flow_id }));
        }
    }

    fn handle_arrival(&mut self, node_id: NodeId, pkt: SimPacket) {
        let now = self.now_ns;
        // Duplicating adversaries observe the packet as it arrives and
        // inject copies at the same ingress shortly after.
        let tap_copies: Vec<(u32, u64, FlowId)> = self
            .taps
            .iter()
            .filter(|t| t.victim == pkt.flow && t.inject_at == node_id)
            .map(|t| (t.copies, t.delay_ns, t.attacker_flow))
            .collect();
        for (copies, delay, attacker_flow) in tap_copies {
            // Copies are spread `delay_ns` apart so the attacker keeps the
            // token bucket pinned right up to the next original packet —
            // the timing that makes the §5.4 attack effective.
            for c in 0..copies {
                let mut copy = pkt.clone();
                copy.flow = attacker_flow;
                self.stats[attacker_flow].sent_pkts += 1;
                self.stats[attacker_flow].sent_bytes += copy.bytes.len() as u64;
                self.schedule(
                    now + delay * (u64::from(c) + 1),
                    Event::Arrival { node: node_id, pkt: copy },
                );
            }
        }
        match &mut self.nodes[node_id] {
            Node::Host | Node::Sink => {
                let st = &mut self.stats[pkt.flow];
                st.delivered_pkts += 1;
                st.delivered_bytes += pkt.bytes.len() as u64;
                let lat = now - pkt.sent_at;
                st.latency_sum_ns = st.latency_sum_ns.saturating_add(lat);
                st.latency_max_ns = st.latency_max_ns.max(lat);
                st.latency.record(lat);
                let newest = &mut self.newest_delivered[pkt.flow];
                if st.delivered_pkts > 1 && pkt.sent_at < *newest {
                    st.reordered_pkts += 1;
                }
                *newest = (*newest).max(pkt.sent_at);
                // Closed loop: delivery of a reactive flow's packet
                // schedules the sender-side ack after the modeled
                // reverse-path delay.
                if let FlowSlot::Reactive(rst) = &self.flows[pkt.flow] {
                    let delay = rst.cfg.ack_delay_ns;
                    self.schedule(now + delay, Event::FlowAck { flow: pkt.flow, seq: pkt.seq });
                }
            }
            Node::Router { router, interfaces, local } => {
                let mut bytes = pkt.bytes;
                let verdict = router.process(&mut bytes, now);
                let pkt = SimPacket { bytes, ..pkt };
                match verdict {
                    Verdict::Drop(_) => {
                        self.stats[pkt.flow].router_drops += 1;
                    }
                    Verdict::Flyover { egress } | Verdict::BestEffort { egress } => {
                        let class =
                            if verdict.is_flyover() { Class::Priority } else { Class::BestEffort };
                        // Resolve the egress target while the node borrow
                        // is live; the forwarding itself may be delayed by
                        // the node's service model.
                        let target = if egress == 0 {
                            local.map(EgressTarget::Local)
                        } else {
                            interfaces.get(&egress).map(|&l| EgressTarget::Link(l))
                        };
                        match target {
                            None => self.stats[pkt.flow].router_drops += 1,
                            Some(target) => {
                                let depart = match &mut self.services[node_id] {
                                    Some(svc) => svc.try_serve(now),
                                    None => Some(now),
                                };
                                match depart {
                                    // The router's bounded queue is
                                    // full: tail drop, named counter.
                                    None => {
                                        self.stats[pkt.flow].service_queue_drops += 1;
                                    }
                                    Some(depart) if depart <= now => {
                                        self.handle_egress(target, pkt, class);
                                    }
                                    Some(depart) => {
                                        self.schedule(depart, Event::Egress { target, pkt, class });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Hands a served packet to its egress target: the attached host
    /// (scheduled as an immediate arrival) or a link's two-class queue.
    fn handle_egress(&mut self, target: EgressTarget, pkt: SimPacket, class: Class) {
        match target {
            EgressTarget::Local(host) => {
                let now = self.now_ns;
                self.schedule(now, Event::Arrival { node: host, pkt });
            }
            EgressTarget::Link(link_id) => self.enqueue_on_link(link_id, pkt, class),
        }
    }

    fn enqueue_on_link(&mut self, link_id: LinkId, pkt: SimPacket, class: Class) {
        let now = self.now_ns;
        let link = &mut self.links[link_id];
        if !link.up {
            self.stats[pkt.flow].link_down_drops += 1;
            return;
        }
        if !link.busy {
            link.busy = true;
            let done = now + link.tx_time_ns(pkt.bytes.len());
            let arrive = done + link.propagation_ns;
            let to = link.to;
            self.schedule(done, Event::LinkDone { link: link_id });
            self.schedule(arrive, Event::Arrival { node: to, pkt });
        } else {
            let (queue, bytes_used) = match class {
                Class::Priority => (&mut link.prio, &mut link.prio_bytes),
                Class::BestEffort => (&mut link.best_effort, &mut link.be_bytes),
            };
            if *bytes_used + pkt.bytes.len() <= link.queue_cap_bytes {
                *bytes_used += pkt.bytes.len();
                queue.push_back(pkt);
            } else {
                self.stats[pkt.flow].queue_drops += 1;
            }
        }
    }

    fn handle_link_done(&mut self, link_id: LinkId) {
        let now = self.now_ns;
        let link = &mut self.links[link_id];
        if !link.up {
            // The queues were drained when the link went down; the
            // serializer just goes idle.
            link.busy = false;
            return;
        }
        match link.pop_next() {
            Some(pkt) => {
                let done = now + link.tx_time_ns(pkt.bytes.len());
                let arrive = done + link.propagation_ns;
                let to = link.to;
                self.schedule(done, Event::LinkDone { link: link_id });
                self.schedule(arrive, Event::Arrival { node: to, pkt });
            }
            None => {
                link.busy = false;
            }
        }
    }
}
