//! Scenario builders: linear AS topologies with Hummingbird routers,
//! ready-made flows, and reservation plumbing for the QoS experiments —
//! plus the [`EngineScenario`] config that reruns any experiment with
//! every node swapped to a baseline engine family (Helia, DRKey, EPIC),
//! optionally sharded.

use crate::sim::{Flow, FlowId, Node, NodeId, Simulator};
use hummingbird_baselines::drkey::{epoch_of, DrKeySecret, EPOCH_SECS};
use hummingbird_baselines::engine::helia_packet_key;
use hummingbird_baselines::{
    epic_auth_key, slot_of, DrKeyDatapath, EpicDatapath, HeliaDatapath, SLOT_SECS,
};
use hummingbird_crypto::{AuthKey, ResInfo, SecretValue};
use hummingbird_dataplane::{
    forge_path, BeaconHop, Datapath, DatapathBuilder, RouterConfig, ShardedRouter, SourceGenerator,
    SourceReservation, Steering,
};
use hummingbird_wire::bwcls;
use hummingbird_wire::scion_mac::HopMacKey;
use hummingbird_wire::IsdAs;
use std::collections::HashMap;

/// The host address every [`SourceGenerator`]-built packet carries —
/// what the source-keyed baseline engines (DRKey, EPIC) derive their
/// per-host keys from.
const SRC_HOST: [u8; 4] = [0, 0, 0, 1];

/// Which engine family a scenario's router nodes run.
///
/// The same topology, flows and adversaries rerun against any family;
/// what changes is the credential attached per hop (reservation key,
/// Helia grant, DRKey/EPIC host key) and therefore which of the paper's
/// properties hold — D1 source/path authentication, D2 bandwidth
/// protection, or both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineFamily {
    /// Hummingbird border routers (reservations, policing, priority).
    Hummingbird,
    /// Helia-style fixed-slot engines (per-slot grants, priority).
    Helia,
    /// DRKey-only source authentication (no priority class).
    Drkey,
    /// EPIC L1-style per-packet path validation (strict freshness,
    /// replay suppression, no priority class).
    Epic,
}

impl EngineFamily {
    /// Every family, in comparison order.
    pub const ALL: [EngineFamily; 4] =
        [EngineFamily::Hummingbird, EngineFamily::Helia, EngineFamily::Drkey, EngineFamily::Epic];

    /// Stable display name (matches `Datapath::engine_name`).
    pub fn name(&self) -> &'static str {
        match self {
            EngineFamily::Hummingbird => "hummingbird",
            EngineFamily::Helia => "helia",
            EngineFamily::Drkey => "drkey",
            EngineFamily::Epic => "epic",
        }
    }

    /// Whether validated traffic of this family can ride the priority
    /// class (the D2 axis of the sweep).
    pub fn has_priority_class(&self) -> bool {
        matches!(self, EngineFamily::Hummingbird | EngineFamily::Helia)
    }

    /// The shard steering that keeps this family's per-flow state on one
    /// shard: reservation ranges for policer-keyed engines, the source
    /// hash for the source-keyed EPIC/DRKey engines.
    pub fn steering(&self) -> Steering {
        match self {
            EngineFamily::Hummingbird | EngineFamily::Helia => Steering::ByReservation,
            EngineFamily::Drkey | EngineFamily::Epic => Steering::BySource,
        }
    }
}

/// One rerun configuration of a QoS/DoS experiment: which engine family
/// every router node runs, and across how many shards.
///
/// Apply with [`LinearTopology::install_engines`]; attach matching
/// per-hop credentials to flows with
/// [`LinearTopology::add_family_cbr_flow`].
#[derive(Clone, Copy, Debug)]
pub struct EngineScenario {
    /// The engine family under test.
    pub family: EngineFamily,
    /// Shards per router node (`1` = a plain single engine).
    pub shards: usize,
}

/// A linear chain of `n` ASes with a destination host behind the last one.
///
/// Interface convention: AS `i` has ingress `2i` (0 at the first AS, where
/// sources inject directly) and egress `2i+1` (0 at the last AS, meaning
/// local delivery to the attached host).
pub struct LinearTopology {
    /// The simulator, pre-wired.
    pub sim: Simulator,
    /// Router node per AS.
    pub as_nodes: Vec<NodeId>,
    /// The destination host node.
    pub dest_host: NodeId,
    hop_keys: Vec<HopMacKey>,
    svs: Vec<SecretValue>,
    /// Per-AS DRKey masters for the baseline engine families (derived
    /// from the SV bytes so seeded topologies stay mutually rejecting).
    drkey_masters: Vec<[u8; 16]>,
    info_ts: u32,
    beta0: u16,
    next_res_id: u32,
}

/// Link parameters for a topology.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// Bits per second.
    pub bandwidth_bps: u64,
    /// Propagation delay, ns.
    pub propagation_ns: u64,
    /// Per-class queue capacity, bytes.
    pub queue_cap_bytes: usize,
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec {
            bandwidth_bps: 10_000_000, // 10 Mbps bottlenecks by default
            propagation_ns: 1_000_000, // 1 ms
            queue_cap_bytes: 64 * 1024,
        }
    }
}

impl LinearTopology {
    /// Interface pair of AS `i` in an `n`-AS chain.
    pub fn interfaces(n: usize, i: usize) -> (u16, u16) {
        let ingress = if i == 0 { 0 } else { 2 * i as u16 };
        let egress = if i == n - 1 { 0 } else { 2 * i as u16 + 1 };
        (ingress, egress)
    }

    /// Builds an `n`-AS chain starting at simulated time `start_ns`.
    pub fn build(n: usize, link: LinkSpec, start_ns: u64, cfg: RouterConfig) -> Self {
        Self::build_seeded(n, link, start_ns, cfg, 0)
    }

    /// Like [`LinearTopology::build`] but with distinct AS key material per
    /// `seed` — two topologies with different seeds reject each other's
    /// packets.
    pub fn build_seeded(
        n: usize,
        link: LinkSpec,
        start_ns: u64,
        cfg: RouterConfig,
        seed: u8,
    ) -> Self {
        let hop_keys = (0..n)
            .map(|i| {
                let mut k = [0x21 + i as u8; 16];
                k[15] = seed;
                k
            })
            .collect();
        let sv_keys = (0..n)
            .map(|i| {
                let mut k = [0x51 + i as u8; 16];
                k[15] = seed;
                k
            })
            .collect();
        Self::build_with_keys(n, link, start_ns, cfg, hop_keys, sv_keys)
    }

    /// Builds a chain with explicit AS key material — how the end-to-end
    /// testbed wires the same secrets into both the control-plane
    /// `AsService`s and the simulated border routers.
    pub fn build_with_keys(
        n: usize,
        link: LinkSpec,
        start_ns: u64,
        cfg: RouterConfig,
        hop_key_bytes: Vec<[u8; 16]>,
        sv_key_bytes: Vec<[u8; 16]>,
    ) -> Self {
        assert!(n >= 1);
        assert_eq!(hop_key_bytes.len(), n);
        assert_eq!(sv_key_bytes.len(), n);
        let drkey_masters: Vec<[u8; 16]> = sv_key_bytes
            .iter()
            .map(|k| {
                let mut m = *k;
                m[0] ^= 0xA5; // distinct hierarchy root per AS
                m
            })
            .collect();
        let hop_keys: Vec<HopMacKey> = hop_key_bytes.into_iter().map(HopMacKey::new).collect();
        let svs: Vec<SecretValue> = sv_key_bytes.into_iter().map(SecretValue::new).collect();
        let mut sim = Simulator::new(start_ns);
        let dest_host = sim.add_node(Node::Host);
        let as_nodes: Vec<NodeId> = (0..n)
            .map(|i| {
                sim.add_node(Node::Router {
                    router: DatapathBuilder::new(svs[i].clone(), hop_keys[i].clone())
                        .config(cfg)
                        .build_boxed(),
                    interfaces: HashMap::new(),
                    local: if i == n - 1 { Some(dest_host) } else { None },
                })
            })
            .collect();
        // Wire AS i's egress to AS i+1.
        for i in 0..n - 1 {
            let l = sim.add_link(
                as_nodes[i + 1],
                link.bandwidth_bps,
                link.propagation_ns,
                link.queue_cap_bytes,
            );
            let (_, egress) = Self::interfaces(n, i);
            sim.connect_interface(as_nodes[i], egress, l);
        }
        let info_ts = (start_ns / 1_000_000_000) as u32;
        LinearTopology {
            sim,
            as_nodes,
            dest_host,
            hop_keys,
            svs,
            drkey_masters,
            info_ts,
            beta0: 0x4242,
            next_res_id: 0,
        }
    }

    /// Number of ASes.
    pub fn n_ases(&self) -> usize {
        self.as_nodes.len()
    }

    /// A fresh, stand-alone [`Datapath`] engine with hop `i`'s secrets —
    /// for probing packets outside the simulator (the in-simulator
    /// engines live in the router nodes).
    pub fn make_hop_engine(&self, hop: usize, cfg: RouterConfig) -> Box<dyn Datapath + Send> {
        DatapathBuilder::new(self.svs[hop].clone(), self.hop_keys[hop].clone())
            .config(cfg)
            .build_boxed()
    }

    /// Hop `i`'s router sharded across `shards` engines behind the
    /// [`ShardedRouter`] facade — a drop-in for
    /// [`Simulator::replace_engine`], so any scenario can rerun with a
    /// multi-core router node and identical verdicts (the facade steers
    /// every ResID to the one shard that polices it).
    pub fn make_sharded_hop_engine(
        &self,
        hop: usize,
        cfg: RouterConfig,
        shards: usize,
    ) -> Box<dyn Datapath + Send> {
        Box::new(ShardedRouter::from_fn(shards, cfg.policer_slots, |_| {
            self.make_hop_engine(hop, cfg)
        }))
    }

    /// A fresh, stand-alone engine of `family` with hop `i`'s secrets —
    /// the per-family generalization of
    /// [`make_hop_engine`](LinearTopology::make_hop_engine).
    pub fn make_family_hop_engine(
        &self,
        family: EngineFamily,
        hop: usize,
        cfg: RouterConfig,
    ) -> Box<dyn Datapath + Send> {
        match family {
            EngineFamily::Hummingbird => self.make_hop_engine(hop, cfg),
            EngineFamily::Helia => Box::new(HeliaDatapath::new(
                self.drkey_masters[hop],
                self.hop_keys[hop].clone(),
                cfg,
            )),
            EngineFamily::Drkey => {
                Box::new(DrKeyDatapath::new(self.drkey_masters[hop], self.hop_keys[hop].clone()))
            }
            EngineFamily::Epic => Box::new(EpicDatapath::new(
                self.drkey_masters[hop],
                self.hop_keys[hop].clone(),
                cfg,
            )),
        }
    }

    /// Swaps every router node's engine for `scenario`'s family, sharded
    /// across `scenario.shards` engines when more than one — the knob
    /// that reruns a whole QoS/DoS experiment per engine family on
    /// unchanged topology, flows and adversaries.
    pub fn install_engines(&mut self, scenario: EngineScenario, cfg: RouterConfig) {
        for hop in 0..self.n_ases() {
            let engine: Box<dyn Datapath + Send> = if scenario.shards > 1 {
                Box::new(ShardedRouter::new(
                    (0..scenario.shards)
                        .map(|_| self.make_family_hop_engine(scenario.family, hop, cfg))
                        .collect(),
                    cfg.policer_slots,
                    scenario.family.steering(),
                ))
            } else {
                self.make_family_hop_engine(scenario.family, hop, cfg)
            };
            self.sim.replace_engine(self.as_nodes[hop], engine).ok().expect("AS nodes are routers");
        }
    }

    /// Builds a fresh source generator over the chain's beaconed path.
    pub fn make_generator(&self, src: IsdAs, dst: IsdAs) -> SourceGenerator {
        let n = self.n_ases();
        let hops: Vec<BeaconHop> = (0..n)
            .map(|i| {
                let (ingress, egress) = Self::interfaces(n, i);
                BeaconHop {
                    key: self.hop_keys[i].clone(),
                    cons_ingress: ingress,
                    cons_egress: egress,
                }
            })
            .collect();
        SourceGenerator::new(src, dst, forge_path(&hops, self.info_ts, self.beta0))
    }

    /// Creates a reservation for hop `i` at `bw_kbps`, valid over
    /// `[res_start, res_start + duration_s)`, with a fresh ResID.
    pub fn make_reservation(
        &mut self,
        hop: usize,
        bw_kbps: u64,
        res_start: u32,
        duration_s: u16,
    ) -> SourceReservation {
        let n = self.n_ases();
        let (ingress, egress) = Self::interfaces(n, hop);
        let res_id = self.next_res_id;
        self.next_res_id += 1;
        let res_info = ResInfo {
            ingress,
            egress,
            res_id,
            bw_encoded: bwcls::encode_ceil(bw_kbps).expect("encodable bandwidth"),
            res_start,
            duration: duration_s,
        };
        let key = self.svs[hop].derive_key(&res_info);
        SourceReservation { res_info, key }
    }

    /// Adds a CBR flow over the full chain. `reserved_kbps` of `Some(r)`
    /// attaches reservations of rate `r` on *every* hop; `None` sends best
    /// effort. (The Hummingbird special case of
    /// [`add_family_cbr_flow`](LinearTopology::add_family_cbr_flow).)
    #[allow(clippy::too_many_arguments)]
    pub fn add_cbr_flow(
        &mut self,
        src: IsdAs,
        dst: IsdAs,
        payload_len: usize,
        rate_kbps: u64,
        reserved_kbps: Option<u64>,
        start_ns: u64,
        stop_ns: u64,
    ) -> FlowId {
        self.add_family_cbr_flow(
            EngineFamily::Hummingbird,
            src,
            dst,
            payload_len,
            rate_kbps,
            reserved_kbps,
            start_ns,
            stop_ns,
        )
    }

    /// The per-hop credential a `family` sender attaches for hop `hop`:
    /// a Hummingbird reservation, a Helia slot grant, or a DRKey/EPIC
    /// per-source key — each derived exactly as that hop's
    /// [`make_family_hop_engine`](LinearTopology::make_family_hop_engine)
    /// engine re-derives it.
    ///
    /// `bw_kbps` is the granted rate for the reservation families and
    /// ignored by the authentication-only ones (DRKey/EPIC have no
    /// bandwidth axis — the contrast the family sweep exists to show).
    /// Helia grants cover the 16 s slot containing `now_s`, so a run
    /// crossing a slot boundary goes stale mid-flow, exactly as in the
    /// real system.
    pub fn make_family_credential(
        &mut self,
        family: EngineFamily,
        hop: usize,
        src: IsdAs,
        bw_kbps: u64,
        now_s: u64,
    ) -> SourceReservation {
        let n = self.n_ases();
        let (ingress, egress) = Self::interfaces(n, hop);
        let master = &self.drkey_masters[hop];
        match family {
            EngineFamily::Hummingbird => {
                self.make_reservation(hop, bw_kbps, now_s.saturating_sub(5) as u32, u16::MAX)
            }
            EngineFamily::Helia => {
                let slot = slot_of(now_s);
                let res_id = self.next_res_id;
                self.next_res_id += 1;
                let bw_encoded = bwcls::encode_floor(bw_kbps).expect("encodable AS-assigned share");
                let key = helia_packet_key(master, src, slot, res_id, bw_encoded);
                SourceReservation {
                    res_info: ResInfo {
                        ingress,
                        egress,
                        res_id,
                        bw_encoded,
                        res_start: (slot * SLOT_SECS) as u32,
                        duration: SLOT_SECS as u16,
                    },
                    key: AuthKey::new(key),
                }
            }
            EngineFamily::Drkey | EngineFamily::Epic => {
                let epoch = epoch_of(now_s);
                let secret = DrKeySecret::derive(master, epoch);
                let key = if family == EngineFamily::Epic {
                    epic_auth_key(&secret, src, SRC_HOST)
                } else {
                    secret.as_to_host(src, SRC_HOST)
                };
                SourceReservation {
                    res_info: ResInfo {
                        ingress,
                        egress,
                        res_id: 0,
                        bw_encoded: 0,
                        res_start: (epoch * EPOCH_SECS) as u32,
                        duration: u16::MAX, // covers the 6 h epoch
                    },
                    key: AuthKey::new(key),
                }
            }
        }
    }

    /// [`add_cbr_flow`](LinearTopology::add_cbr_flow) generalized over
    /// the engine family: `credential_kbps` of `Some(r)` attaches the
    /// family's per-hop credential on *every* hop (reservation keys,
    /// Helia grants, or DRKey/EPIC source keys); `None` sends plain
    /// best-effort SCION. Pair with
    /// [`install_engines`](LinearTopology::install_engines) so routers
    /// and senders agree on the key hierarchy.
    #[allow(clippy::too_many_arguments)]
    pub fn add_family_cbr_flow(
        &mut self,
        family: EngineFamily,
        src: IsdAs,
        dst: IsdAs,
        payload_len: usize,
        rate_kbps: u64,
        credential_kbps: Option<u64>,
        start_ns: u64,
        stop_ns: u64,
    ) -> FlowId {
        let mut generator = self.make_generator(src, dst);
        if let Some(r) = credential_kbps {
            let now_s = start_ns / 1_000_000_000;
            for hop in 0..self.n_ases() {
                let credential = self.make_family_credential(family, hop, src, r, now_s);
                generator.attach_reservation(hop, credential).expect("matching interfaces");
            }
        }
        let interval_ns = (payload_len as u64 * 8).saturating_mul(1_000_000) / rate_kbps.max(1);
        let entry = self.as_nodes[0];
        self.sim.add_flow(Flow { generator, entry, payload_len, interval_ns, start_ns, stop_ns })
    }
}
