//! Scenario builders: linear AS topologies with Hummingbird routers,
//! ready-made flows, and reservation plumbing for the QoS experiments.

use crate::sim::{Flow, FlowId, Node, NodeId, Simulator};
use hummingbird_crypto::{ResInfo, SecretValue};
use hummingbird_dataplane::{
    forge_path, BeaconHop, Datapath, DatapathBuilder, RouterConfig, ShardedRouter, SourceGenerator,
    SourceReservation,
};
use hummingbird_wire::bwcls;
use hummingbird_wire::scion_mac::HopMacKey;
use hummingbird_wire::IsdAs;
use std::collections::HashMap;

/// A linear chain of `n` ASes with a destination host behind the last one.
///
/// Interface convention: AS `i` has ingress `2i` (0 at the first AS, where
/// sources inject directly) and egress `2i+1` (0 at the last AS, meaning
/// local delivery to the attached host).
pub struct LinearTopology {
    /// The simulator, pre-wired.
    pub sim: Simulator,
    /// Router node per AS.
    pub as_nodes: Vec<NodeId>,
    /// The destination host node.
    pub dest_host: NodeId,
    hop_keys: Vec<HopMacKey>,
    svs: Vec<SecretValue>,
    info_ts: u32,
    beta0: u16,
    next_res_id: u32,
}

/// Link parameters for a topology.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// Bits per second.
    pub bandwidth_bps: u64,
    /// Propagation delay, ns.
    pub propagation_ns: u64,
    /// Per-class queue capacity, bytes.
    pub queue_cap_bytes: usize,
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec {
            bandwidth_bps: 10_000_000, // 10 Mbps bottlenecks by default
            propagation_ns: 1_000_000, // 1 ms
            queue_cap_bytes: 64 * 1024,
        }
    }
}

impl LinearTopology {
    /// Interface pair of AS `i` in an `n`-AS chain.
    pub fn interfaces(n: usize, i: usize) -> (u16, u16) {
        let ingress = if i == 0 { 0 } else { 2 * i as u16 };
        let egress = if i == n - 1 { 0 } else { 2 * i as u16 + 1 };
        (ingress, egress)
    }

    /// Builds an `n`-AS chain starting at simulated time `start_ns`.
    pub fn build(n: usize, link: LinkSpec, start_ns: u64, cfg: RouterConfig) -> Self {
        Self::build_seeded(n, link, start_ns, cfg, 0)
    }

    /// Like [`LinearTopology::build`] but with distinct AS key material per
    /// `seed` — two topologies with different seeds reject each other's
    /// packets.
    pub fn build_seeded(
        n: usize,
        link: LinkSpec,
        start_ns: u64,
        cfg: RouterConfig,
        seed: u8,
    ) -> Self {
        let hop_keys = (0..n)
            .map(|i| {
                let mut k = [0x21 + i as u8; 16];
                k[15] = seed;
                k
            })
            .collect();
        let sv_keys = (0..n)
            .map(|i| {
                let mut k = [0x51 + i as u8; 16];
                k[15] = seed;
                k
            })
            .collect();
        Self::build_with_keys(n, link, start_ns, cfg, hop_keys, sv_keys)
    }

    /// Builds a chain with explicit AS key material — how the end-to-end
    /// testbed wires the same secrets into both the control-plane
    /// `AsService`s and the simulated border routers.
    pub fn build_with_keys(
        n: usize,
        link: LinkSpec,
        start_ns: u64,
        cfg: RouterConfig,
        hop_key_bytes: Vec<[u8; 16]>,
        sv_key_bytes: Vec<[u8; 16]>,
    ) -> Self {
        assert!(n >= 1);
        assert_eq!(hop_key_bytes.len(), n);
        assert_eq!(sv_key_bytes.len(), n);
        let hop_keys: Vec<HopMacKey> = hop_key_bytes.into_iter().map(HopMacKey::new).collect();
        let svs: Vec<SecretValue> = sv_key_bytes.into_iter().map(SecretValue::new).collect();
        let mut sim = Simulator::new(start_ns);
        let dest_host = sim.add_node(Node::Host);
        let as_nodes: Vec<NodeId> = (0..n)
            .map(|i| {
                sim.add_node(Node::Router {
                    router: DatapathBuilder::new(svs[i].clone(), hop_keys[i].clone())
                        .config(cfg)
                        .build_boxed(),
                    interfaces: HashMap::new(),
                    local: if i == n - 1 { Some(dest_host) } else { None },
                })
            })
            .collect();
        // Wire AS i's egress to AS i+1.
        for i in 0..n - 1 {
            let l = sim.add_link(
                as_nodes[i + 1],
                link.bandwidth_bps,
                link.propagation_ns,
                link.queue_cap_bytes,
            );
            let (_, egress) = Self::interfaces(n, i);
            sim.connect_interface(as_nodes[i], egress, l);
        }
        let info_ts = (start_ns / 1_000_000_000) as u32;
        LinearTopology {
            sim,
            as_nodes,
            dest_host,
            hop_keys,
            svs,
            info_ts,
            beta0: 0x4242,
            next_res_id: 0,
        }
    }

    /// Number of ASes.
    pub fn n_ases(&self) -> usize {
        self.as_nodes.len()
    }

    /// A fresh, stand-alone [`Datapath`] engine with hop `i`'s secrets —
    /// for probing packets outside the simulator (the in-simulator
    /// engines live in the router nodes).
    pub fn make_hop_engine(&self, hop: usize, cfg: RouterConfig) -> Box<dyn Datapath + Send> {
        DatapathBuilder::new(self.svs[hop].clone(), self.hop_keys[hop].clone())
            .config(cfg)
            .build_boxed()
    }

    /// Hop `i`'s router sharded across `shards` engines behind the
    /// [`ShardedRouter`] facade — a drop-in for
    /// [`Simulator::replace_engine`], so any scenario can rerun with a
    /// multi-core router node and identical verdicts (the facade steers
    /// every ResID to the one shard that polices it).
    pub fn make_sharded_hop_engine(
        &self,
        hop: usize,
        cfg: RouterConfig,
        shards: usize,
    ) -> Box<dyn Datapath + Send> {
        Box::new(ShardedRouter::from_fn(shards, cfg.policer_slots, |_| {
            self.make_hop_engine(hop, cfg)
        }))
    }

    /// Builds a fresh source generator over the chain's beaconed path.
    pub fn make_generator(&self, src: IsdAs, dst: IsdAs) -> SourceGenerator {
        let n = self.n_ases();
        let hops: Vec<BeaconHop> = (0..n)
            .map(|i| {
                let (ingress, egress) = Self::interfaces(n, i);
                BeaconHop {
                    key: self.hop_keys[i].clone(),
                    cons_ingress: ingress,
                    cons_egress: egress,
                }
            })
            .collect();
        SourceGenerator::new(src, dst, forge_path(&hops, self.info_ts, self.beta0))
    }

    /// Creates a reservation for hop `i` at `bw_kbps`, valid over
    /// `[res_start, res_start + duration_s)`, with a fresh ResID.
    pub fn make_reservation(
        &mut self,
        hop: usize,
        bw_kbps: u64,
        res_start: u32,
        duration_s: u16,
    ) -> SourceReservation {
        let n = self.n_ases();
        let (ingress, egress) = Self::interfaces(n, hop);
        let res_id = self.next_res_id;
        self.next_res_id += 1;
        let res_info = ResInfo {
            ingress,
            egress,
            res_id,
            bw_encoded: bwcls::encode_ceil(bw_kbps).expect("encodable bandwidth"),
            res_start,
            duration: duration_s,
        };
        let key = self.svs[hop].derive_key(&res_info);
        SourceReservation { res_info, key }
    }

    /// Adds a CBR flow over the full chain. `reserved_kbps` of `Some(r)`
    /// attaches reservations of rate `r` on *every* hop; `None` sends best
    /// effort.
    #[allow(clippy::too_many_arguments)]
    pub fn add_cbr_flow(
        &mut self,
        src: IsdAs,
        dst: IsdAs,
        payload_len: usize,
        rate_kbps: u64,
        reserved_kbps: Option<u64>,
        start_ns: u64,
        stop_ns: u64,
    ) -> FlowId {
        let mut generator = self.make_generator(src, dst);
        if let Some(r) = reserved_kbps {
            let res_start = (start_ns / 1_000_000_000).saturating_sub(5) as u32;
            for hop in 0..self.n_ases() {
                let res = self.make_reservation(hop, r, res_start, u16::MAX);
                generator.attach_reservation(hop, res).expect("matching interfaces");
            }
        }
        // Interval from the *payload* rate: actual wire rate is slightly
        // higher due to headers, which the reservation margin absorbs.
        let interval_ns = (payload_len as u64 * 8).saturating_mul(1_000_000) / rate_kbps.max(1);
        let entry = self.as_nodes[0];
        self.sim.add_flow(Flow { generator, entry, payload_len, interval_ns, start_ns, stop_ns })
    }
}
