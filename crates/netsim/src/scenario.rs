//! Scenario builders: linear AS topologies with Hummingbird routers,
//! ready-made flows, and reservation plumbing for the QoS experiments —
//! plus the [`EngineScenario`] config that reruns any experiment with
//! every node swapped to a baseline engine family (Helia, DRKey, EPIC),
//! optionally sharded, and the ready-made experiment runners
//! ([`run_latency_scenario`], [`run_partial_path_scenario`],
//! [`run_multipath_scenario`]) behind the Fig. 3/4-style per-family
//! sweeps.
//!
//! The overload layer drives closed-loop [`ReactiveFlow`] senders
//! instead of open-loop CBR injectors: [`run_overload_scenario`] sweeps
//! offered load through and past a bottleneck's saturation point with
//! every queue bounded, [`run_overload_churn_scenario`] combines
//! saturation with a mid-run link failure and a convergence delay before
//! the reroute pass (retransmit-driven recovery), and
//! [`run_latency_churn_scenario`] replays the latency experiment under a
//! [`ChurnPlan`]-scheduled failure. [`calibrated_per_pkt_ns`] feeds the
//! measured per-engine datapath cost from `BENCH_hotpath.json` into the
//! service models so each family's sweep pays its own forwarding cost.

use crate::churn::{apply_action, run_with_churn, ChurnAction, ChurnPlan, ChurnReport};
use crate::flow::{FlowEventKind, ReactiveFlow};
use crate::sim::{Flow, FlowId, FlowStats, NodeId, ServiceModel, Simulator};
use crate::topo::{AdjId, BackboneSpec, TopologyBuilder};
use hummingbird_baselines::drkey::{epoch_of, DrKeySecret, EPOCH_SECS};
use hummingbird_baselines::engine::helia_packet_key;
use hummingbird_baselines::{
    epic_auth_key, slot_of, DrKeyDatapath, EpicDatapath, HeliaDatapath, SLOT_SECS,
};
use hummingbird_crypto::{AuthKey, ResInfo, SecretValue};
use hummingbird_dataplane::{
    forge_path, BeaconHop, Datapath, DatapathBuilder, DatapathStats, RouterConfig, ShardedRouter,
    SourceGenerator, SourceReservation, Steering,
};
use hummingbird_wire::bwcls;
use hummingbird_wire::scion_mac::HopMacKey;
use hummingbird_wire::IsdAs;
use rand::{rngs::StdRng, Rng as _, SeedableRng as _};

/// The host address every [`SourceGenerator`]-built packet carries —
/// what the source-keyed baseline engines (DRKey, EPIC) derive their
/// per-host keys from.
const SRC_HOST: [u8; 4] = [0, 0, 0, 1];

/// Which engine family a scenario's router nodes run.
///
/// The same topology, flows and adversaries rerun against any family;
/// what changes is the credential attached per hop (reservation key,
/// Helia grant, DRKey/EPIC host key) and therefore which of the paper's
/// properties hold — D1 source/path authentication, D2 bandwidth
/// protection, or both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineFamily {
    /// Hummingbird border routers (reservations, policing, priority).
    Hummingbird,
    /// Helia-style fixed-slot engines (per-slot grants, priority).
    Helia,
    /// DRKey-only source authentication (no priority class).
    Drkey,
    /// EPIC L1-style per-packet path validation (strict freshness,
    /// replay suppression, no priority class).
    Epic,
}

impl EngineFamily {
    /// Every family, in comparison order.
    pub const ALL: [EngineFamily; 4] =
        [EngineFamily::Hummingbird, EngineFamily::Helia, EngineFamily::Drkey, EngineFamily::Epic];

    /// Stable display name (matches `Datapath::engine_name`).
    pub fn name(&self) -> &'static str {
        match self {
            EngineFamily::Hummingbird => "hummingbird",
            EngineFamily::Helia => "helia",
            EngineFamily::Drkey => "drkey",
            EngineFamily::Epic => "epic",
        }
    }

    /// Whether validated traffic of this family can ride the priority
    /// class (the D2 axis of the sweep).
    pub fn has_priority_class(&self) -> bool {
        matches!(self, EngineFamily::Hummingbird | EngineFamily::Helia)
    }

    /// The shard steering that keeps this family's per-flow state on one
    /// shard: reservation ranges for policer-keyed engines, the source
    /// hash for the source-keyed EPIC/DRKey engines.
    pub fn steering(&self) -> Steering {
        match self {
            EngineFamily::Hummingbird | EngineFamily::Helia => Steering::ByReservation,
            EngineFamily::Drkey | EngineFamily::Epic => Steering::BySource,
        }
    }
}

/// One rerun configuration of a QoS/DoS experiment: which engine family
/// every router node runs, and across how many shards.
///
/// Apply with [`LinearTopology::install_engines`] (or
/// [`DiamondTopology::install_engines`](crate::DiamondTopology::install_engines));
/// attach matching per-hop credentials to flows with
/// [`LinearTopology::add_family_cbr_flow`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineScenario {
    /// The engine family under test.
    pub family: EngineFamily,
    /// Shards per router node (`1` = a plain single engine).
    pub shards: usize,
}

/// A fresh engine of `family` over one AS's secrets — the constructor
/// both scenario topologies (linear and diamond) install per node.
pub(crate) fn family_engine(
    family: EngineFamily,
    sv: &SecretValue,
    hop_key: &HopMacKey,
    master: &[u8; 16],
    cfg: RouterConfig,
) -> Box<dyn Datapath + Send> {
    match family {
        EngineFamily::Hummingbird => {
            DatapathBuilder::new(sv.clone(), hop_key.clone()).config(cfg).build_boxed()
        }
        EngineFamily::Helia => Box::new(HeliaDatapath::new(*master, hop_key.clone(), cfg)),
        EngineFamily::Drkey => Box::new(DrKeyDatapath::new(*master, hop_key.clone())),
        EngineFamily::Epic => Box::new(EpicDatapath::new(*master, hop_key.clone(), cfg)),
    }
}

/// `make` deployed per [`EngineScenario`]: one bare engine, or
/// `scenario.shards` of them behind a [`ShardedRouter`] with the
/// family's steering.
pub(crate) fn deploy_engine(
    scenario: EngineScenario,
    cfg: RouterConfig,
    mut make: impl FnMut() -> Box<dyn Datapath + Send>,
) -> Box<dyn Datapath + Send> {
    if scenario.shards > 1 {
        Box::new(ShardedRouter::new(
            (0..scenario.shards).map(|_| make()).collect(),
            cfg.policer_slots,
            scenario.family.steering(),
        ))
    } else {
        make()
    }
}

/// The per-hop credential a `family` sender attaches, derived exactly as
/// that hop's [`family_engine`] re-derives it: a Hummingbird reservation
/// under `sv`, a Helia slot grant or a DRKey/EPIC per-source key under
/// `master`. The reservation-keyed families allocate a fresh identity
/// from the caller's `next_res_id` counter; the identity-keyed
/// DRKey/EPIC families carry the null grant (ResID 0) and leave the
/// counter untouched — this is the single place that rule lives.
#[allow(clippy::too_many_arguments)]
pub(crate) fn family_credential(
    family: EngineFamily,
    sv: &SecretValue,
    master: &[u8; 16],
    ingress: u16,
    egress: u16,
    next_res_id: &mut u32,
    src: IsdAs,
    bw_kbps: u64,
    now_s: u64,
) -> SourceReservation {
    let res_id = match family {
        EngineFamily::Drkey | EngineFamily::Epic => 0,
        EngineFamily::Hummingbird | EngineFamily::Helia => {
            let id = *next_res_id;
            *next_res_id += 1;
            id
        }
    };
    match family {
        EngineFamily::Hummingbird => {
            let res_info = ResInfo {
                ingress,
                egress,
                res_id,
                bw_encoded: bwcls::encode_ceil(bw_kbps).expect("encodable bandwidth"),
                res_start: now_s.saturating_sub(5) as u32,
                duration: u16::MAX,
            };
            let key = sv.derive_key(&res_info);
            SourceReservation { res_info, key }
        }
        EngineFamily::Helia => {
            let slot = slot_of(now_s);
            let bw_encoded = bwcls::encode_floor(bw_kbps).expect("encodable AS-assigned share");
            let key = helia_packet_key(master, src, slot, res_id, bw_encoded);
            SourceReservation {
                res_info: ResInfo {
                    ingress,
                    egress,
                    res_id,
                    bw_encoded,
                    res_start: (slot * SLOT_SECS) as u32,
                    duration: SLOT_SECS as u16,
                },
                key: AuthKey::new(key),
            }
        }
        EngineFamily::Drkey | EngineFamily::Epic => {
            let epoch = epoch_of(now_s);
            let secret = DrKeySecret::derive(master, epoch);
            let key = if family == EngineFamily::Epic {
                epic_auth_key(&secret, src, SRC_HOST)
            } else {
                secret.as_to_host(src, SRC_HOST)
            };
            SourceReservation {
                res_info: ResInfo {
                    ingress,
                    egress,
                    res_id: 0,
                    bw_encoded: 0,
                    res_start: (epoch * EPOCH_SECS) as u32,
                    duration: u16::MAX, // covers the 6 h epoch
                },
                key: AuthKey::new(key),
            }
        }
    }
}

/// A linear chain of `n` ASes with a destination host behind the last one.
///
/// Interface convention: AS `i` has ingress `2i` (0 at the first AS, where
/// sources inject directly) and egress `2i+1` (0 at the last AS, meaning
/// local delivery to the attached host).
pub struct LinearTopology {
    /// The simulator, pre-wired.
    pub sim: Simulator,
    /// Router node per AS.
    pub as_nodes: Vec<NodeId>,
    /// The destination host node.
    pub dest_host: NodeId,
    /// Link `i` carries AS `i`'s egress toward AS `i+1`.
    pub links: Vec<crate::sim::LinkId>,
    hop_keys: Vec<HopMacKey>,
    svs: Vec<SecretValue>,
    /// Per-AS DRKey masters for the baseline engine families (derived
    /// from the SV bytes so seeded topologies stay mutually rejecting).
    drkey_masters: Vec<[u8; 16]>,
    info_ts: u32,
    beta0: u16,
    next_res_id: u32,
}

/// Link parameters for a topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkSpec {
    /// Bits per second.
    pub bandwidth_bps: u64,
    /// Propagation delay, ns.
    pub propagation_ns: u64,
    /// Per-class queue capacity, bytes.
    pub queue_cap_bytes: usize,
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec {
            bandwidth_bps: 10_000_000, // 10 Mbps bottlenecks by default
            propagation_ns: 1_000_000, // 1 ms
            queue_cap_bytes: 64 * 1024,
        }
    }
}

impl LinearTopology {
    /// Interface pair of AS `i` in an `n`-AS chain.
    pub fn interfaces(n: usize, i: usize) -> (u16, u16) {
        let ingress = if i == 0 { 0 } else { 2 * i as u16 };
        let egress = if i == n - 1 { 0 } else { 2 * i as u16 + 1 };
        (ingress, egress)
    }

    /// Builds an `n`-AS chain starting at simulated time `start_ns`.
    pub fn build(n: usize, link: LinkSpec, start_ns: u64, cfg: RouterConfig) -> Self {
        Self::build_seeded(n, link, start_ns, cfg, 0)
    }

    /// Like [`LinearTopology::build`] but with distinct AS key material per
    /// `seed` — two topologies with different seeds reject each other's
    /// packets.
    pub fn build_seeded(
        n: usize,
        link: LinkSpec,
        start_ns: u64,
        cfg: RouterConfig,
        seed: u8,
    ) -> Self {
        let hop_keys = (0..n)
            .map(|i| {
                let mut k = [0x21 + i as u8; 16];
                k[15] = seed;
                k
            })
            .collect();
        let sv_keys = (0..n)
            .map(|i| {
                let mut k = [0x51 + i as u8; 16];
                k[15] = seed;
                k
            })
            .collect();
        Self::build_with_keys(n, link, start_ns, cfg, hop_keys, sv_keys)
    }

    /// Builds a chain with explicit AS key material — how the end-to-end
    /// testbed wires the same secrets into both the control-plane
    /// `AsService`s and the simulated border routers. The wiring (and
    /// the DRKey-master derivation) goes through the shared
    /// [`TopologyBuilder`] primitives; only the `2i`/`2i+1` interface
    /// convention is owned here.
    pub fn build_with_keys(
        n: usize,
        link: LinkSpec,
        start_ns: u64,
        cfg: RouterConfig,
        hop_key_bytes: Vec<[u8; 16]>,
        sv_key_bytes: Vec<[u8; 16]>,
    ) -> Self {
        assert!(n >= 1);
        assert_eq!(hop_key_bytes.len(), n);
        assert_eq!(sv_key_bytes.len(), n);
        let hop_keys: Vec<HopMacKey> = hop_key_bytes.iter().copied().map(HopMacKey::new).collect();
        let svs: Vec<SecretValue> = sv_key_bytes.iter().copied().map(SecretValue::new).collect();
        let mut builder = TopologyBuilder::new(start_ns, cfg);
        for i in 0..n {
            builder.add_router_keyed(
                hop_key_bytes[i],
                sv_key_bytes[i],
                IsdAs::new(1, 0x100 + i as u64),
            );
        }
        builder.attach_host(n - 1);
        // Wire AS i's egress to AS i+1.
        let mut links = Vec::with_capacity(n.saturating_sub(1));
        for i in 0..n - 1 {
            let (_, egress) = Self::interfaces(n, i);
            links.push(builder.connect_oneway(i, egress, i + 1, link));
        }
        let parts = builder.into_parts();
        let dest_host = parts.hosts[n - 1].expect("host attached to the last AS");
        LinearTopology {
            sim: parts.sim,
            as_nodes: parts.router_nodes,
            dest_host,
            links,
            hop_keys,
            svs,
            drkey_masters: parts.drkey_masters,
            info_ts: (start_ns / 1_000_000_000) as u32,
            beta0: 0x4242,
            next_res_id: 0,
        }
    }

    /// Number of ASes.
    pub fn n_ases(&self) -> usize {
        self.as_nodes.len()
    }

    /// A fresh, stand-alone [`Datapath`] engine with hop `i`'s secrets —
    /// for probing packets outside the simulator (the in-simulator
    /// engines live in the router nodes).
    pub fn make_hop_engine(&self, hop: usize, cfg: RouterConfig) -> Box<dyn Datapath + Send> {
        DatapathBuilder::new(self.svs[hop].clone(), self.hop_keys[hop].clone())
            .config(cfg)
            .build_boxed()
    }

    /// Hop `i`'s router sharded across `shards` engines behind the
    /// [`ShardedRouter`] facade — a drop-in for
    /// [`Simulator::replace_engine`], so any scenario can rerun with a
    /// multi-core router node and identical verdicts (the facade steers
    /// every ResID to the one shard that polices it).
    pub fn make_sharded_hop_engine(
        &self,
        hop: usize,
        cfg: RouterConfig,
        shards: usize,
    ) -> Box<dyn Datapath + Send> {
        Box::new(ShardedRouter::from_fn(shards, cfg.policer_slots, |_| {
            self.make_hop_engine(hop, cfg)
        }))
    }

    /// A fresh, stand-alone engine of `family` with hop `i`'s secrets —
    /// the per-family generalization of
    /// [`make_hop_engine`](LinearTopology::make_hop_engine).
    pub fn make_family_hop_engine(
        &self,
        family: EngineFamily,
        hop: usize,
        cfg: RouterConfig,
    ) -> Box<dyn Datapath + Send> {
        family_engine(family, &self.svs[hop], &self.hop_keys[hop], &self.drkey_masters[hop], cfg)
    }

    /// Swaps every router node's engine for `scenario`'s family, sharded
    /// across `scenario.shards` engines when more than one — the knob
    /// that reruns a whole QoS/DoS experiment per engine family on
    /// unchanged topology, flows and adversaries.
    pub fn install_engines(&mut self, scenario: EngineScenario, cfg: RouterConfig) {
        for hop in 0..self.n_ases() {
            let engine = deploy_engine(scenario, cfg, || {
                self.make_family_hop_engine(scenario.family, hop, cfg)
            });
            self.sim.replace_engine(self.as_nodes[hop], engine).ok().expect("AS nodes are routers");
        }
    }

    /// Installs `model` on every router node (or clears the service
    /// models with `None`) — the per-node knob is
    /// [`Simulator::set_router_service`].
    pub fn set_service_model(&mut self, model: Option<ServiceModel>) {
        for &node in &self.as_nodes {
            self.sim.set_router_service(node, model);
        }
    }

    /// Builds a fresh source generator over the chain's beaconed path.
    pub fn make_generator(&self, src: IsdAs, dst: IsdAs) -> SourceGenerator {
        let n = self.n_ases();
        let hops: Vec<BeaconHop> = (0..n)
            .map(|i| {
                let (ingress, egress) = Self::interfaces(n, i);
                BeaconHop {
                    key: self.hop_keys[i].clone(),
                    cons_ingress: ingress,
                    cons_egress: egress,
                }
            })
            .collect();
        SourceGenerator::new(src, dst, forge_path(&hops, self.info_ts, self.beta0))
    }

    /// Creates a reservation for hop `i` at `bw_kbps`, valid over
    /// `[res_start, res_start + duration_s)`, with a fresh ResID.
    pub fn make_reservation(
        &mut self,
        hop: usize,
        bw_kbps: u64,
        res_start: u32,
        duration_s: u16,
    ) -> SourceReservation {
        let n = self.n_ases();
        let (ingress, egress) = Self::interfaces(n, hop);
        let res_id = self.next_res_id;
        self.next_res_id += 1;
        let res_info = ResInfo {
            ingress,
            egress,
            res_id,
            bw_encoded: bwcls::encode_ceil(bw_kbps).expect("encodable bandwidth"),
            res_start,
            duration: duration_s,
        };
        let key = self.svs[hop].derive_key(&res_info);
        SourceReservation { res_info, key }
    }

    /// Adds a CBR flow over the full chain. `reserved_kbps` of `Some(r)`
    /// attaches reservations of rate `r` on *every* hop; `None` sends best
    /// effort. (The Hummingbird special case of
    /// [`add_family_cbr_flow`](LinearTopology::add_family_cbr_flow).)
    #[allow(clippy::too_many_arguments)]
    pub fn add_cbr_flow(
        &mut self,
        src: IsdAs,
        dst: IsdAs,
        payload_len: usize,
        rate_kbps: u64,
        reserved_kbps: Option<u64>,
        start_ns: u64,
        stop_ns: u64,
    ) -> FlowId {
        self.add_family_cbr_flow(
            EngineFamily::Hummingbird,
            src,
            dst,
            payload_len,
            rate_kbps,
            reserved_kbps,
            start_ns,
            stop_ns,
        )
    }

    /// The per-hop credential a `family` sender attaches for hop `hop`:
    /// a Hummingbird reservation, a Helia slot grant, or a DRKey/EPIC
    /// per-source key — each derived exactly as that hop's
    /// [`make_family_hop_engine`](LinearTopology::make_family_hop_engine)
    /// engine re-derives it.
    ///
    /// `bw_kbps` is the granted rate for the reservation families and
    /// ignored by the authentication-only ones (DRKey/EPIC have no
    /// bandwidth axis — the contrast the family sweep exists to show).
    /// Helia grants cover the 16 s slot containing `now_s`, so a run
    /// crossing a slot boundary goes stale mid-flow, exactly as in the
    /// real system.
    pub fn make_family_credential(
        &mut self,
        family: EngineFamily,
        hop: usize,
        src: IsdAs,
        bw_kbps: u64,
        now_s: u64,
    ) -> SourceReservation {
        let n = self.n_ases();
        let (ingress, egress) = Self::interfaces(n, hop);
        family_credential(
            family,
            &self.svs[hop],
            &self.drkey_masters[hop],
            ingress,
            egress,
            &mut self.next_res_id,
            src,
            bw_kbps,
            now_s,
        )
    }

    /// [`add_cbr_flow`](LinearTopology::add_cbr_flow) generalized over
    /// the engine family: `credential_kbps` of `Some(r)` attaches the
    /// family's per-hop credential on *every* hop (reservation keys,
    /// Helia grants, or DRKey/EPIC source keys); `None` sends plain
    /// best-effort SCION. Pair with
    /// [`install_engines`](LinearTopology::install_engines) so routers
    /// and senders agree on the key hierarchy.
    #[allow(clippy::too_many_arguments)]
    pub fn add_family_cbr_flow(
        &mut self,
        family: EngineFamily,
        src: IsdAs,
        dst: IsdAs,
        payload_len: usize,
        rate_kbps: u64,
        credential_kbps: Option<u64>,
        start_ns: u64,
        stop_ns: u64,
    ) -> FlowId {
        let hops: Vec<usize> = (0..self.n_ases()).collect();
        self.add_family_cbr_flow_on_hops(
            family,
            src,
            dst,
            payload_len,
            rate_kbps,
            credential_kbps,
            &hops,
            start_ns,
            stop_ns,
        )
    }

    /// [`add_family_cbr_flow`](LinearTopology::add_family_cbr_flow) with
    /// the credential attached only on `credential_hops` — the partial-
    /// path shape (§3.3 ❸): reserve (or authenticate) exactly the
    /// congested hop and ride best effort elsewhere.
    #[allow(clippy::too_many_arguments)]
    pub fn add_family_cbr_flow_on_hops(
        &mut self,
        family: EngineFamily,
        src: IsdAs,
        dst: IsdAs,
        payload_len: usize,
        rate_kbps: u64,
        credential_kbps: Option<u64>,
        credential_hops: &[usize],
        start_ns: u64,
        stop_ns: u64,
    ) -> FlowId {
        let mut generator = self.make_generator(src, dst);
        if let Some(r) = credential_kbps {
            let now_s = start_ns / 1_000_000_000;
            for &hop in credential_hops {
                let credential = self.make_family_credential(family, hop, src, r, now_s);
                generator.attach_reservation(hop, credential).expect("matching interfaces");
            }
        }
        let interval_ns = (payload_len as u64 * 8).saturating_mul(1_000_000) / rate_kbps.max(1);
        let entry = self.as_nodes[0];
        self.sim.add_flow(Flow { generator, entry, payload_len, interval_ns, start_ns, stop_ns })
    }

    /// The closed-loop counterpart of
    /// [`add_family_cbr_flow`](LinearTopology::add_family_cbr_flow): a
    /// windowed, ack-clocked [`ReactiveFlow`] pacing new packets at
    /// `rate_kbps` until `total_pkts` distinct sequence numbers are
    /// acked or abandoned. `credential_kbps` attaches the family's
    /// per-hop credential on every hop exactly as the CBR variant does.
    #[allow(clippy::too_many_arguments)]
    pub fn add_family_reactive_flow(
        &mut self,
        family: EngineFamily,
        src: IsdAs,
        dst: IsdAs,
        payload_len: usize,
        rate_kbps: u64,
        credential_kbps: Option<u64>,
        total_pkts: u64,
        profile: ReactiveProfile,
        start_ns: u64,
    ) -> FlowId {
        let mut generator = self.make_generator(src, dst);
        if let Some(r) = credential_kbps {
            let now_s = start_ns / 1_000_000_000;
            for hop in 0..self.n_ases() {
                let credential = self.make_family_credential(family, hop, src, r, now_s);
                generator.attach_reservation(hop, credential).expect("matching interfaces");
            }
        }
        let pacing_ns = (payload_len as u64 * 8).saturating_mul(1_000_000) / rate_kbps.max(1);
        let entry = self.as_nodes[0];
        self.sim.add_reactive_flow(ReactiveFlow {
            generator,
            entry,
            payload_len,
            total_pkts,
            window: profile.window.max(1),
            pacing_ns,
            ack_delay_ns: profile.ack_delay_ns,
            rto_ns: profile.rto_ns,
            rto_max_ns: profile.rto_max_ns,
            max_retransmits: profile.max_retransmits,
            start_ns,
        })
    }
}

/// Retransmission and window knobs of a closed-loop sender, shared by
/// the overload runners (the rate-derived knobs — pacing interval and
/// total packet count — are computed from the offered load).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReactiveProfile {
    /// Maximum unacknowledged packets in flight (≥ 1).
    pub window: usize,
    /// Modeled reverse-path (ack) delay, ns.
    pub ack_delay_ns: u64,
    /// Initial retransmission timeout, ns.
    pub rto_ns: u64,
    /// Backoff cap for the per-retry doubling RTO, ns.
    pub rto_max_ns: u64,
    /// Retries per packet before it is abandoned.
    pub max_retransmits: u32,
}

impl Default for ReactiveProfile {
    /// Sized for the default 10 Mbps / 1 ms scenario links: a 32-packet
    /// window, a 1 ms ack path, and a 100 ms initial RTO — above the
    /// worst full-queue round trip of the default 64 KiB link queues, so
    /// a deep-but-alive queue does not look like loss — doubling to a
    /// 800 ms cap over 4 retries.
    fn default() -> Self {
        ReactiveProfile {
            window: 32,
            ack_delay_ns: 1_000_000,
            rto_ns: 100_000_000,
            rto_max_ns: 800_000_000,
            max_retransmits: 4,
        }
    }
}

/// The fixed cast of the ready-made experiment runners.
const VICTIM_SRC: (u16, u64) = (1, 0xa);
const DEST: (u16, u64) = (2, 0xb);
const ATTACKER_SRC: (u16, u64) = (3, 0xc);

fn victim_src() -> IsdAs {
    IsdAs::new(VICTIM_SRC.0, VICTIM_SRC.1)
}
fn dest() -> IsdAs {
    IsdAs::new(DEST.0, DEST.1)
}
fn attacker_src() -> IsdAs {
    IsdAs::new(ATTACKER_SRC.0, ATTACKER_SRC.1)
}

/// Knobs of a Fig. 3/4-style end-to-end latency run: one credentialed
/// victim CBR flow over an `n_ases` chain, optionally against a
/// best-effort flood, with every router running `scenario`'s engine
/// family under the worker-ring service model.
#[derive(Clone, Copy, Debug)]
pub struct LatencySpec {
    /// Engine family + shard deployment every router node runs.
    pub scenario: EngineScenario,
    /// Chain length (ASes).
    pub n_ases: usize,
    /// Link parameters (the bottleneck axis).
    pub link: LinkSpec,
    /// Victim CBR rate, kbps.
    pub victim_kbps: u64,
    /// Credential (reservation/grant) rate attached on every hop, kbps.
    pub credential_kbps: u64,
    /// Victim payload bytes per packet.
    pub payload_len: usize,
    /// Best-effort flood rate, kbps (`0` = uncontended).
    pub flood_kbps: u64,
    /// Per-router, per-core datapath service time, ns (`0` =
    /// instantaneous forwarding). The deployed core count is
    /// `scenario.shards`, so a 4-shard deployment drains its ingress 4
    /// packets at a time — the latency face of the worker-ring runtime.
    pub service_per_pkt_ns: u64,
    /// Run length, seconds.
    pub run_s: u64,
}

impl LatencySpec {
    /// The default Fig. 3/4 shape: a 3-AS chain of 10 Mbps bottleneck
    /// links, a 2 Mbps victim with 3 Mbps credentials, no flood, and the
    /// paper's ~300 ns/pkt single-core router budget.
    pub fn new(scenario: EngineScenario) -> Self {
        LatencySpec {
            scenario,
            n_ases: 3,
            link: LinkSpec::default(),
            victim_kbps: 2_000,
            credential_kbps: 3_000,
            payload_len: 1_000,
            flood_kbps: 0,
            service_per_pkt_ns: 300,
            run_s: 2,
        }
    }

    /// The same spec with a `flood_kbps` best-effort flood.
    pub fn with_flood(mut self, flood_kbps: u64) -> Self {
        self.flood_kbps = flood_kbps;
        self
    }

    /// The same spec with `service_per_pkt_ns` replaced by the measured
    /// single-core cost of this family's engine from the checked-in
    /// `BENCH_hotpath.json` trajectory ([`calibrated_per_pkt_ns`]).
    /// Falls back to the hand-set value — with a logged note — when no
    /// trajectory file or matching record is found, so offline runs
    /// keep working.
    #[must_use]
    pub fn calibrated(mut self) -> Self {
        match calibrated_per_pkt_ns(self.scenario.family) {
            Some(ns) => self.service_per_pkt_ns = ns,
            None => eprintln!(
                "BENCH_hotpath.json unavailable; {} latency sweep keeps the hand-set \
                 {} ns/pkt service cost",
                self.scenario.family.name(),
                self.service_per_pkt_ns
            ),
        }
        self
    }
}

/// The measured single-core (`"mode": "clone"`, `"cores": 1`) ns/pkt of
/// `family`'s engine, averaged over the payload sweep of a
/// `BENCH_hotpath.json` trajectory document — the calibration source for
/// [`ServiceModel::per_pkt_ns`] so each family's latency/overload sweep
/// pays its own datapath cost rather than a hand-set constant.
///
/// The file is searched in the working directory and up to three parent
/// directories (bench binaries run from the workspace root, `cargo test`
/// from the crate root). `None` when no file or no matching record
/// exists; callers fall back to their hand-set value (see
/// [`LatencySpec::calibrated`]).
pub fn calibrated_per_pkt_ns(family: EngineFamily) -> Option<u64> {
    const CANDIDATES: [&str; 4] = [
        "BENCH_hotpath.json",
        "../BENCH_hotpath.json",
        "../../BENCH_hotpath.json",
        "../../../BENCH_hotpath.json",
    ];
    CANDIDATES
        .iter()
        .find_map(|p| std::fs::read_to_string(p).ok())
        .and_then(|doc| hotpath_clone_1core_ns(&doc, family.name()))
}

/// Hand-rolled record extraction (no JSON library exists in the offline
/// build): the mean `ns_per_pkt` over `records` rows matching `engine`
/// with `"mode": "clone"` and `"cores": 1`, relying on the one-record-
/// per-line layout the bench writer emits. The `"cores": 1,` needle
/// keeps its trailing comma so multi-digit core counts never match.
fn hotpath_clone_1core_ns(doc: &str, engine: &str) -> Option<u64> {
    let engine_key = format!("\"engine\": \"{engine}\"");
    let mut sum = 0.0f64;
    let mut n = 0u32;
    for line in doc.lines() {
        if !line.contains(&engine_key)
            || !line.contains("\"mode\": \"clone\"")
            || !line.contains("\"cores\": 1,")
        {
            continue;
        }
        let Some(at) = line.find("\"ns_per_pkt\":") else { continue };
        let rest = line[at + 13..].trim_start();
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse::<f64>() {
            if v.is_finite() && v > 0.0 {
                sum += v;
                n += 1;
            }
        }
    }
    (n > 0).then(|| (sum / f64::from(n)).round() as u64)
}

/// What a [`run_latency_scenario`] measured.
#[derive(Clone, Debug)]
pub struct LatencyOutcome {
    /// The credentialed victim flow.
    pub victim: FlowStats,
    /// The best-effort flood, when one ran.
    pub flood: Option<FlowStats>,
    /// Engine counters of the entry router (authentication sanity: the
    /// victim must never lose packets to MAC verification).
    pub entry_stats: DatapathStats,
}

/// Runs the Fig. 3/4-style latency experiment for one `spec`: build the
/// chain, install the family engines (sharded per the scenario) and the
/// service model, run victim + optional flood, and report per-flow
/// latency/delivery. The contrast the sweep surfaces: under flood, the
/// reservation families hold the victim's latency at the uncontended
/// level while the authentication-only families leave it queueing behind
/// the flood in the best-effort class.
pub fn run_latency_scenario(
    cfg: RouterConfig,
    spec: &LatencySpec,
    start_ns: u64,
) -> LatencyOutcome {
    let mut topo = LinearTopology::build(spec.n_ases, spec.link, start_ns, cfg);
    topo.install_engines(spec.scenario, cfg);
    if spec.service_per_pkt_ns > 0 {
        topo.set_service_model(Some(ServiceModel::new(
            spec.service_per_pkt_ns,
            spec.scenario.shards,
        )));
    }
    let sec = 1_000_000_000u64;
    let stop_ns = start_ns + spec.run_s * sec;
    let victim = topo.add_family_cbr_flow(
        spec.scenario.family,
        victim_src(),
        dest(),
        spec.payload_len,
        spec.victim_kbps,
        Some(spec.credential_kbps),
        start_ns,
        stop_ns,
    );
    let flood = (spec.flood_kbps > 0).then(|| {
        topo.add_family_cbr_flow(
            spec.scenario.family,
            attacker_src(),
            dest(),
            spec.payload_len,
            spec.flood_kbps,
            None,
            start_ns,
            stop_ns,
        )
    });
    topo.sim.run_until(stop_ns + sec);
    LatencyOutcome {
        victim: topo.sim.stats(victim),
        flood: flood.map(|f| topo.sim.stats(f)),
        entry_stats: topo.sim.router_stats(topo.as_nodes[0]).expect("entry is a router"),
    }
}

/// What a [`run_partial_path_scenario`] measured.
#[derive(Clone, Debug)]
pub struct PartialPathOutcome {
    /// The victim, credentialed on the middle hop only.
    pub victim: FlowStats,
    /// Engine counters per hop: `flyover` shows exactly where priority
    /// rode (the middle hop for the reservation families, nowhere for
    /// the authentication-only ones).
    pub per_hop: Vec<DatapathStats>,
}

/// The partial-path variant (§3.3 ❸) of the family sweep: a 3-AS chain
/// whose *middle* hop's egress link is narrowed to the 10 Mbps
/// bottleneck (the other links have 10× headroom), a flood across the
/// whole path, and a victim holding a credential only at that middle
/// hop. Reservation families protect the victim with that single hop's
/// priority; authentication-only families validate it there and still
/// lose it to the flooded queue.
pub fn run_partial_path_scenario(
    cfg: RouterConfig,
    scenario: EngineScenario,
    service_per_pkt_ns: u64,
    start_ns: u64,
) -> PartialPathOutcome {
    let sec = 1_000_000_000u64;
    let run_s = 2u64;
    // Uniform 100 Mbps links, then narrow the middle hop's egress to the
    // 10 Mbps bottleneck: the only contested queue is the one the victim
    // holds a credential for.
    let fat = LinkSpec { bandwidth_bps: 100_000_000, ..Default::default() };
    let mut topo = LinearTopology::build(3, fat, start_ns, cfg);
    topo.sim.set_link_bandwidth(topo.links[1], 10_000_000);
    topo.install_engines(scenario, cfg);
    if service_per_pkt_ns > 0 {
        topo.set_service_model(Some(ServiceModel::new(service_per_pkt_ns, scenario.shards)));
    }
    let stop_ns = start_ns + run_s * sec;
    // Credential on hop 1 (the middle AS) only.
    let victim = topo.add_family_cbr_flow_on_hops(
        scenario.family,
        victim_src(),
        dest(),
        1_000,
        2_000,
        Some(3_000),
        &[1],
        start_ns,
        stop_ns,
    );
    // The flood reaches hop 1's egress queue too: 2× the bottleneck.
    let _flood = topo.add_family_cbr_flow(
        scenario.family,
        attacker_src(),
        dest(),
        1_000,
        20_000,
        None,
        start_ns,
        stop_ns,
    );
    topo.sim.run_until(stop_ns + sec);
    let per_hop =
        topo.as_nodes.iter().map(|&n| topo.sim.router_stats(n).expect("router")).collect();
    PartialPathOutcome { victim: topo.sim.stats(victim), per_hop }
}

/// What a [`run_multipath_scenario`] measured.
#[derive(Clone, Debug)]
pub struct MultipathOutcome {
    /// The victim flow over the clean branch P.
    pub p: FlowStats,
    /// The victim flow over the flooded branch Q.
    pub q: FlowStats,
}

/// The multipath variant of the family sweep, on the Fig. 3 diamond: the
/// victim splits its traffic across branches P and Q, the flood rides Q
/// only. Path choice isolates P for every family; on Q the usual D2
/// split applies — reservation families keep the flow whole, the
/// authentication-only families lose it to the flooded best-effort
/// queue.
pub fn run_multipath_scenario(
    cfg: RouterConfig,
    scenario: EngineScenario,
    start_ns: u64,
) -> MultipathOutcome {
    let sec = 1_000_000_000u64;
    let run_s = 2u64;
    let mut topo = crate::DiamondTopology::build(LinkSpec::default(), start_ns, cfg);
    topo.install_engines(scenario, cfg);
    let stop_ns = start_ns + run_s * sec;
    let p = topo.add_family_flow(
        scenario.family,
        crate::Branch::P,
        victim_src(),
        dest(),
        1_000,
        2_000,
        Some(3_000),
        start_ns,
        stop_ns,
    );
    let q = topo.add_family_flow(
        scenario.family,
        crate::Branch::Q,
        victim_src(),
        dest(),
        1_000,
        2_000,
        Some(3_000),
        start_ns,
        stop_ns,
    );
    let _flood = topo.add_family_flow(
        scenario.family,
        crate::Branch::Q,
        attacker_src(),
        dest(),
        1_000,
        30_000,
        None,
        start_ns,
        stop_ns,
    );
    topo.sim.run_until(stop_ns + sec);
    MultipathOutcome { p: topo.sim.stats(p), q: topo.sim.stats(q) }
}

/// Knobs of a churn run: the QoS/DoS experiment (credentialed victim vs
/// best-effort flood) moved onto a generated ring-of-PoPs backbone with
/// a seeded background-flow mesh, plus mid-epoch fault injection — ≥ 1
/// link failures on the victim's path at one third of the run, a
/// reroute pass after `reroute_delay_ns`, and optionally a cold reboot
/// of a transit router on the failover path.
#[derive(Clone, Copy, Debug)]
pub struct ChurnSpec {
    /// Engine family + shard deployment every router node runs.
    pub scenario: EngineScenario,
    /// PoPs on the backbone ring (≥ 3).
    pub pops: usize,
    /// Routers per PoP (≥ 2 for failover paths to exist).
    pub routers_per_pop: usize,
    /// Seed for topology, key material and the background mesh.
    pub seed: u64,
    /// How many PoPs the victim's path spans (dst = PoP `span_pops`).
    pub span_pops: usize,
    /// Victim CBR rate, kbps.
    pub victim_kbps: u64,
    /// Credential (reservation/grant) rate on every victim hop, kbps.
    pub credential_kbps: u64,
    /// Payload bytes per victim/flood packet.
    pub payload_len: usize,
    /// Best-effort flood rate on the victim's route, kbps (`0` = none).
    pub flood_kbps: u64,
    /// Seeded random background flows across the whole backbone.
    pub background_flows: usize,
    /// Rate of each background flow, kbps.
    pub background_kbps: u64,
    /// Credential rate attached to each background flow (`None` = best
    /// effort) — `Some` puts thousands of live reservations on the
    /// backbone at bench scale.
    pub background_credential_kbps: Option<u64>,
    /// Link failures to inject at `run_s / 3` (victim-path adjacencies
    /// first, padded with further ring links if the path is shorter).
    pub failures: usize,
    /// Delay from failure to the reroute pass, ns.
    pub reroute_delay_ns: u64,
    /// Also cold-reboot a transit router on the victim's failover path.
    pub reboot_on_path: bool,
    /// Per-router, per-core datapath service time, ns (`0` = off).
    pub service_per_pkt_ns: u64,
    /// Run length, seconds.
    pub run_s: u64,
}

impl ChurnSpec {
    /// The default acceptance shape: a 26-PoP × 4-router backbone (104
    /// routers), a victim spanning 2 PoPs (with `routers_per_pop ≥ 2`
    /// that ring path is *strictly* hop-count shortest — chords attach
    /// to each PoP's last router, so any chord detour costs ≥ 3 hops —
    /// making base and failover paths seed-independent), 3 link
    /// failures with a 50 ms reroute delay plus an on-path reboot, and
    /// a 64-flow background mesh. Add the flood with
    /// [`with_flood`](ChurnSpec::with_flood).
    pub fn new(scenario: EngineScenario) -> Self {
        ChurnSpec {
            scenario,
            pops: 26,
            routers_per_pop: 4,
            seed: 0xC0FFEE,
            span_pops: 2,
            victim_kbps: 2_000,
            credential_kbps: 3_000,
            payload_len: 1_000,
            flood_kbps: 0,
            background_flows: 64,
            background_kbps: 64,
            background_credential_kbps: None,
            failures: 3,
            reroute_delay_ns: 50_000_000,
            reboot_on_path: true,
            service_per_pkt_ns: 300,
            run_s: 3,
        }
    }

    /// The same spec with a `flood_kbps` best-effort flood.
    pub fn with_flood(mut self, flood_kbps: u64) -> Self {
        self.flood_kbps = flood_kbps;
        self
    }
}

/// What a [`run_churn_scenario`] measured. `PartialEq` so two same-seed
/// runs can be asserted bit-identical wholesale.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnScenarioOutcome {
    /// Victim counters over the clean window `[start, failure)`.
    pub victim_base: FlowStats,
    /// Victim delta over the outage window `[failure, reroute)` —
    /// where `link_down_drops` shows the stranded reservation.
    pub victim_outage: FlowStats,
    /// Victim delta over the recovery window `[reroute, end]` — what
    /// the acceptance criteria (latency < 2× base, delivery > 0.9)
    /// are asserted on.
    pub victim_recovery: FlowStats,
    /// Victim counters over the whole run.
    pub victim_total: FlowStats,
    /// The flood's whole-run counters, when one ran.
    pub flood_total: Option<FlowStats>,
    /// Background mesh totals: packets sent.
    pub background_sent: u64,
    /// Background mesh totals: packets delivered.
    pub background_delivered: u64,
    /// The applied fault timeline with per-action effects.
    pub report: ChurnReport,
    /// Routers in the generated backbone.
    pub routers: usize,
    /// Bidirectional adjacencies in the generated backbone.
    pub adjacencies: usize,
    /// Engine counters of the victim's entry router (never rebooted).
    pub entry_stats: DatapathStats,
    /// Simulator events processed over the whole run.
    pub events: u64,
}

/// Runs the QoS/DoS experiment unchanged on a generated 100+-router
/// backbone with mid-epoch fault injection: build the ring-of-PoPs
/// topology, install the family engines and service model, start the
/// victim, the optional flood and the background mesh, then at one
/// third of the run
/// take down the victim's path (≥ `spec.failures` link failures), let
/// packets die at the dead links for `reroute_delay_ns` (reservation
/// stranding, counted per flow), reroute every affected flow onto a
/// surviving path with fresh credentials, optionally cold-reboot a
/// transit router on the failover path, and run to the end.
///
/// The D2 contrast survives churn: after the reroute, reservation
/// families restore the victim's latency and delivery at the clean
/// level, while authentication-only families leave it queueing behind
/// the (also rerouted) flood.
pub fn run_churn_scenario(
    cfg: RouterConfig,
    spec: &ChurnSpec,
    start_ns: u64,
) -> ChurnScenarioOutcome {
    let sec = 1_000_000_000u64;
    let backbone = BackboneSpec::new(spec.pops, spec.routers_per_pop, spec.seed);
    let mut topo = TopologyBuilder::ring_of_pops(&backbone, start_ns, cfg);
    topo.install_engines(spec.scenario, cfg);
    if spec.service_per_pkt_ns > 0 {
        topo.set_service_model(Some(ServiceModel::new(
            spec.service_per_pkt_ns,
            spec.scenario.shards,
        )));
    }
    let stop_ns = start_ns + spec.run_s * sec;
    let rpp = spec.routers_per_pop;
    let src_router = 0; // PoP 0, router 0
    let span = spec.span_pops.clamp(1, spec.pops - 1);
    let dst_router = span * rpp; // PoP `span`, router 0
    let victim = topo.add_family_flow(
        spec.scenario.family,
        src_router,
        dst_router,
        spec.payload_len,
        spec.victim_kbps,
        Some(spec.credential_kbps),
        start_ns,
        stop_ns,
    );
    let flood = (spec.flood_kbps > 0).then(|| {
        topo.add_family_flow(
            spec.scenario.family,
            src_router,
            dst_router,
            spec.payload_len,
            spec.flood_kbps,
            None,
            start_ns,
            stop_ns,
        )
    });
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x9E37_79B9_7F4A_7C15);
    let n = topo.n_routers();
    let background: Vec<FlowId> = (0..spec.background_flows)
        .map(|_| {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            if b == a {
                b = (a + 1) % n;
            }
            topo.add_family_flow(
                spec.scenario.family,
                a,
                b,
                500,
                spec.background_kbps,
                spec.background_credential_kbps,
                start_ns,
                stop_ns,
            )
        })
        .collect();

    // The failure set: the victim's own path adjacencies first, padded
    // with further lane-0 ring links when the path is shorter than the
    // requested failure count.
    let path: Vec<usize> = topo.route_of(victim).expect("victim routed").to_vec();
    let mut fail_adjs: Vec<AdjId> = path
        .windows(2)
        .filter_map(|w| topo.adjacency_between(w[0], w[1]))
        .take(spec.failures)
        .collect();
    let mut lane = 0;
    while fail_adjs.len() < spec.failures && lane + 1 < spec.pops {
        if let Some(adj) = topo.adjacency_between(lane * rpp, (lane + 1) * rpp) {
            if !fail_adjs.contains(&adj) {
                fail_adjs.push(adj);
            }
        }
        lane += 1;
    }

    // Phase 1: clean run to the failure instant.
    let t_fail = start_ns + spec.run_s * sec / 3;
    let t_reroute = t_fail + spec.reroute_delay_ns;
    topo.sim.run_until(t_fail);
    let victim_base = topo.sim.stats(victim);
    let mut report = ChurnReport::default();
    for &adj in &fail_adjs {
        report.records.push(apply_action(&mut topo, ChurnAction::LinkDown(adj)));
    }

    // Phase 2: the outage — flows keep sending into the dead links.
    topo.sim.run_until(t_reroute);
    let victim_at_reroute = topo.sim.stats(victim);
    report.records.push(apply_action(&mut topo, ChurnAction::RerouteAffected));
    if spec.reboot_on_path {
        let new_path = topo.route_of(victim).expect("victim routed");
        if new_path.len() > 2 {
            let mid = new_path[new_path.len() / 2];
            if mid != src_router {
                report.records.push(apply_action(&mut topo, ChurnAction::RouterReboot(mid)));
            }
        }
    }

    // Phase 3: recovery, plus a drain second for in-flight packets.
    topo.sim.run_until(stop_ns + sec);
    let victim_total = topo.sim.stats(victim);
    let (background_sent, background_delivered) = background
        .iter()
        .map(|&f| topo.sim.stats(f))
        .fold((0, 0), |(s, d), st| (s + st.sent_pkts, d + st.delivered_pkts));
    ChurnScenarioOutcome {
        victim_base,
        victim_outage: victim_at_reroute.since(&victim_base),
        victim_recovery: victim_total.since(&victim_at_reroute),
        victim_total,
        flood_total: flood.map(|f| topo.sim.stats(f)),
        background_sent,
        background_delivered,
        report,
        routers: topo.n_routers(),
        adjacencies: topo.n_adjacencies(),
        entry_stats: topo.sim.router_stats(topo.router_node(src_router)).expect("entry router"),
        events: topo.sim.events_processed(),
    }
}

/// Knobs of an overload sweep: a closed-loop reserved sender and a
/// closed-loop best-effort sender over the linear chain, with the
/// best-effort offered load swept through and past the bottleneck
/// link's saturation point while every queue — link, router service —
/// is bounded. The sweep is the graceful-degradation experiment: with
/// bounded queues, overload must show up as loss, retransmission and
/// pushback (all named counters), never as unbounded delay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OverloadSpec {
    /// Engine family + shard deployment every router node runs.
    pub scenario: EngineScenario,
    /// Chain length (ASes).
    pub n_ases: usize,
    /// Link parameters (the saturation axis: default 10 Mbps).
    pub link: LinkSpec,
    /// Reserved (credentialed) flow rate, kbps.
    pub reserved_kbps: u64,
    /// Credential (reservation/grant) rate on every hop, kbps.
    pub credential_kbps: u64,
    /// Payload bytes per packet (both flows).
    pub payload_len: usize,
    /// Best-effort offered loads to sweep, kbps. The default steps run
    /// from half the bottleneck's leftover capacity to 2.5× the link.
    pub offered_kbps: Vec<u64>,
    /// Window/RTO knobs of both closed-loop senders.
    pub profile: ReactiveProfile,
    /// Bound on packets held per router ([`ServiceModel::queue_pkts`]).
    pub router_queue_pkts: usize,
    /// Per-router, per-core datapath service time, ns (`0` = off).
    pub service_per_pkt_ns: u64,
    /// Nominal sending window, seconds — sizes each flow's total packet
    /// budget; each point then runs until every flow terminates.
    pub run_s: u64,
    /// Per-flow cap on total packets (`0` = uncapped) — the CI smoke
    /// knob (`overload_sweep --pkts`).
    pub max_pkts_per_flow: u64,
}

impl OverloadSpec {
    /// The default acceptance shape: a 3-AS chain of 10 Mbps links, a
    /// 2 Mbps reserved flow with 3 Mbps credentials, and best-effort
    /// load swept 4 → 20 Mbps (the ~8 Mbps leftover capacity sits
    /// between the second and third steps; 16 Mbps is 2× it).
    pub fn new(scenario: EngineScenario) -> Self {
        OverloadSpec {
            scenario,
            n_ases: 3,
            // Default links, but with a 16-packet (16 KiB) per-class
            // queue: shallower than the senders' windows, so overload
            // actually drops (and the loop retransmits) instead of the
            // window fitting inside the queue and stalling politely.
            link: LinkSpec { queue_cap_bytes: 16 * 1024, ..LinkSpec::default() },
            reserved_kbps: 2_000,
            credential_kbps: 3_000,
            payload_len: 1_000,
            offered_kbps: vec![4_000, 8_000, 16_000, 20_000],
            profile: ReactiveProfile::default(),
            router_queue_pkts: 128,
            service_per_pkt_ns: 300,
            run_s: 1,
            max_pkts_per_flow: 0,
        }
    }

    /// The same spec with `service_per_pkt_ns` calibrated from
    /// `BENCH_hotpath.json` ([`calibrated_per_pkt_ns`]), falling back to
    /// the hand-set value with a logged note — the overload face of
    /// [`LatencySpec::calibrated`].
    #[must_use]
    pub fn calibrated(mut self) -> Self {
        match calibrated_per_pkt_ns(self.scenario.family) {
            Some(ns) => self.service_per_pkt_ns = ns,
            None => eprintln!(
                "BENCH_hotpath.json unavailable; {} overload sweep keeps the hand-set \
                 {} ns/pkt service cost",
                self.scenario.family.name(),
                self.service_per_pkt_ns
            ),
        }
        self
    }
}

/// One swept load point of [`run_overload_scenario`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverloadPoint {
    /// Best-effort offered load at this point, kbps.
    pub offered_kbps: u64,
    /// The reserved (credentialed) closed-loop flow's counters.
    pub reserved: FlowStats,
    /// The best-effort closed-loop flow's counters.
    pub best_effort: FlowStats,
    /// Whether the reserved flow terminated (every sequence number
    /// acked or abandoned) — `false` flags a livelock.
    pub reserved_done: bool,
    /// Whether the best-effort flow terminated.
    pub best_effort_done: bool,
    /// Simulated time from start to the reserved flow's `Completed`
    /// event, ns (the run horizon if it never completed) — the
    /// denominator for goodput-over-completion-time. Past saturation a
    /// closed-loop flow delivers everything *eventually*; collapse
    /// shows up as completion time, not delivery ratio.
    pub reserved_elapsed_ns: u64,
    /// Same, for the best-effort flow.
    pub best_effort_elapsed_ns: u64,
    /// Simulator events processed for this point.
    pub events: u64,
}

impl OverloadPoint {
    /// Goodput over the flow's own completion time, kbps.
    pub fn reserved_goodput_kbps(&self) -> f64 {
        goodput_over(self.reserved.delivered_bytes, self.reserved_elapsed_ns)
    }

    /// Goodput over the flow's own completion time, kbps.
    pub fn best_effort_goodput_kbps(&self) -> f64 {
        goodput_over(self.best_effort.delivered_bytes, self.best_effort_elapsed_ns)
    }
}

/// `bytes` delivered over `elapsed_ns`, in kbps (`0.0` on an empty window).
fn goodput_over(bytes: u64, elapsed_ns: u64) -> f64 {
    if elapsed_ns == 0 {
        return 0.0;
    }
    (bytes as f64 * 8.0) / (elapsed_ns as f64 / 1_000_000.0)
}

/// What a [`run_overload_scenario`] measured: one [`OverloadPoint`] per
/// swept offered load, in sweep order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OverloadOutcome {
    /// The swept points.
    pub points: Vec<OverloadPoint>,
}

/// The per-flow total-packet budget for `kbps` offered over `run_s`
/// seconds of `payload_len`-byte packets, capped at `max_pkts` when
/// nonzero (the CI smoke knob).
fn flow_budget(kbps: u64, payload_len: usize, run_s: u64, max_pkts: u64) -> u64 {
    let pkts =
        (kbps.saturating_mul(run_s).saturating_mul(125) / (payload_len as u64).max(1)).max(1);
    if max_pkts > 0 {
        pkts.min(max_pkts)
    } else {
        pkts
    }
}

/// Runs the overload sweep for one `spec`: per offered-load step, a
/// fresh chain with the family engines installed, a *bounded* service
/// model on every router, a credentialed closed-loop flow at the
/// reserved rate and a best-effort closed-loop flow at the step's
/// offered rate. Each point runs until both flows terminate (the
/// retransmit budget guarantees termination; a generous simulated-time
/// cap turns a livelock bug into visible `*_done: false` flags instead
/// of a hung test) plus one drain second so in-flight copies land or
/// die before the conservation counters are read.
///
/// The contrast the sweep pins: past saturation the reservation
/// families hold the reserved flow's goodput and p99 latency at the
/// uncontended level while the best-effort flow degrades gracefully —
/// bounded queues keep its tail latency bounded, and every lost packet
/// is attributed to a named drop counter.
pub fn run_overload_scenario(
    cfg: RouterConfig,
    spec: &OverloadSpec,
    start_ns: u64,
) -> OverloadOutcome {
    let sec = 1_000_000_000u64;
    let mut points = Vec::with_capacity(spec.offered_kbps.len());
    for &offered in &spec.offered_kbps {
        let mut topo = LinearTopology::build(spec.n_ases, spec.link, start_ns, cfg);
        topo.install_engines(spec.scenario, cfg);
        if spec.service_per_pkt_ns > 0 {
            let mut model = ServiceModel::new(spec.service_per_pkt_ns, spec.scenario.shards);
            model.queue_pkts = spec.router_queue_pkts;
            topo.set_service_model(Some(model));
        }
        let reserved = topo.add_family_reactive_flow(
            spec.scenario.family,
            victim_src(),
            dest(),
            spec.payload_len,
            spec.reserved_kbps,
            Some(spec.credential_kbps),
            flow_budget(spec.reserved_kbps, spec.payload_len, spec.run_s, spec.max_pkts_per_flow),
            spec.profile,
            start_ns,
        );
        let best_effort = topo.add_family_reactive_flow(
            spec.scenario.family,
            attacker_src(),
            dest(),
            spec.payload_len,
            offered,
            None,
            flow_budget(offered, spec.payload_len, spec.run_s, spec.max_pkts_per_flow),
            spec.profile,
            start_ns,
        );
        let mut horizon = start_ns + (spec.run_s + 1) * sec;
        let cap = start_ns + (spec.run_s + 120) * sec;
        topo.sim.run_until(horizon);
        while (!topo.sim.reactive_done(reserved) || !topo.sim.reactive_done(best_effort))
            && horizon < cap
        {
            horizon += sec;
            topo.sim.run_until(horizon);
        }
        topo.sim.run_until(horizon + sec);
        let completion = |flow| {
            topo.sim
                .flow_events(flow)
                .iter()
                .rev()
                .find(|e| e.kind == FlowEventKind::Completed)
                .map_or(horizon + sec - start_ns, |e| e.at_ns - start_ns)
        };
        points.push(OverloadPoint {
            offered_kbps: offered,
            reserved: topo.sim.stats(reserved),
            best_effort: topo.sim.stats(best_effort),
            reserved_done: topo.sim.reactive_done(reserved),
            best_effort_done: topo.sim.reactive_done(best_effort),
            reserved_elapsed_ns: completion(reserved),
            best_effort_elapsed_ns: completion(best_effort),
            events: topo.sim.events_processed(),
        });
    }
    OverloadOutcome { points }
}

/// Knobs of the churn+overload combination: both closed-loop flows on a
/// generated ring-of-PoPs backbone, the best-effort load past the
/// long-haul saturation point, a link failure on the reserved flow's
/// path at one third of the run, and a configurable *convergence delay*
/// before the reroute pass (the BGP-style window in which loss is the
/// only signal and retransmission timers are what keep state alive).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverloadChurnSpec {
    /// Engine family + shard deployment every router node runs.
    pub scenario: EngineScenario,
    /// PoPs on the backbone ring (≥ 3).
    pub pops: usize,
    /// Routers per PoP (≥ 2 for failover paths to exist).
    pub routers_per_pop: usize,
    /// Seed for topology and key material.
    pub seed: u64,
    /// How many PoPs the flows' shared path spans.
    pub span_pops: usize,
    /// Reserved (credentialed) flow rate, kbps.
    pub reserved_kbps: u64,
    /// Credential rate on every hop, kbps.
    pub credential_kbps: u64,
    /// Payload bytes per packet.
    pub payload_len: usize,
    /// Best-effort offered load, kbps (past the long-haul saturation).
    pub best_effort_kbps: u64,
    /// Window/RTO knobs of both closed-loop senders.
    pub profile: ReactiveProfile,
    /// Link failures injected on the reserved flow's path at `run_s/3`.
    pub failures: usize,
    /// Delay from the failure to the reroute pass, ns — the
    /// convergence window.
    pub convergence_delay_ns: u64,
    /// Bound on packets held per router ([`ServiceModel::queue_pkts`]).
    pub router_queue_pkts: usize,
    /// Per-router, per-core datapath service time, ns (`0` = off).
    pub service_per_pkt_ns: u64,
    /// Nominal sending window, seconds (sizes the packet budgets).
    pub run_s: u64,
    /// Per-flow cap on total packets (`0` = uncapped).
    pub max_pkts_per_flow: u64,
}

impl OverloadChurnSpec {
    /// The default acceptance shape: an 8-PoP × 2-router ring, a 2 Mbps
    /// reserved flow against 16 Mbps of best effort (1.6× the 10 Mbps
    /// long-haul links), one on-path link failure with a 50 ms
    /// convergence delay before the reroute pass.
    pub fn new(scenario: EngineScenario) -> Self {
        OverloadChurnSpec {
            scenario,
            pops: 8,
            routers_per_pop: 2,
            seed: 0x0BAD_CA5E,
            span_pops: 2,
            reserved_kbps: 2_000,
            credential_kbps: 3_000,
            payload_len: 1_000,
            best_effort_kbps: 16_000,
            profile: ReactiveProfile::default(),
            failures: 1,
            convergence_delay_ns: 50_000_000,
            router_queue_pkts: 128,
            service_per_pkt_ns: 300,
            run_s: 3,
            max_pkts_per_flow: 0,
        }
    }
}

/// What a [`run_overload_churn_scenario`] measured. `PartialEq` so two
/// same-seed runs can be asserted bit-identical wholesale.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OverloadChurnOutcome {
    /// Reserved-flow counters over the clean window `[start, failure)`.
    pub reserved_base: FlowStats,
    /// Reserved-flow delta over the convergence window
    /// `[failure, reroute)` — where `link_down_drops` shows sends and
    /// retransmissions dying on the dead path.
    pub reserved_outage: FlowStats,
    /// Reserved-flow delta over `[reroute, end]` — the window the
    /// ≥ 0.9-delivery recovery acceptance is asserted on. Retransmitted
    /// copies of packets lost during the outage regenerate through the
    /// rerouted generator and deliver here: retransmit-driven recovery.
    pub reserved_recovery: FlowStats,
    /// Reserved-flow counters over the whole run.
    pub reserved_total: FlowStats,
    /// Best-effort flow counters over the whole run.
    pub best_effort_total: FlowStats,
    /// Whether the reserved flow terminated (`false` flags a livelock).
    pub reserved_done: bool,
    /// Whether the best-effort flow terminated.
    pub best_effort_done: bool,
    /// The applied fault timeline with per-action effects.
    pub report: ChurnReport,
    /// Simulator events processed over the whole run.
    pub events: u64,
}

/// Runs the churn+overload combination: build the ring backbone,
/// install the family engines and a *bounded* service model, start both
/// closed-loop flows on the same PoP-spanning path, saturate it, then
/// at one third of the run take the path down, hold the failure for
/// `convergence_delay_ns` (retransmissions keep firing into the dead
/// link and die there — the convergence window), reroute every affected
/// flow onto a surviving path with fresh credentials, and run until
/// both flows terminate.
///
/// The acceptance contrast: after the reroute, reservation families
/// recover ≥ 0.9 delivery in the recovery window (retransmits of the
/// convergence-window losses ride the new path's priority class) while
/// the best-effort flow degrades without collapse — it keeps
/// terminating, with every loss in a named counter.
pub fn run_overload_churn_scenario(
    cfg: RouterConfig,
    spec: &OverloadChurnSpec,
    start_ns: u64,
) -> OverloadChurnOutcome {
    let sec = 1_000_000_000u64;
    let backbone = BackboneSpec::new(spec.pops, spec.routers_per_pop, spec.seed);
    let mut topo = TopologyBuilder::ring_of_pops(&backbone, start_ns, cfg);
    topo.install_engines(spec.scenario, cfg);
    if spec.service_per_pkt_ns > 0 {
        let mut model = ServiceModel::new(spec.service_per_pkt_ns, spec.scenario.shards);
        model.queue_pkts = spec.router_queue_pkts;
        topo.set_service_model(Some(model));
    }
    let span = spec.span_pops.clamp(1, spec.pops - 1);
    let (src_router, dst_router) = (0, span * spec.routers_per_pop);
    let reserved = topo.add_family_reactive_flow(
        spec.scenario.family,
        src_router,
        dst_router,
        spec.payload_len,
        spec.reserved_kbps,
        Some(spec.credential_kbps),
        flow_budget(spec.reserved_kbps, spec.payload_len, spec.run_s, spec.max_pkts_per_flow),
        spec.profile,
        start_ns,
    );
    let best_effort = topo.add_family_reactive_flow(
        spec.scenario.family,
        src_router,
        dst_router,
        spec.payload_len,
        spec.best_effort_kbps,
        None,
        flow_budget(spec.best_effort_kbps, spec.payload_len, spec.run_s, spec.max_pkts_per_flow),
        spec.profile,
        start_ns,
    );
    // Failure set: the reserved flow's own path adjacencies.
    let path: Vec<usize> = topo.route_of(reserved).expect("reserved flow routed").to_vec();
    let fail_adjs: Vec<AdjId> = path
        .windows(2)
        .filter_map(|w| topo.adjacency_between(w[0], w[1]))
        .take(spec.failures.max(1))
        .collect();

    // Phase 1: clean saturation up to the failure instant.
    let t_fail = start_ns + spec.run_s * sec / 3;
    let t_reroute = t_fail + spec.convergence_delay_ns;
    topo.sim.run_until(t_fail);
    let reserved_base = topo.sim.stats(reserved);
    let mut report = ChurnReport::default();
    for &adj in &fail_adjs {
        report.records.push(apply_action(&mut topo, ChurnAction::LinkDown(adj)));
    }

    // Phase 2: the convergence window — sends and retransmissions die
    // on the dead path until the reroute pass applies.
    topo.sim.run_until(t_reroute);
    let reserved_at_reroute = topo.sim.stats(reserved);
    report.records.push(apply_action(&mut topo, ChurnAction::RerouteAffected));

    // Phase 3: recovery, extended until both flows terminate (bounded
    // by the retransmit budget; the cap makes a livelock visible as
    // `*_done: false` instead of a hang) plus a drain second.
    let stop_ns = start_ns + spec.run_s * sec;
    let mut horizon = stop_ns + sec;
    let cap = stop_ns + 120 * sec;
    topo.sim.run_until(horizon);
    while (!topo.sim.reactive_done(reserved) || !topo.sim.reactive_done(best_effort))
        && horizon < cap
    {
        horizon += sec;
        topo.sim.run_until(horizon);
    }
    topo.sim.run_until(horizon + sec);
    let reserved_total = topo.sim.stats(reserved);
    OverloadChurnOutcome {
        reserved_base,
        reserved_outage: reserved_at_reroute.since(&reserved_base),
        reserved_recovery: reserved_total.since(&reserved_at_reroute),
        reserved_total,
        best_effort_total: topo.sim.stats(best_effort),
        reserved_done: topo.sim.reactive_done(reserved),
        best_effort_done: topo.sim.reactive_done(best_effort),
        report,
        events: topo.sim.events_processed(),
    }
}

/// What a [`run_latency_churn_scenario`] measured: the latency
/// experiment's victim counters split at the failure and reroute
/// instants. Window accounting follows the [`ChurnPlan`] tie-break: the
/// failure's own queue drain lands at the end of `base`, the reroute's
/// counter bump at the end of `outage`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyChurnOutcome {
    /// Victim counters over the clean window `[start, failure]`.
    pub base: FlowStats,
    /// Victim delta over the outage window `(failure, reroute]`.
    pub outage: FlowStats,
    /// Victim delta over the recovery window `(reroute, end]` — what
    /// the per-family recovery bounds are asserted on.
    pub recovery: FlowStats,
    /// Victim counters over the whole run.
    pub total: FlowStats,
    /// The flood's whole-run counters, when one ran.
    pub flood_total: Option<FlowStats>,
    /// The applied fault timeline (all windows concatenated).
    pub report: ChurnReport,
}

/// Reruns the Fig. 3/4-style latency experiment under a mid-epoch link
/// failure scheduled through a [`ChurnPlan`]: the same victim (and
/// optional flood) as [`run_latency_scenario`], but on a small ring
/// backbone — the linear chain has no failover path — whose long-haul
/// links carry the spec's link parameters. At one third of the run the
/// victim's first on-path adjacency goes down; `reroute_delay_ns` later
/// the reroute pass re-paths every affected flow with fresh
/// credentials. The plan is applied in three [`run_with_churn`] windows
/// so base/outage/recovery counters can be snapshotted at the exact
/// failure and reroute instants.
pub fn run_latency_churn_scenario(
    cfg: RouterConfig,
    spec: &LatencySpec,
    seed: u64,
    reroute_delay_ns: u64,
    start_ns: u64,
) -> LatencyChurnOutcome {
    let sec = 1_000_000_000u64;
    let rpp = 2usize;
    let mut backbone = BackboneSpec::new(spec.n_ases.max(3), rpp, seed);
    backbone.pop_link = spec.link;
    let mut topo = TopologyBuilder::ring_of_pops(&backbone, start_ns, cfg);
    topo.install_engines(spec.scenario, cfg);
    if spec.service_per_pkt_ns > 0 {
        topo.set_service_model(Some(ServiceModel::new(
            spec.service_per_pkt_ns,
            spec.scenario.shards,
        )));
    }
    let stop_ns = start_ns + spec.run_s * sec;
    let victim = topo.add_family_flow(
        spec.scenario.family,
        0,
        2 * rpp,
        spec.payload_len,
        spec.victim_kbps,
        Some(spec.credential_kbps),
        start_ns,
        stop_ns,
    );
    let flood = (spec.flood_kbps > 0).then(|| {
        topo.add_family_flow(
            spec.scenario.family,
            0,
            2 * rpp,
            spec.payload_len,
            spec.flood_kbps,
            None,
            start_ns,
            stop_ns,
        )
    });
    let t_fail = start_ns + spec.run_s * sec / 3;
    let t_reroute = t_fail + reroute_delay_ns;
    let path = topo.route_of(victim).expect("victim routed").to_vec();
    let adj = path
        .windows(2)
        .find_map(|w| topo.adjacency_between(w[0], w[1]))
        .expect("victim path has links");
    let plan = ChurnPlan::new()
        .at(t_fail, ChurnAction::LinkDown(adj))
        .at(t_reroute, ChurnAction::RerouteAffected);
    // The plan restricted to `(lo, hi]` — one snapshot window.
    let window = |lo: u64, hi: u64| {
        let mut sub = ChurnPlan::new();
        for ev in plan.events() {
            if ev.at_ns > lo && ev.at_ns <= hi {
                sub.push(ev.at_ns, ev.action);
            }
        }
        sub
    };
    let mut report = run_with_churn(&mut topo, &window(0, t_fail), t_fail);
    let base = topo.sim.stats(victim);
    report.records.extend(run_with_churn(&mut topo, &window(t_fail, t_reroute), t_reroute).records);
    let at_reroute = topo.sim.stats(victim);
    report
        .records
        .extend(run_with_churn(&mut topo, &window(t_reroute, u64::MAX), stop_ns + sec).records);
    let total = topo.sim.stats(victim);
    LatencyChurnOutcome {
        base,
        outage: at_reroute.since(&base),
        recovery: total.since(&at_reroute),
        total,
        flood_total: flood.map(|f| topo.sim.stats(f)),
        report,
    }
}
