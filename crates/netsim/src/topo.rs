//! Internet-scale topology generation: one seed-driven
//! [`TopologyBuilder`] that wires AS-level graphs — ISP-backbone rings
//! of PoPs, fat-tree regions, customer/provider/peer AS hierarchies —
//! out of the same real-router [`Simulator`] nodes the hand-built
//! scenario topologies use, in the parameterized-constructor style of
//! snowcap's `ExampleNetwork`s.
//!
//! Everything is deterministic: key material and graph structure both
//! come from an explicit `u64` seed routed through the `rand` shim, so
//! two builds from the same spec are identical node for node (pinned by
//! the golden [`TopologyBuilder::topology_hash`] test) and a whole
//! churn scenario replays bit-exactly.
//!
//! The builder is also the live experiment handle: it knows every
//! router's key material and the (bidirectional) adjacency list, so it
//! can route flows with deterministic BFS, attach per-hop credentials
//! for any [`EngineFamily`], and — the churn half — take adjacencies
//! down, reboot routers with cold caches, and reroute the affected
//! flows around dead links (see [`crate::churn`]).
//!
//! The bespoke [`crate::LinearTopology`] and [`crate::DiamondTopology`]
//! are re-expressed on the same primitives
//! ([`TopologyBuilder::add_router_keyed`],
//! [`TopologyBuilder::connect_oneway`], [`TopologyBuilder::into_parts`])
//! so node/link/interface wiring and the DRKey-master derivation rule
//! live in exactly one place.

use crate::flow::ReactiveFlow;
use crate::scenario::{deploy_engine, family_credential, family_engine, EngineFamily};
use crate::scenario::{EngineScenario, LinkSpec, ReactiveProfile};
use crate::sim::{Flow, FlowId, LinkId, Node, NodeId, ServiceModel, Simulator};
use hummingbird_crypto::SecretValue;
use hummingbird_dataplane::{
    forge_path, BeaconHop, Datapath, DatapathBuilder, DatapathStats, RouterConfig, SourceGenerator,
};
use hummingbird_wire::scion_mac::HopMacKey;
use hummingbird_wire::IsdAs;
use rand::{rngs::StdRng, Rng as _, SeedableRng as _};
use std::collections::{HashMap, VecDeque};

/// Index of a router inside a [`TopologyBuilder`].
pub type RouterId = usize;
/// Index of a bidirectional adjacency inside a [`TopologyBuilder`].
pub type AdjId = usize;

/// The ISD every generated flow's source identity lives in (distinct
/// from router ASes so per-flow sources never collide with the
/// infrastructure, and distinct per flow so duplicate filters and
/// source-keyed engines see every flow as its own sender).
const FLOW_ISD: u16 = 0xF0;

/// SegID seed for generated paths.
const BETA0: u16 = 0x7A7A;

/// One router of the generated topology.
struct RouterMeta {
    /// Simulator node.
    node: NodeId,
    /// Attached local-delivery host, if any.
    host: Option<NodeId>,
    /// Hop-field MAC key (`K_i`).
    hop_key: HopMacKey,
    /// Reservation secret value.
    sv: SecretValue,
    /// DRKey hierarchy root for the baseline families.
    master: [u8; 16],
    /// The AS identity of this router.
    isd_as: IsdAs,
    /// Interface toward each neighbor (used for both directions of the
    /// adjacency, like a physical port).
    ifaces: HashMap<RouterId, u16>,
    /// Neighbors in adjacency-insertion order (deterministic BFS).
    neighbors: Vec<(RouterId, AdjId)>,
    /// Next free interface number (0 is the host/local interface).
    next_iface: u16,
}

/// A bidirectional adjacency: two unidirectional simulator links plus
/// the interface each endpoint uses for it.
#[derive(Clone, Copy, Debug)]
pub struct Adjacency {
    /// One endpoint.
    pub a: RouterId,
    /// The other endpoint.
    pub b: RouterId,
    /// `a`'s interface for this adjacency.
    pub a_if: u16,
    /// `b`'s interface for this adjacency.
    pub b_if: u16,
    /// The `a → b` simulator link.
    pub ab: LinkId,
    /// The `b → a` simulator link.
    pub ba: LinkId,
    /// Whether the adjacency is up (both directions fail together).
    pub up: bool,
}

/// Routing metadata of one flow, kept so churn can re-path it.
struct FlowRoute {
    flow: FlowId,
    family: EngineFamily,
    src: IsdAs,
    dst: IsdAs,
    src_router: RouterId,
    dst_router: RouterId,
    credential_kbps: Option<u64>,
    path: Vec<RouterId>,
}

/// Spec of a ring-of-PoPs ISP backbone: `pops` points of presence on a
/// ring, each a full mesh of `routers_per_pop` routers, adjacent PoPs
/// joined by one long-haul link per router index (parallel inter-PoP
/// links are what give failover paths of equal PoP count), plus up to
/// `chords` seeded long-haul shortcuts between non-adjacent PoPs.
#[derive(Clone, Copy, Debug)]
pub struct BackboneSpec {
    /// PoPs on the ring (≥ 3).
    pub pops: usize,
    /// Routers per PoP (≥ 1), fully meshed inside the PoP.
    pub routers_per_pop: usize,
    /// Seeded random long-haul shortcut links (draws; invalid draws —
    /// same, adjacent or already-linked PoP pairs — are skipped).
    pub chords: usize,
    /// Seed for key material and chord structure.
    pub seed: u64,
    /// Inter-PoP long-haul link parameters (the contended bottlenecks).
    pub pop_link: LinkSpec,
    /// Intra-PoP link parameters (short, fat).
    pub intra_link: LinkSpec,
}

impl BackboneSpec {
    /// A backbone spec with the default 10 Mbps / 1 ms long-haul links
    /// and 100 Mbps / 0.1 ms intra-PoP links.
    pub fn new(pops: usize, routers_per_pop: usize, seed: u64) -> Self {
        BackboneSpec {
            pops,
            routers_per_pop,
            chords: pops / 4,
            seed,
            pop_link: LinkSpec::default(),
            intra_link: LinkSpec {
                bandwidth_bps: 100_000_000,
                propagation_ns: 100_000,
                queue_cap_bytes: 64 * 1024,
            },
        }
    }
}

/// Spec of a customer/provider/peer AS hierarchy: `tier1` transit ASes
/// in a full peer mesh, `tier2` regional providers each homed to two
/// tier-1 providers, `stubs` leaf ASes homed to one or two tier-2
/// providers, plus up to `peering` seeded lateral tier-2 peer links.
#[derive(Clone, Copy, Debug)]
pub struct HierarchySpec {
    /// Tier-1 (full-mesh core) ASes, ≥ 1.
    pub tier1: usize,
    /// Tier-2 (regional) ASes.
    pub tier2: usize,
    /// Stub (leaf) ASes.
    pub stubs: usize,
    /// Seeded lateral tier-2 peering links (draws; invalid skipped).
    pub peering: usize,
    /// Seed for key material, homing and peering structure.
    pub seed: u64,
    /// Core (tier-1 mesh + tier-1/tier-2) link parameters.
    pub core_link: LinkSpec,
    /// Edge (stub homing) link parameters.
    pub edge_link: LinkSpec,
}

impl HierarchySpec {
    /// A hierarchy spec with fat core links and default edge links.
    pub fn new(tier1: usize, tier2: usize, stubs: usize, seed: u64) -> Self {
        HierarchySpec {
            tier1,
            tier2,
            stubs,
            peering: tier2 / 2,
            seed,
            core_link: LinkSpec {
                bandwidth_bps: 100_000_000,
                propagation_ns: 500_000,
                queue_cap_bytes: 64 * 1024,
            },
            edge_link: LinkSpec::default(),
        }
    }
}

/// What [`TopologyBuilder::into_parts`] hands back to the bespoke
/// topology shapes (linear chain, diamond) built on the same wiring
/// primitives.
pub struct TopologyParts {
    /// The wired simulator.
    pub sim: Simulator,
    /// Router node per [`RouterId`], in creation order.
    pub router_nodes: Vec<NodeId>,
    /// Attached host node per router, if one was attached.
    pub hosts: Vec<Option<NodeId>>,
    /// Per-router DRKey hierarchy roots (derived from the SV bytes; the
    /// single place that rule lives).
    pub drkey_masters: Vec<[u8; 16]>,
}

/// A deterministic, seed-driven topology builder over real-datapath
/// router nodes — and, once built, the live handle a churn experiment
/// drives (see the [module docs](self)).
pub struct TopologyBuilder {
    /// The simulator, wired as the topology grows.
    pub sim: Simulator,
    routers: Vec<RouterMeta>,
    adjacencies: Vec<Adjacency>,
    adj_of: HashMap<(RouterId, RouterId), AdjId>,
    routes: Vec<FlowRoute>,
    engines: Option<EngineScenario>,
    engine_cfg: RouterConfig,
    service: Option<ServiceModel>,
    info_ts: u32,
    next_res_id: u32,
    next_flow_src: u64,
}

impl TopologyBuilder {
    /// An empty topology starting at simulated time `start_ns`; routers
    /// run Hummingbird engines configured with `cfg` until
    /// [`install_engines`](TopologyBuilder::install_engines) swaps a
    /// family in.
    pub fn new(start_ns: u64, cfg: RouterConfig) -> Self {
        TopologyBuilder {
            sim: Simulator::new(start_ns),
            routers: Vec::new(),
            adjacencies: Vec::new(),
            adj_of: HashMap::new(),
            routes: Vec::new(),
            engines: None,
            engine_cfg: cfg,
            service: None,
            info_ts: (start_ns / 1_000_000_000) as u32,
            next_res_id: 0,
            next_flow_src: 0,
        }
    }

    // ---- wiring primitives -------------------------------------------------

    /// Adds a router with explicit key material and no attached host —
    /// the primitive the bespoke chain/diamond shapes build on. The
    /// DRKey master is derived from the SV bytes here (first byte
    /// XOR `0xA5`: a distinct hierarchy root per AS).
    pub fn add_router_keyed(
        &mut self,
        hop_key_bytes: [u8; 16],
        sv_key_bytes: [u8; 16],
        isd_as: IsdAs,
    ) -> RouterId {
        let hop_key = HopMacKey::new(hop_key_bytes);
        let sv = SecretValue::new(sv_key_bytes);
        let mut master = sv_key_bytes;
        master[0] ^= 0xA5;
        let node = self.sim.add_node(Node::Router {
            router: DatapathBuilder::new(sv.clone(), hop_key.clone())
                .config(self.engine_cfg)
                .build_boxed(),
            interfaces: HashMap::new(),
            local: None,
        });
        self.routers.push(RouterMeta {
            node,
            host: None,
            hop_key,
            sv,
            master,
            isd_as,
            ifaces: HashMap::new(),
            neighbors: Vec::new(),
            next_iface: 1,
        });
        self.routers.len() - 1
    }

    /// Adds a router whose key material is drawn from `rng`, with a
    /// local-delivery host attached — the generated-topology shape,
    /// where any router can terminate flows.
    pub fn add_router(&mut self, rng: &mut StdRng) -> RouterId {
        let hop_key: [u8; 16] = rng.gen();
        let sv_key: [u8; 16] = rng.gen();
        let idx = self.routers.len();
        let r = self.add_router_keyed(hop_key, sv_key, IsdAs::new(1, 0x100 + idx as u64));
        self.attach_host(r);
        r
    }

    /// Attaches a local-delivery host to router `r` (idempotent),
    /// returning its node.
    pub fn attach_host(&mut self, r: RouterId) -> NodeId {
        if let Some(h) = self.routers[r].host {
            return h;
        }
        let host = self.sim.add_node(Node::Host);
        self.sim.set_local_delivery(self.routers[r].node, host);
        self.routers[r].host = Some(host);
        host
    }

    /// Adds a unidirectional `a → b` link on explicit egress interface
    /// `egress_if` of `a` — the chain/diamond primitive, where the
    /// caller owns the interface convention. Not tracked as a churnable
    /// adjacency.
    pub fn connect_oneway(
        &mut self,
        a: RouterId,
        egress_if: u16,
        b: RouterId,
        link: LinkSpec,
    ) -> LinkId {
        let l = self.sim.add_link(
            self.routers[b].node,
            link.bandwidth_bps,
            link.propagation_ns,
            link.queue_cap_bytes,
        );
        self.sim.connect_interface(self.routers[a].node, egress_if, l);
        l
    }

    /// Connects routers `a` and `b` bidirectionally, auto-assigning one
    /// interface per endpoint, and registers the pair as a churnable
    /// [`Adjacency`]. Panics on self-loops and duplicate adjacencies —
    /// the generator invariants the property tests pin.
    pub fn connect(&mut self, a: RouterId, b: RouterId, link: LinkSpec) -> AdjId {
        assert_ne!(a, b, "self-loop");
        let key = (a.min(b), a.max(b));
        assert!(!self.adj_of.contains_key(&key), "duplicate adjacency {a}-{b}");
        let a_if = self.routers[a].next_iface;
        self.routers[a].next_iface += 1;
        let b_if = self.routers[b].next_iface;
        self.routers[b].next_iface += 1;
        let ab = self.connect_oneway(a, a_if, b, link);
        let ba = self.connect_oneway(b, b_if, a, link);
        let id = self.adjacencies.len();
        self.adjacencies.push(Adjacency { a, b, a_if, b_if, ab, ba, up: true });
        self.adj_of.insert(key, id);
        self.routers[a].ifaces.insert(b, a_if);
        self.routers[b].ifaces.insert(a, b_if);
        self.routers[a].neighbors.push((b, id));
        self.routers[b].neighbors.push((a, id));
        id
    }

    /// Dismantles the builder into its simulator and node bookkeeping —
    /// how the bespoke chain/diamond topologies take ownership after
    /// wiring through the shared primitives.
    pub fn into_parts(self) -> TopologyParts {
        TopologyParts {
            sim: self.sim,
            router_nodes: self.routers.iter().map(|r| r.node).collect(),
            hosts: self.routers.iter().map(|r| r.host).collect(),
            drkey_masters: self.routers.iter().map(|r| r.master).collect(),
        }
    }

    // ---- generated constructors -------------------------------------------

    /// Builds a ring-of-PoPs ISP backbone per `spec` (see
    /// [`BackboneSpec`]). Deterministic in `spec.seed`.
    pub fn ring_of_pops(spec: &BackboneSpec, start_ns: u64, cfg: RouterConfig) -> Self {
        assert!(spec.pops >= 3, "a ring needs at least 3 PoPs");
        assert!(spec.routers_per_pop >= 1);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut t = Self::new(start_ns, cfg);
        let pops: Vec<Vec<RouterId>> = (0..spec.pops)
            .map(|_| (0..spec.routers_per_pop).map(|_| t.add_router(&mut rng)).collect())
            .collect();
        // Full mesh inside each PoP.
        for pop in &pops {
            for i in 0..pop.len() {
                for j in i + 1..pop.len() {
                    t.connect(pop[i], pop[j], spec.intra_link);
                }
            }
        }
        // The ring: one long-haul link per router index between
        // adjacent PoPs (parallel paths of equal PoP count).
        for p in 0..spec.pops {
            let q = (p + 1) % spec.pops;
            for (&a, &b) in pops[p].iter().zip(&pops[q]) {
                t.connect(a, b, spec.pop_link);
            }
        }
        // Seeded chords between non-adjacent PoPs, attached to each
        // PoP's *last* router: reaching a chord from lane 0 costs an
        // intra-PoP hop on both ends, so chords shorten long failover
        // detours without beating short ring paths on hop count (BFS
        // ties resolve to the ring, whose links are inserted first).
        let last = spec.routers_per_pop - 1;
        for _ in 0..spec.chords {
            let p = rng.gen_range(0..spec.pops);
            let q = rng.gen_range(0..spec.pops);
            let ring_adjacent = (p + 1) % spec.pops == q || (q + 1) % spec.pops == p;
            if p == q
                || ring_adjacent
                || t.adjacency_between(pops[p][last], pops[q][last]).is_some()
            {
                continue;
            }
            t.connect(pops[p][last], pops[q][last], spec.pop_link);
        }
        t
    }

    /// Builds a `k`-ary fat-tree region (`k` even): `(k/2)²` core
    /// routers and `k` pods of `k/2` aggregation + `k/2` edge routers.
    /// `seed` drives key material only — the wiring is the classic
    /// fixed fat-tree.
    pub fn fat_tree(k: usize, seed: u64, link: LinkSpec, start_ns: u64, cfg: RouterConfig) -> Self {
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
        let half = k / 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Self::new(start_ns, cfg);
        let cores: Vec<RouterId> = (0..half * half).map(|_| t.add_router(&mut rng)).collect();
        for _pod in 0..k {
            let aggs: Vec<RouterId> = (0..half).map(|_| t.add_router(&mut rng)).collect();
            let edges: Vec<RouterId> = (0..half).map(|_| t.add_router(&mut rng)).collect();
            for &e in &edges {
                for &a in &aggs {
                    t.connect(e, a, link);
                }
            }
            for (j, &a) in aggs.iter().enumerate() {
                for c in 0..half {
                    t.connect(a, cores[j * half + c], link);
                }
            }
        }
        t
    }

    /// Builds a customer/provider/peer AS hierarchy per `spec` (see
    /// [`HierarchySpec`]). Deterministic in `spec.seed`.
    pub fn as_hierarchy(spec: &HierarchySpec, start_ns: u64, cfg: RouterConfig) -> Self {
        assert!(spec.tier1 >= 1);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut t = Self::new(start_ns, cfg);
        let tier1: Vec<RouterId> = (0..spec.tier1).map(|_| t.add_router(&mut rng)).collect();
        let tier2: Vec<RouterId> = (0..spec.tier2).map(|_| t.add_router(&mut rng)).collect();
        let stubs: Vec<RouterId> = (0..spec.stubs).map(|_| t.add_router(&mut rng)).collect();
        // Tier-1 peer mesh.
        for i in 0..tier1.len() {
            for j in i + 1..tier1.len() {
                t.connect(tier1[i], tier1[j], spec.core_link);
            }
        }
        // Tier-2: dual-homed to tier-1 providers.
        for &r in &tier2 {
            let a = rng.gen_range(0..spec.tier1);
            let mut b = rng.gen_range(0..spec.tier1);
            if b == a {
                b = (a + 1) % spec.tier1;
            }
            t.connect(r, tier1[a], spec.core_link);
            if b != a {
                t.connect(r, tier1[b], spec.core_link);
            }
        }
        // Stubs: homed to one or two tier-2 providers (or straight to
        // tier-1 when there is no tier-2).
        for &r in &stubs {
            if spec.tier2 == 0 {
                t.connect(r, tier1[rng.gen_range(0..spec.tier1)], spec.edge_link);
                continue;
            }
            let a = rng.gen_range(0..spec.tier2);
            t.connect(r, tier2[a], spec.edge_link);
            if rng.gen_bool(0.5) && spec.tier2 > 1 {
                let mut b = rng.gen_range(0..spec.tier2);
                if b == a {
                    b = (a + 1) % spec.tier2;
                }
                t.connect(r, tier2[b], spec.edge_link);
            }
        }
        // Lateral tier-2 peering.
        for _ in 0..spec.peering {
            if spec.tier2 < 2 {
                break;
            }
            let a = rng.gen_range(0..spec.tier2);
            let b = rng.gen_range(0..spec.tier2);
            if a == b || t.adjacency_between(tier2[a], tier2[b]).is_some() {
                continue;
            }
            t.connect(tier2[a], tier2[b], spec.core_link);
        }
        t
    }

    // ---- introspection ----------------------------------------------------

    /// Number of routers.
    pub fn n_routers(&self) -> usize {
        self.routers.len()
    }

    /// Number of (bidirectional) adjacencies.
    pub fn n_adjacencies(&self) -> usize {
        self.adjacencies.len()
    }

    /// The adjacency record.
    pub fn adjacency(&self, adj: AdjId) -> Adjacency {
        self.adjacencies[adj]
    }

    /// The adjacency joining `a` and `b`, if one exists.
    pub fn adjacency_between(&self, a: RouterId, b: RouterId) -> Option<AdjId> {
        self.adj_of.get(&(a.min(b), a.max(b))).copied()
    }

    /// The currently-up adjacency ids, in id order.
    pub fn live_adjacencies(&self) -> Vec<AdjId> {
        (0..self.adjacencies.len()).filter(|&i| self.adjacencies[i].up).collect()
    }

    /// Simulator node of router `r`.
    pub fn router_node(&self, r: RouterId) -> NodeId {
        self.routers[r].node
    }

    /// AS identity of router `r`.
    pub fn router_isd_as(&self, r: RouterId) -> IsdAs {
        self.routers[r].isd_as
    }

    /// The current path of `flow` (routers in traversal order), if the
    /// flow was created through this builder.
    pub fn route_of(&self, flow: FlowId) -> Option<&[RouterId]> {
        self.routes.iter().find(|r| r.flow == flow).map(|r| r.path.as_slice())
    }

    /// FNV-1a hash over the node/edge list (router count, AS ids, and
    /// every adjacency's endpoints + interfaces, in insertion order) —
    /// the golden-topology fingerprint that makes generator drift fail
    /// loudly.
    pub fn topology_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.routers.len() as u64);
        for r in &self.routers {
            mix(u64::from(r.isd_as.isd));
            mix(r.isd_as.asn);
        }
        mix(self.adjacencies.len() as u64);
        for adj in &self.adjacencies {
            mix(adj.a as u64);
            mix(adj.b as u64);
            mix(u64::from(adj.a_if));
            mix(u64::from(adj.b_if));
        }
        h
    }

    // ---- engines & service ------------------------------------------------

    /// A fresh engine for router `r` under the currently installed
    /// scenario (Hummingbird single-engine before any
    /// [`install_engines`](TopologyBuilder::install_engines) call).
    fn fresh_engine(&self, r: RouterId) -> Box<dyn Datapath + Send> {
        let scenario =
            self.engines.unwrap_or(EngineScenario { family: EngineFamily::Hummingbird, shards: 1 });
        let meta = &self.routers[r];
        deploy_engine(scenario, self.engine_cfg, || {
            family_engine(scenario.family, &meta.sv, &meta.hop_key, &meta.master, self.engine_cfg)
        })
    }

    /// Swaps every router's engine for `scenario`'s family (sharded per
    /// `scenario.shards`) — the same knob as
    /// [`crate::LinearTopology::install_engines`], remembered so a
    /// churn [`reboot_router`](TopologyBuilder::reboot_router) rebuilds
    /// the right engine.
    pub fn install_engines(&mut self, scenario: EngineScenario, cfg: RouterConfig) {
        self.engines = Some(scenario);
        self.engine_cfg = cfg;
        for r in 0..self.routers.len() {
            let engine = self.fresh_engine(r);
            self.sim.replace_engine(self.routers[r].node, engine).ok().expect("router node");
        }
    }

    /// Installs `model` on every router node (or clears with `None`),
    /// remembered so reboots re-install it with idle cores.
    pub fn set_service_model(&mut self, model: Option<ServiceModel>) {
        self.service = model;
        for r in &self.routers {
            self.sim.set_router_service(r.node, model);
        }
    }

    // ---- routing & flows --------------------------------------------------

    /// Deterministic BFS shortest path over *up* adjacencies, neighbor
    /// order = adjacency insertion order (ties resolve identically on
    /// every run). `None` when `to` is unreachable.
    pub fn shortest_path(&self, from: RouterId, to: RouterId) -> Option<Vec<RouterId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev = vec![usize::MAX; self.routers.len()];
        let mut queue = VecDeque::new();
        prev[from] = from;
        queue.push_back(from);
        while let Some(r) = queue.pop_front() {
            for &(n, adj) in &self.routers[r].neighbors {
                if !self.adjacencies[adj].up || prev[n] != usize::MAX {
                    continue;
                }
                prev[n] = r;
                if n == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while cur != from {
                        cur = prev[cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(n);
            }
        }
        None
    }

    /// Whether every consecutive hop pair of `path` rides an up
    /// adjacency.
    fn path_is_live(&self, path: &[RouterId]) -> bool {
        path.windows(2)
            .all(|w| self.adjacency_between(w[0], w[1]).is_some_and(|adj| self.adjacencies[adj].up))
    }

    /// The per-hop (ingress, egress) interface pairs of `path`: entry
    /// ingress and final egress are 0 (host-facing / local delivery),
    /// transit interfaces are the per-adjacency port numbers.
    fn path_interfaces(&self, path: &[RouterId]) -> Vec<(u16, u16)> {
        let last = path.len() - 1;
        path.iter()
            .enumerate()
            .map(|(i, &r)| {
                let ingress = if i == 0 { 0 } else { self.routers[r].ifaces[&path[i - 1]] };
                let egress = if i == last { 0 } else { self.routers[r].ifaces[&path[i + 1]] };
                (ingress, egress)
            })
            .collect()
    }

    /// Builds a source generator over `path`, attaching `family`
    /// credentials (at `credential_kbps`) on every hop when requested.
    fn build_generator(
        &mut self,
        family: EngineFamily,
        path: &[RouterId],
        src: IsdAs,
        dst: IsdAs,
        credential_kbps: Option<u64>,
        now_s: u64,
    ) -> SourceGenerator {
        let ifaces = self.path_interfaces(path);
        let hops: Vec<BeaconHop> = path
            .iter()
            .zip(&ifaces)
            .map(|(&r, &(ingress, egress))| BeaconHop {
                key: self.routers[r].hop_key.clone(),
                cons_ingress: ingress,
                cons_egress: egress,
            })
            .collect();
        let mut generator = SourceGenerator::new(src, dst, forge_path(&hops, self.info_ts, BETA0));
        if let Some(kbps) = credential_kbps {
            let mut next_res_id = self.next_res_id;
            for (i, (&r, &(ingress, egress))) in path.iter().zip(&ifaces).enumerate() {
                let meta = &self.routers[r];
                let credential = family_credential(
                    family,
                    &meta.sv,
                    &meta.master,
                    ingress,
                    egress,
                    &mut next_res_id,
                    src,
                    kbps,
                    now_s,
                );
                generator.attach_reservation(i, credential).expect("matching interfaces");
            }
            self.next_res_id = next_res_id;
        }
        generator
    }

    /// Adds a CBR flow from a fresh source identity behind `src_router`
    /// to `dst_router`'s attached host, routed by
    /// [`shortest_path`](TopologyBuilder::shortest_path).
    /// `credential_kbps` of `Some(r)` attaches `family`'s per-hop
    /// credential on every hop; `None` sends best effort. The route is
    /// remembered so churn can re-path the flow.
    #[allow(clippy::too_many_arguments)]
    pub fn add_family_flow(
        &mut self,
        family: EngineFamily,
        src_router: RouterId,
        dst_router: RouterId,
        payload_len: usize,
        rate_kbps: u64,
        credential_kbps: Option<u64>,
        start_ns: u64,
        stop_ns: u64,
    ) -> FlowId {
        assert!(self.routers[dst_router].host.is_some(), "destination router has no host");
        let path = self.shortest_path(src_router, dst_router).expect("graph is connected");
        self.next_flow_src += 1;
        let src = IsdAs::new(FLOW_ISD, self.next_flow_src);
        let dst = self.routers[dst_router].isd_as;
        let generator = self.build_generator(
            family,
            &path,
            src,
            dst,
            credential_kbps,
            start_ns / 1_000_000_000,
        );
        let entry = self.routers[path[0]].node;
        let interval_ns = (payload_len as u64 * 8).saturating_mul(1_000_000) / rate_kbps.max(1);
        let flow = self.sim.add_flow(Flow {
            generator,
            entry,
            payload_len,
            interval_ns,
            start_ns,
            stop_ns,
        });
        self.routes.push(FlowRoute {
            flow,
            family,
            src,
            dst,
            src_router,
            dst_router,
            credential_kbps,
            path,
        });
        flow
    }

    /// Adds a closed-loop ([`ReactiveFlow`]) flow from a fresh source
    /// identity behind `src_router` to `dst_router`'s attached host —
    /// the reactive counterpart of
    /// [`add_family_flow`](TopologyBuilder::add_family_flow). The route
    /// is remembered, so churn re-paths the flow and its
    /// retransmissions follow the new path.
    #[allow(clippy::too_many_arguments)]
    pub fn add_family_reactive_flow(
        &mut self,
        family: EngineFamily,
        src_router: RouterId,
        dst_router: RouterId,
        payload_len: usize,
        rate_kbps: u64,
        credential_kbps: Option<u64>,
        total_pkts: u64,
        profile: ReactiveProfile,
        start_ns: u64,
    ) -> FlowId {
        assert!(self.routers[dst_router].host.is_some(), "destination router has no host");
        let path = self.shortest_path(src_router, dst_router).expect("graph is connected");
        self.next_flow_src += 1;
        let src = IsdAs::new(FLOW_ISD, self.next_flow_src);
        let dst = self.routers[dst_router].isd_as;
        let generator = self.build_generator(
            family,
            &path,
            src,
            dst,
            credential_kbps,
            start_ns / 1_000_000_000,
        );
        let entry = self.routers[path[0]].node;
        let pacing_ns = (payload_len as u64 * 8).saturating_mul(1_000_000) / rate_kbps.max(1);
        let flow = self.sim.add_reactive_flow(ReactiveFlow {
            generator,
            entry,
            payload_len,
            total_pkts,
            window: profile.window.max(1),
            pacing_ns,
            ack_delay_ns: profile.ack_delay_ns,
            rto_ns: profile.rto_ns,
            rto_max_ns: profile.rto_max_ns,
            max_retransmits: profile.max_retransmits,
            start_ns,
        });
        self.routes.push(FlowRoute {
            flow,
            family,
            src,
            dst,
            src_router,
            dst_router,
            credential_kbps,
            path,
        });
        flow
    }

    // ---- churn primitives -------------------------------------------------

    /// Takes adjacency `adj` down (`up = false`) or restores it — both
    /// directions together. Returns how many queued packets the failure
    /// drained (each counted into its flow's
    /// [`link_down_drops`](crate::FlowStats::link_down_drops)).
    pub fn set_adjacency_up(&mut self, adj: AdjId, up: bool) -> u64 {
        let a = self.adjacencies[adj];
        let drained = self.sim.set_link_up(a.ab, up) + self.sim.set_link_up(a.ba, up);
        self.adjacencies[adj].up = up;
        drained
    }

    /// Reboots router `r`: the engine is rebuilt from scratch under the
    /// installed scenario — `AuthKeyCache`, policer buckets and the
    /// duplicate suppressor all come back cold — and the service model
    /// restarts with idle cores. Returns the discarded engine's final
    /// counters (the stats lost to the reboot).
    pub fn reboot_router(&mut self, r: RouterId) -> DatapathStats {
        let discarded = self.sim.router_stats(self.routers[r].node).unwrap_or_default();
        let engine = self.fresh_engine(r);
        self.sim.replace_engine(self.routers[r].node, engine).ok().expect("router node");
        self.sim.set_router_service(self.routers[r].node, self.service);
        discarded
    }

    /// Re-paths every still-active flow whose route crosses a downed
    /// adjacency: each gets a fresh BFS path over the surviving graph
    /// with fresh per-hop credentials (new reservations — the old ones
    /// stay stranded on the dead path), applied via
    /// [`Simulator::set_flow_route`]. Flows with no surviving path are
    /// left stranded, still sending into the failure. Returns
    /// `(rerouted, stranded)`.
    pub fn reroute_affected(&mut self) -> (usize, usize) {
        let mut moved = 0;
        let mut stranded = 0;
        for i in 0..self.routes.len() {
            if self.path_is_live(&self.routes[i].path) {
                continue;
            }
            if !self.sim.flow_is_active(self.routes[i].flow) {
                continue;
            }
            let (flow, family, src, dst, src_router, dst_router, credential_kbps) = {
                let r = &self.routes[i];
                (r.flow, r.family, r.src, r.dst, r.src_router, r.dst_router, r.credential_kbps)
            };
            match self.shortest_path(src_router, dst_router) {
                None => stranded += 1,
                Some(path) => {
                    let now_s = self.sim.now_ns() / 1_000_000_000;
                    let generator =
                        self.build_generator(family, &path, src, dst, credential_kbps, now_s);
                    let entry = self.routers[path[0]].node;
                    self.sim.set_flow_route(flow, generator, entry);
                    self.routes[i].path = path;
                    moved += 1;
                }
            }
        }
        (moved, stranded)
    }
}
