//! Generated-topology and churn subsystem tests:
//!
//! 1. **Golden topology** — the small-backbone node/edge hash is pinned,
//!    so any drift in the seeded generator fails loudly.
//! 2. **Event ordering** — packet events sharing a timestamp dispatch in
//!    schedule order (the `(time, seq)` FIFO contract churn relies on).
//! 3. **Churn mechanics** — down/up pairs restore the exact pre-failure
//!    link set; a reboot wipes all datapath state (caches come back
//!    cold) without disturbing the flows.
//! 4. **Generator invariants** (property tests) — generated graphs are
//!    connected with no self-loops or duplicate adjacencies, and every
//!    flow's path exists edge-by-edge in the graph.
//! 5. **Acceptance** — the four-family QoS/DoS experiment runs on a
//!    generated 104-router backbone with 3 mid-epoch link failures:
//!    reservation families recover (post-failover latency < 2× base,
//!    delivery > 0.9) while authentication-only families stay flooded,
//!    and two same-seed runs are bit-identical end to end.

use hummingbird_dataplane::RouterConfig;
use hummingbird_netsim::{
    run_churn_scenario, run_with_churn, BackboneSpec, ChurnAction, ChurnPlan, ChurnSpec,
    EngineFamily, EngineScenario, HierarchySpec, LinkSpec, TopologyBuilder,
};
use proptest::prelude::*;

const START_S: u64 = 1_700_000_000;
const START_NS: u64 = START_S * 1_000_000_000;
const SEC: u64 = 1_000_000_000;

fn cfg() -> RouterConfig {
    RouterConfig::default()
}

/// The pinned fingerprint of `BackboneSpec::new(4, 2, 42)` — update only
/// on a *deliberate* generator change.
const GOLDEN_BACKBONE_HASH: u64 = 0xD1FB_373C_A3AA_B33C;

#[test]
fn golden_small_backbone_topology_is_pinned() {
    let t = TopologyBuilder::ring_of_pops(&BackboneSpec::new(4, 2, 42), START_NS, cfg());
    assert_eq!(t.n_routers(), 8);
    // 4 intra-PoP + 8 ring links (2 lanes × 4 PoPs); chords = 4/4 = 1
    // draw, which may or may not land, so only bound it.
    assert!(t.n_adjacencies() >= 12 && t.n_adjacencies() <= 13, "{}", t.n_adjacencies());
    assert_eq!(t.topology_hash(), GOLDEN_BACKBONE_HASH, "hash {:#018X}", t.topology_hash());
    // Same seed → identical build; different seed → different keys but
    // (for the ring) the same wiring is allowed to differ only via
    // chords, so compare against a rebuilt twin instead.
    let twin = TopologyBuilder::ring_of_pops(&BackboneSpec::new(4, 2, 42), START_NS, cfg());
    assert_eq!(twin.topology_hash(), t.topology_hash());
}

/// Two packets scheduled at the same instant dispatch in schedule order:
/// the first-created flow's packet grabs the wire and the second queues
/// behind it for exactly one serialization time. Pinned twice to also
/// demand bit-identical reruns.
#[test]
fn equal_timestamp_events_are_fifo_by_schedule_order() {
    let run = |_: ()| {
        let mut t = TopologyBuilder::new(START_NS, cfg());
        let a = t.add_router_keyed([0x21; 16], [0x51; 16], hummingbird_wire::IsdAs::new(1, 1));
        let b = t.add_router_keyed([0x22; 16], [0x52; 16], hummingbird_wire::IsdAs::new(1, 2));
        t.attach_host(b);
        t.connect(a, b, LinkSpec::default());
        // stop = start + 1 ns ⇒ exactly one packet per flow, both sent
        // at the same instant.
        let f0 = t.add_family_flow(
            EngineFamily::Hummingbird,
            a,
            b,
            500,
            1_000,
            None,
            START_NS,
            START_NS + 1,
        );
        let f1 = t.add_family_flow(
            EngineFamily::Hummingbird,
            a,
            b,
            500,
            1_000,
            None,
            START_NS,
            START_NS + 1,
        );
        t.sim.run_until(START_NS + SEC);
        (t.sim.stats(f0), t.sim.stats(f1))
    };
    let (s0, s1) = run(());
    assert_eq!(s0.sent_pkts, 1);
    assert_eq!(s1.sent_pkts, 1);
    assert_eq!(s0.delivered_pkts, 1);
    assert_eq!(s1.delivered_pkts, 1);
    // Exact FIFO: flow 1 waits precisely flow 0's serialization time.
    let tx_ns = s0.sent_bytes * 8 * 1_000_000_000 / LinkSpec::default().bandwidth_bps;
    assert_eq!(s1.latency_sum_ns, s0.latency_sum_ns + tx_ns);
    let (r0, r1) = run(());
    assert_eq!((s0, s1), (r0, r1), "same schedule must replay bit-identically");
}

#[test]
fn churn_down_up_restores_exact_link_set() {
    let mut t = TopologyBuilder::ring_of_pops(&BackboneSpec::new(5, 2, 7), START_NS, cfg());
    let before = t.live_adjacencies();
    let victims = [0, 3, before.len() - 1].map(|i| before[i]);
    let mut plan = ChurnPlan::new();
    for &adj in &victims {
        plan.push(START_NS + SEC, ChurnAction::LinkDown(adj));
    }
    for &adj in &victims {
        plan.push(START_NS + 2 * SEC, ChurnAction::LinkUp(adj));
    }
    let report = run_with_churn(&mut t, &plan, START_NS + 3 * SEC);
    assert_eq!(report.records.len(), 6);
    assert_eq!(report.link_failures(), 3);
    assert_eq!(t.live_adjacencies(), before, "down/up must restore the exact link set");
    for &adj in &victims {
        let a = t.adjacency(adj);
        assert!(a.up);
        assert!(t.sim.link_is_up(a.ab) && t.sim.link_is_up(a.ba));
    }
}

/// A reboot rebuilds the engine from scratch: counters reset, caches
/// cold — and traffic keeps validating afterwards (keys re-derive from
/// the same AS secrets).
#[test]
fn reboot_router_wipes_datapath_state() {
    let mut t = TopologyBuilder::ring_of_pops(&BackboneSpec::new(4, 2, 9), START_NS, cfg());
    t.install_engines(EngineScenario { family: EngineFamily::Hummingbird, shards: 1 }, cfg());
    let flow = t.add_family_flow(
        EngineFamily::Hummingbird,
        0,
        4, // PoP 2, router 0: two inter-PoP hops
        500,
        1_000,
        Some(2_000),
        START_NS,
        START_NS + 2 * SEC,
    );
    let transit = 2; // PoP 1, router 0 — on the lane-0 ring path
    t.sim.run_until(START_NS + SEC);
    let before = t.sim.router_stats(t.router_node(transit)).unwrap();
    assert!(before.processed > 0);
    assert!(before.key_cache_hits > 0, "warm cache before the reboot: {before:?}");
    let discarded = t.reboot_router(transit);
    assert_eq!(discarded, before);
    let wiped = t.sim.router_stats(t.router_node(transit)).unwrap();
    assert_eq!(wiped.processed, 0, "reboot must wipe the engine: {wiped:?}");
    t.sim.run_until(START_NS + 3 * SEC);
    let after = t.sim.router_stats(t.router_node(transit)).unwrap();
    assert!(after.processed > 0);
    assert!(after.key_cache_misses > 0, "cold cache after the reboot: {after:?}");
    let s = t.sim.stats(flow);
    assert!(s.delivery_ratio() > 0.99, "traffic must keep validating: {s:?}");
}

fn assert_graph_sound(t: &TopologyBuilder) {
    // No self-loops, no duplicate adjacencies.
    let mut seen = std::collections::HashSet::new();
    for i in 0..t.n_adjacencies() {
        let a = t.adjacency(i);
        assert_ne!(a.a, a.b, "self-loop at adjacency {i}");
        assert!(seen.insert((a.a.min(a.b), a.a.max(a.b))), "duplicate adjacency {i}");
    }
    // Connected: BFS from router 0 reaches everything.
    for r in 0..t.n_routers() {
        assert!(t.shortest_path(0, r).is_some(), "router {r} unreachable");
    }
}

fn assert_flow_path_in_graph(t: &TopologyBuilder, flow: hummingbird_netsim::FlowId) {
    let path = t.route_of(flow).expect("flow was routed");
    assert!(!path.is_empty());
    for w in path.windows(2) {
        assert!(t.adjacency_between(w[0], w[1]).is_some(), "path edge {w:?} not in graph");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ring-of-PoPs backbones are sound for any shape and seed, and
    /// every flow routed over them follows real edges.
    #[test]
    fn backbone_generator_invariants(
        pops in 3usize..7,
        rpp in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let spec = BackboneSpec::new(pops, rpp, seed);
        let mut t = TopologyBuilder::ring_of_pops(&spec, START_NS, cfg());
        assert_graph_sound(&t);
        prop_assert_eq!(t.n_routers(), pops * rpp);
        let n = t.n_routers();
        let f = t.add_family_flow(
            EngineFamily::Hummingbird,
            (seed as usize) % n,
            (seed as usize + n / 2) % n,
            500,
            1_000,
            Some(2_000),
            START_NS,
            START_NS + SEC,
        );
        assert_flow_path_in_graph(&t, f);
    }

    /// Fat trees are sound for any (even) arity and seed.
    #[test]
    fn fat_tree_generator_invariants(k in 1usize..3, seed in 0u64..1_000_000) {
        let k = k * 2; // arities 2 and 4
        let t = TopologyBuilder::fat_tree(k, seed, LinkSpec::default(), START_NS, cfg());
        assert_graph_sound(&t);
        prop_assert_eq!(t.n_routers(), (k / 2) * (k / 2) + k * k);
    }

    /// AS hierarchies are sound for any tier shape and seed.
    #[test]
    fn hierarchy_generator_invariants(
        tier1 in 1usize..4,
        tier2 in 0usize..5,
        stubs in 0usize..6,
        seed in 0u64..1_000_000,
    ) {
        let spec = HierarchySpec::new(tier1, tier2, stubs, seed);
        let t = TopologyBuilder::as_hierarchy(&spec, START_NS, cfg());
        assert_graph_sound(&t);
        prop_assert_eq!(t.n_routers(), tier1 + tier2 + stubs);
    }

    /// Any churn down/up pairing restores the exact pre-failure link
    /// set, whatever subset of adjacencies fails.
    #[test]
    fn churn_pairs_restore_link_set(seed in 0u64..1_000_000, n_fail in 1usize..5) {
        let mut t = TopologyBuilder::ring_of_pops(&BackboneSpec::new(4, 2, seed), START_NS, cfg());
        let before = t.live_adjacencies();
        let step = before.len() / n_fail.max(1);
        let victims: Vec<_> = (0..n_fail).map(|i| before[(i * step.max(1)) % before.len()]).collect();
        let mut plan = ChurnPlan::new();
        for (i, &adj) in victims.iter().enumerate() {
            plan.push(START_NS + (i as u64 + 1) * SEC / 8, ChurnAction::LinkDown(adj));
        }
        for (i, &adj) in victims.iter().enumerate() {
            plan.push(START_NS + SEC / 2 + (i as u64) * SEC / 8, ChurnAction::LinkUp(adj));
        }
        run_with_churn(&mut t, &plan, START_NS + 2 * SEC);
        prop_assert_eq!(t.live_adjacencies(), before);
    }
}

/// The headline acceptance run: all four engine families on a generated
/// 104-router backbone under flood, with 3 link failures at one third
/// of the run and a reroute + on-path cold reboot 50 ms later.
#[test]
fn four_family_churn_acceptance_and_determinism() {
    for family in EngineFamily::ALL {
        let spec = ChurnSpec::new(EngineScenario { family, shards: 1 }).with_flood(20_000);
        let out = run_churn_scenario(cfg(), &spec, START_NS);
        assert!(out.routers >= 100, "{}: {} routers", family.name(), out.routers);
        assert!(out.report.link_failures() >= 3, "{}: {:?}", family.name(), out.report);
        // The victim (and the flood riding the same route) lost its
        // path: packets died at the dead links, then a reroute moved
        // both onto a surviving path.
        assert!(
            out.victim_outage.link_down_drops > 0,
            "{}: expected stranded packets, got {:?}",
            family.name(),
            out.victim_outage
        );
        assert_eq!(out.victim_total.reroutes, 1, "{}", family.name());
        assert!(out.report.total_rerouted() >= 2, "{}: {:?}", family.name(), out.report);
        assert_eq!(out.report.total_stranded(), 0, "{}", family.name());
        let base_ms = out.victim_base.mean_latency_ms();
        let rec_ms = out.victim_recovery.mean_latency_ms();
        if family.has_priority_class() {
            // D2 under churn: reservations shield the victim from the
            // flood before *and* after the failover.
            assert!(
                out.victim_base.delivery_ratio() > 0.99,
                "{}: base {:?}",
                family.name(),
                out.victim_base
            );
            assert!(
                out.victim_recovery.delivery_ratio() > 0.9,
                "{}: recovery {:?}",
                family.name(),
                out.victim_recovery
            );
            assert!(
                rec_ms < 2.0 * base_ms,
                "{}: recovery latency {rec_ms:.3} ms vs base {base_ms:.3} ms",
                family.name()
            );
        } else {
            // Authentication-only families leave the victim queueing
            // behind the flood in both windows.
            assert!(
                out.victim_recovery.delivery_ratio() < 0.7,
                "{}: recovery {:?}",
                family.name(),
                out.victim_recovery
            );
        }
        // Same seed ⇒ bit-identical everything: flow stats, datapath
        // stats, the fault timeline, and the event count.
        let rerun = run_churn_scenario(cfg(), &spec, START_NS);
        assert_eq!(out, rerun, "{}: same-seed churn runs must be bit-identical", family.name());
    }
}
