//! The egress latency model, pinned:
//!
//! 1. **Fig. 3/4-style sweep** (the headline): end-to-end latency per
//!    engine family × {single, 4-shard} — reservation families hold the
//!    victim's latency flat under a flood, authentication-only families
//!    watch it blow up with the best-effort queue.
//! 2. **Closed form**: an uncontended CBR flow's latency is *exactly*
//!    `hops·service + links·(serialization + propagation)` — the link
//!    rate, propagation delay and router service model compose with no
//!    hidden queueing.
//! 3. **FIFO invariants**: per class, per link, departures match
//!    arrivals (no reordering), and adding a competing best-effort flow
//!    never reduces a flyover flow's delivery ratio.
//! 4. The partial-path and multipath variants of the family sweep.
//! 5. `FlowStats` zero-division edges.

use hummingbird_dataplane::RouterConfig;
use hummingbird_netsim::{
    run_latency_scenario, run_multipath_scenario, run_partial_path_scenario, EngineFamily,
    EngineScenario, FlowStats, LatencySpec, LinearTopology, LinkSpec, ServiceModel,
};
use hummingbird_wire::IsdAs;
use proptest::prelude::*;

const START_S: u64 = 1_700_000_000;
const START_NS: u64 = START_S * 1_000_000_000;
const SEC: u64 = 1_000_000_000;

fn src() -> IsdAs {
    IsdAs::new(1, 0xa)
}
fn dst() -> IsdAs {
    IsdAs::new(2, 0xb)
}
fn atk() -> IsdAs {
    IsdAs::new(3, 0xc)
}

/// The acceptance sweep: Fig. 3/4-style latency across all four engine
/// families × {single, 4-shard}. The D2 axis shows up as *latency*:
/// under a 3× flood of the bottleneck, the reservation families keep
/// the victim's mean delay at the uncontended level (priority class
/// past the queue) while the authentication-only families lose the
/// victim to the flooded best-effort queue — what does arrive arrives
/// late.
#[test]
fn fig34_latency_sweep_across_families_and_shards() {
    let cfg = RouterConfig::default();
    for family in EngineFamily::ALL {
        for shards in [1usize, 4] {
            let scenario = EngineScenario { family, shards };
            let spec = LatencySpec::new(scenario);
            let base = run_latency_scenario(cfg, &spec, START_NS);
            let loaded = run_latency_scenario(cfg, &spec.with_flood(30_000), START_NS);
            let label = format!("{}x{shards}", family.name());

            // Uncontended: everything arrives, in order, never dropped
            // by authentication, with a positive modeled delay.
            assert!(base.victim.delivery_ratio() > 0.99, "{label}: base delivery");
            assert_eq!(base.victim.router_drops, 0, "{label}: victim must authenticate");
            assert_eq!(base.victim.reordered_pkts, 0, "{label}: base FIFO");
            let base_ms = base.victim.mean_latency_ms();
            assert!(base_ms > 0.0, "{label}: latency model must accrue delay");

            // Under flood.
            assert_eq!(loaded.victim.router_drops, 0, "{label}: flood never forges MACs");
            assert_eq!(loaded.victim.reordered_pkts, 0, "{label}: loaded FIFO");
            let loaded_ms = loaded.victim.mean_latency_ms();
            if family.has_priority_class() {
                assert!(
                    loaded.victim.delivery_ratio() > 0.99,
                    "{label}: reservation family must protect delivery, ratio {}",
                    loaded.victim.delivery_ratio()
                );
                assert!(
                    loaded_ms < base_ms * 1.5,
                    "{label}: victim latency must stay flat under flood \
                     ({loaded_ms:.2} ms vs base {base_ms:.2} ms)"
                );
            } else {
                assert!(
                    loaded.victim.delivery_ratio() < 0.7,
                    "{label}: authentication-only family cannot protect, ratio {}",
                    loaded.victim.delivery_ratio()
                );
                assert!(
                    loaded_ms > base_ms * 3.0,
                    "{label}: victim latency must degrade under flood \
                     ({loaded_ms:.2} ms vs base {base_ms:.2} ms)"
                );
            }
            // The entry router saw every packet exactly once, however
            // many shards it runs across.
            let flood = loaded.flood.expect("flood ran");
            assert_eq!(
                loaded.entry_stats.processed,
                loaded.victim.sent_pkts + flood.sent_pkts,
                "{label}: every packet counted once"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Closed form: with no competing traffic, every packet of a CBR
    /// flow takes exactly
    /// `n_ases·service + (n_ases−1)·(tx_time + propagation)` ns — bit-
    /// exact against the integer arithmetic of the link and service
    /// models, for any chain length, payload, link rate, propagation
    /// delay, service cost and core count.
    #[test]
    fn uncontended_cbr_latency_matches_closed_form(
        n_ases in 2usize..5,
        payload in 300usize..1200,
        bw_mbps in 10u64..100,
        prop_us in 100u64..2000,
        service_ns in 0u64..5000,
        shards in 1usize..5,
    ) {
        let link = LinkSpec {
            bandwidth_bps: bw_mbps * 1_000_000,
            propagation_ns: prop_us * 1000,
            queue_cap_bytes: 64 * 1024,
        };
        let mut topo = LinearTopology::build(n_ases, link, START_NS, RouterConfig::default());
        if service_ns > 0 {
            topo.set_service_model(Some(ServiceModel::new(service_ns, shards)));
        }
        // 1 Mbps CBR: the packet interval (≥ 2.4 ms) dwarfs both the
        // worst-case serialization (~1.1 ms) and the service time, so no
        // queueing ever happens — the closed form is exact.
        let flow = topo.add_cbr_flow(src(), dst(), payload, 1_000, Some(3_000), START_NS,
            START_NS + SEC);
        topo.sim.run_until(START_NS + 2 * SEC);
        let v = topo.sim.stats(flow);
        prop_assert!(v.sent_pkts > 0);
        prop_assert_eq!(v.delivered_pkts, v.sent_pkts, "uncontended: everything arrives");
        let wire_len = v.sent_bytes / v.sent_pkts;
        let tx_ns = (wire_len * 8).saturating_mul(1_000_000_000) / link.bandwidth_bps;
        let hops = n_ases as u64;
        let expected = hops * service_ns + (hops - 1) * (tx_ns + link.propagation_ns);
        prop_assert_eq!(v.latency_max_ns, expected, "per-packet latency is the closed form");
        prop_assert_eq!(
            v.latency_sum_ns,
            v.delivered_pkts * expected,
            "every packet takes exactly the closed-form delay"
        );
        prop_assert_eq!(v.reordered_pkts, 0);
    }

    /// Monotonicity: adding a competing best-effort flow — at any rate,
    /// including 5× the bottleneck — never reduces a flyover flow's
    /// delivery ratio, and its latency stays at the uncontended level.
    #[test]
    fn competing_best_effort_never_hurts_flyover_flow(
        flood_kbps in 0u64..50_000,
        shards in 1usize..5,
    ) {
        let cfg = RouterConfig::default();
        let scenario = EngineScenario { family: EngineFamily::Hummingbird, shards };
        let mut spec = LatencySpec::new(scenario);
        spec.run_s = 1;
        let alone = run_latency_scenario(cfg, &spec, START_NS);
        let contested = run_latency_scenario(cfg, &spec.with_flood(flood_kbps), START_NS);
        prop_assert!(
            contested.victim.delivery_ratio() >= alone.victim.delivery_ratio(),
            "best-effort competitor reduced flyover delivery: {} -> {}",
            alone.victim.delivery_ratio(),
            contested.victim.delivery_ratio()
        );
        prop_assert!(contested.victim.delivery_ratio() > 0.99);
        prop_assert!(
            contested.victim.mean_latency_ms() < alone.victim.mean_latency_ms() * 1.5,
            "flyover latency must not track the flood"
        );
        prop_assert_eq!(contested.victim.reordered_pkts, 0);
    }
}

/// FIFO per class per link, under heavy contention: a priority victim
/// and two best-effort flows fight over a flooded chain (with the
/// service model on); every flow's deliveries arrive in send order —
/// the strict-priority queues never reorder *within* a class, they only
/// interleave *across* classes.
#[test]
fn per_class_departures_stay_fifo_under_contention() {
    let cfg = RouterConfig::default();
    let mut topo = LinearTopology::build(3, LinkSpec::default(), START_NS, cfg);
    topo.set_service_model(Some(ServiceModel::new(300, 2)));
    let run_s = 2u64;
    let victim =
        topo.add_cbr_flow(src(), dst(), 1000, 2_000, Some(3_000), START_NS, START_NS + run_s * SEC);
    let be_a =
        topo.add_cbr_flow(atk(), dst(), 1000, 12_000, None, START_NS, START_NS + run_s * SEC);
    let be_b = topo.add_cbr_flow(
        IsdAs::new(4, 0xd),
        dst(),
        700,
        9_000,
        None,
        START_NS,
        START_NS + run_s * SEC,
    );
    topo.sim.run_until(START_NS + (run_s + 1) * SEC);
    for (name, flow) in [("victim", victim), ("be_a", be_a), ("be_b", be_b)] {
        let s = topo.sim.stats(flow);
        assert!(s.delivered_pkts > 0, "{name} delivered nothing");
        assert_eq!(s.reordered_pkts, 0, "{name}: departures must match arrivals per class");
    }
    // The flood actually contested the bottleneck.
    let a = topo.sim.stats(be_a);
    assert!(a.queue_drops > 0, "flood must overflow the best-effort queue");
}

/// The partial-path variant across the family sweep: a credential at
/// *only* the congested middle hop protects a reservation-family victim
/// (priority exactly there, best effort elsewhere), while the
/// authentication-only families validate the same credential and still
/// starve.
#[test]
fn partial_path_family_sweep() {
    let cfg = RouterConfig::default();
    for family in EngineFamily::ALL {
        for shards in [1usize, 4] {
            let scenario = EngineScenario { family, shards };
            let out = run_partial_path_scenario(cfg, scenario, 300, START_NS);
            let label = format!("{}x{shards}", family.name());
            assert_eq!(out.victim.router_drops, 0, "{label}: victim must authenticate");
            // Priority rode exactly the credentialed hop — and only for
            // the families that have a priority class at all.
            assert_eq!(out.per_hop[0].flyover, 0, "{label}: hop 0 is uncredentialed");
            assert_eq!(out.per_hop[2].flyover, 0, "{label}: hop 2 is uncredentialed");
            if family.has_priority_class() {
                assert!(out.per_hop[1].flyover > 0, "{label}: middle hop carries priority");
                assert!(
                    out.victim.delivery_ratio() > 0.99,
                    "{label}: middle-hop credential must protect, ratio {}",
                    out.victim.delivery_ratio()
                );
            } else {
                assert_eq!(out.per_hop[1].flyover, 0, "{label}: no priority class");
                assert!(
                    out.victim.delivery_ratio() < 0.7,
                    "{label}: authentication-only family cannot protect, ratio {}",
                    out.victim.delivery_ratio()
                );
            }
        }
    }
}

/// The multipath variant across the family sweep, on the Fig. 3
/// diamond: the flood rides branch Q only. Path choice isolates branch
/// P for *every* family; on Q the D2 split applies.
#[test]
fn multipath_family_sweep() {
    let cfg = RouterConfig::default();
    for family in EngineFamily::ALL {
        for shards in [1usize, 4] {
            let scenario = EngineScenario { family, shards };
            let out = run_multipath_scenario(cfg, scenario, START_NS);
            let label = format!("{}x{shards}", family.name());
            assert!(
                out.p.delivery_ratio() > 0.99,
                "{label}: the clean branch is isolated by path choice, ratio {}",
                out.p.delivery_ratio()
            );
            assert_eq!(out.p.router_drops + out.q.router_drops, 0, "{label}: both authenticate");
            if family.has_priority_class() {
                assert!(
                    out.q.delivery_ratio() > 0.99,
                    "{label}: reservation family must protect the flooded branch, ratio {}",
                    out.q.delivery_ratio()
                );
            } else {
                assert!(
                    out.q.delivery_ratio() < 0.7,
                    "{label}: authentication-only family starves on the flooded branch, ratio {}",
                    out.q.delivery_ratio()
                );
            }
        }
    }
}

/// `FlowStats` zero-division edges: every ratio/mean is `0.0` — finite,
/// never `NaN` or `inf` — when nothing was sent or delivered.
#[test]
fn flow_stats_zero_division_edges() {
    let empty = FlowStats::default();
    assert_eq!(empty.mean_latency_ms(), 0.0);
    assert_eq!(empty.delivery_ratio(), 0.0);
    assert_eq!(empty.goodput_kbps(2.0), 0.0);
    assert_eq!(empty.goodput_kbps(0.0), 0.0, "empty window must not divide");

    // Sent but fully starved: ratio 0, latency 0, goodput 0.
    let starved = FlowStats { sent_pkts: 10, sent_bytes: 10_000, ..Default::default() };
    assert_eq!(starved.delivery_ratio(), 0.0);
    assert_eq!(starved.mean_latency_ms(), 0.0);
    assert_eq!(starved.goodput_kbps(1.0), 0.0);
    assert!(starved.delivery_ratio().is_finite() && starved.mean_latency_ms().is_finite());

    // The healthy path still computes real values.
    let ok = FlowStats {
        sent_pkts: 4,
        sent_bytes: 4_000,
        delivered_pkts: 2,
        delivered_bytes: 1_000,
        latency_sum_ns: 4_000_000,
        latency_max_ns: 3_000_000,
        ..Default::default()
    };
    assert_eq!(ok.delivery_ratio(), 0.5);
    assert_eq!(ok.mean_latency_ms(), 2.0);
    assert!((ok.goodput_kbps(1.0) - 8.0).abs() < 1e-9);
    assert_eq!(ok.goodput_kbps(-1.0), 0.0, "negative windows are refused, not inverted");
}
