//! Closed-loop overload control, pinned:
//!
//! 1. **Overload sweep** per engine family × {single, 4-shard}: every
//!    flow terminates (no livelock), conservation is exact (every wire
//!    copy is delivered or attributed to a named drop counter), the
//!    reservation families hold the reserved flow's goodput and p99
//!    latency through 2× saturation while best-effort collapses
//!    gracefully — bounded queues ⇒ bounded tail latency.
//! 2. **Determinism**: the whole closed-loop outcome (stats + event
//!    timelines) is bit-identical across engine shard counts when the
//!    service model's core count is held fixed.
//! 3. **Budget exhaustion terminates**: a flow into a blackholed path
//!    retransmits up to its budget, abandons every packet, and
//!    completes — no livelock.
//! 4. **Churn + overload**: after a mid-saturation reroute (with a
//!    convergence delay), reservation flows recover ≥ 0.9 delivery via
//!    retransmission while best-effort degrades without collapse.
//! 5. **Churn in the latency sweep**: per-family recovery bounds on the
//!    Fig. 3/4 experiment under a scheduled link failure.

use hummingbird_dataplane::RouterConfig;
use hummingbird_netsim::{
    run_latency_churn_scenario, run_overload_churn_scenario, run_overload_scenario, EngineFamily,
    EngineScenario, FlowEventKind, FlowStats, LatencySpec, LinearTopology, LinkSpec,
    OverloadChurnSpec, OverloadSpec, ReactiveProfile, ServiceModel,
};
use hummingbird_wire::IsdAs;

const START_S: u64 = 1_700_000_000;
const START_NS: u64 = START_S * 1_000_000_000;
const SEC: u64 = 1_000_000_000;

fn cfg() -> RouterConfig {
    RouterConfig::default()
}

fn src() -> IsdAs {
    IsdAs::new(1, 0xa)
}
fn dst() -> IsdAs {
    IsdAs::new(2, 0xb)
}

/// Every wire copy a flow sent is either delivered or sits in exactly
/// one named drop counter — the conservation identity that makes loss
/// attributable.
fn assert_conservation(label: &str, s: &FlowStats) {
    let accounted = s.delivered_pkts
        + s.router_drops
        + s.queue_drops
        + s.link_down_drops
        + s.service_queue_drops;
    assert_eq!(
        s.sent_pkts,
        accounted,
        "{label}: conservation (sent {} != delivered {} + router {} + queue {} + link_down {} \
         + service_queue {})",
        s.sent_pkts,
        s.delivered_pkts,
        s.router_drops,
        s.queue_drops,
        s.link_down_drops,
        s.service_queue_drops
    );
}

/// The acceptance sweep: offered load through and past saturation for
/// every family × {single, 4-shard}. Reservation families hold the
/// reserved flow's goodput and p99 at the uncontended level; best
/// effort collapses *gracefully* — goodput saturates at the leftover
/// capacity, tail latency stays bounded by the queues, every loss lands
/// in a named counter, and every flow still terminates.
#[test]
fn overload_sweep_across_families_and_shards() {
    for family in EngineFamily::ALL {
        for shards in [1usize, 4] {
            let scenario = EngineScenario { family, shards };
            let out = run_overload_scenario(cfg(), &OverloadSpec::new(scenario), START_NS);
            let label = format!("{}x{shards}", family.name());
            assert_eq!(out.points.len(), 4, "{label}: all sweep points present");

            for p in &out.points {
                let l = format!("{label}@{}", p.offered_kbps);
                // Termination: the retransmit budget guarantees every
                // flow completes — a livelock would show here first.
                assert!(p.reserved_done, "{l}: reserved flow must terminate");
                assert!(p.best_effort_done, "{l}: best-effort flow must terminate");
                // Conservation: exact, for both flows, at every point.
                assert_conservation(&format!("{l} reserved"), &p.reserved);
                assert_conservation(&format!("{l} best-effort"), &p.best_effort);
                // Bounded queues ⇒ bounded tails, for everyone, at any load.
                assert!(
                    p.reserved.p99_latency_ms() < 50.0,
                    "{l}: reserved p99 {} ms must stay bounded",
                    p.reserved.p99_latency_ms()
                );
                assert!(
                    p.best_effort.p99_latency_ms() < 50.0,
                    "{l}: best-effort p99 {} ms must stay bounded",
                    p.best_effort.p99_latency_ms()
                );
                // Graceful degradation: even past saturation the
                // best-effort loop keeps the majority of its copies.
                assert!(
                    p.best_effort.delivery_ratio() > 0.5,
                    "{l}: best effort must degrade, not collapse (ratio {})",
                    p.best_effort.delivery_ratio()
                );
            }

            // Below saturation (first point): clean for everyone.
            let base = &out.points[0];
            assert!(base.reserved.delivery_ratio() > 0.99, "{label}: clean base");
            assert_eq!(base.best_effort.retransmits, 0, "{label}: no base retransmits");

            // Past saturation (last point, 2.5× the link): the loss
            // machinery actually engaged.
            let sat = &out.points[3];
            assert!(sat.best_effort.queue_drops > 0, "{label}: overload must drop");
            assert!(sat.best_effort.retransmits > 0, "{label}: drops must drive retries");
            assert!(sat.best_effort.backpressure_stalls > 0, "{label}: window must stall");

            if family.has_priority_class() {
                // Reservation families: the reserved flow never notices.
                for p in &out.points {
                    assert!(
                        p.reserved.delivery_ratio() > 0.95,
                        "{label}@{}: reservation must protect delivery (ratio {})",
                        p.offered_kbps,
                        p.reserved.delivery_ratio()
                    );
                    assert!(
                        p.reserved_elapsed_ns < 2 * SEC,
                        "{label}@{}: reserved flow must finish on time ({} ns)",
                        p.offered_kbps,
                        p.reserved_elapsed_ns
                    );
                }
                let base_p99 = base.reserved.p99_latency_ms();
                let sat_p99 = sat.reserved.p99_latency_ms();
                assert!(
                    sat_p99 < base_p99 * 2.5 + 1.0,
                    "{label}: reserved p99 must stay flat past saturation \
                     ({sat_p99:.2} ms vs base {base_p99:.2} ms)"
                );
                // Best effort saturates at the leftover capacity: its
                // completion-time goodput lands well under the offer.
                assert!(
                    sat.best_effort_goodput_kbps() < sat.offered_kbps as f64 * 0.6,
                    "{label}: best effort must saturate ({} kbps of {} offered)",
                    sat.best_effort_goodput_kbps(),
                    sat.offered_kbps
                );
            } else {
                // Authentication-only families: the reserved flow
                // shares the contended queue and degrades with it.
                assert!(
                    sat.reserved.delivery_ratio() < 0.9,
                    "{label}: no priority class, reserved cannot be protected (ratio {})",
                    sat.reserved.delivery_ratio()
                );
            }
        }
    }
}

/// The closed loop is deterministic: with the service model's core
/// count held fixed, running the identical overload point over a
/// single-engine deployment and a 4-shard facade produces bit-identical
/// flow stats *and* bit-identical event timelines.
#[test]
fn closed_loop_bit_identical_across_shard_counts() {
    let run = |shards: usize| {
        let link = LinkSpec { queue_cap_bytes: 16 * 1024, ..LinkSpec::default() };
        let mut topo = LinearTopology::build(3, link, START_NS, cfg());
        topo.install_engines(EngineScenario { family: EngineFamily::Hummingbird, shards }, cfg());
        // Fixed 2-core service model regardless of engine shards: the
        // sharding facade must be behavior-preserving.
        topo.set_service_model(Some(ServiceModel::new(300, 2)));
        let reserved = topo.add_family_reactive_flow(
            EngineFamily::Hummingbird,
            src(),
            dst(),
            1000,
            2_000,
            Some(3_000),
            250,
            ReactiveProfile::default(),
            START_NS,
        );
        let best_effort = topo.add_family_reactive_flow(
            EngineFamily::Hummingbird,
            IsdAs::new(3, 0xc),
            dst(),
            1000,
            16_000,
            None,
            1000,
            ReactiveProfile::default(),
            START_NS,
        );
        topo.sim.run_until(START_NS + 10 * SEC);
        (
            topo.sim.stats(reserved),
            topo.sim.stats(best_effort),
            topo.sim.flow_events(reserved).to_vec(),
            topo.sim.flow_events(best_effort).to_vec(),
        )
    };
    let single = run(1);
    let sharded = run(4);
    assert_eq!(single.0, sharded.0, "reserved stats must be bit-identical");
    assert_eq!(single.1, sharded.1, "best-effort stats must be bit-identical");
    assert_eq!(single.2, sharded.2, "reserved timeline must be bit-identical");
    assert_eq!(single.3, sharded.3, "best-effort timeline must be bit-identical");
}

/// A reactive flow into a blackholed path terminates on its retransmit
/// budget: every packet retries exactly `max_retransmits` times, gets
/// abandoned, and the flow completes — no livelock, nothing delivered,
/// every wire copy attributed to `link_down_drops`.
#[test]
fn retransmit_budget_exhaustion_terminates() {
    let mut topo = LinearTopology::build(3, LinkSpec::default(), START_NS, cfg());
    topo.install_engines(EngineScenario { family: EngineFamily::Hummingbird, shards: 1 }, cfg());
    let profile = ReactiveProfile {
        window: 32,
        ack_delay_ns: 1_000_000,
        rto_ns: 50_000_000,
        rto_max_ns: 200_000_000,
        max_retransmits: 3,
    };
    let total = 50u64;
    let flow = topo.add_family_reactive_flow(
        EngineFamily::Hummingbird,
        src(),
        dst(),
        1000,
        2_000,
        Some(3_000),
        total,
        profile,
        START_NS,
    );
    // Blackhole the first hop before anything is sent.
    topo.sim.set_link_up(topo.links[0], false);
    topo.sim.run_until(START_NS + 60 * SEC);

    assert!(topo.sim.reactive_done(flow), "budget exhaustion must terminate the flow");
    let s = topo.sim.stats(flow);
    assert_eq!(s.delivered_pkts, 0, "nothing crosses a dead link");
    assert_conservation("blackholed", &s);
    assert_eq!(s.sent_pkts, s.link_down_drops, "every copy died on the dead link");
    assert_eq!(
        s.retransmits,
        total * u64::from(profile.max_retransmits),
        "every packet retries exactly its budget"
    );
    assert!(s.timeouts >= s.retransmits, "every retry was driven by a timeout");
    let events = topo.sim.flow_events(flow);
    assert_eq!(
        events.iter().filter(|e| matches!(e.kind, FlowEventKind::Abandoned { .. })).count(),
        total as usize,
        "every packet must be abandoned"
    );
    assert!(
        events.iter().any(|e| e.kind == FlowEventKind::Completed),
        "the flow must report completion"
    );
}

/// Churn under saturation: an on-path link failure mid-overload, a
/// convergence delay in which retransmissions die into the dead path,
/// then a reroute. Every family's reserved flow recovers ≥ 0.9 delivery
/// in the recovery window *via retransmission* (the convergence-window
/// losses regenerate down the new path), and the saturating best-effort
/// flow degrades without collapse — it keeps terminating, with every
/// loss named.
#[test]
fn overload_churn_recovers_after_reroute() {
    for family in EngineFamily::ALL {
        let scenario = EngineScenario { family, shards: 1 };
        let out = run_overload_churn_scenario(cfg(), &OverloadChurnSpec::new(scenario), START_NS);
        let label = family.name();

        assert!(out.reserved_done, "{label}: reserved flow must terminate");
        assert!(out.best_effort_done, "{label}: best-effort flow must terminate");
        assert_conservation(&format!("{label} reserved"), &out.reserved_total);
        assert_conservation(&format!("{label} best-effort"), &out.best_effort_total);

        // The failure bit: sends died on the dead path during the
        // convergence window, and the reroute pass then moved the flow.
        assert!(out.reserved_outage.link_down_drops > 0, "{label}: outage must drop");
        assert!(
            out.reserved_outage.delivery_ratio() < 0.5,
            "{label}: convergence window must hurt (ratio {})",
            out.reserved_outage.delivery_ratio()
        );
        assert_eq!(out.reserved_total.reroutes, 1, "{label}: exactly one reroute");

        // Retransmit-driven recovery: the convergence-window losses
        // come back down the new path, and the recovery window clears
        // the ≥ 0.9-delivery acceptance bar.
        assert!(
            out.reserved_recovery.delivery_ratio() >= 0.9,
            "{label}: recovery delivery {} must reach 0.9",
            out.reserved_recovery.delivery_ratio()
        );
        assert!(out.reserved_recovery.retransmits > 0, "{label}: recovery rides retransmits");
        assert!(
            out.reserved_total.delivery_ratio() > 0.9,
            "{label}: end-to-end the reservation still held (ratio {})",
            out.reserved_total.delivery_ratio()
        );

        // Best effort: degraded (it saw drops and retried), not collapsed.
        assert!(out.best_effort_total.retransmits > 0, "{label}: best effort retried");
        assert!(
            out.best_effort_total.delivery_ratio() > 0.5,
            "{label}: best effort must not collapse (ratio {})",
            out.best_effort_total.delivery_ratio()
        );
        // Failure + reroute both landed in the report.
        assert_eq!(out.report.records.len(), 2, "{label}: churn timeline recorded");
    }
}

/// The Fig. 3/4 latency experiment under a scheduled mid-run link
/// failure (satellite: churn in the latency sweeps). Per-family
/// recovery bounds: without a flood every family recovers delivery and
/// keeps its recovery latency within 3× of base (the reroute detours
/// around the ring); under a 3× flood only the reservation families
/// recover — authentication-only families stay drowned.
#[test]
fn latency_sweep_recovers_from_churn() {
    for family in EngineFamily::ALL {
        let scenario = EngineScenario { family, shards: 1 };
        let label = family.name();

        let spec = LatencySpec::new(scenario);
        let out = run_latency_churn_scenario(cfg(), &spec, 42, 100_000_000, START_NS);
        assert_eq!(out.report.records.len(), 2, "{label}: failure + reroute recorded");
        assert!(out.base.delivery_ratio() > 0.99, "{label}: clean base window");
        assert!(out.outage.link_down_drops > 0, "{label}: outage must drop");
        assert!(
            out.outage.delivery_ratio() < 0.5,
            "{label}: outage must hurt (ratio {})",
            out.outage.delivery_ratio()
        );
        assert!(
            out.recovery.delivery_ratio() > 0.9,
            "{label}: recovery delivery {} must reach 0.9",
            out.recovery.delivery_ratio()
        );
        let base_ms = out.base.mean_latency_ms();
        let recovery_ms = out.recovery.mean_latency_ms();
        assert!(
            recovery_ms < base_ms * 3.0 + 1.0,
            "{label}: recovery latency {recovery_ms:.2} ms must stay within 3x of base \
             {base_ms:.2} ms (longer detour path, no queueing blowup)"
        );

        // Under a 3× flood the recovery bound splits by family.
        let flooded =
            run_latency_churn_scenario(cfg(), &spec.with_flood(30_000), 42, 100_000_000, START_NS);
        if family.has_priority_class() {
            assert!(
                flooded.recovery.delivery_ratio() > 0.9,
                "{label}: reservation family must recover under flood (ratio {})",
                flooded.recovery.delivery_ratio()
            );
            assert!(
                flooded.recovery.mean_latency_ms() < base_ms * 3.0 + 1.0,
                "{label}: flooded recovery latency {} must stay bounded",
                flooded.recovery.mean_latency_ms()
            );
        } else {
            assert!(
                flooded.recovery.delivery_ratio() < 0.5,
                "{label}: authentication-only family stays drowned (ratio {})",
                flooded.recovery.delivery_ratio()
            );
        }
    }
}
