//! The Fig. 3 mitigation (§5.4): a source that uses *separate* reservations
//! per path confines an on-reservation-set replay adversary to the path it
//! sits on — the other path's reservation is untouched.
//!
//! Model: two flows from the same source cross the same AS (the "target
//! AS T"). In the *shared* configuration both flows use one reservation
//! (same ResID); in the *separate* configuration each has its own. The
//! adversary observes and replays only flow Q. The victim flow P must
//! suffer in the shared case and be unaffected in the separate case.

use hummingbird_dataplane::RouterConfig;
use hummingbird_netsim::{Flow, LinearTopology, LinkSpec};
use hummingbird_wire::IsdAs;

const START_S: u64 = 1_700_000_000;
const START_NS: u64 = START_S * 1_000_000_000;
const SEC: u64 = 1_000_000_000;
const RUN_S: u64 = 2;

/// Runs the scenario; returns the victim's delivery ratio.
fn run(shared_reservation: bool) -> f64 {
    let mut topo = LinearTopology::build(2, LinkSpec::default(), START_NS, RouterConfig::default());

    // One reservation for flow Q; flow P either shares it or gets its own.
    let res_q = topo.make_reservation(0, 5_000, START_S as u32 - 5, u16::MAX);
    let res_q_hop1 = topo.make_reservation(1, 5_000, START_S as u32 - 5, u16::MAX);
    let (res_p, res_p_hop1) = if shared_reservation {
        (res_q.clone(), res_q_hop1.clone())
    } else {
        (
            topo.make_reservation(0, 5_000, START_S as u32 - 5, u16::MAX),
            topo.make_reservation(1, 5_000, START_S as u32 - 5, u16::MAX),
        )
    };

    let entry = topo.as_nodes[0];
    let mk_flow = |topo: &mut LinearTopology,
                   dst: IsdAs,
                   r0: hummingbird_dataplane::SourceReservation,
                   r1: hummingbird_dataplane::SourceReservation| {
        let mut generator = topo.make_generator(IsdAs::new(1, 0xa), dst);
        generator.attach_reservation(0, r0).unwrap();
        generator.attach_reservation(1, r1).unwrap();
        topo.sim.add_flow(Flow {
            generator,
            entry,
            payload_len: 1000,
            interval_ns: 4_000_000, // 2 Mbps each
            start_ns: START_NS,
            stop_ns: START_NS + RUN_S * SEC,
        })
    };
    let flow_p = mk_flow(&mut topo, IsdAs::new(2, 0xb), res_p, res_p_hop1);
    let flow_q = mk_flow(&mut topo, IsdAs::new(2, 0xb), res_q, res_q_hop1);

    // Background congestion so demotions turn into loss.
    let _flood = topo.add_cbr_flow(
        IsdAs::new(3, 0xc),
        IsdAs::new(2, 0xb),
        1000,
        30_000,
        None,
        START_NS,
        START_NS + RUN_S * SEC,
    );

    // Adversary on flow Q's path: duplicates Q's packets 19x, timed.
    topo.sim.add_replay_tap(flow_q, topo.as_nodes[0], 19, 200_000);
    topo.sim.run_until(START_NS + (RUN_S + 1) * SEC);
    topo.sim.stats(flow_p).delivery_ratio()
}

#[test]
fn shared_reservation_lets_the_replay_spill_over() {
    let ratio = run(true);
    assert!(
        ratio < 0.95,
        "victim sharing a reservation with the attacked path should suffer, ratio {ratio}"
    );
}

#[test]
fn separate_reservations_isolate_the_victim() {
    let ratio = run(false);
    assert!(ratio > 0.99, "victim with its own reservation must be unaffected, ratio {ratio}");
}

#[test]
fn isolation_gap_is_substantial() {
    let shared = run(true);
    let separate = run(false);
    assert!(
        separate - shared > 0.10,
        "the mitigation should visibly help: shared {shared} vs separate {separate}"
    );
}
