//! An end-to-end Hummingbird testbed: one object, every layer wired up.
//!
//! The [`Testbed`] combines the blockchain control plane, per-AS
//! Hummingbird services, the marketplace, end-host clients and the
//! discrete-event network simulator into one coherent deployment over a
//! linear AS chain — the full life of a reservation from `issue` on chain
//! to prioritized packets at simulated border routers.

use hummingbird_control::pki::TrustAnchors;
use hummingbird_control::{
    AsService, BandwidthAsset, Client, ControlPlane, Direction, GrantedReservation, PurchaseSpec,
};
use hummingbird_crypto::sig::SecretKey;
use hummingbird_dataplane::{RouterConfig, SourceGenerator, SourceReservation};
use hummingbird_ledger::{Address, ExecError, ObjectId};
use hummingbird_netsim::{LinearTopology, LinkSpec};
use hummingbird_wire::IsdAs;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Errors from testbed orchestration.
#[derive(Debug)]
pub enum TestbedError {
    /// A control-plane transaction failed.
    Exec(ExecError),
    /// The AS service could not serve a redeem request.
    Service(hummingbird_control::ServiceError),
    /// No listing pair matches the request on some hop.
    NoMatchingListing {
        /// Index of the hop without inventory.
        hop: usize,
    },
    /// A granted reservation did not match the path hop.
    Gen(hummingbird_dataplane::GenError),
}

impl std::fmt::Display for TestbedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestbedError::Exec(e) => write!(f, "control plane: {e}"),
            TestbedError::Service(e) => write!(f, "AS service: {e}"),
            TestbedError::NoMatchingListing { hop } => {
                write!(f, "no matching ingress/egress listing pair at hop {hop}")
            }
            TestbedError::Gen(e) => write!(f, "generator: {e}"),
        }
    }
}

impl std::error::Error for TestbedError {}

impl From<ExecError> for TestbedError {
    fn from(e: ExecError) -> Self {
        TestbedError::Exec(e)
    }
}
impl From<hummingbird_control::ServiceError> for TestbedError {
    fn from(e: hummingbird_control::ServiceError) -> Self {
        TestbedError::Service(e)
    }
}
impl From<hummingbird_dataplane::GenError> for TestbedError {
    fn from(e: hummingbird_dataplane::GenError) -> Self {
        TestbedError::Gen(e)
    }
}

/// Configuration of a testbed deployment.
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// Number of ASes in the chain.
    pub n_ases: usize,
    /// Link parameters for the inter-AS links.
    pub link: LinkSpec,
    /// Border-router configuration.
    pub router: RouterConfig,
    /// Simulation epoch (Unix seconds). All reservations and packets are
    /// timestamped relative to this.
    pub start_unix_s: u64,
    /// Marketplace ask price, MIST per kbps·second.
    pub price_per_kbps_sec: u64,
    /// ResID cap per ingress interface at every AS.
    pub res_id_cap: u32,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            n_ases: 3,
            link: LinkSpec::default(),
            router: RouterConfig::default(),
            start_unix_s: 1_700_000_000,
            price_per_kbps_sec: 1,
            res_id_cap: 100_000,
            seed: 42,
        }
    }
}

/// The assembled deployment.
pub struct Testbed {
    /// The blockchain control plane.
    pub control: ControlPlane,
    /// One Hummingbird service per AS (index = hop position).
    pub services: Vec<AsService>,
    /// The marketplace object.
    pub market: ObjectId,
    /// The simulated network (routers share secrets with `services`).
    pub topo: LinearTopology,
    /// Deployment configuration.
    pub cfg: TestbedConfig,
    /// Deterministic RNG for control-plane crypto.
    pub rng: StdRng,
}

impl Testbed {
    /// AS identifier of hop `i` (ISD 1, ASN `0x1000 + i`).
    pub fn as_id(i: usize) -> IsdAs {
        IsdAs::new(1, 0x1000 + i as u64)
    }

    /// Builds a testbed: registers every AS with the asset contract,
    /// creates the marketplace, and wires the same data-plane secrets into
    /// the simulated routers.
    pub fn build(cfg: TestbedConfig) -> Result<Self, TestbedError> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = cfg.n_ases;

        // Key material per AS.
        let mut hop_keys = Vec::with_capacity(n);
        let mut sv_keys = Vec::with_capacity(n);
        let mut cert_keys = Vec::with_capacity(n);
        for i in 0..n {
            let mut hk = [0u8; 16];
            hk[0] = 0x70;
            hk[1] = i as u8;
            hk[15] = cfg.seed as u8;
            hop_keys.push(hk);
            let mut sk = [0u8; 16];
            sk[0] = 0x80;
            sk[1] = i as u8;
            sk[15] = cfg.seed as u8;
            sv_keys.push(sk);
            cert_keys.push(SecretKey::from_seed(format!("as-cert-{}-{}", cfg.seed, i).as_bytes()));
        }

        // PKI anchors + control plane.
        let mut anchors = TrustAnchors::new();
        for (i, ck) in cert_keys.iter().enumerate() {
            anchors.install(Self::as_id(i), ck.public());
        }
        let mut control = ControlPlane::new(anchors);

        // AS services: register + become sellers.
        let mut services = Vec::with_capacity(n);
        for (i, ck) in cert_keys.into_iter().enumerate() {
            let mut service = AsService::new(Self::as_id(i), ck, sv_keys[i], cfg.res_id_cap);
            control.faucet(service.account, 10_000);
            service.register(&mut control, &mut rng)?;
            services.push(service);
        }
        let market = control.create_marketplace(services[0].account)?.value;
        for service in &services {
            control.register_seller(service.account, market)?;
        }

        // Simulated network with the same secrets.
        let topo = LinearTopology::build_with_keys(
            n,
            cfg.link,
            cfg.start_unix_s * 1_000_000_000,
            cfg.router,
            hop_keys,
            sv_keys,
        );

        Ok(Testbed { control, services, market, topo, cfg, rng })
    }

    /// Has every AS issue and list a matching ingress/egress asset pair
    /// covering `[start, end)` at `bw_kbps` on its chain interfaces.
    /// Returns the listing IDs per hop as `(ingress, egress)`.
    pub fn stock_market(
        &mut self,
        bw_kbps: u64,
        start: u64,
        end: u64,
        granularity_s: u64,
        min_bw_kbps: u64,
    ) -> Result<Vec<(ObjectId, ObjectId)>, TestbedError> {
        let n = self.cfg.n_ases;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let (ingress_if, egress_if) = LinearTopology::interfaces(n, i);
            let template = |interface: u16, direction: Direction| BandwidthAsset {
                as_id: Self::as_id(i),
                bandwidth_kbps: bw_kbps,
                start_time: start,
                expiry_time: end,
                interface,
                direction,
                time_granularity: granularity_s,
                min_bandwidth_kbps: min_bw_kbps,
            };
            let account = self.services[i].account;
            let ing_asset = self.services[i]
                .issue_asset(&mut self.control, template(ingress_if, Direction::Ingress))?
                .value;
            let eg_asset = self.services[i]
                .issue_asset(&mut self.control, template(egress_if, Direction::Egress))?
                .value;
            let price = self.cfg.price_per_kbps_sec;
            let l_in = self.control.create_listing(account, self.market, ing_asset, price)?.value;
            let l_eg = self.control.create_listing(account, self.market, eg_asset, price)?.value;
            out.push((l_in, l_eg));
        }
        Ok(out)
    }

    /// Creates and funds a client account.
    pub fn new_client(&mut self, label: &str, sui: u64) -> Client {
        let account = Address::from_label(label);
        self.control.faucet(account, sui);
        Client::new(account)
    }

    /// The full paper workflow for one client: find matching listings on
    /// every hop, atomically buy-and-redeem the whole path in one
    /// transaction, let every AS deliver its sealed reservation, collect
    /// and decrypt, and return the granted reservations in hop order.
    pub fn acquire_path(
        &mut self,
        client: &mut Client,
        spec: PurchaseSpec,
    ) -> Result<Vec<GrantedReservation>, TestbedError> {
        let n = self.cfg.n_ases;
        // Browse the market for a matching ingress/egress pair per hop.
        let listings = self.control.listings(self.market);
        let mut hops = Vec::with_capacity(n);
        for i in 0..n {
            let (ingress_if, egress_if) = LinearTopology::interfaces(n, i);
            let find = |interface: u16, direction: Direction| {
                listings.iter().find(|(_, _, a)| {
                    a.as_id == Self::as_id(i)
                        && a.interface == interface
                        && a.direction == direction
                        && a.start_time <= spec.start
                        && a.expiry_time >= spec.end
                        && a.bandwidth_kbps >= spec.bandwidth_kbps
                })
            };
            let ing = find(ingress_if, Direction::Ingress)
                .ok_or(TestbedError::NoMatchingListing { hop: i })?;
            let eg = find(egress_if, Direction::Egress)
                .ok_or(TestbedError::NoMatchingListing { hop: i })?;
            hops.push((ing.0, eg.0, spec));
        }

        // One atomic transaction for the whole path.
        client.buy_and_redeem_path(&mut self.control, self.market, &hops, &mut self.rng)?;

        // Each AS answers its redeem request (fast-path deliveries).
        let before = client.reservations().len();
        for service in self.services.iter_mut() {
            service.process_requests(&mut self.control, &mut self.rng)?;
        }
        client.collect_deliveries(&self.control)?;
        let granted: Vec<GrantedReservation> = client.reservations()[before..].to_vec();

        // Order by hop (ingress interface order along the chain).
        let mut ordered = Vec::with_capacity(n);
        for i in 0..n {
            let (ingress_if, _) = LinearTopology::interfaces(n, i);
            let g = granted
                .iter()
                .find(|g| g.as_id == Self::as_id(i) && g.res_info.ingress == ingress_if)
                .ok_or(TestbedError::NoMatchingListing { hop: i })?;
            ordered.push(g.clone());
        }
        Ok(ordered)
    }

    /// Acquires reservations for a *subset* of the path's hops — the
    /// partial-reservation mode of §3.3 (❸): reserve only the hops you
    /// expect to be congested; the rest of the path stays best effort.
    /// Returns `(hop index, grant)` pairs in hop order.
    pub fn acquire_hops(
        &mut self,
        client: &mut Client,
        spec: PurchaseSpec,
        hop_indices: &[usize],
    ) -> Result<Vec<(usize, GrantedReservation)>, TestbedError> {
        let n = self.cfg.n_ases;
        let listings = self.control.listings(self.market);
        let mut hops = Vec::with_capacity(hop_indices.len());
        for &i in hop_indices {
            if i >= n {
                return Err(TestbedError::NoMatchingListing { hop: i });
            }
            let (ingress_if, egress_if) = LinearTopology::interfaces(n, i);
            let find = |interface: u16, direction: Direction| {
                listings.iter().find(|(_, _, a)| {
                    a.as_id == Self::as_id(i)
                        && a.interface == interface
                        && a.direction == direction
                        && a.start_time <= spec.start
                        && a.expiry_time >= spec.end
                        && a.bandwidth_kbps >= spec.bandwidth_kbps
                })
            };
            let ing = find(ingress_if, Direction::Ingress)
                .ok_or(TestbedError::NoMatchingListing { hop: i })?;
            let eg = find(egress_if, Direction::Egress)
                .ok_or(TestbedError::NoMatchingListing { hop: i })?;
            hops.push((ing.0, eg.0, spec));
        }
        client.buy_and_redeem_path(&mut self.control, self.market, &hops, &mut self.rng)?;
        let before = client.reservations().len();
        for service in self.services.iter_mut() {
            service.process_requests(&mut self.control, &mut self.rng)?;
        }
        client.collect_deliveries(&self.control)?;
        let granted = &client.reservations()[before..];
        let mut out = Vec::with_capacity(hop_indices.len());
        for &i in hop_indices {
            let (ingress_if, _) = LinearTopology::interfaces(n, i);
            let g = granted
                .iter()
                .find(|g| g.as_id == Self::as_id(i) && g.res_info.ingress == ingress_if)
                .ok_or(TestbedError::NoMatchingListing { hop: i })?;
            out.push((i, g.clone()));
        }
        Ok(out)
    }

    /// Builds a data-plane source generator with reservations attached
    /// only on the given hops (partial path protection).
    pub fn make_partially_reserved_generator(
        &self,
        src: IsdAs,
        dst: IsdAs,
        grants: &[(usize, GrantedReservation)],
    ) -> Result<SourceGenerator, TestbedError> {
        let mut generator = self.topo.make_generator(src, dst);
        for (hop, g) in grants {
            generator.attach_reservation(
                *hop,
                SourceReservation { res_info: g.res_info, key: g.key.clone() },
            )?;
        }
        Ok(generator)
    }

    /// Builds a data-plane source generator with `granted` reservations
    /// attached to every hop — ready to inject into the simulator.
    pub fn make_reserved_generator(
        &self,
        src: IsdAs,
        dst: IsdAs,
        granted: &[GrantedReservation],
    ) -> Result<SourceGenerator, TestbedError> {
        let mut generator = self.topo.make_generator(src, dst);
        for (i, g) in granted.iter().enumerate() {
            generator.attach_reservation(
                i,
                SourceReservation { res_info: g.res_info, key: g.key.clone() },
            )?;
        }
        Ok(generator)
    }
}
