//! # hummingbird
//!
//! A from-scratch Rust implementation of **Hummingbird: Fast, Flexible,
//! and Fair Inter-Domain Bandwidth Reservations** (SIGCOMM 2025).
//!
//! Hummingbird provides fine-grained, end-host-usable bandwidth
//! reservations across autonomous systems. Reservations are granted per AS
//! hop ("flyovers"), composed by the source into end-to-end guarantees,
//! represented as freely tradable assets on a blockchain control plane,
//! and enforced on the data plane with per-packet MACs and deterministic
//! token-bucket policing.
//!
//! ## Crate map
//!
//! | Layer | Crate | Paper section |
//! |---|---|---|
//! | Crypto (AES-128, CMAC, SHA-256, Schnorr, sealed boxes, `A_K`/tags) | `hummingbird_crypto` | §4.1, §7.1 |
//! | Wire formats (Hummingbird SCION path type) | `hummingbird_wire` | App. A |
//! | ResID interval coloring | `hummingbird_coloring` | §4.4 |
//! | Sui-like object ledger (gas, atomic tx, fast path/consensus) | `hummingbird_ledger` | §6 |
//! | Asset + market contracts, redeem flow | `hummingbird_control` | §4.2 |
//! | Border router, policing, traffic generation | `hummingbird_dataplane` | §4.3-4.4, §7 |
//! | Discrete-event network simulation | `hummingbird_netsim` | §5 (D2) |
//! | End-to-end testbed (this crate) | [`testbed`] | whole system |
//!
//! ## Quickstart
//!
//! ```
//! use hummingbird::testbed::{Testbed, TestbedConfig};
//! use hummingbird::PurchaseSpec;
//!
//! let mut tb = Testbed::build(TestbedConfig::default()).unwrap();
//! let t0 = tb.cfg.start_unix_s;
//!
//! // ASes list bandwidth on the market.
//! tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).unwrap();
//!
//! // A client atomically buys + redeems reservations for the whole path.
//! let mut client = tb.new_client("alice", 1_000);
//! let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 4_000 };
//! let grants = tb.acquire_path(&mut client, spec).unwrap();
//! assert_eq!(grants.len(), tb.cfg.n_ases);
//!
//! // The grants plug straight into the data plane.
//! let src = hummingbird::IsdAs::new(1, 0xa);
//! let dst = hummingbird::IsdAs::new(2, 0xb);
//! let mut generator = tb.make_reserved_generator(src, dst, &grants).unwrap();
//! let pkt = generator.generate(&[0u8; 500], t0 * 1000).unwrap();
//! assert!(pkt.len() > 500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bidirectional;
pub mod testbed;

pub use bidirectional::{BundleEntry, ReservationBundle};
pub use testbed::{Testbed, TestbedConfig, TestbedError};

// Re-export the sub-crates under stable names.
pub use hummingbird_coloring as coloring;
pub use hummingbird_control as control;
pub use hummingbird_crypto as crypto;
pub use hummingbird_dataplane as dataplane;
pub use hummingbird_ledger as ledger;
pub use hummingbird_netsim as netsim;
pub use hummingbird_wire as wire;

// Most-used types at the crate root.
pub use hummingbird_control::{
    AsService, BandwidthAsset, Client, ControlPlane, Direction, GrantedReservation, PurchaseSpec,
};
pub use hummingbird_crypto::{AuthKey, ResInfo, SecretValue};
pub use hummingbird_dataplane::{
    BorderRouter, Datapath, DatapathBuilder, DatapathStats, PacketBuf, RouterConfig,
    SourceGenerator, SourceReservation, Verdict,
};
pub use hummingbird_ledger::{Address, ExecPath, Ledger, ObjectId};
pub use hummingbird_netsim::{LinearTopology, LinkSpec, Simulator};
pub use hummingbird_wire::{HummingbirdPath, IsdAs, Packet};

#[cfg(test)]
mod tests {
    use super::testbed::{Testbed, TestbedConfig};
    use super::*;

    #[test]
    fn testbed_builds_and_registers_all_ases() {
        let tb = Testbed::build(TestbedConfig::default()).unwrap();
        assert_eq!(tb.services.len(), 3);
        assert_eq!(tb.control.registered_ases().len(), 3);
    }

    #[test]
    fn full_stack_quickstart_flow() {
        let mut tb = Testbed::build(TestbedConfig { n_ases: 4, ..Default::default() }).unwrap();
        let t0 = tb.cfg.start_unix_s;
        tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).unwrap();
        let mut client = tb.new_client("alice", 1_000);
        let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 4_000 };
        let grants = tb.acquire_path(&mut client, spec).unwrap();
        assert_eq!(grants.len(), 4);

        // Control-plane keys verify at the simulated routers end-to-end.
        let src = IsdAs::new(1, 0xa);
        let dst = IsdAs::new(2, 0xb);
        let generator = tb.make_reserved_generator(src, dst, &grants).unwrap();
        let entry = tb.topo.as_nodes[0];
        let flow = tb.topo.sim.add_flow(hummingbird_netsim::Flow {
            generator,
            entry,
            payload_len: 500,
            interval_ns: 10_000_000,
            start_ns: t0 * 1_000_000_000,
            stop_ns: (t0 + 1) * 1_000_000_000,
        });
        tb.topo.sim.run_until((t0 + 2) * 1_000_000_000);
        let stats = tb.topo.sim.stats(flow);
        assert!(stats.sent_pkts > 90);
        assert_eq!(stats.delivered_pkts, stats.sent_pkts, "all packets delivered");
        assert_eq!(stats.router_drops, 0);
        // Every router saw them as priority traffic.
        for node in &tb.topo.as_nodes {
            let rs = tb.topo.sim.router_stats(*node).unwrap();
            assert_eq!(rs.flyover, stats.sent_pkts, "priority at node {node}");
        }
    }

    #[test]
    fn atomic_failure_leaves_funds_untouched() {
        let mut tb = Testbed::build(TestbedConfig::default()).unwrap();
        let t0 = tb.cfg.start_unix_s;
        tb.stock_market(1_000, t0 - 60, t0 + 3540, 60, 100).unwrap();
        let mut client = tb.new_client("bob", 1_000);
        let before = tb.control.ledger.balance(client.account);
        let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 4_000 };
        // 4 Mbps exceeds the 1 Mbps listings: no hop matches.
        assert!(tb.acquire_path(&mut client, spec).is_err());
        assert_eq!(tb.control.ledger.balance(client.account), before);
        assert_eq!(client.pending_count(), 0);
    }

    #[test]
    fn bidirectional_bundle_shares_reverse_path() {
        let mut tb = Testbed::build(TestbedConfig::default()).unwrap();
        let t0 = tb.cfg.start_unix_s;
        tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).unwrap();
        let mut client = tb.new_client("alice", 1_000);
        let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 2_000 };
        let grants = tb.acquire_path(&mut client, spec).unwrap();

        // Ship the credentials to the server (App. C flow).
        let bundle = ReservationBundle::from_grants(&grants);
        let received = ReservationBundle::decode(&bundle.encode()).unwrap();
        let server_grants = received.into_grants();
        assert_eq!(server_grants.len(), grants.len());
        // The server can now authenticate packets with the same keys.
        let src = IsdAs::new(2, 0xb);
        let dst = IsdAs::new(1, 0xa);
        let mut generator = tb.make_reserved_generator(src, dst, &server_grants).unwrap();
        assert!(generator.generate(&[0u8; 100], t0 * 1000).is_ok());
    }
}
